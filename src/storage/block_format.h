#ifndef MDJOIN_STORAGE_BLOCK_FORMAT_H_
#define MDJOIN_STORAGE_BLOCK_FORMAT_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "analyze/range_analysis.h"
#include "common/result.h"
#include "table/table.h"
#include "types/schema.h"

namespace mdjoin {

/// Paged columnar block format — the on-disk half of the out-of-core MD-join
/// (ROADMAP item 1), patterned after WiredTiger's src/block layering: a file
/// is a schema header, a sequence of independently decodable blocks (each a
/// fixed-capacity slice of rows, stored column-chunk-at-a-time with a
/// per-chunk lightweight encoding), and a footer index carrying, for every
/// block, its offset/length/checksum and a per-column zone map. Readers seek
/// straight to any block; nothing outside the footer need be resident.
///
/// Encodings are chosen per column chunk by the writer and recorded in the
/// block payload, so the reader is encoding-agnostic:
///  - kPlain:  tagged values verbatim (the fallback; also the spill codec);
///  - kRle:    run-length over *exactly identical* cells — note Equals()
///             would merge Int64(3) with Float64(3.0) and change decoded bit
///             content, so run detection uses same-variant bitwise equality;
///  - kDict:   per-chunk sorted dictionary (table/dictionary) + int32 codes,
///             for chunks holding only strings / NULL / ALL;
///  - kForInt: frame-of-reference for pure-int64 chunks — min base plus
///             fixed-width byte deltas.
/// Every encoding round-trips cells bit-exactly (NaN payloads, -0.0, string
/// bytes), which is what makes the paged MD-join bit-identical to in-memory.

enum class BlockEncoding : uint8_t {
  kPlain = 0,
  kRle = 1,
  kDict = 2,
  kForInt = 3,
};

/// Per-(block, column) statistics, computed by the writer and kept decoded in
/// the footer so pruning never touches the block payload. The numeric window
/// [num_min, num_max] spans the non-NaN numeric cells only; presence of the
/// other payload classes is tracked by count so a ZoneMapPredicate can reason
/// about each class independently (see ZoneCouldMatch).
struct ColumnZoneMap {
  double num_min = std::numeric_limits<double>::infinity();
  double num_max = -std::numeric_limits<double>::infinity();
  int64_t null_count = 0;
  int64_t all_count = 0;
  int64_t nan_count = 0;
  int64_t numeric_count = 0;  // finite + ±inf numerics (excludes NaN)
  int64_t string_count = 0;
  std::string str_min;  // meaningful iff string_count > 0
  std::string str_max;

  bool has_null() const { return null_count > 0; }
  bool has_numeric() const { return numeric_count > 0; }

  std::string ToString() const;
};

/// Footer entry for one block.
struct BlockMeta {
  uint64_t offset = 0;         // file offset of the payload
  uint64_t encoded_bytes = 0;  // payload length
  int64_t num_rows = 0;
  uint64_t checksum = 0;  // FNV-1a 64 over the payload
  std::vector<ColumnZoneMap> zones;      // one per column
  std::vector<uint8_t> encodings;        // BlockEncoding per column
  int64_t decoded_bytes_estimate = 0;    // cache-charge estimate
};

struct BlockFileOptions {
  /// Rows per block. The default keeps a decoded block's column slices a few
  /// hundred KB — several vectorized scan blocks per storage block, small
  /// enough that a starved cache still makes progress block-at-a-time.
  int64_t block_size_rows = 4096;
};

/// Converts an in-memory Table into a block file at `path` (overwriting).
Status WriteBlockFile(const Table& table, const std::string& path,
                      const BlockFileOptions& options = {});

/// Open handle on a block file: the parsed header + footer (schema, row
/// counts, zone maps) with block payloads left on disk. ReadBlock decodes one
/// block into a Table; it opens its own stream per call, so one BlockFile may
/// serve many scan threads concurrently.
///
/// Failpoints: "storage:block_read" forces the next payload read to fail as a
/// clean I/O Status; "storage:block_corrupt" flips the computed checksum so
/// the mismatch path runs.
class BlockFile {
 public:
  static Result<std::unique_ptr<BlockFile>> Open(std::string path);

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  int64_t block_size_rows() const { return block_size_rows_; }
  const BlockMeta& block_meta(int b) const { return blocks_[static_cast<size_t>(b)]; }
  /// First row id (in whole-file row numbering) of block `b`.
  int64_t block_row_offset(int b) const {
    return static_cast<int64_t>(b) * block_size_rows_;
  }
  const std::string& path() const { return path_; }

  /// Decodes block `b`. Verifies the payload checksum before decoding; a
  /// mismatch (bit rot, torn write, or the storage:block_corrupt failpoint)
  /// is an Internal error naming the block.
  Result<Table> ReadBlock(int b) const;

  /// Estimated heap footprint of the decoded block, used for cache and guard
  /// charging without decoding first.
  int64_t ApproxBlockBytes(int b) const {
    return blocks_[static_cast<size_t>(b)].decoded_bytes_estimate;
  }

 private:
  BlockFile() = default;

  std::string path_;
  Schema schema_;
  int64_t num_rows_ = 0;
  int64_t block_size_rows_ = 0;
  std::vector<BlockMeta> blocks_;
};

/// The storage-side pruning test: may block statistics `zone` admit a row
/// satisfying `pred`? Composes the per-class zone counts with the official
/// numeric-interval test (ZoneMapPredicate::CouldMatch) and the string-window
/// test, so a θ that admits strings can still prune all-numeric blocks and
/// vice versa — strictly sharper than CouldMatch alone, never less sound.
bool ZoneCouldMatch(const ZoneMapPredicate& pred, const ColumnZoneMap& zone);

/// FNV-1a 64-bit, the block payload checksum.
uint64_t BlockChecksum(const char* data, size_t len);

/// The tagged scalar codec (u8 tag + payload) shared by kPlain block chunks
/// and spill-file rows. Round-trips every Value bit-exactly.
void AppendTaggedValue(std::string* out, const Value& v);

/// Decodes one tagged value from data[*pos..len), advancing *pos past it.
/// Returns false (leaving *pos unspecified) on truncated or malformed input.
bool ParseTaggedValue(const char* data, size_t len, size_t* pos, Value* out);

}  // namespace mdjoin

#endif  // MDJOIN_STORAGE_BLOCK_FORMAT_H_
