#include "storage/block_format.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "table/dictionary.h"

namespace mdjoin {

namespace {

constexpr char kHeaderMagic[4] = {'M', 'D', 'J', 'B'};
constexpr char kTrailerMagic[4] = {'M', 'D', 'J', 'E'};
constexpr uint32_t kFormatVersion = 1;

// ---------------------------------------------------------------------------
// Little serialization kit. The format is single-machine (spill + paged
// detail live and die with one host), so native byte order via memcpy is
// fine; every read is bounds-checked so a truncated or corrupt file surfaces
// as a clean Status, never UB.
// ---------------------------------------------------------------------------

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

template <typename T>
void PutRaw(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

void PutU32(std::string* out, uint32_t v) { PutRaw(out, v); }
void PutU64(std::string* out, uint64_t v) { PutRaw(out, v); }
void PutI64(std::string* out, int64_t v) { PutRaw(out, v); }
void PutF64(std::string* out, double v) { PutRaw(out, v); }

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

struct ByteReader {
  const char* data;
  size_t len;
  size_t pos = 0;

  bool U8(uint8_t* v) {
    if (pos + 1 > len) return false;
    *v = static_cast<uint8_t>(data[pos++]);
    return true;
  }
  template <typename T>
  bool Raw(T* v) {
    if (pos + sizeof(T) > len) return false;
    std::memcpy(v, data + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
  bool U32(uint32_t* v) { return Raw(v); }
  bool U64(uint64_t* v) { return Raw(v); }
  bool I64(int64_t* v) { return Raw(v); }
  bool F64(double* v) { return Raw(v); }
  bool Str(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n) || pos + n > len) return false;
    s->assign(data + pos, n);
    pos += n;
    return true;
  }
};

Status Truncated(const std::string& what) {
  return Status::Internal("block file corrupt: truncated ", what);
}

// ---------------------------------------------------------------------------
// Tagged value codec (shared with the spill writer via EncodeValue/DecodeValue
// below). Doubles round-trip by bit pattern, so NaN payloads and -0.0 decode
// exactly as stored.
// ---------------------------------------------------------------------------

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagAll = 1;
constexpr uint8_t kTagInt64 = 2;
constexpr uint8_t kTagFloat64 = 3;
constexpr uint8_t kTagString = 4;

uint8_t TagOf(const Value& v) {
  if (v.is_null()) return kTagNull;
  if (v.is_all()) return kTagAll;
  if (v.is_int64()) return kTagInt64;
  if (v.is_float64()) return kTagFloat64;
  return kTagString;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// Same variant *and* same payload bits. Distinct from Value::Equals, which
/// compares Int64(3) == Float64(3.0) numerically — merging those in an RLE
/// run would decode the wrong variant and break bit-identity.
bool ExactSame(const Value& a, const Value& b) {
  const uint8_t tag = TagOf(a);
  if (tag != TagOf(b)) return false;
  switch (tag) {
    case kTagNull:
    case kTagAll:
      return true;
    case kTagInt64:
      return a.int64() == b.int64();
    case kTagFloat64:
      return DoubleBits(a.float64()) == DoubleBits(b.float64());
    default:
      return a.string() == b.string();
  }
}

void EncodeValue(std::string* out, const Value& v) {
  const uint8_t tag = TagOf(v);
  PutU8(out, tag);
  switch (tag) {
    case kTagInt64:
      PutI64(out, v.int64());
      break;
    case kTagFloat64:
      PutF64(out, v.float64());
      break;
    case kTagString:
      PutString(out, v.string());
      break;
    default:
      break;
  }
}

bool DecodeValue(ByteReader* r, Value* out) {
  uint8_t tag = 0;
  if (!r->U8(&tag)) return false;
  switch (tag) {
    case kTagNull:
      *out = Value::Null();
      return true;
    case kTagAll:
      *out = Value::All();
      return true;
    case kTagInt64: {
      int64_t v = 0;
      if (!r->I64(&v)) return false;
      *out = Value::Int64(v);
      return true;
    }
    case kTagFloat64: {
      double v = 0;
      if (!r->F64(&v)) return false;
      *out = Value::Float64(v);
      return true;
    }
    case kTagString: {
      std::string s;
      if (!r->Str(&s)) return false;
      *out = Value::String(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Column-chunk encodings
// ---------------------------------------------------------------------------

struct ChunkShape {
  bool all_int64 = true;     // every cell Int64 (kForInt eligible)
  bool dict_eligible = true; // only string / NULL / ALL cells
  int64_t runs = 0;          // ExactSame run count
  int64_t strings = 0;
};

ChunkShape ShapeOf(const Value* cells, int64_t n) {
  ChunkShape s;
  for (int64_t i = 0; i < n; ++i) {
    const Value& v = cells[i];
    if (!v.is_int64()) s.all_int64 = false;
    if (v.is_string()) {
      ++s.strings;
    } else if (!v.is_null() && !v.is_all()) {
      s.dict_eligible = false;
    }
    if (i == 0 || !ExactSame(cells[i - 1], v)) ++s.runs;
  }
  if (s.strings == 0) s.dict_eligible = false;
  return s;
}

void EncodePlain(std::string* out, const Value* cells, int64_t n) {
  for (int64_t i = 0; i < n; ++i) EncodeValue(out, cells[i]);
}

void EncodeRle(std::string* out, const Value* cells, int64_t n, int64_t runs) {
  PutU32(out, static_cast<uint32_t>(runs));
  int64_t i = 0;
  while (i < n) {
    int64_t j = i + 1;
    while (j < n && ExactSame(cells[i], cells[j])) ++j;
    PutU32(out, static_cast<uint32_t>(j - i));
    EncodeValue(out, cells[i]);
    i = j;
  }
}

void EncodeDict(std::string* out, const Value* cells, int64_t n) {
  std::vector<std::string> strings;
  strings.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    if (cells[i].is_string()) strings.push_back(cells[i].string());
  }
  Dictionary dict = Dictionary::Build(std::move(strings));
  PutU32(out, static_cast<uint32_t>(dict.size()));
  for (int32_t c = 0; c < dict.size(); ++c) PutString(out, dict.Decode(c));
  for (int64_t i = 0; i < n; ++i) {
    int32_t code;
    if (cells[i].is_null()) {
      code = -1;
    } else if (cells[i].is_all()) {
      code = -2;
    } else {
      code = dict.CodeOf(cells[i].string());
    }
    PutRaw(out, code);
  }
}

void EncodeForInt(std::string* out, const Value* cells, int64_t n) {
  int64_t lo = cells[0].int64();
  uint64_t max_delta = 0;
  for (int64_t i = 0; i < n; ++i) lo = std::min(lo, cells[i].int64());
  for (int64_t i = 0; i < n; ++i) {
    // Two's-complement wraparound keeps this exact even for INT64_MIN..MAX.
    const uint64_t d =
        static_cast<uint64_t>(cells[i].int64()) - static_cast<uint64_t>(lo);
    max_delta = std::max(max_delta, d);
  }
  uint8_t width = 8;
  if (max_delta <= 0xff) {
    width = 1;
  } else if (max_delta <= 0xffff) {
    width = 2;
  } else if (max_delta <= 0xffffffffULL) {
    width = 4;
  }
  PutI64(out, lo);
  PutU8(out, width);
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t d =
        static_cast<uint64_t>(cells[i].int64()) - static_cast<uint64_t>(lo);
    out->append(reinterpret_cast<const char*>(&d), width);
  }
}

Status DecodeChunk(BlockEncoding enc, ByteReader* r, int64_t n,
                   std::vector<Value>* out) {
  out->clear();
  out->reserve(static_cast<size_t>(n));
  switch (enc) {
    case BlockEncoding::kPlain: {
      for (int64_t i = 0; i < n; ++i) {
        Value v;
        if (!DecodeValue(r, &v)) return Truncated("plain chunk");
        out->push_back(std::move(v));
      }
      return Status::OK();
    }
    case BlockEncoding::kRle: {
      uint32_t runs = 0;
      if (!r->U32(&runs)) return Truncated("rle chunk");
      for (uint32_t run = 0; run < runs; ++run) {
        uint32_t len = 0;
        Value v;
        if (!r->U32(&len) || !DecodeValue(r, &v)) return Truncated("rle run");
        for (uint32_t i = 0; i < len; ++i) out->push_back(v);
      }
      if (static_cast<int64_t>(out->size()) != n) {
        return Status::Internal("block file corrupt: rle run lengths sum to ",
                                out->size(), ", block has ", n, " rows");
      }
      return Status::OK();
    }
    case BlockEncoding::kDict: {
      uint32_t dict_size = 0;
      if (!r->U32(&dict_size)) return Truncated("dict header");
      std::vector<std::string> dict(dict_size);
      for (uint32_t i = 0; i < dict_size; ++i) {
        if (!r->Str(&dict[i])) return Truncated("dict entry");
      }
      for (int64_t i = 0; i < n; ++i) {
        int32_t code = 0;
        if (!r->Raw(&code)) return Truncated("dict codes");
        if (code == -1) {
          out->push_back(Value::Null());
        } else if (code == -2) {
          out->push_back(Value::All());
        } else if (code >= 0 && static_cast<uint32_t>(code) < dict_size) {
          out->push_back(Value::String(dict[static_cast<size_t>(code)]));
        } else {
          return Status::Internal("block file corrupt: dict code ", code,
                                  " outside dictionary of ", dict_size);
        }
      }
      return Status::OK();
    }
    case BlockEncoding::kForInt: {
      int64_t lo = 0;
      uint8_t width = 0;
      if (!r->I64(&lo) || !r->U8(&width)) return Truncated("for header");
      if (width != 1 && width != 2 && width != 4 && width != 8) {
        return Status::Internal("block file corrupt: for-int width ", width);
      }
      if (r->pos + static_cast<size_t>(n) * width > r->len) {
        return Truncated("for deltas");
      }
      for (int64_t i = 0; i < n; ++i) {
        uint64_t d = 0;
        std::memcpy(&d, r->data + r->pos, width);
        r->pos += width;
        out->push_back(
            Value::Int64(static_cast<int64_t>(static_cast<uint64_t>(lo) + d)));
      }
      return Status::OK();
    }
  }
  return Status::Internal("block file corrupt: unknown encoding");
}

ColumnZoneMap ComputeZone(const Value* cells, int64_t n) {
  ColumnZoneMap z;
  bool first_string = true;
  for (int64_t i = 0; i < n; ++i) {
    const Value& v = cells[i];
    if (v.is_null()) {
      ++z.null_count;
    } else if (v.is_all()) {
      ++z.all_count;
    } else if (v.is_string()) {
      ++z.string_count;
      const std::string& s = v.string();
      if (first_string) {
        z.str_min = s;
        z.str_max = s;
        first_string = false;
      } else {
        if (s < z.str_min) z.str_min = s;
        if (s > z.str_max) z.str_max = s;
      }
    } else {
      const double d = v.AsDouble();
      if (std::isnan(d)) {
        ++z.nan_count;
      } else {
        ++z.numeric_count;
        z.num_min = std::min(z.num_min, d);
        z.num_max = std::max(z.num_max, d);
      }
    }
  }
  return z;
}

int64_t EstimateDecodedBytes(const Value* cells, int64_t n) {
  int64_t bytes = n * static_cast<int64_t>(sizeof(Value));
  for (int64_t i = 0; i < n; ++i) {
    if (cells[i].is_string()) {
      bytes += static_cast<int64_t>(cells[i].string().size());
    }
  }
  return bytes;
}

void PutZone(std::string* out, const ColumnZoneMap& z) {
  PutF64(out, z.num_min);
  PutF64(out, z.num_max);
  PutI64(out, z.null_count);
  PutI64(out, z.all_count);
  PutI64(out, z.nan_count);
  PutI64(out, z.numeric_count);
  PutI64(out, z.string_count);
  PutString(out, z.str_min);
  PutString(out, z.str_max);
}

bool ReadZone(ByteReader* r, ColumnZoneMap* z) {
  return r->F64(&z->num_min) && r->F64(&z->num_max) && r->I64(&z->null_count) &&
         r->I64(&z->all_count) && r->I64(&z->nan_count) &&
         r->I64(&z->numeric_count) && r->I64(&z->string_count) &&
         r->Str(&z->str_min) && r->Str(&z->str_max);
}

}  // namespace

void AppendTaggedValue(std::string* out, const Value& v) { EncodeValue(out, v); }

bool ParseTaggedValue(const char* data, size_t len, size_t* pos, Value* out) {
  ByteReader r{data, len, *pos};
  if (!DecodeValue(&r, out)) return false;
  *pos = r.pos;
  return true;
}

uint64_t BlockChecksum(const char* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string ColumnZoneMap::ToString() const {
  std::string out = StrCat("num:[", num_min, ", ", num_max, "]×", numeric_count,
                           " null:", null_count, " all:", all_count,
                           " nan:", nan_count);
  if (string_count > 0) {
    out += StrCat(" str:['", str_min, "', '", str_max, "']×", string_count);
  }
  return out;
}

Status WriteBlockFile(const Table& table, const std::string& path,
                      const BlockFileOptions& options) {
  const int64_t block_rows =
      options.block_size_rows > 0 ? options.block_size_rows : 4096;
  const int ncols = table.num_columns();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open block file for writing: ", path);
  }

  // Header: magic, version, schema, geometry.
  std::string header;
  header.append(kHeaderMagic, sizeof(kHeaderMagic));
  PutU32(&header, kFormatVersion);
  PutU32(&header, static_cast<uint32_t>(ncols));
  for (const Field& f : table.schema().fields()) {
    PutString(&header, f.name);
    PutU8(&header, static_cast<uint8_t>(f.type));
  }
  PutI64(&header, block_rows);
  PutI64(&header, table.num_rows());
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  uint64_t offset = header.size();

  std::vector<BlockMeta> metas;
  for (int64_t start = 0; start < table.num_rows(); start += block_rows) {
    const int64_t n = std::min<int64_t>(block_rows, table.num_rows() - start);
    BlockMeta meta;
    meta.offset = offset;
    meta.num_rows = n;

    std::string payload;
    for (int c = 0; c < ncols; ++c) {
      const Value* cells = table.column(c).data() + start;
      meta.zones.push_back(ComputeZone(cells, n));
      meta.decoded_bytes_estimate += EstimateDecodedBytes(cells, n);

      const ChunkShape shape = ShapeOf(cells, n);
      BlockEncoding enc = BlockEncoding::kPlain;
      if (shape.dict_eligible) {
        enc = BlockEncoding::kDict;
      } else if (shape.all_int64) {
        enc = BlockEncoding::kForInt;
      } else if (shape.runs <= n / 4) {
        enc = BlockEncoding::kRle;
      }
      meta.encodings.push_back(static_cast<uint8_t>(enc));

      std::string chunk;
      switch (enc) {
        case BlockEncoding::kPlain:
          EncodePlain(&chunk, cells, n);
          break;
        case BlockEncoding::kRle:
          EncodeRle(&chunk, cells, n, shape.runs);
          break;
        case BlockEncoding::kDict:
          EncodeDict(&chunk, cells, n);
          break;
        case BlockEncoding::kForInt:
          EncodeForInt(&chunk, cells, n);
          break;
      }
      PutU8(&payload, static_cast<uint8_t>(enc));
      PutU64(&payload, chunk.size());
      payload += chunk;
    }

    meta.encoded_bytes = payload.size();
    meta.checksum = BlockChecksum(payload.data(), payload.size());
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    offset += payload.size();
    metas.push_back(std::move(meta));
  }

  // Footer index + trailer.
  std::string footer;
  PutU32(&footer, static_cast<uint32_t>(metas.size()));
  for (const BlockMeta& m : metas) {
    PutU64(&footer, m.offset);
    PutU64(&footer, m.encoded_bytes);
    PutI64(&footer, m.num_rows);
    PutU64(&footer, m.checksum);
    PutI64(&footer, m.decoded_bytes_estimate);
    for (int c = 0; c < ncols; ++c) {
      PutU8(&footer, m.encodings[static_cast<size_t>(c)]);
      PutZone(&footer, m.zones[static_cast<size_t>(c)]);
    }
  }
  out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  std::string trailer;
  PutU64(&trailer, offset);
  trailer.append(kTrailerMagic, sizeof(kTrailerMagic));
  out.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  out.flush();
  if (!out) return Status::Internal("write failed for block file: ", path);
  return Status::OK();
}

Result<std::unique_ptr<BlockFile>> BlockFile::Open(std::string path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open block file: ", path);
  in.seekg(0, std::ios::end);
  const int64_t file_size = static_cast<int64_t>(in.tellg());
  const int64_t trailer_size = 12;  // u64 footer offset + magic
  if (file_size < trailer_size) {
    return Status::Internal("block file corrupt: ", path, " too small (",
                            file_size, " bytes)");
  }

  std::string whole;  // header + footer are small; read trailer then regions
  char trailer[12];
  in.seekg(file_size - trailer_size);
  in.read(trailer, trailer_size);
  if (!in || std::memcmp(trailer + 8, kTrailerMagic, 4) != 0) {
    return Status::Internal("block file corrupt: ", path, " bad trailer magic");
  }
  uint64_t footer_offset = 0;
  std::memcpy(&footer_offset, trailer, sizeof(footer_offset));
  if (footer_offset >= static_cast<uint64_t>(file_size)) {
    return Status::Internal("block file corrupt: ", path, " footer offset ",
                            footer_offset, " beyond file size ", file_size);
  }

  auto file = std::unique_ptr<BlockFile>(new BlockFile());
  file->path_ = std::move(path);

  // Header.
  const size_t header_budget =
      static_cast<size_t>(std::min<int64_t>(footer_offset, file_size));
  whole.resize(header_budget);
  in.seekg(0);
  in.read(whole.data(), static_cast<std::streamsize>(header_budget));
  if (!in) return Status::Internal("block file corrupt: short header read");
  ByteReader hr{whole.data(), header_budget};
  if (header_budget < 4 || std::memcmp(whole.data(), kHeaderMagic, 4) != 0) {
    return Status::Internal("block file corrupt: bad header magic");
  }
  hr.pos = 4;
  uint32_t version = 0, ncols = 0;
  if (!hr.U32(&version) || !hr.U32(&ncols)) return Truncated("header");
  if (version != kFormatVersion) {
    return Status::Internal("block file version ", version, " unsupported");
  }
  std::vector<Field> fields;
  for (uint32_t c = 0; c < ncols; ++c) {
    std::string name;
    uint8_t type = 0;
    if (!hr.Str(&name) || !hr.U8(&type)) return Truncated("schema");
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return Status::Internal("block file corrupt: bad column type ", type);
    }
    fields.push_back(Field{std::move(name), static_cast<DataType>(type)});
  }
  file->schema_ = Schema(std::move(fields));
  if (!hr.I64(&file->block_size_rows_) || !hr.I64(&file->num_rows_)) {
    return Truncated("header geometry");
  }
  if (file->block_size_rows_ <= 0 || file->num_rows_ < 0) {
    return Status::Internal("block file corrupt: geometry rows=", file->num_rows_,
                            " block_rows=", file->block_size_rows_);
  }

  // Footer.
  const size_t footer_len =
      static_cast<size_t>(file_size - trailer_size - static_cast<int64_t>(footer_offset));
  std::string footer_buf(footer_len, '\0');
  in.seekg(static_cast<std::streamoff>(footer_offset));
  in.read(footer_buf.data(), static_cast<std::streamsize>(footer_len));
  if (!in) return Status::Internal("block file corrupt: short footer read");
  ByteReader fr{footer_buf.data(), footer_len};
  uint32_t nblocks = 0;
  if (!fr.U32(&nblocks)) return Truncated("footer");
  for (uint32_t b = 0; b < nblocks; ++b) {
    BlockMeta m;
    if (!fr.U64(&m.offset) || !fr.U64(&m.encoded_bytes) || !fr.I64(&m.num_rows) ||
        !fr.U64(&m.checksum) || !fr.I64(&m.decoded_bytes_estimate)) {
      return Truncated("block meta");
    }
    if (m.num_rows <= 0 || m.num_rows > file->block_size_rows_ ||
        m.offset + m.encoded_bytes > footer_offset) {
      return Status::Internal("block file corrupt: block ", b, " geometry");
    }
    for (uint32_t c = 0; c < ncols; ++c) {
      uint8_t enc = 0;
      ColumnZoneMap z;
      if (!fr.U8(&enc) || !ReadZone(&fr, &z)) return Truncated("zone map");
      if (enc > static_cast<uint8_t>(BlockEncoding::kForInt)) {
        return Status::Internal("block file corrupt: encoding ", enc);
      }
      m.encodings.push_back(enc);
      m.zones.push_back(std::move(z));
    }
    file->blocks_.push_back(std::move(m));
  }
  int64_t total = 0;
  for (const BlockMeta& m : file->blocks_) total += m.num_rows;
  if (total != file->num_rows_) {
    return Status::Internal("block file corrupt: blocks hold ", total,
                            " rows, header promises ", file->num_rows_);
  }
  return file;
}

Result<Table> BlockFile::ReadBlock(int b) const {
  if (b < 0 || b >= num_blocks()) {
    return Status::OutOfRange("block ", b, " of ", num_blocks());
  }
  const BlockMeta& meta = blocks_[static_cast<size_t>(b)];

  std::ifstream in(path_, std::ios::binary);
  const bool read_fault = MDJ_FAILPOINT("storage:block_read");
  if (!in || read_fault) {
    return Status::Internal("block read failed: ", path_, " block ", b,
                            read_fault ? " (failpoint storage:block_read)" : "");
  }
  std::string payload(meta.encoded_bytes, '\0');
  in.seekg(static_cast<std::streamoff>(meta.offset));
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!in) {
    return Status::Internal("block read failed: ", path_, " block ", b,
                            " short read");
  }

  uint64_t checksum = BlockChecksum(payload.data(), payload.size());
  if (MDJ_FAILPOINT("storage:block_corrupt")) checksum ^= 0xdeadbeefULL;
  if (checksum != meta.checksum) {
    return Status::Internal("block checksum mismatch: ", path_, " block ", b,
                            " (stored ", meta.checksum, ", computed ", checksum,
                            ")");
  }

  ByteReader r{payload.data(), payload.size()};
  Table out;
  for (int c = 0; c < schema_.num_fields(); ++c) {
    uint8_t enc = 0;
    uint64_t chunk_len = 0;
    if (!r.U8(&enc) || !r.U64(&chunk_len) || r.pos + chunk_len > r.len) {
      return Truncated("chunk header");
    }
    ByteReader cr{r.data + r.pos, static_cast<size_t>(chunk_len)};
    r.pos += chunk_len;
    std::vector<Value> cells;
    MDJ_RETURN_NOT_OK(
        DecodeChunk(static_cast<BlockEncoding>(enc), &cr, meta.num_rows, &cells));
    MDJ_RETURN_NOT_OK(out.AddColumn(schema_.field(c), std::move(cells)));
  }
  return out;
}

bool ZoneCouldMatch(const ZoneMapPredicate& pred, const ColumnZoneMap& zone) {
  // Each payload class present in the block is tested against what the
  // predicate admits for that class; the block survives if any class might
  // hold a qualifying cell. Missing classes (count 0) cannot save a block,
  // which is exactly the sharpening per-class counts buy over the bare
  // min/max/has_null triple.
  if (pred.allow_null && zone.null_count > 0) return true;
  if (pred.allow_all && zone.all_count > 0) return true;
  if (pred.allow_nan && zone.nan_count > 0) return true;
  if (zone.has_numeric()) {
    // Delegate the interval logic to the official predicate with the
    // non-numeric escape hatches cleared — the zone counts above already
    // handled those classes exactly.
    ZoneMapPredicate numeric_only = pred;
    numeric_only.allow_null = false;
    numeric_only.allow_non_numeric = false;
    numeric_only.allow_nan = false;
    if (numeric_only.CouldMatch(zone.num_min, zone.num_max,
                                /*block_has_null=*/false)) {
      return true;
    }
  }
  if (zone.string_count > 0 && pred.allow_string &&
      pred.CouldMatchString(zone.str_min, zone.str_max)) {
    return true;
  }
  return false;
}

}  // namespace mdjoin
