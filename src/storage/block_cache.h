#ifndef MDJOIN_STORAGE_BLOCK_CACHE_H_
#define MDJOIN_STORAGE_BLOCK_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "table/table.h"

namespace mdjoin {

class BlockCache;

/// RAII handle on a decoded block. While any pin on a cache entry is live the
/// entry cannot be evicted; dropping the last pin returns it to the LRU tail.
/// A pin may also be *ephemeral* — owning a block that never entered the cache
/// (budget exhausted or no cache configured) — in which case the block is
/// freed with the pin. Either way, `table()` is valid for the pin's lifetime.
class BlockPin {
 public:
  BlockPin() = default;
  BlockPin(BlockPin&& other) noexcept;
  BlockPin& operator=(BlockPin&& other) noexcept;
  BlockPin(const BlockPin&) = delete;
  BlockPin& operator=(const BlockPin&) = delete;
  ~BlockPin();

  bool valid() const { return table_ != nullptr; }
  const Table& table() const { return *table_; }

  /// Drops the pin early (idempotent).
  void Release();

 private:
  friend class BlockCache;
  friend class PagedTable;  // builds ephemeral pins for cache-less faults

  std::shared_ptr<const Table> table_;
  BlockCache* cache_ = nullptr;      // null for ephemeral pins
  std::shared_ptr<void> entry_;      // opaque BlockCache::Entry
};

/// Fixed-budget LRU cache of decoded blocks, shared across queries (and, in
/// server mode, across sessions), in the spirit of WiredTiger's block_cache +
/// evict split. Keys are (file_id, block); file ids come from NewFileId() so
/// distinct open tables never collide even across reopens of the same path.
///
/// Byte accounting: each resident entry is charged `charge_bytes` (the
/// decoded-size estimate) against (a) this cache's capacity and (b) the
/// optional external pool via the charge/release callbacks — the
/// AdmissionController's memory pool in server mode. Callbacks are always
/// invoked WITHOUT the cache mutex held, so a charge callback may itself call
/// back into EvictBytes (the admission reclaimer does) without deadlocking.
///
/// If the external pool refuses the charge even after eviction, the load
/// still succeeds but the block bypasses the cache: the caller gets an
/// ephemeral pin and the bytes stay attributed to the query's own guard
/// reservation only. Queries degrade to streaming, they don't fail.
///
/// Loads are single-flighted: concurrent faults of the same block wait for
/// the first loader. A failed load wakes waiters, who retry (and typically
/// become the next loader) — the failure Status goes to the initiating
/// caller only.
class BlockCache {
 public:
  struct Options {
    /// Decoded-bytes budget. The default (-1) resolves to 64 MiB, or to
    /// $MDJOIN_BLOCK_CACHE_BYTES when that is set — the CI low-memory job
    /// starves every default-sized cache through the environment without
    /// touching caches whose owner chose an explicit size.
    int64_t capacity_bytes = -1;
    /// External byte-pool hooks (e.g. AdmissionController). `charge` returns
    /// false to refuse; `release` returns bytes previously charged. Both may
    /// be empty. Never invoked with the cache mutex held.
    std::function<bool(int64_t)> charge;
    std::function<void(int64_t)> release;
  };

  struct StatsSnapshot {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t ephemeral_loads = 0;
    int64_t resident_bytes = 0;
  };

  using Loader = std::function<Result<Table>()>;

  explicit BlockCache(Options options);
  ~BlockCache();  // evicts everything resident, releasing external charges

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns a pin on the decoded block, running `loader` on a miss.
  /// `was_hit`, when non-null, reports whether the block was already resident
  /// (single-flight waiters count as hits: they never ran a loader).
  /// Capacity is a target, not a hard wall: concurrent in-flight loads and a
  /// pinned working set larger than the budget may transiently overshoot.
  Result<BlockPin> GetOrLoad(uint64_t file_id, int block, int64_t charge_bytes,
                             const Loader& loader, bool* was_hit = nullptr);

  /// Evicts cold (unpinned) entries until at least `target_bytes` are freed
  /// or nothing evictable remains; returns bytes actually freed. Safe to call
  /// from external reclaimers (admission pressure, result-cache interplay).
  int64_t EvictBytes(int64_t target_bytes);

  int64_t resident_bytes() const;
  int64_t capacity_bytes() const { return options_.capacity_bytes; }
  StatsSnapshot stats() const;

  /// Process-unique id for keying one open paged table.
  static uint64_t NewFileId();

 private:
  friend class BlockPin;

  struct Key {
    uint64_t file_id;
    int block;
    bool operator==(const Key& o) const {
      return file_id == o.file_id && block == o.block;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.file_id * 1000003ULL +
                                   static_cast<uint64_t>(k.block));
    }
  };
  struct Entry;

  void Unpin(const std::shared_ptr<void>& opaque_entry);
  /// Pops cold entries until `target` bytes collected; appends each entry's
  /// charge to `freed` so the caller can run release callbacks unlocked.
  int64_t EvictLocked(int64_t target, std::vector<int64_t>* freed)
      MDJ_REQUIRES(mu_);

  Options options_;
  mutable Mutex mu_;
  CondVar load_cv_;
  std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash> map_
      MDJ_GUARDED_BY(mu_);
  /// Unpinned resident entries, coldest at the front. Pinned or loading
  /// entries live only in map_.
  std::list<std::shared_ptr<Entry>> lru_ MDJ_GUARDED_BY(mu_);
  int64_t resident_bytes_ MDJ_GUARDED_BY(mu_) = 0;
  int64_t hits_ MDJ_GUARDED_BY(mu_) = 0;
  int64_t misses_ MDJ_GUARDED_BY(mu_) = 0;
  int64_t evictions_ MDJ_GUARDED_BY(mu_) = 0;
  int64_t ephemeral_loads_ MDJ_GUARDED_BY(mu_) = 0;
};

}  // namespace mdjoin

#endif  // MDJOIN_STORAGE_BLOCK_CACHE_H_
