#include "storage/out_of_core.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <numeric>
#include <optional>
#include <utility>

#include "analyze/range_analysis.h"
#include "core/detail_scan.h"
#include "expr/conjuncts.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/plan.h"
#include "parallel/thread_pool.h"
#include "storage/block_cache.h"
#include "storage/spill.h"

namespace mdjoin {

namespace {

Counter* BlocksReadCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_blocks_read_total",
      "storage blocks served to paged scans (faults + cache hits)");
  return c;
}

Counter* BlocksPrunedCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_blocks_pruned_total",
      "storage blocks refuted by zone maps and never decoded");
  return c;
}

Counter* BlocksFaultedCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_blocks_faulted_total",
      "storage block loads that ran the decoder (cache miss or no cache)");
  return c;
}

/// Touches every instrument of the storage family so a metrics dump of any
/// paged run carries the complete catalog, idle spill/cache counters included
/// (validate_obs.py --expect-storage requires each name). The registry dedups
/// by name, so instruments already registered by their owning module (block
/// cache, spill writer) are returned, not duplicated.
void RegisterStorageMetrics() {
  BlocksReadCounter();
  BlocksPrunedCounter();
  BlocksFaultedCounter();
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetGauge("mdjoin_block_cache_bytes",
                    "decoded bytes resident in the block cache (all caches summed)");
  registry.GetCounter("mdjoin_block_cache_hit_total",
                      "block-cache lookups served resident");
  registry.GetCounter("mdjoin_block_cache_miss_total",
                      "block-cache lookups that ran a loader");
  registry.GetCounter("mdjoin_block_cache_evictions_total",
                      "blocks evicted from the cache");
  registry.GetCounter("mdjoin_spill_bytes_total",
                      "bytes written to spill partition files");
  registry.GetCounter("mdjoin_spill_partitions_total",
                      "spill partition pairs written and joined");
}

/// Folds a nested paged join's counters (the spill broadcast group) into the
/// spill driver's stats — scan counters plus the paged-only block counters.
void FoldPagedStats(const MdJoinStats& from, MdJoinStats* to) {
  AccumulateScanStats(from, to);
  to->passes_over_detail += from.passes_over_detail;
  to->index_masks += from.index_masks;
  if (from.memory_degraded) to->memory_degraded = true;
  to->blocks_read += from.blocks_read;
  to->blocks_pruned += from.blocks_pruned;
  to->blocks_faulted += from.blocks_faulted;
  to->block_cache_hits += from.block_cache_hits;
}

/// The paged spill arm: B routes exactly as the in-memory spill driver, R
/// streams into the partition writers one decoded block at a time — with
/// zone-refuted blocks skipped outright, sound because a refuted block holds
/// no θ-matching row and partition joins re-check the full θ anyway.
Result<Table> PagedSpillMdJoin(const Table& base, const PagedTable& detail,
                               const std::vector<AggSpec>& aggs,
                               const ExprPtr& theta, const MdJoinOptions& options,
                               MdJoinStats* stats) {
  MdJoinOptions no_spill = options;
  no_spill.enable_spill = false;
  no_spill.spill_partitions = 0;

  ThetaParts parts = AnalyzeTheta(theta);
  if (parts.equi.empty() || base.num_rows() == 0) {
    // Nothing to partition on: the paged driver's multi-pass degradation is
    // the remaining memory escape.
    return PagedMdJoin(base, detail, aggs, theta, no_spill, stats);
  }

  std::vector<bool> keep = PlanBlockPruning(detail, theta);
  BlockCache* cache = options.block_cache;
  QueryGuard* guard = options.guard;

  SpillDetailSource source;
  source.schema = &detail.schema();
  source.for_each_chunk =
      [&](const std::function<Status(const Table&)>& fn) -> Status {
    for (int b = 0; b < detail.num_blocks(); ++b) {
      if (!keep[static_cast<size_t>(b)]) {
        ++stats->blocks_pruned;
        BlocksPrunedCounter()->Increment(1);
        continue;
      }
      bool hit = false;
      MDJ_ASSIGN_OR_RETURN(BlockPin pin, detail.Fault(b, cache, &hit));
      ++stats->blocks_read;
      BlocksReadCounter()->Increment(1);
      if (hit) {
        ++stats->block_cache_hits;
      } else {
        ++stats->blocks_faulted;
        BlocksFaultedCounter()->Increment(1);
      }
      // An uncached decode is this query's own transient memory; cached
      // residency is accounted by the cache's charge hooks instead.
      ScopedReservation resident;
      if (cache == nullptr) {
        MDJ_RETURN_NOT_OK(
            resident.Reserve(guard, detail.ApproxBlockBytes(b), "decoded block"));
      }
      MDJ_RETURN_NOT_OK(fn(pin.table()));
    }
    return Status::OK();
  };
  source.join_broadcast = [&](const Table& broadcast_base,
                              MdJoinStats* s) -> Result<Table> {
    MdJoinStats bs;
    MDJ_ASSIGN_OR_RETURN(
        Table res, PagedMdJoin(broadcast_base, detail, aggs, theta, no_spill, &bs));
    FoldPagedStats(bs, s);
    return res;
  };
  return SpillMdJoinStream(base, source, aggs, theta, options, stats);
}

}  // namespace

Status RegisterPagedTable(Catalog* catalog, std::string name,
                          const PagedTable& table) {
  return catalog->RegisterPaged(std::move(name), &table, table.schema(),
                                table.num_rows());
}

std::vector<bool> PlanBlockPruning(const PagedTable& detail, const ExprPtr& theta) {
  const int nblocks = detail.num_blocks();
  std::vector<bool> keep(static_cast<size_t>(nblocks), true);
  RangeAnalysis ra = AnalyzeRanges(theta);
  if (!ra.satisfiable) {
    keep.assign(keep.size(), false);
    return keep;
  }
  // Resolve predicate columns once; a predicate naming no stored column (a
  // computed detail expression) cannot prune.
  std::vector<std::pair<int, const ZoneMapPredicate*>> preds;
  for (const ZoneMapPredicate& zp : ra.zone_predicates) {
    std::optional<int> c = detail.schema().FindField(zp.column);
    if (c.has_value()) preds.emplace_back(*c, &zp);
  }
  if (preds.empty()) return keep;
  for (int b = 0; b < nblocks; ++b) {
    const BlockMeta& meta = detail.block_meta(b);
    for (const auto& [col, zp] : preds) {
      if (!ZoneCouldMatch(*zp, meta.zones[static_cast<size_t>(col)])) {
        keep[static_cast<size_t>(b)] = false;
        break;
      }
    }
  }
  return keep;
}

Result<Table> PagedMdJoin(const Table& base, const PagedTable& detail,
                          const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                          const MdJoinOptions& options, MdJoinStats* stats) {
  if (theta == nullptr) {
    return Status::InvalidArgument("PagedMdJoin: θ-condition must not be null");
  }
  MdJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = MdJoinStats{};
  stats->base_rows = base.num_rows();
  RegisterStorageMetrics();

  if (options.enable_spill) {
    return PagedSpillMdJoin(base, detail, aggs, theta, options, stats);
  }

  Span span("paged_mdjoin", "storage");
  QueryGuard* guard = options.guard;
  if (guard != nullptr) MDJ_RETURN_NOT_OK(guard->Check());

  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                       BindAggs(aggs, &base.schema(), &detail.schema()));
  ThetaParts parts = AnalyzeTheta(theta);

  // θ compiles against a zero-row stub carrying the detail schema: every
  // chunk the scan sees is a decoded block, foreign to the prepared table, so
  // the typed-mirror machinery (which hoists pointers into the prepared
  // table's storage) must stay off. The stub outlives every scan below.
  MdJoinOptions eff = options;
  eff.use_flat_columns = false;
  const bool vectorized = eff.execution_mode != ExecutionMode::kRow;
  Table stub{detail.schema()};
  MDJ_ASSIGN_OR_RETURN(CompiledTheta ct,
                       CompileTheta(parts, base.schema(), stub, eff, vectorized));

  // The pruning plan is pass-independent: compute keep[] once, walk only the
  // survivors every pass.
  std::vector<bool> keep = PlanBlockPruning(detail, theta);
  std::vector<int> kept;
  kept.reserve(keep.size());
  for (int b = 0; b < detail.num_blocks(); ++b) {
    if (keep[static_cast<size_t>(b)]) kept.push_back(b);
  }
  const int64_t pruned_per_pass =
      static_cast<int64_t>(detail.num_blocks()) - static_cast<int64_t>(kept.size());

  ScopedReservation state_bytes;
  MDJ_RETURN_NOT_OK(state_bytes.Reserve(
      guard,
      static_cast<int64_t>(bound.size()) * base.num_rows() * kGuardBytesPerAggState,
      "aggregate states"));

  // Theorem 4.1 staging and guard degradation, exactly as the in-memory
  // driver: more passes over the (pruned) block list instead of more memory.
  int64_t budget =
      options.base_rows_per_pass > 0 ? options.base_rows_per_pass : base.num_rows();
  if (guard != nullptr && guard->has_memory_budget() && ct.indexed &&
      base.num_rows() > 0) {
    const int64_t fit = guard->remaining_soft_bytes() / kGuardBytesPerIndexedBaseRow;
    if (fit < budget) {
      budget = std::max<int64_t>(1, fit);
      stats->memory_degraded = true;
    }
  }
  stats->base_rows_per_pass_effective = budget;

  // Short-circuit when no block can contribute: everything pruned (or the
  // file is empty), or θ constant-folds non-truthy. Outer semantics still
  // emit every base row with identity aggregates.
  ExprPtr folded_theta = FoldConstants(theta);
  const bool provably_empty =
      kept.empty() ||
      (folded_theta != nullptr && folded_theta->kind() == ExprKind::kLiteral &&
       !folded_theta->literal().IsTruthy());

  int workers = 1;
  if (!provably_empty && options.num_threads > 1) {
    workers = static_cast<int>(std::max<int64_t>(
        1, std::min<int64_t>(options.num_threads,
                             static_cast<int64_t>(kept.size()))));
  }
  // Parallel workers need a guard for the error short-circuit even when the
  // caller supplied none.
  QueryGuard fallback_guard;
  if (workers > 1 && guard == nullptr) {
    guard = &fallback_guard;
    eff.guard = guard;
  }
  ScopedReservation partials_bytes;
  if (workers > 1) {
    MDJ_RETURN_NOT_OK(partials_bytes.Reserve(
        guard,
        static_cast<int64_t>(workers - 1) * static_cast<int64_t>(bound.size()) *
            base.num_rows() * kGuardBytesPerAggState,
        "parallel worker partials"));
  }

  struct Slot {
    std::unique_ptr<DetailScanWorker> worker;
    Status status;
    int64_t blocks_read = 0;
    int64_t blocks_faulted = 0;
    int64_t cache_hits = 0;
  };
  std::vector<Slot> slots(static_cast<size_t>(workers));
  BlockCache* cache = options.block_cache;

  // One worker's share of a pass: pull block indices from the shared cursor,
  // fault each survivor, scan the decoded chunk into thread-local partials.
  auto scan_blocks = [&](Slot* slot, const DetailScan& scan,
                         std::atomic<size_t>* cursor) -> Status {
    if (slot->worker == nullptr) {
      slot->worker =
          std::make_unique<DetailScanWorker>(base, bound, vectorized, guard);
    }
    slot->worker->BeginJob();
    for (;;) {
      const size_t i = cursor->fetch_add(1, std::memory_order_relaxed);
      if (i >= kept.size()) break;
      const int b = kept[i];
      Span block_span("paged_block", "storage");
      block_span.SetArg("block", static_cast<int64_t>(b));
      bool hit = false;
      MDJ_ASSIGN_OR_RETURN(BlockPin pin, detail.Fault(b, cache, &hit));
      ++slot->blocks_read;
      if (hit) {
        ++slot->cache_hits;
      } else {
        ++slot->blocks_faulted;
      }
      // An uncached decode is this query's own transient memory for the
      // duration of the scan; cached residency is the cache's charge to make.
      ScopedReservation resident;
      if (cache == nullptr) {
        MDJ_RETURN_NOT_OK(
            resident.Reserve(guard, detail.ApproxBlockBytes(b), "decoded block"));
      }
      MDJ_RETURN_NOT_OK(scan.ScanChunk(pin.table(), 0, pin.table().num_rows(),
                                       slot->worker.get()));
    }
    return slot->worker->FinishScan();
  };

  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);

  Status run = [&]() -> Status {
    if (provably_empty) {
      stats->blocks_pruned += detail.num_blocks();
      return Status::OK();
    }
    std::vector<int64_t> all_rows(static_cast<size_t>(base.num_rows()));
    std::iota(all_rows.begin(), all_rows.end(), 0);
    for (int64_t start = 0; start < base.num_rows(); start += budget) {
      Span pass_span("paged_mdjoin.pass", "storage");
      pass_span.SetArg("pass", stats->passes_over_detail);
      const int64_t end = std::min(start + budget, base.num_rows());
      std::vector<int64_t> pass_rows(all_rows.begin() + start,
                                     all_rows.begin() + end);
      ++stats->passes_over_detail;
      stats->blocks_pruned += pruned_per_pass;
      MDJ_ASSIGN_OR_RETURN(
          DetailScan scan,
          DetailScan::Prepare(base, stub, bound, parts, &ct, std::move(pass_rows),
                              eff));
      stats->index_masks += scan.index_masks();
      pass_span.SetArg("base_rows", end - start);
      std::atomic<size_t> cursor{0};
      if (workers == 1) {
        MDJ_RETURN_NOT_OK(scan_blocks(&slots[0], scan, &cursor));
      } else {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(slots.size());
        for (size_t w = 0; w < slots.size(); ++w) {
          tasks.push_back([&, w] {
            Slot& slot = slots[w];
            Tracing::SetThreadName("paged mdjoin worker");
            slot.status = scan_blocks(&slot, scan, &cursor);
            if (!slot.status.ok()) guard->Trip(slot.status);
          });
        }
        pool->SubmitBatch(std::move(tasks));
        pool->Wait();
        if (guard->tripped()) return guard->TripStatus();
        for (const Slot& slot : slots) {
          MDJ_RETURN_NOT_OK(slot.status);
        }
      }
    }
    return Status::OK();
  }();

  // Fold worker-local counters before the error exit, so cancelled queries
  // report how far they got.
  for (const Slot& slot : slots) {
    if (slot.worker != nullptr) AccumulateScanStats(slot.worker->stats, stats);
    stats->blocks_read += slot.blocks_read;
    stats->blocks_faulted += slot.blocks_faulted;
    stats->block_cache_hits += slot.cache_hits;
  }
  BlocksReadCounter()->Increment(stats->blocks_read);
  BlocksPrunedCounter()->Increment(stats->blocks_pruned);
  BlocksFaultedCounter()->Increment(stats->blocks_faulted);
  MDJ_RETURN_NOT_OK(run);

  // Merge thread-local partials into slot 0 (identity when sequential). The
  // short-circuit paths never made a worker: create one so finalization has
  // the pre-allocated identity states.
  if (slots[0].worker == nullptr) {
    slots[0].worker =
        std::make_unique<DetailScanWorker>(base, bound, vectorized, guard);
  }
  for (size_t w = 1; w < slots.size(); ++w) {
    if (slots[w].worker == nullptr) continue;
    MDJ_RETURN_NOT_OK(
        MergeWorkerPartials(slots[0].worker.get(), *slots[w].worker, guard));
  }
  const DetailScanWorker& merged = *slots[0].worker;

  std::vector<Field> fields = base.schema().fields();
  for (const BoundAgg& b : bound) fields.push_back(b.output_field);
  ScopedReservation output_bytes;
  MDJ_RETURN_NOT_OK(output_bytes.Reserve(
      guard,
      base.num_rows() * static_cast<int64_t>(fields.size()) * kGuardBytesPerOutputCell,
      "materialized output"));
  Table out{Schema(std::move(fields))};
  out.Reserve(base.num_rows());
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    std::vector<Value> row = base.GetRow(r);
    for (size_t i = 0; i < bound.size(); ++i) {
      row.push_back(merged.FinalizeCell(i, r));
    }
    out.AppendRowUnchecked(std::move(row));
  }
  span.SetArg("blocks_read", stats->blocks_read);
  span.SetArg("blocks_pruned", stats->blocks_pruned);
  return out;
}

}  // namespace mdjoin
