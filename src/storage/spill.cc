#include "storage/spill.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <limits>
#include <utility>

#include "common/failpoint.h"
#include "common/hash_util.h"
#include "common/string_util.h"
#include "core/detail_scan.h"
#include "expr/compile.h"
#include "expr/conjuncts.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_mdjoin.h"
#include "storage/block_format.h"

namespace mdjoin {

namespace {

constexpr char kSpillMagic[4] = {'M', 'D', 'J', 'S'};
constexpr size_t kSpillBufBytes = 1 << 20;

Counter* SpillBytesCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_spill_bytes_total", "bytes written to spill partition files");
  return c;
}

Counter* SpillPartitionsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_spill_partitions_total",
      "spill partition pairs written and joined");
  return c;
}

/// Per-writer buffer size for a spill with 2P writers open at once: each
/// takes a 1/(4P) share of the guard's byte headroom (soft budget or hard
/// limit, whichever binds first), so all buffers together claim at most half
/// of it and decoded blocks / the partition read-back keep room. Unbudgeted
/// guards get the full default. The 4 KiB floor keeps flushes sensibly
/// batched; a budget too tight even for that fails at Reserve(), which is
/// the honest answer.
int64_t SpillWriterBufBytes(const QueryGuard* guard, int num_partitions) {
  if (guard == nullptr) return static_cast<int64_t>(kSpillBufBytes);
  int64_t headroom = guard->remaining_soft_bytes();
  const int64_t hard = guard->options().memory_hard_limit_bytes;
  if (hard > 0) {
    headroom =
        std::min(headroom, std::max<int64_t>(hard - guard->bytes_reserved(), 0));
  }
  if (headroom == std::numeric_limits<int64_t>::max()) {
    return static_cast<int64_t>(kSpillBufBytes);
  }
  const int64_t share = headroom / (4 * std::max(num_partitions, 1));
  return std::clamp<int64_t>(share, int64_t{4} << 10,
                             static_cast<int64_t>(kSpillBufBytes));
}

/// Removes the listed files on scope exit, errors ignored — cleanup of a
/// failed query must not mask the query's own status.
struct SpillFileJanitor {
  std::vector<std::string> paths;
  ~SpillFileJanitor() {
    for (const std::string& p : paths) {
      std::error_code ec;
      std::filesystem::remove(p, ec);
    }
  }
};

}  // namespace

std::string MakeSpillPath(const std::string& dir, const std::string& tag) {
  static std::atomic<uint64_t> seq{0};
  std::string base = dir;
  if (base.empty()) base = std::filesystem::temp_directory_path().string();
  return StrCat(base, "/mdjoin-spill-", static_cast<int64_t>(getpid()), "-",
                static_cast<int64_t>(seq.fetch_add(1)), "-", tag, ".spl");
}

int ChooseSpillPartitions(const MdJoinOptions& options, int64_t base_rows,
                          int64_t num_aggs) {
  if (options.spill_partitions > 0) return options.spill_partitions;
  int64_t p = 4;
  if (options.guard != nullptr && options.guard->has_memory_budget()) {
    const int64_t state_bytes =
        base_rows * std::max<int64_t>(num_aggs, 1) * kGuardBytesPerAggState;
    const int64_t headroom =
        std::max<int64_t>(options.guard->remaining_soft_bytes(), 1);
    p = (state_bytes + headroom - 1) / headroom;
  }
  return static_cast<int>(std::min<int64_t>(64, std::max<int64_t>(2, p)));
}

// ---------------------------------------------------------------------------
// SpillWriter / ReadSpillFile
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SpillWriter>> SpillWriter::Create(std::string path,
                                                         int num_columns,
                                                         QueryGuard* guard,
                                                         int64_t buf_bytes) {
  auto w = std::unique_ptr<SpillWriter>(new SpillWriter());
  w->path_ = std::move(path);
  w->buf_limit_ =
      buf_bytes > 0 ? static_cast<size_t>(buf_bytes) : kSpillBufBytes;
  w->out_.open(w->path_, std::ios::binary | std::ios::trunc);
  if (!w->out_) {
    return Status::Internal("cannot open spill file for writing: ", w->path_);
  }
  MDJ_RETURN_NOT_OK(w->buf_bytes_.Reserve(
      guard, static_cast<int64_t>(w->buf_limit_), "spill write buffer"));
  w->buf_.append(kSpillMagic, sizeof(kSpillMagic));
  const uint32_t ncols = static_cast<uint32_t>(num_columns);
  w->buf_.append(reinterpret_cast<const char*>(&ncols), sizeof(ncols));
  return w;
}

Status SpillWriter::Flush() {
  if (buf_.empty()) return Status::OK();
  const bool fault = MDJ_FAILPOINT("storage:spill_write");
  if (!fault) {
    out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  }
  if (fault || !out_) {
    return Status::Internal(
        "spill write failed: ", path_,
        fault ? " (failpoint storage:spill_write)" : "");
  }
  bytes_ += static_cast<int64_t>(buf_.size());
  SpillBytesCounter()->Increment(static_cast<int64_t>(buf_.size()));
  buf_.clear();
  return Status::OK();
}

Status SpillWriter::AppendRow(const Table& src, int64_t row) {
  const int ncols = src.num_columns();
  for (int c = 0; c < ncols; ++c) {
    AppendTaggedValue(&buf_, src.column(c)[static_cast<size_t>(row)]);
  }
  ++rows_;
  if (buf_.size() >= buf_limit_) return Flush();
  return Status::OK();
}

Status SpillWriter::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  MDJ_RETURN_NOT_OK(Flush());
  out_.flush();
  out_.close();
  buf_bytes_.Release();
  if (out_.fail()) return Status::Internal("spill flush failed: ", path_);
  return Status::OK();
}

Result<Table> ReadSpillFile(const std::string& path, const Schema& schema,
                            QueryGuard* guard) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Internal("cannot open spill file: ", path);
  in.seekg(0, std::ios::end);
  const int64_t size = static_cast<int64_t>(in.tellg());
  in.seekg(0);

  ScopedReservation io_bytes;
  MDJ_RETURN_NOT_OK(io_bytes.Reserve(guard, size, "spill partition read"));
  std::string data(static_cast<size_t>(size), '\0');
  in.read(data.data(), static_cast<std::streamsize>(size));
  if (!in) return Status::Internal("spill read failed: ", path);

  const int ncols = schema.num_fields();
  if (size < 8 || std::memcmp(data.data(), kSpillMagic, 4) != 0) {
    return Status::Internal("spill file corrupt: ", path, " bad magic");
  }
  uint32_t file_cols = 0;
  std::memcpy(&file_cols, data.data() + 4, sizeof(file_cols));
  if (file_cols != static_cast<uint32_t>(ncols)) {
    return Status::Internal("spill file corrupt: ", path, " has ", file_cols,
                            " columns, schema expects ", ncols);
  }

  std::vector<std::vector<Value>> cols(static_cast<size_t>(ncols));
  size_t pos = 8;
  int64_t rows = 0;
  while (pos < data.size()) {
    for (int c = 0; c < ncols; ++c) {
      Value v;
      if (!ParseTaggedValue(data.data(), data.size(), &pos, &v)) {
        return Status::Internal("spill file corrupt: ", path,
                                " truncated at row ", rows);
      }
      cols[static_cast<size_t>(c)].push_back(std::move(v));
    }
    if ((++rows & 0xfff) == 0 && guard != nullptr) {
      MDJ_RETURN_NOT_OK(guard->Check());
    }
  }
  Table out;
  for (int c = 0; c < ncols; ++c) {
    MDJ_RETURN_NOT_OK(
        out.AddColumn(schema.field(c), std::move(cols[static_cast<size_t>(c)])));
  }
  return out;
}

// ---------------------------------------------------------------------------
// SpillMdJoin
// ---------------------------------------------------------------------------

namespace {

/// Fold a sequential partition join's counters into the spill driver's.
void FoldStats(const MdJoinStats& from, MdJoinStats* to) {
  AccumulateScanStats(from, to);
  to->passes_over_detail += from.passes_over_detail;
  to->index_masks += from.index_masks;
  if (from.memory_degraded) to->memory_degraded = true;
}

void FoldParallelStats(const ParallelMdJoinStats& from, MdJoinStats* to) {
  to->detail_rows_scanned += from.total_detail_rows_scanned;
  to->detail_rows_qualified += from.detail_rows_qualified;
  to->candidate_pairs += from.candidate_pairs;
  to->matched_pairs += from.matched_pairs;
  to->blocks += from.blocks;
  to->kernel_invocations += from.kernel_invocations;
  to->index_probe_lookups += from.index_probe_lookups;
  to->index_probe_memo_hits += from.index_probe_memo_hits;
  ++to->passes_over_detail;
}

Result<Table> JoinPartition(const Table& b, const Table& r,
                            const std::vector<AggSpec>& aggs,
                            const ExprPtr& theta, const MdJoinOptions& options,
                            MdJoinStats* stats) {
  if (options.num_threads > 1) {
    ParallelMdJoinStats pstats;
    MDJ_ASSIGN_OR_RETURN(
        Table res, ParallelMdJoinDetailSplit(b, r, aggs, theta,
                                             options.num_threads,
                                             options.num_threads, options,
                                             &pstats));
    FoldParallelStats(pstats, stats);
    return res;
  }
  MdJoinStats jstats;
  MDJ_ASSIGN_OR_RETURN(Table res, MdJoin(b, r, aggs, theta, options, &jstats));
  FoldStats(jstats, stats);
  return res;
}

}  // namespace

Result<Table> SpillMdJoin(const Table& base, const Table& detail,
                          const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                          const MdJoinOptions& options, MdJoinStats* stats) {
  MdJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  MdJoinOptions part_options = options;
  part_options.enable_spill = false;
  part_options.spill_partitions = 0;

  ThetaParts parts = AnalyzeTheta(theta);
  if (parts.equi.empty() || base.num_rows() == 0) {
    // Nothing to partition on: Theorem-4.1 multi-pass (guard degradation
    // inside MdJoin) is the only memory escape.
    return JoinPartition(base, detail, aggs, theta, part_options, stats);
  }

  SpillDetailSource source;
  source.schema = &detail.schema();
  source.for_each_chunk =
      [&detail](const std::function<Status(const Table&)>& fn) -> Status {
    return fn(detail);
  };
  source.join_broadcast = [&](const Table& broadcast_base,
                              MdJoinStats* s) -> Result<Table> {
    return JoinPartition(broadcast_base, detail, aggs, theta, part_options, s);
  };
  return SpillMdJoinStream(base, source, aggs, theta, options, stats);
}

Result<Table> SpillMdJoinStream(const Table& base, const SpillDetailSource& source,
                                const std::vector<AggSpec>& aggs,
                                const ExprPtr& theta, const MdJoinOptions& options,
                                MdJoinStats* stats) {
  Span span("spill_mdjoin", "storage");
  MdJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  QueryGuard* guard = options.guard;

  MdJoinOptions part_options = options;
  part_options.enable_spill = false;
  part_options.spill_partitions = 0;

  ThetaParts parts = AnalyzeTheta(theta);
  if (parts.equi.empty()) {
    return Status::InvalidArgument(
        "SpillMdJoinStream: θ carries no equi conjunct to partition on");
  }

  // Compile each equi key's side expression standalone: by construction the
  // base_expr reads only B columns, the detail_expr only R columns.
  std::vector<CompiledExpr> base_keys, detail_keys;
  for (const EquiPair& pair : parts.equi) {
    MDJ_ASSIGN_OR_RETURN(CompiledExpr bk,
                         CompileExpr(pair.base_expr, &base.schema(), nullptr));
    MDJ_ASSIGN_OR_RETURN(CompiledExpr dk,
                         CompileExpr(pair.detail_expr, nullptr, source.schema));
    base_keys.push_back(std::move(bk));
    detail_keys.push_back(std::move(dk));
  }

  const int P = ChooseSpillPartitions(options, base.num_rows(),
                                      static_cast<int64_t>(aggs.size()));
  stats->spill_partitions = P;
  SpillPartitionsCounter()->Increment(P);

  // Route base rows. NULL-key rows match nothing anywhere, so any partition
  // returns them with identity aggregates; partition 0 is as good as any.
  std::vector<std::vector<int64_t>> groups(static_cast<size_t>(P));
  std::vector<int64_t> broadcast;  // ALL-key rows: match across partitions
  {
    RowCtx ctx;
    ctx.base = &base;
    GuardTicket ticket(guard, /*count_rows=*/false);
    for (int64_t r = 0; r < base.num_rows(); ++r) {
      ctx.base_row = r;
      size_t h = 0;
      bool has_null = false, has_all = false;
      for (const CompiledExpr& k : base_keys) {
        const Value v = k.Eval(ctx);
        if (v.is_null()) has_null = true;
        if (v.is_all()) has_all = true;
        HashCombine(&h, v.Hash());
      }
      if (has_null) {
        groups[0].push_back(r);
      } else if (has_all) {
        broadcast.push_back(r);
      } else {
        groups[h % static_cast<size_t>(P)].push_back(r);
      }
      MDJ_RETURN_NOT_OK(ticket.Tick());
    }
    MDJ_RETURN_NOT_OK(ticket.Finish());
  }

  // Spill both relations. Partition files keep original row order, which is
  // what makes per-base-row accumulation order — and so float sums — match
  // the in-memory scan exactly.
  SpillFileJanitor janitor;
  std::vector<std::string> b_paths(static_cast<size_t>(P)),
      r_paths(static_cast<size_t>(P));
  {
    const int64_t writer_buf = SpillWriterBufBytes(guard, P);
    std::vector<std::unique_ptr<SpillWriter>> b_writers, r_writers;
    for (int i = 0; i < P; ++i) {
      b_paths[static_cast<size_t>(i)] =
          MakeSpillPath(options.spill_dir, StrCat("b", i));
      r_paths[static_cast<size_t>(i)] =
          MakeSpillPath(options.spill_dir, StrCat("r", i));
      janitor.paths.push_back(b_paths[static_cast<size_t>(i)]);
      janitor.paths.push_back(r_paths[static_cast<size_t>(i)]);
      MDJ_ASSIGN_OR_RETURN(std::unique_ptr<SpillWriter> bw,
                           SpillWriter::Create(b_paths[static_cast<size_t>(i)],
                                               base.num_columns(), guard,
                                               writer_buf));
      MDJ_ASSIGN_OR_RETURN(std::unique_ptr<SpillWriter> rw,
                           SpillWriter::Create(r_paths[static_cast<size_t>(i)],
                                               source.schema->num_fields(), guard,
                                               writer_buf));
      b_writers.push_back(std::move(bw));
      r_writers.push_back(std::move(rw));
    }

    for (int i = 0; i < P; ++i) {
      for (int64_t r : groups[static_cast<size_t>(i)]) {
        MDJ_RETURN_NOT_OK(b_writers[static_cast<size_t>(i)]->AppendRow(base, r));
      }
    }

    MDJ_RETURN_NOT_OK(source.for_each_chunk([&](const Table& chunk) -> Status {
      RowCtx ctx;
      ctx.detail = &chunk;
      GuardTicket ticket(guard, /*count_rows=*/false);
      for (int64_t t = 0; t < chunk.num_rows(); ++t) {
        ctx.detail_row = t;
        size_t h = 0;
        bool has_null = false, has_all = false;
        for (const CompiledExpr& k : detail_keys) {
          const Value v = k.Eval(ctx);
          if (v.is_null()) has_null = true;
          if (v.is_all()) has_all = true;
          HashCombine(&h, v.Hash());
        }
        if (has_null) {
          // θ-equality: NULL matches nothing — drop the row here and now.
        } else if (has_all) {
          for (int i = 0; i < P; ++i) {
            MDJ_RETURN_NOT_OK(
                r_writers[static_cast<size_t>(i)]->AppendRow(chunk, t));
          }
        } else {
          MDJ_RETURN_NOT_OK(
              r_writers[h % static_cast<size_t>(P)]->AppendRow(chunk, t));
        }
        MDJ_RETURN_NOT_OK(ticket.Tick());
      }
      return ticket.Finish();
    }));

    for (int i = 0; i < P; ++i) {
      MDJ_RETURN_NOT_OK(b_writers[static_cast<size_t>(i)]->Finish());
      MDJ_RETURN_NOT_OK(r_writers[static_cast<size_t>(i)]->Finish());
      stats->spill_bytes_written += b_writers[static_cast<size_t>(i)]->bytes_written() +
                                    r_writers[static_cast<size_t>(i)]->bytes_written();
    }
  }

  // One partition pair resident at a time; scatter each result back to the
  // original base order.
  const int nbase_cols = base.num_columns();
  std::vector<Field> agg_fields;
  std::vector<std::vector<Value>> agg_vals;
  auto scatter = [&](const Table& res, const std::vector<int64_t>& rows)
      -> Status {
    if (agg_fields.empty()) {
      for (int c = nbase_cols; c < res.num_columns(); ++c) {
        agg_fields.push_back(res.schema().field(c));
        agg_vals.emplace_back(static_cast<size_t>(base.num_rows()));
      }
    }
    GuardTicket ticket(guard, /*count_rows=*/false);
    for (size_t k = 0; k < rows.size(); ++k) {
      for (size_t a = 0; a < agg_fields.size(); ++a) {
        agg_vals[a][static_cast<size_t>(rows[k])] =
            res.column(nbase_cols + static_cast<int>(a))[k];
      }
      MDJ_RETURN_NOT_OK(ticket.Tick());
    }
    return ticket.Finish();
  };

  for (int i = 0; i < P; ++i) {
    if (groups[static_cast<size_t>(i)].empty()) continue;
    MDJ_ASSIGN_OR_RETURN(
        Table b_i, ReadSpillFile(b_paths[static_cast<size_t>(i)], base.schema(),
                                 guard));
    MDJ_ASSIGN_OR_RETURN(
        Table r_i, ReadSpillFile(r_paths[static_cast<size_t>(i)],
                                 *source.schema, guard));
    ScopedReservation resident;
    MDJ_RETURN_NOT_OK(resident.Reserve(guard, b_i.ApproxBytes() + r_i.ApproxBytes(),
                                       "spill partition tables"));
    MDJ_ASSIGN_OR_RETURN(Table res,
                         JoinPartition(b_i, r_i, aggs, theta, part_options, stats));
    MDJ_RETURN_NOT_OK(scatter(res, groups[static_cast<size_t>(i)]));
  }

  // Broadcast group (ALL equi keys): its rows may match detail rows of every
  // partition, so it joins against the full original detail stream.
  if (!broadcast.empty()) {
    Table b_all(base.schema());
    for (int64_t r : broadcast) b_all.AppendRowFrom(base, r);
    ScopedReservation resident;
    MDJ_RETURN_NOT_OK(
        resident.Reserve(guard, b_all.ApproxBytes(), "spill broadcast group"));
    MDJ_ASSIGN_OR_RETURN(Table res, source.join_broadcast(b_all, stats));
    MDJ_RETURN_NOT_OK(scatter(res, broadcast));
  }

  stats->base_rows = base.num_rows();

  Table out;
  for (int c = 0; c < nbase_cols; ++c) {
    std::vector<Value> col = base.column(c);
    MDJ_RETURN_NOT_OK(out.AddColumn(base.schema().field(c), std::move(col)));
  }
  for (size_t a = 0; a < agg_fields.size(); ++a) {
    MDJ_RETURN_NOT_OK(out.AddColumn(agg_fields[a], std::move(agg_vals[a])));
  }
  span.SetArg("partitions", P);
  span.SetArg("spill_bytes", stats->spill_bytes_written);
  return out;
}

}  // namespace mdjoin
