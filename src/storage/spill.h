#ifndef MDJOIN_STORAGE_SPILL_H_
#define MDJOIN_STORAGE_SPILL_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agg/agg_spec.h"
#include "common/query_guard.h"
#include "common/result.h"
#include "core/mdjoin.h"
#include "table/table.h"

namespace mdjoin {

/// Partitioned spill: the true out-of-memory escape hatch behind Theorem 4.1.
/// When the aggregate state over all of B cannot fit the guard's budget,
/// hash-partition B and R on the equi part of θ into P spill-file pairs and
/// run P small MD-joins, one partition resident at a time. Each partition
/// file holds a subsequence of its relation in original row order, so every
/// base row accumulates its matches in exactly the order the single-pass scan
/// would have used — results are bit-identical, floats included.
///
/// Routing (the part θ-equality semantics make subtle):
///  - base row with a NULL equi key matches nothing → any partition, where it
///    comes back with identity aggregates;
///  - base row with an ALL equi key matches across partitions → a broadcast
///    group joined against the full detail stream instead of one partition;
///  - detail row with a NULL equi key matches nothing → dropped;
///  - detail row with an ALL equi key may match in any partition → appended
///    to every partition file (in encounter order, preserving R-order).

/// Row-stream writer for one spill partition file: "MDJS" magic + column
/// count, then rows as tagged values (storage/block_format codec). Buffered
/// up to `buf_bytes` (default ~1 MiB; the spill driver shrinks it when many
/// writers share a tight guard budget); the buffer is charged to the guard
/// while the writer is open. The failpoint "storage:spill_write" forces the
/// next flush to fail.
class SpillWriter {
 public:
  static Result<std::unique_ptr<SpillWriter>> Create(std::string path,
                                                     int num_columns,
                                                     QueryGuard* guard,
                                                     int64_t buf_bytes = 0);

  /// Appends row `row` of `src` (which must have `num_columns` columns).
  Status AppendRow(const Table& src, int64_t row);

  /// Flushes and closes; call before reading the file back. Idempotent.
  Status Finish();

  int64_t rows_written() const { return rows_; }
  /// Encoded bytes, header included; meaningful after Finish().
  int64_t bytes_written() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  SpillWriter() = default;
  Status Flush();

  std::string path_;
  std::ofstream out_;
  std::string buf_;
  size_t buf_limit_ = 0;
  ScopedReservation buf_bytes_;
  int64_t rows_ = 0;
  int64_t bytes_ = 0;
  bool finished_ = false;
};

/// Reads a whole spill partition file back as a Table with `schema`.
Result<Table> ReadSpillFile(const std::string& path, const Schema& schema,
                            QueryGuard* guard);

/// The partitioned-spill MD-join driver. Bit-identical to MdJoin(). Requires
/// θ to carry at least one equi conjunct to partition on; without one it
/// falls back to MdJoin (whose guard degradation multi-passes instead).
/// Partition joins run through the morsel-parallel engine when
/// options.num_threads > 1. Spill files land in options.spill_dir (or the
/// system temp directory) and are removed before returning, success or not.
Result<Table> SpillMdJoin(const Table& base, const Table& detail,
                          const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                          const MdJoinOptions& options, MdJoinStats* stats);

/// Detail-relation abstraction for SpillMdJoinStream: the spill router only
/// needs the detail rows as a stream of schema-identical chunks (the whole
/// table for the in-memory driver, one decoded block at a time for the paged
/// one — which is what keeps the paged spill truly out-of-core), plus a way
/// to join the ALL-key broadcast base group against the *full* detail
/// relation, which the router cannot do chunk-wise.
struct SpillDetailSource {
  const Schema* schema = nullptr;

  /// Invokes the callback once per detail chunk, in detail-row order (chunk
  /// order × row order within each chunk is the relation's row order — the
  /// spill files inherit it, which is what makes float accumulation
  /// bit-identical to the in-memory scan).
  std::function<Status(const std::function<Status(const Table&)>&)>
      for_each_chunk;

  /// Joins `broadcast_base` (base rows whose equi key contains ALL) against
  /// the full detail relation, folding scan counters into the MdJoinStats.
  std::function<Result<Table>(const Table& broadcast_base, MdJoinStats*)>
      join_broadcast;
};

/// The routing/partition/scatter core behind SpillMdJoin, detail-agnostic.
/// θ must carry at least one equi conjunct (callers handle the fallback).
Result<Table> SpillMdJoinStream(const Table& base, const SpillDetailSource& source,
                                const std::vector<AggSpec>& aggs,
                                const ExprPtr& theta, const MdJoinOptions& options,
                                MdJoinStats* stats);

/// Fan-out used by SpillMdJoin: options.spill_partitions if set, else sized
/// so one partition's aggregate state fits the guard's soft headroom, clamped
/// to [2, 64]. Exposed for tests and the paged driver's spill arm.
int ChooseSpillPartitions(const MdJoinOptions& options, int64_t base_rows,
                          int64_t num_aggs);

/// Creates a process-unique spill file path under `dir` (or the system temp
/// directory when empty): mdjoin-spill-<pid>-<seq>-<tag>.
std::string MakeSpillPath(const std::string& dir, const std::string& tag);

}  // namespace mdjoin

#endif  // MDJOIN_STORAGE_SPILL_H_
