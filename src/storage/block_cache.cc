#include "storage/block_cache.h"

#include <atomic>
#include <cstdlib>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace mdjoin {

namespace {

Gauge* ResidentGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge(
      "mdjoin_block_cache_bytes",
      "decoded bytes resident in the block cache (all caches summed)");
  return g;
}

Counter* HitCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_block_cache_hit_total", "block-cache lookups served resident");
  return c;
}

Counter* MissCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_block_cache_miss_total", "block-cache lookups that ran a loader");
  return c;
}

Counter* EvictionCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_block_cache_evictions_total", "blocks evicted from the cache");
  return c;
}

}  // namespace

struct BlockCache::Entry {
  Key key;
  std::shared_ptr<const Table> table;  // null while loading
  int64_t bytes = 0;                   // charged on residency
  int pins = 0;
  bool loading = true;
  bool failed = false;  // load failed or bypassed; entry is off the map
  bool in_lru = false;
  std::list<std::shared_ptr<Entry>>::iterator lru_it;
};

// ---------------------------------------------------------------------------
// BlockPin
// ---------------------------------------------------------------------------

BlockPin::BlockPin(BlockPin&& other) noexcept
    : table_(std::move(other.table_)),
      cache_(other.cache_),
      entry_(std::move(other.entry_)) {
  other.cache_ = nullptr;
}

BlockPin& BlockPin::operator=(BlockPin&& other) noexcept {
  if (this != &other) {
    Release();
    table_ = std::move(other.table_);
    cache_ = other.cache_;
    entry_ = std::move(other.entry_);
    other.cache_ = nullptr;
  }
  return *this;
}

BlockPin::~BlockPin() { Release(); }

void BlockPin::Release() {
  if (cache_ != nullptr && entry_ != nullptr) cache_->Unpin(entry_);
  cache_ = nullptr;
  entry_.reset();
  table_.reset();
}

// ---------------------------------------------------------------------------
// BlockCache
// ---------------------------------------------------------------------------

namespace {

/// The default-capacity resolution for Options::capacity_bytes == -1:
/// 64 MiB unless $MDJOIN_BLOCK_CACHE_BYTES overrides it (parsed once).
int64_t DefaultCapacityBytes() {
  static const int64_t bytes = [] {
    if (const char* e = std::getenv("MDJOIN_BLOCK_CACHE_BYTES")) {
      char* end = nullptr;
      const long long v = std::strtoll(e, &end, 10);
      if (end != e && *end == '\0' && v >= 0) return static_cast<int64_t>(v);
    }
    return int64_t{64} << 20;
  }();
  return bytes;
}

}  // namespace

BlockCache::BlockCache(Options options) : options_(std::move(options)) {
  if (options_.capacity_bytes < 0) options_.capacity_bytes = DefaultCapacityBytes();
}

BlockCache::~BlockCache() {
  // All pins must be dropped before destruction; whatever is resident then is
  // cold, so this drains the cache and returns every external charge.
  EvictBytes(resident_bytes());
}

uint64_t BlockCache::NewFileId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

int64_t BlockCache::resident_bytes() const {
  MutexLock lock(mu_);
  return resident_bytes_;
}

BlockCache::StatsSnapshot BlockCache::stats() const {
  MutexLock lock(mu_);
  StatsSnapshot s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.ephemeral_loads = ephemeral_loads_;
  s.resident_bytes = resident_bytes_;
  return s;
}

int64_t BlockCache::EvictLocked(int64_t target, std::vector<int64_t>* freed) {
  int64_t total = 0;
  while (total < target && !lru_.empty()) {
    std::shared_ptr<Entry> e = lru_.front();
    lru_.pop_front();
    e->in_lru = false;
    map_.erase(e->key);
    resident_bytes_ -= e->bytes;
    total += e->bytes;
    ++evictions_;
    EvictionCounter()->Increment();
    freed->push_back(e->bytes);
  }
  ResidentGauge()->Add(-total);
  return total;
}

int64_t BlockCache::EvictBytes(int64_t target_bytes) {
  if (target_bytes <= 0) return 0;
  std::vector<int64_t> freed;
  int64_t total;
  {
    MutexLock lock(mu_);
    total = EvictLocked(target_bytes, &freed);
  }
  if (options_.release) {
    for (int64_t b : freed) options_.release(b);
  }
  return total;
}

Result<BlockPin> BlockCache::GetOrLoad(uint64_t file_id, int block,
                                       int64_t charge_bytes,
                                       const Loader& loader, bool* was_hit) {
  if (was_hit != nullptr) *was_hit = false;
  const Key key{file_id, block};
  std::shared_ptr<Entry> entry;
  for (;;) {
    MutexLock lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      std::shared_ptr<Entry> e = it->second;
      if (e->loading) {
        load_cv_.Wait(lock, [&] { return !e->loading; });
      }
      if (e->failed) continue;  // loader lost; retry, likely becoming loader
      ++hits_;
      HitCounter()->Increment();
      if (e->in_lru) {
        lru_.erase(e->lru_it);
        e->in_lru = false;
      }
      ++e->pins;
      if (was_hit != nullptr) *was_hit = true;
      BlockPin pin;
      pin.table_ = e->table;
      pin.cache_ = this;
      pin.entry_ = e;
      return pin;
    }
    ++misses_;
    MissCounter()->Increment();
    entry = std::make_shared<Entry>();
    entry->key = key;
    entry->bytes = charge_bytes;
    entry->pins = 1;
    map_.emplace(key, entry);
    break;
  }

  // We are the single-flighted loader for this block. Make room (best
  // effort), charge the external pool, then decode — all without the lock.
  const int64_t overage =
      resident_bytes() + charge_bytes - options_.capacity_bytes;
  if (overage > 0) EvictBytes(overage);

  bool charged = true;
  if (options_.charge) {
    charged = options_.charge(charge_bytes);
    if (!charged) {
      EvictBytes(charge_bytes);
      charged = options_.charge(charge_bytes);
    }
  }

  Result<Table> loaded = loader();

  if (!loaded.ok() || !charged) {
    {
      MutexLock lock(mu_);
      map_.erase(key);
      entry->loading = false;
      entry->failed = true;
      if (!loaded.ok()) {
        // Nothing resident; waiters retry.
      } else {
        ++ephemeral_loads_;
      }
    }
    load_cv_.NotifyAll();
    if (!loaded.ok()) {
      if (charged && options_.release) options_.release(charge_bytes);
      return loaded.status();
    }
    // Pool refused the bytes: hand the block to the caller uncached. The
    // caller's own guard reservation is the only accounting for it.
    BlockPin pin;
    pin.table_ = std::make_shared<const Table>(std::move(loaded).value());
    return pin;
  }

  {
    MutexLock lock(mu_);
    entry->table = std::make_shared<const Table>(std::move(loaded).value());
    entry->loading = false;
    resident_bytes_ += charge_bytes;
  }
  ResidentGauge()->Add(charge_bytes);
  load_cv_.NotifyAll();
  BlockPin pin;
  pin.table_ = entry->table;
  pin.cache_ = this;
  pin.entry_ = std::move(entry);
  return pin;
}

void BlockCache::Unpin(const std::shared_ptr<void>& opaque_entry) {
  auto e = std::static_pointer_cast<Entry>(opaque_entry);
  MutexLock lock(mu_);
  --e->pins;
  if (e->pins == 0 && !e->loading && !e->failed && !e->in_lru) {
    lru_.push_back(e);
    e->lru_it = std::prev(lru_.end());
    e->in_lru = true;
  }
}

}  // namespace mdjoin
