#ifndef MDJOIN_STORAGE_PAGED_TABLE_H_
#define MDJOIN_STORAGE_PAGED_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/query_guard.h"
#include "common/result.h"
#include "storage/block_cache.h"
#include "storage/block_format.h"

namespace mdjoin {

/// A detail relation living in a block file instead of RAM: schema, row
/// counts, and zone maps resident; payloads faulted block-at-a-time, ideally
/// through a shared BlockCache. This is the handle the out-of-core MD-join
/// driver (storage/out_of_core) scans and the catalog registers for
/// `--storage=paged` tables.
///
/// Thread-safe: Fault only reads immutable footer state and the BlockFile
/// reader opens a fresh stream per call, so concurrent morsel workers may
/// fault blocks freely.
class PagedTable {
 public:
  /// Opens an existing block file (written by WriteBlockFile).
  static Result<std::unique_ptr<PagedTable>> Open(std::string path);

  const Schema& schema() const { return file_->schema(); }
  int64_t num_rows() const { return file_->num_rows(); }
  int num_blocks() const { return file_->num_blocks(); }
  int64_t block_size_rows() const { return file_->block_size_rows(); }
  int64_t block_row_offset(int b) const { return file_->block_row_offset(b); }
  const BlockMeta& block_meta(int b) const { return file_->block_meta(b); }
  int64_t ApproxBlockBytes(int b) const { return file_->ApproxBlockBytes(b); }
  const std::string& path() const { return file_->path(); }
  /// Cache key namespace for this open table.
  uint64_t id() const { return id_; }

  /// Decodes block `b`, through `cache` when non-null (sets *was_hit on a
  /// resident lookup), or directly into an ephemeral pin otherwise.
  Result<BlockPin> Fault(int b, BlockCache* cache,
                         bool* was_hit = nullptr) const;

  /// Materializes the whole file as one in-memory Table — the compatibility
  /// fallback for consumers without a block-at-a-time path (e.g. a paged
  /// table referenced outside an MD-join detail position). Reserves the
  /// decoded estimate on `guard` while assembling.
  Result<Table> ReadAll(QueryGuard* guard) const;

 private:
  explicit PagedTable(std::unique_ptr<BlockFile> file)
      : file_(std::move(file)), id_(BlockCache::NewFileId()) {}

  std::unique_ptr<BlockFile> file_;
  uint64_t id_;
};

}  // namespace mdjoin

#endif  // MDJOIN_STORAGE_PAGED_TABLE_H_
