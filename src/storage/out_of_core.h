#ifndef MDJOIN_STORAGE_OUT_OF_CORE_H_
#define MDJOIN_STORAGE_OUT_OF_CORE_H_

#include <vector>

#include "agg/agg_spec.h"
#include "common/result.h"
#include "core/mdjoin.h"
#include "storage/paged_table.h"

namespace mdjoin {

/// The out-of-core MD-join: MdJoin() semantics with the detail relation living
/// in a block file (storage/block_format) instead of RAM. Bit-identical to the
/// in-memory evaluator — same row order, same float accumulation order — in
/// every mode combination (row/vectorized × sequential/parallel × spill
/// on/off); the A/B tests in out_of_core_test.cc enforce exactly that.
///
/// Per pass the driver walks the file's blocks in order, but first refutes
/// each block against its footer zone maps (ZoneCouldMatch over the
/// AnalyzeRanges facts of θ): a refuted block provably holds no θ-matching
/// row and is never faulted, let alone decoded (stats->blocks_pruned).
/// Surviving blocks fault through options.block_cache when one is given
/// (shared residency, LRU within its byte budget, singleflight dedup of
/// concurrent faults) or decode into an ephemeral pin charged to the query's
/// guard otherwise. Each decoded block is handed to the one scan seam,
/// DetailScan::ScanChunk, so every scan optimization short of the prepared
/// table's typed mirror runs unchanged.
///
/// options.num_threads > 1 runs the block loop morsel-style: workers pull
/// (block) work units from a shared cursor into thread-local partials, merged
/// pairwise when the cursor drains — block decode and scan overlap across
/// threads, and the cache's singleflight keeps duplicate faults to one load.
///
/// options.enable_spill engages the partitioned-spill escape hatch
/// (storage/spill.h) when θ carries an equi conjunct: B and the *streamed*
/// blocks of R hash-partition to spill files (zone-pruned blocks skipped —
/// they contain no matching rows), then per-partition in-memory joins merge
/// back in base order. Peak residency is one decoded block plus one partition
/// pair, never the whole detail relation.
Result<Table> PagedMdJoin(const Table& base, const PagedTable& detail,
                          const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                          const MdJoinOptions& options = {},
                          MdJoinStats* stats = nullptr);

/// The pruning plan: keep[b] == false iff block b's zone maps refute θ
/// (always all-true when θ has no detail-side range facts; all-false when the
/// range analysis proves θ unsatisfiable). Exposed for the executor's EXPLAIN
/// path and the zone-map tests.
std::vector<bool> PlanBlockPruning(const PagedTable& detail, const ExprPtr& theta);

class Catalog;  // optimizer/plan.h

/// Registers `table` under `name` in the catalog, filling the catalog's
/// storage-opaque schema/row-count fields from the table itself (the plan
/// layer cannot dereference a PagedTable — see Catalog::RegisterPaged).
/// `table` must outlive the catalog binding.
Status RegisterPagedTable(Catalog* catalog, std::string name,
                          const PagedTable& table);

}  // namespace mdjoin

#endif  // MDJOIN_STORAGE_OUT_OF_CORE_H_
