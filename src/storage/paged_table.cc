#include "storage/paged_table.h"

#include <utility>
#include <vector>

namespace mdjoin {

Result<std::unique_ptr<PagedTable>> PagedTable::Open(std::string path) {
  MDJ_ASSIGN_OR_RETURN(std::unique_ptr<BlockFile> file,
                       BlockFile::Open(std::move(path)));
  return std::unique_ptr<PagedTable>(new PagedTable(std::move(file)));
}

Result<BlockPin> PagedTable::Fault(int b, BlockCache* cache,
                                   bool* was_hit) const {
  if (was_hit != nullptr) *was_hit = false;
  if (cache == nullptr) {
    MDJ_ASSIGN_OR_RETURN(Table block, file_->ReadBlock(b));
    BlockPin pin;
    pin.table_ = std::make_shared<const Table>(std::move(block));
    return pin;
  }
  return cache->GetOrLoad(id_, b, ApproxBlockBytes(b),
                          [this, b] { return file_->ReadBlock(b); }, was_hit);
}

Result<Table> PagedTable::ReadAll(QueryGuard* guard) const {
  int64_t estimate = 0;
  for (int b = 0; b < num_blocks(); ++b) estimate += ApproxBlockBytes(b);
  ScopedReservation reservation;
  MDJ_RETURN_NOT_OK(
      reservation.Reserve(guard, estimate, "paged table materialization"));

  const int ncols = schema().num_fields();
  std::vector<std::vector<Value>> cols(static_cast<size_t>(ncols));
  for (auto& col : cols) col.reserve(static_cast<size_t>(num_rows()));
  for (int b = 0; b < num_blocks(); ++b) {
    if (guard != nullptr) MDJ_RETURN_NOT_OK(guard->Check());
    MDJ_ASSIGN_OR_RETURN(Table block, file_->ReadBlock(b));
    for (int c = 0; c < ncols; ++c) {
      const std::vector<Value>& src = block.column(c);
      cols[static_cast<size_t>(c)].insert(cols[static_cast<size_t>(c)].end(),
                                          src.begin(), src.end());
    }
  }
  Table out;
  for (int c = 0; c < ncols; ++c) {
    MDJ_RETURN_NOT_OK(
        out.AddColumn(schema().field(c), std::move(cols[static_cast<size_t>(c)])));
  }
  return out;
}

}  // namespace mdjoin
