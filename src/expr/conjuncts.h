#ifndef MDJOIN_EXPR_CONJUNCTS_H_
#define MDJOIN_EXPR_CONJUNCTS_H_

#include <vector>

#include "expr/expr.h"

namespace mdjoin {

/// Flattens nested ANDs into a conjunct list. A trivially-true literal
/// produces an empty list.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// ANDs `conjuncts` back together; empty input yields literal true.
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

/// A conjunct of the form (base-only expr) = (detail-only expr), normalized so
/// `base_expr` references only B and `detail_expr` only R. This is the join
/// structure the MD-join evaluator hashes B on (§4.5) and Observation 4.1
/// transfers selections through. Computed keys are allowed, e.g.
/// R.month = B.month + 1 yields base_expr = B.month + 1.
struct EquiPair {
  ExprPtr base_expr;
  ExprPtr detail_expr;
};

/// Classification of a θ-condition's conjuncts (paper §4.2, §4.5).
struct ThetaParts {
  std::vector<EquiPair> equi;         // B-key = R-key conjuncts
  std::vector<ExprPtr> detail_only;   // σ-pushable to R (Theorem 4.2)
  std::vector<ExprPtr> base_only;     // restrict B rows up front
  std::vector<ExprPtr> residual;      // everything else (mixed non-equi)
};

/// Splits and classifies `theta`. Never fails: unclassifiable pieces land in
/// `residual`, so evaluation is always possible (just less indexable).
ThetaParts AnalyzeTheta(const ExprPtr& theta);

/// Reassembles the parts into a single condition (for round-trip testing).
ExprPtr CombineTheta(const ThetaParts& parts);

/// Bottom-up constant folding: any subtree free of column references is
/// replaced by its literal value, and boolean identities are simplified
/// (x AND true → x, x AND false → false, x OR true → true, x OR false → x).
/// Semantics-preserving for the engine's two-valued logic; applied by the
/// rewrite rules before conjunct classification so literal-heavy θs (e.g.
/// machine-generated ones) classify cleanly.
ExprPtr FoldConstants(const ExprPtr& expr);

}  // namespace mdjoin

#endif  // MDJOIN_EXPR_CONJUNCTS_H_
