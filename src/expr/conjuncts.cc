#include "expr/conjuncts.h"

#include "expr/compile.h"

namespace mdjoin {

namespace {

bool IsLiteralTrue(const ExprPtr& e) {
  return e->kind() == ExprKind::kLiteral && e->literal().IsTruthy();
}
bool IsLiteralFalse(const ExprPtr& e) {
  return e->kind() == ExprKind::kLiteral && e->literal().is_int64() &&
         e->literal().int64() == 0;
}

}  // namespace

ExprPtr FoldConstants(const ExprPtr& expr) {
  if (expr == nullptr) return expr;
  // A leaf or a column-free subtree folds to its value outright.
  bool has_columns =
      expr->ReferencesSide(Side::kBase) || expr->ReferencesSide(Side::kDetail);
  if (!has_columns && expr->kind() != ExprKind::kLiteral) {
    Result<Value> v = EvalConstExpr(expr);
    if (v.ok()) return Expr::Literal(std::move(*v));
    return expr;  // un-evaluable constants (shouldn't happen) stay put
  }
  switch (expr->kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
      return expr;
    case ExprKind::kUnary:
      return Expr::Unary(expr->unary_op(), FoldConstants(expr->operand()));
    case ExprKind::kIn:
      return Expr::In(FoldConstants(expr->operand()), expr->candidates());
    case ExprKind::kCase: {
      std::vector<std::pair<ExprPtr, ExprPtr>> arms;
      for (const auto& [when, then] : expr->when_then()) {
        arms.emplace_back(FoldConstants(when), FoldConstants(then));
      }
      return Expr::Case(std::move(arms), expr->else_expr() == nullptr
                                             ? nullptr
                                             : FoldConstants(expr->else_expr()));
    }
    case ExprKind::kBinary: {
      ExprPtr left = FoldConstants(expr->left());
      ExprPtr right = FoldConstants(expr->right());
      // Boolean identities for the connectives.
      if (expr->binary_op() == BinaryOp::kAnd) {
        if (IsLiteralTrue(left)) return right;
        if (IsLiteralTrue(right)) return left;
        if (IsLiteralFalse(left) || IsLiteralFalse(right)) return dsl::False();
      }
      if (expr->binary_op() == BinaryOp::kOr) {
        if (IsLiteralFalse(left)) return right;
        if (IsLiteralFalse(right)) return left;
        if (IsLiteralTrue(left) || IsLiteralTrue(right)) return dsl::True();
      }
      return Expr::Binary(expr->binary_op(), std::move(left), std::move(right));
    }
  }
  return expr;
}

namespace {

void SplitRec(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kBinary && expr->binary_op() == BinaryOp::kAnd) {
    SplitRec(expr->left(), out);
    SplitRec(expr->right(), out);
    return;
  }
  // Drop literal TRUE conjuncts.
  if (expr->kind() == ExprKind::kLiteral && expr->literal().IsTruthy()) return;
  out->push_back(expr);
}

}  // namespace

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (expr != nullptr) SplitRec(expr, &out);
  return out;
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return dsl::True();
  ExprPtr out = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    out = Expr::Binary(BinaryOp::kAnd, std::move(out), conjuncts[i]);
  }
  return out;
}

ThetaParts AnalyzeTheta(const ExprPtr& theta) {
  ThetaParts parts;
  for (const ExprPtr& c : SplitConjuncts(theta)) {
    bool uses_base = c->ReferencesSide(Side::kBase);
    bool uses_detail = c->ReferencesSide(Side::kDetail);
    if (!uses_base && uses_detail) {
      parts.detail_only.push_back(c);
      continue;
    }
    if (uses_base && !uses_detail) {
      parts.base_only.push_back(c);
      continue;
    }
    if (!uses_base && !uses_detail) {
      // Constant conjunct (rare); keep as residual so it still gets applied.
      parts.residual.push_back(c);
      continue;
    }
    // Mixed conjunct: an equality with each operand on exactly one side is an
    // equi pair; anything else is residual.
    if (c->kind() == ExprKind::kBinary && c->binary_op() == BinaryOp::kEq) {
      const ExprPtr& l = c->left();
      const ExprPtr& r = c->right();
      bool l_base = l->ReferencesSide(Side::kBase);
      bool l_detail = l->ReferencesSide(Side::kDetail);
      bool r_base = r->ReferencesSide(Side::kBase);
      bool r_detail = r->ReferencesSide(Side::kDetail);
      if (l_base && !l_detail && r_detail && !r_base) {
        parts.equi.push_back({l, r});
        continue;
      }
      if (r_base && !r_detail && l_detail && !l_base) {
        parts.equi.push_back({r, l});
        continue;
      }
    }
    parts.residual.push_back(c);
  }
  return parts;
}

ExprPtr CombineTheta(const ThetaParts& parts) {
  std::vector<ExprPtr> all;
  for (const EquiPair& p : parts.equi) {
    all.push_back(Expr::Binary(BinaryOp::kEq, p.base_expr, p.detail_expr));
  }
  all.insert(all.end(), parts.detail_only.begin(), parts.detail_only.end());
  all.insert(all.end(), parts.base_only.begin(), parts.base_only.end());
  all.insert(all.end(), parts.residual.begin(), parts.residual.end());
  return CombineConjuncts(std::move(all));
}

}  // namespace mdjoin
