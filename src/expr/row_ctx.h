#ifndef MDJOIN_EXPR_ROW_CTX_H_
#define MDJOIN_EXPR_ROW_CTX_H_

#include <cstdint>

namespace mdjoin {

class Table;

/// Evaluation context: a (base row, detail row) pair. Single-table evaluation
/// leaves the unused side null. Lives in its own header so both the
/// closure-tree compiler (expr/compile.h) and the bytecode interpreter
/// (expr/bytecode.h) can name it without including each other.
struct RowCtx {
  const Table* base = nullptr;
  int64_t base_row = 0;
  const Table* detail = nullptr;
  int64_t detail_row = 0;
};

}  // namespace mdjoin

#endif  // MDJOIN_EXPR_ROW_CTX_H_
