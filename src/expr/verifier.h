#ifndef MDJOIN_EXPR_VERIFIER_H_
#define MDJOIN_EXPR_VERIFIER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "expr/bytecode.h"
#include "types/schema.h"

namespace mdjoin {

/// JVM-style static verifier for expr/bytecode programs.
///
/// The bytecode interpreter (BytecodeExpr::Eval) is deliberately unchecked on
/// its hot path: no bounds checks on jump targets, literal pools, or the
/// value stack beyond what the emitter guarantees. The verifier re-derives
/// those guarantees from the program alone, so an emitter bug becomes a
/// structured load-time rejection instead of a wrong answer or a wild read.
///
/// Verified properties:
///   - every opcode and its operand class are valid (a kCompare u8 must name
///     a comparison BinaryOp, a kArith u8 an arithmetic one);
///   - literal / in-list / column indices are in range for the pools and
///     schemas the program was compiled against;
///   - every jump target is STRICTLY FORWARD and lands inside (pc, n] — with
///     the program counter otherwise monotone, this is a termination
///     certificate: any execution retires at most n instructions;
///   - the value stack never underflows, every merge point (a jump target
///     reached from more than one predecessor) is reached with one single
///     consistent stack depth, and the program halts with exactly one value;
///   - unreachable instructions are reported as warnings.
///
/// The analysis is a single forward pass in pc order. Forward-only jumps
/// mean every predecessor of an instruction has a smaller pc, so by the time
/// pc is visited the abstract stack flowing into it is final — no fixpoint
/// iteration is needed.
enum class VerifyErrorCode {
  kEmptyProgram,        // V001: zero instructions
  kBadOpcode,           // V002: opcode byte outside the ISA
  kBadOperandOp,        // V003: kCompare/kArith u8 is not an op of that class
  kBadLiteralIndex,     // V004: kPushLit index outside the literal pool
  kBadInListIndex,      // V005: kIn index outside the in-list pool
  kBadColumnIndex,      // V006: kLoadBase/kLoadDetail column out of range
  kMissingSide,         // V007: load from a side with no schema in context
  kBadJumpTarget,       // V008: jump outside (pc, n]
  kBackwardJump,        // V009: jump target <= pc (breaks termination proof)
  kStackUnderflow,      // V010: instruction pops more than the stack holds
  kStackDepthMismatch,  // V011: merge point reached with differing depths
  kBadResultArity,      // V012: halt with stack depth != 1
  kUnreachableCode,     // V100: instruction no control path reaches (warning)
};

/// Stable "V0xx" code for diagnostics and OPERATOR.md's reference table.
const char* VerifyErrorCodeName(VerifyErrorCode code);

struct VerifierDiagnostic {
  VerifyErrorCode code;
  int pc = -1;  // instruction index; num_instrs() for halt-state findings
  bool is_error = true;  // false: advisory (kUnreachableCode)
  std::string message;

  std::string ToString() const;  // "[V010] pc 3: kCompare pops 2, stack holds 1"
};

struct VerifierReport {
  std::vector<VerifierDiagnostic> diagnostics;
  /// Proven upper bound on the evaluation stack depth of any execution.
  int max_stack_depth = 0;
  /// Instructions the pass actually checked (== program size when ok).
  int verified_instrs = 0;

  bool ok() const;          // no error-severity diagnostics
  Status ToStatus() const;  // OK, or InvalidArgument carrying the first error
  std::string ToString() const;
};

/// Verifies a compiled program against its own literal/in-list pools and the
/// schemas it was compiled for. Pass nullptr for a side absent in context
/// (loads from that side then fail with kMissingSide).
VerifierReport VerifyBytecode(const BytecodeExpr& bc, const Schema* base_schema,
                              const Schema* detail_schema);

/// Raw-parts entry for hand-assembled programs (the mutated-bytecode test
/// corpus). Pool/column limits are passed explicitly; a negative column
/// count marks that side as absent from the evaluation context.
VerifierReport VerifyBytecodeProgram(const std::vector<BytecodeExpr::Instr>& code,
                                     int num_literals, int num_in_lists,
                                     int num_base_columns, int num_detail_columns);

}  // namespace mdjoin

#endif  // MDJOIN_EXPR_VERIFIER_H_
