#include "expr/kernels.h"

#include <algorithm>
#include <cmath>

namespace mdjoin {

namespace {

/// Reference semantics for one comparison, byte-for-byte the logic of
/// EvalCompare in expr/compile.cc. The typed loops below are fast paths that
/// must agree with this on every input; they defer here for mixed-type cells.
bool KeepCompareSlow(BinaryOp op, const Value& v, const Value& lit) {
  if (op == BinaryOp::kEq) return v.MatchesEq(lit);
  if (op == BinaryOp::kNe) {
    if (v.is_null() || lit.is_null()) return false;
    return !v.MatchesEq(lit);
  }
  if (v.is_null() || lit.is_null() || v.is_all() || lit.is_all()) return false;
  bool comparable =
      (v.is_numeric() && lit.is_numeric()) || (v.is_string() && lit.is_string());
  if (!comparable) return false;
  int c = v.Compare(lit);
  switch (op) {
    case BinaryOp::kLt:
      return c < 0;
    case BinaryOp::kLe:
      return c <= 0;
    case BinaryOp::kGt:
      return c > 0;
    case BinaryOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

template <BinaryOp Op>
inline bool CmpInt(int64_t x, int64_t y) {
  if constexpr (Op == BinaryOp::kEq) return x == y;
  if constexpr (Op == BinaryOp::kNe) return x != y;
  if constexpr (Op == BinaryOp::kLt) return x < y;
  if constexpr (Op == BinaryOp::kLe) return x <= y;
  if constexpr (Op == BinaryOp::kGt) return x > y;
  if constexpr (Op == BinaryOp::kGe) return x >= y;
  return false;
}

/// kLe/kGe are !(x > y) / !(x < y) — true when either side is NaN — because
/// EvalCompare maps ordered comparisons through Value::Compare, which orders
/// NaN "equal" to every number (c == 0, so c <= 0 and c >= 0 both hold).
/// Plain IEEE <= / >= would silently disagree with the row engine on NaN.
template <BinaryOp Op>
inline bool CmpDouble(double x, double y) {
  if constexpr (Op == BinaryOp::kEq) return x == y;
  if constexpr (Op == BinaryOp::kNe) return x != y;
  if constexpr (Op == BinaryOp::kLt) return x < y;
  if constexpr (Op == BinaryOp::kLe) return !(x > y);
  if constexpr (Op == BinaryOp::kGt) return x > y;
  if constexpr (Op == BinaryOp::kGe) return !(x < y);
  return false;
}

/// Runtime-op scalar compares for the sparse flat loops (same semantics as
/// the templates above and as simd::CmpOp).
inline bool ScalarCmpI64(simd::CmpOp op, int64_t x, int64_t y) {
  switch (op) {
    case simd::CmpOp::kEq:
      return x == y;
    case simd::CmpOp::kNe:
      return x != y;
    case simd::CmpOp::kLt:
      return x < y;
    case simd::CmpOp::kLe:
      return x <= y;
    case simd::CmpOp::kGt:
      return x > y;
    case simd::CmpOp::kGe:
      return x >= y;
  }
  return false;
}

inline bool ScalarCmpF64(simd::CmpOp op, double x, double y) {
  switch (op) {
    case simd::CmpOp::kEq:
      return x == y;
    case simd::CmpOp::kNe:
      return x != y;
    case simd::CmpOp::kLt:
      return x < y;
    case simd::CmpOp::kLe:
      return !(x > y);
    case simd::CmpOp::kGt:
      return x > y;
    case simd::CmpOp::kGe:
      return !(x < y);
  }
  return false;
}

/// One selection-vector pass of `col[sel[i]] Op lit` with an int64 literal:
/// int64 cells take the inline compare, anything else (NULL, ALL, float,
/// string) the slow path.
template <BinaryOp Op>
int FilterIntLit(const Value* col, int64_t lit, const Value& lit_v, uint32_t* sel,
                 int count) {
  int out = 0;
  for (int i = 0; i < count; ++i) {
    const uint32_t idx = sel[i];
    const Value& v = col[idx];
    const bool keep =
        v.is_int64() ? CmpInt<Op>(v.int64(), lit) : KeepCompareSlow(Op, v, lit_v);
    sel[out] = idx;
    out += static_cast<int>(keep);
  }
  return out;
}

template <BinaryOp Op>
int FilterDoubleLit(const Value* col, double lit, const Value& lit_v, uint32_t* sel,
                    int count) {
  int out = 0;
  for (int i = 0; i < count; ++i) {
    const uint32_t idx = sel[i];
    const Value& v = col[idx];
    const bool keep = v.is_numeric() ? CmpDouble<Op>(v.AsDouble(), lit)
                                     : KeepCompareSlow(Op, v, lit_v);
    sel[out] = idx;
    out += static_cast<int>(keep);
  }
  return out;
}

template <BinaryOp Op>
int FilterStringLit(const Value* col, const std::string& lit, const Value& lit_v,
                    uint32_t* sel, int count) {
  int out = 0;
  for (int i = 0; i < count; ++i) {
    const uint32_t idx = sel[i];
    const Value& v = col[idx];
    bool keep;
    if (v.is_string()) {
      const int c = v.string().compare(lit);
      keep = CmpInt<Op>(c, 0);
    } else {
      keep = KeepCompareSlow(Op, v, lit_v);
    }
    sel[out] = idx;
    out += static_cast<int>(keep);
  }
  return out;
}

template <BinaryOp Op>
int FilterCompare(const Value* col, const Value& lit, uint32_t* sel, int count) {
  if (lit.is_int64()) return FilterIntLit<Op>(col, lit.int64(), lit, sel, count);
  if (lit.is_float64()) return FilterDoubleLit<Op>(col, lit.float64(), lit, sel, count);
  if (lit.is_string()) return FilterStringLit<Op>(col, lit.string(), lit, sel, count);
  // NULL/ALL literal: no typed fast path, defer every cell.
  int out = 0;
  for (int i = 0; i < count; ++i) {
    const uint32_t idx = sel[i];
    sel[out] = idx;
    out += static_cast<int>(KeepCompareSlow(Op, col[idx], lit));
  }
  return out;
}

int DispatchCompare(BinaryOp op, const Value* col, const Value& lit, uint32_t* sel,
                    int count) {
  switch (op) {
    case BinaryOp::kEq:
      return FilterCompare<BinaryOp::kEq>(col, lit, sel, count);
    case BinaryOp::kNe:
      return FilterCompare<BinaryOp::kNe>(col, lit, sel, count);
    case BinaryOp::kLt:
      return FilterCompare<BinaryOp::kLt>(col, lit, sel, count);
    case BinaryOp::kLe:
      return FilterCompare<BinaryOp::kLe>(col, lit, sel, count);
    case BinaryOp::kGt:
      return FilterCompare<BinaryOp::kGt>(col, lit, sel, count);
    case BinaryOp::kGe:
      return FilterCompare<BinaryOp::kGe>(col, lit, sel, count);
    default:
      return count;  // unreachable: Compile only admits comparison ops
  }
}

/// IN-list membership with MatchesEq semantics (ALL wildcard), as the
/// compiled kIn closure evaluates it.
inline bool MatchesAny(const Value& v, const std::vector<Value>& cands) {
  for (const Value& c : cands) {
    if (v.MatchesEq(c)) return true;
  }
  return false;
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // =, <> are symmetric
  }
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsDetailColumn(const ExprPtr& e) {
  return e->kind() == ExprKind::kColumnRef && e->side() == Side::kDetail;
}

simd::CmpOp ToCmpOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return simd::CmpOp::kEq;
    case BinaryOp::kNe:
      return simd::CmpOp::kNe;
    case BinaryOp::kLt:
      return simd::CmpOp::kLt;
    case BinaryOp::kLe:
      return simd::CmpOp::kLe;
    case BinaryOp::kGt:
      return simd::CmpOp::kGt;
    default:
      return simd::CmpOp::kGe;
  }
}

/// Largest double below 2^53: int64 ↔ double conversion is exact and
/// injective within (-2^53, 2^53), which is what makes translating a float
/// equality candidate into an int64 set sound. (2^53 itself is excluded:
/// double(2^53 + 1) rounds to 2^53.0, so one double matches two int64s.)
constexpr double kExactIntBound = 9007199254740992.0;  // 2^53

inline bool MaskBit(const uint64_t* mask, int i) {
  return (mask[i >> 6] >> (i & 63)) & 1;
}

void MaskZero(uint64_t* mask, int n) {
  std::fill(mask, mask + simd::MaskWords(n), 0);
}

void MaskOr(uint64_t* mask, const uint64_t* other, int n) {
  const int words = simd::MaskWords(n);
  for (int w = 0; w < words; ++w) mask[w] |= other[w];
}

/// Dense `double(x[i]) <cmp> lit` over an int64 payload. No SIMD body: the
/// int→double convert + compare shape is rare (float literal against an
/// integer column) and the scalar loop already runs at payload speed.
void DenseCmpI64AsF64(simd::CmpOp op, const int64_t* x, int n, double lit,
                      uint64_t* mask) {
  MaskZero(mask, n);
  for (int i = 0; i < n; ++i) {
    if (ScalarCmpF64(op, static_cast<double>(x[i]), lit)) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

template <typename T>
inline bool InSet(const std::vector<T>& set, T x) {
  for (const T& c : set) {
    if (x == c) return true;
  }
  return false;
}

}  // namespace

/// Decides the typed-payload plan for one kCompare / kInList predicate.
/// Every translation here must be semantically exact against KeepCompareSlow
/// / MatchesAny — when a shape cannot be translated exactly (e.g. a float
/// equality candidate at |c| >= 2^53), the plan stays kNone and the Value
/// loops run instead.
void PredicateKernels::PlanFlat(Pred* p) const {
  if (accel_ == nullptr || p->col < 0 ||
      p->col >= static_cast<int>(accel_->cols.size())) {
    return;
  }
  const FlatColumn& fc = accel_->cols[p->col];
  if (!fc.flat()) return;

  if (p->kind == PredKind::kCompare) {
    const Value& lit = p->literal;
    if (lit.is_null()) {
      p->flat = FlatOp::kNever;  // every op is false against NULL
      return;
    }
    if (lit.is_all()) {
      // = matches every non-null cell; <> and ordered ops are always false.
      p->flat = (p->op == BinaryOp::kEq) ? FlatOp::kAllNotNull : FlatOp::kNever;
      return;
    }
    // A literal whose type cannot compare against this column's cells:
    // = never holds, <> holds for every non-null cell, ordered never holds.
    auto type_mismatch = [p] {
      p->flat = (p->op == BinaryOp::kNe) ? FlatOp::kAllNotNull : FlatOp::kNever;
    };
    switch (fc.rep) {
      case FlatColumn::Rep::kInt64:
        if (lit.is_int64()) {
          p->flat = FlatOp::kCmpI64;
          p->cmp = ToCmpOp(p->op);
          p->i64_lit = lit.int64();
        } else if (lit.is_float64()) {
          // EvalCompare compares mixed numerics as doubles, including the
          // (lossy above 2^53) int→double conversion; replicate it per row
          // rather than translating the literal.
          p->flat = FlatOp::kCmpI64F64;
          p->cmp = ToCmpOp(p->op);
          p->f64_lit = lit.float64();
        } else {
          type_mismatch();
        }
        break;
      case FlatColumn::Rep::kFloat64:
        if (lit.is_numeric()) {
          p->flat = FlatOp::kCmpF64;
          p->cmp = ToCmpOp(p->op);
          p->f64_lit = lit.AsDouble();
        } else {
          type_mismatch();
        }
        break;
      case FlatColumn::Rep::kDict: {
        if (!lit.is_string()) {
          type_mismatch();
          break;
        }
        // Translate through the sorted dictionary (see table/dictionary.h
        // for the identities). `lb + present` never overflows: lb <= size().
        const Dictionary& d = *fc.dict;
        const int32_t lb = d.LowerBound(lit.string());
        const int32_t present =
            (lb < d.size() && d.Decode(lb) == lit.string()) ? 1 : 0;
        p->flat = FlatOp::kCmpCode;
        switch (p->op) {
          case BinaryOp::kEq:
            if (present) {
              p->cmp = simd::CmpOp::kEq;
              p->code_lit = lb;
            } else {
              p->flat = FlatOp::kNever;
            }
            break;
          case BinaryOp::kNe:
            if (present) {
              p->cmp = simd::CmpOp::kNe;
              p->code_lit = lb;
            } else {
              p->flat = FlatOp::kAllNotNull;
            }
            break;
          case BinaryOp::kLt:
            p->cmp = simd::CmpOp::kLt;
            p->code_lit = lb;
            break;
          case BinaryOp::kLe:
            p->cmp = simd::CmpOp::kLt;
            p->code_lit = lb + present;
            break;
          case BinaryOp::kGt:
            p->cmp = simd::CmpOp::kGe;
            p->code_lit = lb + present;
            break;
          default:  // kGe
            p->cmp = simd::CmpOp::kGe;
            p->code_lit = lb;
            break;
        }
        break;
      }
      case FlatColumn::Rep::kNone:
        break;
    }
    return;
  }

  if (p->kind != PredKind::kInList) return;
  // An ALL candidate matches every non-null cell regardless of the rest.
  for (const Value& c : p->candidates) {
    if (c.is_all()) {
      p->flat = FlatOp::kAllNotNull;
      return;
    }
  }
  switch (fc.rep) {
    case FlatColumn::Rep::kInt64:
      for (const Value& c : p->candidates) {
        if (c.is_int64()) {
          p->in_i64.push_back(c.int64());
        } else if (c.is_float64()) {
          const double d = c.float64();
          if (std::isnan(d) || d != std::floor(d)) continue;  // never matches
          if (!(std::abs(d) < kExactIntBound)) {
            // double(x) == d can hold for several x up there; no exact int
            // translation exists, so keep the Value loop for this conjunct.
            p->in_i64.clear();
            return;
          }
          p->in_i64.push_back(static_cast<int64_t>(d));
        }
        // NULL and string candidates can never match an int cell: drop.
      }
      p->flat = p->in_i64.empty() ? FlatOp::kNever : FlatOp::kInI64;
      break;
    case FlatColumn::Rep::kFloat64:
      for (const Value& c : p->candidates) {
        if (c.is_numeric()) p->in_f64.push_back(c.AsDouble());
      }
      p->flat = p->in_f64.empty() ? FlatOp::kNever : FlatOp::kInF64;
      break;
    case FlatColumn::Rep::kDict:
      for (const Value& c : p->candidates) {
        if (!c.is_string()) continue;
        const int32_t code = fc.dict->CodeOf(c.string());
        if (code >= 0) p->in_codes.push_back(code);
      }
      p->flat = p->in_codes.empty() ? FlatOp::kNever : FlatOp::kInCode;
      break;
    case FlatColumn::Rep::kNone:
      break;
  }
}

Result<PredicateKernels> PredicateKernels::Compile(
    const std::vector<ExprPtr>& conjuncts, const Schema& detail_schema,
    std::shared_ptr<const TableAccel> accel, simd::Level level) {
  PredicateKernels k;
  k.level_ = level;
  k.accel_ = std::move(accel);
  for (const ExprPtr& e : conjuncts) {
    Pred p;
    if (e->kind() == ExprKind::kBinary && IsComparison(e->binary_op())) {
      const ExprPtr& l = e->left();
      const ExprPtr& r = e->right();
      if (IsDetailColumn(l) && r->kind() == ExprKind::kLiteral) {
        MDJ_ASSIGN_OR_RETURN(p.col, detail_schema.GetFieldIndex(l->column_name()));
        p.kind = PredKind::kCompare;
        p.op = e->binary_op();
        p.literal = r->literal();
      } else if (IsDetailColumn(r) && l->kind() == ExprKind::kLiteral) {
        MDJ_ASSIGN_OR_RETURN(p.col, detail_schema.GetFieldIndex(r->column_name()));
        p.kind = PredKind::kCompare;
        p.op = FlipComparison(e->binary_op());
        p.literal = l->literal();
      }
    } else if (e->kind() == ExprKind::kIn && IsDetailColumn(e->operand())) {
      MDJ_ASSIGN_OR_RETURN(p.col,
                           detail_schema.GetFieldIndex(e->operand()->column_name()));
      p.kind = PredKind::kInList;
      p.candidates = e->candidates();
    }
    if (p.kind == PredKind::kGeneric) {
      MDJ_ASSIGN_OR_RETURN(p.generic,
                           CompileExpr(e, /*base_schema=*/nullptr, &detail_schema));
    } else {
      ++k.num_columnar_;
      k.PlanFlat(&p);
      if (p.flat != FlatOp::kNone) ++k.num_flat_;
    }
    k.preds_.push_back(std::move(p));
  }
  // Cheapest plans first — flat (typed payload / constant), then columnar
  // Value loops, then the generic fallback — so each tier shrinks the live
  // set before a costlier tier runs. Order among conjuncts cannot change
  // results (pure predicates, AND).
  std::stable_sort(k.preds_.begin(), k.preds_.end(), [](const Pred& a, const Pred& b) {
    auto tier = [](const Pred& p) {
      if (p.flat != FlatOp::kNone) return 0;
      return p.kind != PredKind::kGeneric ? 1 : 2;
    };
    return tier(a) < tier(b);
  });
  return k;
}

BlockFilter PredicateKernels::FilterBlock(const Table& detail, int64_t block_start,
                                          int n, uint32_t* sel,
                                          uint64_t* mask_scratch,
                                          KernelStats* stats) const {
  MDJ_DCHECK(accel_ == nullptr || accel_->num_rows == detail.num_rows());
  int count = n;
  bool dense = true;
  uint64_t* mask = mask_scratch;
  uint64_t* tmp = mask_scratch + simd::MaskWords(n);

  for (const Pred& p : preds_) {
    if (count == 0) break;

    const FlatColumn* fc =
        (p.flat != FlatOp::kNone && p.flat != FlatOp::kNever && p.col >= 0)
            ? &accel_->cols[p.col]
            : nullptr;
    const uint8_t* nulls =
        (fc != nullptr && fc->has_nulls) ? fc->null_bytes() + block_start : nullptr;

    if (dense) {
      switch (p.flat) {
        case FlatOp::kNever:
          count = 0;
          dense = false;
          continue;
        case FlatOp::kAllNotNull:
          if (nulls == nullptr) continue;  // stays dense for free
          simd::MaskFromNotNull(nulls, n, mask);
          break;
        case FlatOp::kCmpI64:
          simd::CmpI64(level_, p.cmp, fc->i64.data() + block_start, n, p.i64_lit,
                       mask);
          break;
        case FlatOp::kCmpF64:
          simd::CmpF64(level_, p.cmp, fc->f64.data() + block_start, n, p.f64_lit,
                       mask);
          break;
        case FlatOp::kCmpI64F64:
          DenseCmpI64AsF64(p.cmp, fc->i64.data() + block_start, n, p.f64_lit, mask);
          break;
        case FlatOp::kCmpCode:
          simd::CmpI32(level_, p.cmp, fc->codes.data() + block_start, n, p.code_lit,
                       mask);
          break;
        case FlatOp::kInI64:
          MaskZero(mask, n);
          for (int64_t c : p.in_i64) {
            simd::CmpI64(level_, simd::CmpOp::kEq, fc->i64.data() + block_start, n,
                         c, tmp);
            MaskOr(mask, tmp, n);
          }
          break;
        case FlatOp::kInF64:
          MaskZero(mask, n);
          for (double c : p.in_f64) {
            simd::CmpF64(level_, simd::CmpOp::kEq, fc->f64.data() + block_start, n,
                         c, tmp);
            MaskOr(mask, tmp, n);
          }
          break;
        case FlatOp::kInCode:
          MaskZero(mask, n);
          for (int32_t c : p.in_codes) {
            simd::CmpI32(level_, simd::CmpOp::kEq, fc->codes.data() + block_start, n,
                         c, tmp);
            MaskOr(mask, tmp, n);
          }
          break;
        case FlatOp::kNone:
          // No flat plan: materialize the identity selection and fall through
          // to the sparse tiers for this and all remaining predicates.
          for (int i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
          dense = false;
          break;
      }
      if (dense) {
        // Null payload slots hold arbitrary sentinels, so the compare mask
        // may have set their bits; no predicate keeps a NULL cell.
        if (nulls != nullptr && p.flat != FlatOp::kAllNotNull) {
          simd::MaskAndNotNull(nulls, n, mask);
        }
        ++stats->kernel_invocations;
        if (simd::MaskAllSet(mask, n)) continue;  // block stays dense
        count = simd::MaskCompress(mask, n, sel);
        dense = false;
        continue;
      }
    }

    // Sparse tiers: the selection vector drives every access.
    switch (p.flat) {
      case FlatOp::kNever:
        count = 0;
        continue;
      case FlatOp::kAllNotNull: {
        if (nulls == nullptr) continue;
        int out = 0;
        for (int i = 0; i < count; ++i) {
          const uint32_t idx = sel[i];
          sel[out] = idx;
          out += static_cast<int>(nulls[idx] == 0);
        }
        count = out;
        ++stats->kernel_invocations;
        continue;
      }
      case FlatOp::kCmpI64:
      case FlatOp::kCmpI64F64:
      case FlatOp::kInI64: {
        const int64_t* x = fc->i64.data() + block_start;
        int out = 0;
        for (int i = 0; i < count; ++i) {
          const uint32_t idx = sel[i];
          bool keep = nulls == nullptr || nulls[idx] == 0;
          if (keep) {
            if (p.flat == FlatOp::kCmpI64) {
              keep = ScalarCmpI64(p.cmp, x[idx], p.i64_lit);
            } else if (p.flat == FlatOp::kCmpI64F64) {
              keep = ScalarCmpF64(p.cmp, static_cast<double>(x[idx]), p.f64_lit);
            } else {
              keep = InSet(p.in_i64, x[idx]);
            }
          }
          sel[out] = idx;
          out += static_cast<int>(keep);
        }
        count = out;
        ++stats->kernel_invocations;
        continue;
      }
      case FlatOp::kCmpF64:
      case FlatOp::kInF64: {
        const double* x = fc->f64.data() + block_start;
        int out = 0;
        for (int i = 0; i < count; ++i) {
          const uint32_t idx = sel[i];
          bool keep = nulls == nullptr || nulls[idx] == 0;
          if (keep) {
            keep = p.flat == FlatOp::kCmpF64 ? ScalarCmpF64(p.cmp, x[idx], p.f64_lit)
                                             : InSet(p.in_f64, x[idx]);
          }
          sel[out] = idx;
          out += static_cast<int>(keep);
        }
        count = out;
        ++stats->kernel_invocations;
        continue;
      }
      case FlatOp::kCmpCode:
      case FlatOp::kInCode: {
        const int32_t* x = fc->codes.data() + block_start;
        int out = 0;
        for (int i = 0; i < count; ++i) {
          const uint32_t idx = sel[i];
          bool keep = nulls == nullptr || nulls[idx] == 0;
          if (keep) {
            keep = p.flat == FlatOp::kCmpCode
                       ? ScalarCmpI64(p.cmp, x[idx], p.code_lit)
                       : InSet(p.in_codes, x[idx]);
          }
          sel[out] = idx;
          out += static_cast<int>(keep);
        }
        count = out;
        ++stats->kernel_invocations;
        continue;
      }
      case FlatOp::kNone:
        break;
    }

    switch (p.kind) {
      case PredKind::kCompare: {
        const Value* col = detail.column(p.col).data() + block_start;
        count = DispatchCompare(p.op, col, p.literal, sel, count);
        ++stats->kernel_invocations;
        break;
      }
      case PredKind::kInList: {
        const Value* col = detail.column(p.col).data() + block_start;
        int out = 0;
        for (int i = 0; i < count; ++i) {
          const uint32_t idx = sel[i];
          sel[out] = idx;
          out += static_cast<int>(MatchesAny(col[idx], p.candidates));
        }
        count = out;
        ++stats->kernel_invocations;
        break;
      }
      case PredKind::kGeneric: {
        RowCtx ctx;
        ctx.detail = &detail;
        int out = 0;
        for (int i = 0; i < count; ++i) {
          const uint32_t idx = sel[i];
          ctx.detail_row = block_start + idx;
          sel[out] = idx;
          out += static_cast<int>(p.generic.EvalBool(ctx));
        }
        stats->fallback_rows += count;
        count = out;
        break;
      }
    }
  }

  if (dense) ++stats->dense_blocks;
  return BlockFilter{count, dense};
}

}  // namespace mdjoin
