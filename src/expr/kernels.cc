#include "expr/kernels.h"

#include <algorithm>

namespace mdjoin {

namespace {

/// Reference semantics for one comparison, byte-for-byte the logic of
/// EvalCompare in expr/compile.cc. The typed loops below are fast paths that
/// must agree with this on every input; they defer here for mixed-type cells.
bool KeepCompareSlow(BinaryOp op, const Value& v, const Value& lit) {
  if (op == BinaryOp::kEq) return v.MatchesEq(lit);
  if (op == BinaryOp::kNe) {
    if (v.is_null() || lit.is_null()) return false;
    return !v.MatchesEq(lit);
  }
  if (v.is_null() || lit.is_null() || v.is_all() || lit.is_all()) return false;
  bool comparable =
      (v.is_numeric() && lit.is_numeric()) || (v.is_string() && lit.is_string());
  if (!comparable) return false;
  int c = v.Compare(lit);
  switch (op) {
    case BinaryOp::kLt:
      return c < 0;
    case BinaryOp::kLe:
      return c <= 0;
    case BinaryOp::kGt:
      return c > 0;
    case BinaryOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

template <BinaryOp Op>
inline bool CmpInt(int64_t x, int64_t y) {
  if constexpr (Op == BinaryOp::kEq) return x == y;
  if constexpr (Op == BinaryOp::kNe) return x != y;
  if constexpr (Op == BinaryOp::kLt) return x < y;
  if constexpr (Op == BinaryOp::kLe) return x <= y;
  if constexpr (Op == BinaryOp::kGt) return x > y;
  if constexpr (Op == BinaryOp::kGe) return x >= y;
  return false;
}

template <BinaryOp Op>
inline bool CmpDouble(double x, double y) {
  if constexpr (Op == BinaryOp::kEq) return x == y;
  if constexpr (Op == BinaryOp::kNe) return x != y;
  if constexpr (Op == BinaryOp::kLt) return x < y;
  if constexpr (Op == BinaryOp::kLe) return x <= y;
  if constexpr (Op == BinaryOp::kGt) return x > y;
  if constexpr (Op == BinaryOp::kGe) return x >= y;
  return false;
}

/// One selection-vector pass of `col[sel[i]] Op lit` with an int64 literal:
/// int64 cells take the inline compare, anything else (NULL, ALL, float,
/// string) the slow path.
template <BinaryOp Op>
int FilterIntLit(const Value* col, int64_t lit, const Value& lit_v, uint32_t* sel,
                 int count) {
  int out = 0;
  for (int i = 0; i < count; ++i) {
    const uint32_t idx = sel[i];
    const Value& v = col[idx];
    const bool keep =
        v.is_int64() ? CmpInt<Op>(v.int64(), lit) : KeepCompareSlow(Op, v, lit_v);
    sel[out] = idx;
    out += static_cast<int>(keep);
  }
  return out;
}

template <BinaryOp Op>
int FilterDoubleLit(const Value* col, double lit, const Value& lit_v, uint32_t* sel,
                    int count) {
  int out = 0;
  for (int i = 0; i < count; ++i) {
    const uint32_t idx = sel[i];
    const Value& v = col[idx];
    const bool keep = v.is_numeric() ? CmpDouble<Op>(v.AsDouble(), lit)
                                     : KeepCompareSlow(Op, v, lit_v);
    sel[out] = idx;
    out += static_cast<int>(keep);
  }
  return out;
}

template <BinaryOp Op>
int FilterStringLit(const Value* col, const std::string& lit, const Value& lit_v,
                    uint32_t* sel, int count) {
  int out = 0;
  for (int i = 0; i < count; ++i) {
    const uint32_t idx = sel[i];
    const Value& v = col[idx];
    bool keep;
    if (v.is_string()) {
      const int c = v.string().compare(lit);
      keep = CmpInt<Op>(c, 0);
    } else {
      keep = KeepCompareSlow(Op, v, lit_v);
    }
    sel[out] = idx;
    out += static_cast<int>(keep);
  }
  return out;
}

template <BinaryOp Op>
int FilterCompare(const Value* col, const Value& lit, uint32_t* sel, int count) {
  if (lit.is_int64()) return FilterIntLit<Op>(col, lit.int64(), lit, sel, count);
  if (lit.is_float64()) return FilterDoubleLit<Op>(col, lit.float64(), lit, sel, count);
  if (lit.is_string()) return FilterStringLit<Op>(col, lit.string(), lit, sel, count);
  // NULL/ALL literal: no typed fast path, defer every cell.
  int out = 0;
  for (int i = 0; i < count; ++i) {
    const uint32_t idx = sel[i];
    sel[out] = idx;
    out += static_cast<int>(KeepCompareSlow(Op, col[idx], lit));
  }
  return out;
}

int DispatchCompare(BinaryOp op, const Value* col, const Value& lit, uint32_t* sel,
                    int count) {
  switch (op) {
    case BinaryOp::kEq:
      return FilterCompare<BinaryOp::kEq>(col, lit, sel, count);
    case BinaryOp::kNe:
      return FilterCompare<BinaryOp::kNe>(col, lit, sel, count);
    case BinaryOp::kLt:
      return FilterCompare<BinaryOp::kLt>(col, lit, sel, count);
    case BinaryOp::kLe:
      return FilterCompare<BinaryOp::kLe>(col, lit, sel, count);
    case BinaryOp::kGt:
      return FilterCompare<BinaryOp::kGt>(col, lit, sel, count);
    case BinaryOp::kGe:
      return FilterCompare<BinaryOp::kGe>(col, lit, sel, count);
    default:
      return count;  // unreachable: Compile only admits comparison ops
  }
}

/// IN-list membership with MatchesEq semantics (ALL wildcard), as the
/// compiled kIn closure evaluates it.
inline bool MatchesAny(const Value& v, const std::vector<Value>& cands) {
  for (const Value& c : cands) {
    if (v.MatchesEq(c)) return true;
  }
  return false;
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // =, <> are symmetric
  }
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsDetailColumn(const ExprPtr& e) {
  return e->kind() == ExprKind::kColumnRef && e->side() == Side::kDetail;
}

}  // namespace

Result<PredicateKernels> PredicateKernels::Compile(
    const std::vector<ExprPtr>& conjuncts, const Schema& detail_schema) {
  PredicateKernels k;
  for (const ExprPtr& e : conjuncts) {
    Pred p;
    if (e->kind() == ExprKind::kBinary && IsComparison(e->binary_op())) {
      const ExprPtr& l = e->left();
      const ExprPtr& r = e->right();
      if (IsDetailColumn(l) && r->kind() == ExprKind::kLiteral) {
        MDJ_ASSIGN_OR_RETURN(p.col, detail_schema.GetFieldIndex(l->column_name()));
        p.kind = PredKind::kCompare;
        p.op = e->binary_op();
        p.literal = r->literal();
      } else if (IsDetailColumn(r) && l->kind() == ExprKind::kLiteral) {
        MDJ_ASSIGN_OR_RETURN(p.col, detail_schema.GetFieldIndex(r->column_name()));
        p.kind = PredKind::kCompare;
        p.op = FlipComparison(e->binary_op());
        p.literal = l->literal();
      }
    } else if (e->kind() == ExprKind::kIn && IsDetailColumn(e->operand())) {
      MDJ_ASSIGN_OR_RETURN(p.col,
                           detail_schema.GetFieldIndex(e->operand()->column_name()));
      p.kind = PredKind::kInList;
      p.candidates = e->candidates();
    }
    if (p.kind == PredKind::kGeneric) {
      MDJ_ASSIGN_OR_RETURN(p.generic,
                           CompileExpr(e, /*base_schema=*/nullptr, &detail_schema));
    } else {
      ++k.num_columnar_;
    }
    k.preds_.push_back(std::move(p));
  }
  // Columnar kernels first: they are cheaper per row than the generic
  // fallback, so they should shrink the selection vector before it runs.
  // Order among conjuncts cannot change results (pure predicates, AND).
  std::stable_partition(k.preds_.begin(), k.preds_.end(), [](const Pred& p) {
    return p.kind != PredKind::kGeneric;
  });
  return k;
}

int PredicateKernels::FilterBlock(const Table& detail, int64_t block_start,
                                  uint32_t* sel, int count, KernelStats* stats) const {
  for (const Pred& p : preds_) {
    if (count == 0) break;
    switch (p.kind) {
      case PredKind::kCompare: {
        const Value* col = detail.column(p.col).data() + block_start;
        count = DispatchCompare(p.op, col, p.literal, sel, count);
        ++stats->kernel_invocations;
        break;
      }
      case PredKind::kInList: {
        const Value* col = detail.column(p.col).data() + block_start;
        int out = 0;
        for (int i = 0; i < count; ++i) {
          const uint32_t idx = sel[i];
          sel[out] = idx;
          out += static_cast<int>(MatchesAny(col[idx], p.candidates));
        }
        count = out;
        ++stats->kernel_invocations;
        break;
      }
      case PredKind::kGeneric: {
        RowCtx ctx;
        ctx.detail = &detail;
        int out = 0;
        for (int i = 0; i < count; ++i) {
          const uint32_t idx = sel[i];
          ctx.detail_row = block_start + idx;
          sel[out] = idx;
          out += static_cast<int>(p.generic.EvalBool(ctx));
        }
        stats->fallback_rows += count;
        count = out;
        break;
      }
    }
  }
  return count;
}

}  // namespace mdjoin
