#include "expr/compile.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "common/logging.h"
#include "expr/eval_ops.h"
#include "expr/verifier.h"
#include "obs/metrics.h"

namespace mdjoin {

namespace {

using EvalFn = std::function<Value(const RowCtx&)>;

struct Compiled {
  EvalFn fn;
  DataType type;
};

using expr_internal::EvalArith;
using expr_internal::EvalCompare;

/// MDJOIN_THETA_BYTECODE=0 forces every CompiledExpr onto the closure tree —
/// the process-wide kill-switch for bisecting a suspected interpreter bug
/// without recompiling.
bool BytecodeEnabled() {
  static const bool enabled = [] {
    const char* e = std::getenv("MDJOIN_THETA_BYTECODE");
    return e == nullptr || std::string_view(e) != "0";
  }();
  return enabled;
}

/// Mirrors analyze/plan_invariants' VerifyPlansEnabledByEnv. Duplicated here
/// because mdj_expr sits below mdj_plananalyze in the layering: under
/// MDJOIN_VERIFY_PLANS a bytecode program that fails verification is a hard
/// compile error; otherwise it is a soft diagnostic and the expression falls
/// back to the closure tree.
bool HardVerifyEnabled() {
  static const bool enabled = [] {
    const char* e = std::getenv("MDJOIN_VERIFY_PLANS");
    return e != nullptr && std::string_view(e) != "0" && std::string_view(e) != "";
  }();
  return enabled;
}

Result<Compiled> CompileRec(const ExprPtr& expr, const Schema* base,
                            const Schema* detail) {
  switch (expr->kind()) {
    case ExprKind::kLiteral: {
      Value v = expr->literal();
      DataType t = DataType::kInt64;
      if (Result<DataType> rt = v.Type(); rt.ok()) t = *rt;
      return Compiled{[v](const RowCtx&) { return v; }, t};
    }
    case ExprKind::kColumnRef: {
      const Schema* schema = expr->side() == Side::kBase ? base : detail;
      const char* side_name = expr->side() == Side::kBase ? "base" : "detail";
      if (schema == nullptr) {
        return Status::BindError("column ", expr->ToString(), " references the ",
                                 side_name, " side, which is absent in this context");
      }
      MDJ_ASSIGN_OR_RETURN(int idx, schema->GetFieldIndex(expr->column_name()));
      DataType t = schema->field(idx).type;
      if (expr->side() == Side::kBase) {
        return Compiled{[idx](const RowCtx& ctx) {
                          MDJ_DCHECK(ctx.base != nullptr);
                          return ctx.base->Get(ctx.base_row, idx);
                        },
                        t};
      }
      return Compiled{[idx](const RowCtx& ctx) {
                        MDJ_DCHECK(ctx.detail != nullptr);
                        return ctx.detail->Get(ctx.detail_row, idx);
                      },
                      t};
    }
    case ExprKind::kUnary: {
      MDJ_ASSIGN_OR_RETURN(Compiled in, CompileRec(expr->operand(), base, detail));
      EvalFn f = std::move(in.fn);
      switch (expr->unary_op()) {
        case UnaryOp::kNot:
          return Compiled{[f](const RowCtx& ctx) {
                            Value v = f(ctx);
                            if (v.is_null()) return Value::Bool(false);
                            return Value::Bool(!v.IsTruthy());
                          },
                          DataType::kInt64};
        case UnaryOp::kNegate:
          return Compiled{[f](const RowCtx& ctx) {
                            Value v = f(ctx);
                            if (v.is_int64()) return Value::Int64(-v.int64());
                            if (v.is_float64()) return Value::Float64(-v.float64());
                            return Value::Null();
                          },
                          in.type};
        case UnaryOp::kIsNull:
          return Compiled{[f](const RowCtx& ctx) { return Value::Bool(f(ctx).is_null()); },
                          DataType::kInt64};
      }
      return Status::Internal("unreachable unary op");
    }
    case ExprKind::kIn: {
      MDJ_ASSIGN_OR_RETURN(Compiled in, CompileRec(expr->operand(), base, detail));
      EvalFn f = std::move(in.fn);
      std::vector<Value> cands = expr->candidates();
      return Compiled{[f, cands](const RowCtx& ctx) {
                        Value v = f(ctx);
                        for (const Value& c : cands) {
                          if (v.MatchesEq(c)) return Value::Bool(true);
                        }
                        return Value::Bool(false);
                      },
                      DataType::kInt64};
    }
    case ExprKind::kCase: {
      struct CompiledArm {
        EvalFn when;
        EvalFn then;
      };
      auto arms = std::make_shared<std::vector<CompiledArm>>();
      DataType result_type = DataType::kInt64;
      bool saw_float = false, saw_string = false, saw_numeric = false;
      for (const auto& [when_ast, then_ast] : expr->when_then()) {
        MDJ_ASSIGN_OR_RETURN(Compiled when, CompileRec(when_ast, base, detail));
        MDJ_ASSIGN_OR_RETURN(Compiled then, CompileRec(then_ast, base, detail));
        saw_float = saw_float || then.type == DataType::kFloat64;
        saw_numeric = saw_numeric || IsNumeric(then.type);
        saw_string = saw_string || then.type == DataType::kString;
        arms->push_back({std::move(when.fn), std::move(then.fn)});
      }
      EvalFn else_fn;
      if (expr->else_expr() != nullptr) {
        MDJ_ASSIGN_OR_RETURN(Compiled els, CompileRec(expr->else_expr(), base, detail));
        saw_float = saw_float || els.type == DataType::kFloat64;
        saw_numeric = saw_numeric || IsNumeric(els.type);
        saw_string = saw_string || els.type == DataType::kString;
        else_fn = std::move(els.fn);
      }
      if (saw_string && saw_numeric) {
        return Status::TypeError("CASE arms mix string and numeric results");
      }
      if (saw_string) {
        result_type = DataType::kString;
      } else if (saw_float) {
        result_type = DataType::kFloat64;
      }
      return Compiled{[arms, else_fn](const RowCtx& ctx) {
                        for (const CompiledArm& arm : *arms) {
                          if (arm.when(ctx).IsTruthy()) return arm.then(ctx);
                        }
                        return else_fn ? else_fn(ctx) : Value::Null();
                      },
                      result_type};
    }
    case ExprKind::kBinary: {
      MDJ_ASSIGN_OR_RETURN(Compiled lhs, CompileRec(expr->left(), base, detail));
      MDJ_ASSIGN_OR_RETURN(Compiled rhs, CompileRec(expr->right(), base, detail));
      EvalFn lf = std::move(lhs.fn), rf = std::move(rhs.fn);
      BinaryOp op = expr->binary_op();
      switch (op) {
        case BinaryOp::kAnd:
          return Compiled{[lf, rf](const RowCtx& ctx) {
                            if (!lf(ctx).IsTruthy()) return Value::Bool(false);
                            return Value::Bool(rf(ctx).IsTruthy());
                          },
                          DataType::kInt64};
        case BinaryOp::kOr:
          return Compiled{[lf, rf](const RowCtx& ctx) {
                            if (lf(ctx).IsTruthy()) return Value::Bool(true);
                            return Value::Bool(rf(ctx).IsTruthy());
                          },
                          DataType::kInt64};
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return Compiled{[lf, rf, op](const RowCtx& ctx) {
                            return EvalCompare(op, lf(ctx), rf(ctx));
                          },
                          DataType::kInt64};
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: {
          DataType t = DataType::kFloat64;
          if (IsNumeric(lhs.type) && IsNumeric(rhs.type) && op != BinaryOp::kDiv) {
            t = CommonNumericType(lhs.type, rhs.type);
          }
          return Compiled{[lf, rf, op](const RowCtx& ctx) {
                            return EvalArith(op, lf(ctx), rf(ctx));
                          },
                          t};
        }
      }
      return Status::Internal("unreachable binary op");
    }
  }
  return Status::Internal("unreachable expr kind");
}

}  // namespace

Result<CompiledExpr> CompileExpr(const ExprPtr& expr, const Schema* base_schema,
                                 const Schema* detail_schema) {
  if (expr == nullptr) return Status::InvalidArgument("CompileExpr: null expression");
  MDJ_ASSIGN_OR_RETURN(Compiled c, CompileRec(expr, base_schema, detail_schema));
  CompiledExpr out;
  out.fn_ = std::move(c.fn);
  out.result_type_ = c.type;
  if (BytecodeEnabled()) {
    // Lower to bytecode only after the closure tree compiled: binding and
    // type errors are reported once, by one compiler.
    MDJ_ASSIGN_OR_RETURN(BytecodeExpr bc,
                         BytecodeExpr::Compile(expr, base_schema, detail_schema));
    // Every program is verified before it may execute: stack safety, operand
    // validity, forward-only jumps (termination). An emitter bug is a
    // load-time rejection under MDJOIN_VERIFY_PLANS and a diagnosed
    // fall-back to the closure tree otherwise — never a wrong answer.
    VerifierReport report = VerifyBytecode(bc, base_schema, detail_schema);
    if (report.ok()) {
      static Counter* verified = MetricsRegistry::Global().GetCounter(
          "mdjoin_theta_verified_total",
          "θ bytecode programs that passed the static verifier");
      verified->Increment();
      out.bc_ = std::make_shared<const BytecodeExpr>(std::move(bc));
    } else if (HardVerifyEnabled()) {
      return report.ToStatus();
    } else {
      std::fprintf(stderr, "mdjoin: θ bytecode failed verification for %s: %s\n",
                   expr->ToString().c_str(), report.ToStatus().message().c_str());
    }
  }
  return out;
}

Result<Value> EvalConstExpr(const ExprPtr& expr) {
  if (expr->ReferencesSide(Side::kBase) || expr->ReferencesSide(Side::kDetail)) {
    return Status::InvalidArgument("EvalConstExpr: expression references columns: ",
                                   expr->ToString());
  }
  MDJ_ASSIGN_OR_RETURN(CompiledExpr c, CompileExpr(expr, nullptr, nullptr));
  RowCtx ctx;
  return c.Eval(ctx);
}

}  // namespace mdjoin
