#include "expr/verifier.h"

#include <optional>

#include "common/string_util.h"

namespace mdjoin {

namespace {

using Instr = BytecodeExpr::Instr;
using OpCode = BytecodeExpr::OpCode;

constexpr uint8_t kMaxOpCode = static_cast<uint8_t>(OpCode::kJumpIfNotTruthy);

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kPushLit: return "kPushLit";
    case OpCode::kPushNull: return "kPushNull";
    case OpCode::kLoadBase: return "kLoadBase";
    case OpCode::kLoadDetail: return "kLoadDetail";
    case OpCode::kNot: return "kNot";
    case OpCode::kNegate: return "kNegate";
    case OpCode::kIsNull: return "kIsNull";
    case OpCode::kIn: return "kIn";
    case OpCode::kCompare: return "kCompare";
    case OpCode::kArith: return "kArith";
    case OpCode::kAndJump: return "kAndJump";
    case OpCode::kOrJump: return "kOrJump";
    case OpCode::kToBool: return "kToBool";
    case OpCode::kJump: return "kJump";
    case OpCode::kJumpIfNotTruthy: return "kJumpIfNotTruthy";
  }
  return "<bad opcode>";
}

bool IsCompareOp(uint8_t u8) {
  BinaryOp op = static_cast<BinaryOp>(u8);
  return op == BinaryOp::kEq || op == BinaryOp::kNe || op == BinaryOp::kLt ||
         op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;
}

bool IsArithOp(uint8_t u8) {
  BinaryOp op = static_cast<BinaryOp>(u8);
  return op == BinaryOp::kAdd || op == BinaryOp::kSub || op == BinaryOp::kMul ||
         op == BinaryOp::kDiv || op == BinaryOp::kMod;
}

/// The whole forward pass, accumulating into a report. The abstract state per
/// pc is just the stack depth (the operand stack is dynamically typed — every
/// slot holds a Value — so depth is the only structural property Eval relies
/// on). `depth_at[pc]` is unset until some control path reaches pc.
class Verifier {
 public:
  Verifier(const std::vector<Instr>& code, int num_literals, int num_in_lists,
           int num_base_columns, int num_detail_columns)
      : code_(code),
        n_(static_cast<int>(code.size())),
        num_literals_(num_literals),
        num_in_lists_(num_in_lists),
        num_base_columns_(num_base_columns),
        num_detail_columns_(num_detail_columns) {
    depth_at_.assign(static_cast<size_t>(n_) + 1, kUnset);
  }

  VerifierReport Run() {
    if (n_ == 0) {
      Error(VerifyErrorCode::kEmptyProgram, 0, "program has no instructions");
      return std::move(report_);
    }
    depth_at_[0] = 0;
    for (int pc = 0; pc < n_ && report_.ok(); ++pc) {
      if (depth_at_[pc] == kUnset) {
        Warn(VerifyErrorCode::kUnreachableCode, pc,
             StrCat(OpCodeName(code_[pc].op), " is unreachable"));
        continue;
      }
      Step(pc);
      report_.verified_instrs = pc + 1;
    }
    if (report_.ok()) {
      // Halt state: pc == n. Every terminating path merged its depth here.
      if (depth_at_[n_] == kUnset) {
        // Cannot happen with forward-only verified jumps (the last
        // instruction always flows or jumps to n), but keep the check total.
        Error(VerifyErrorCode::kBadResultArity, n_, "no control path reaches the halt state");
      } else if (depth_at_[n_] != 1) {
        Error(VerifyErrorCode::kBadResultArity, n_,
              StrCat("program halts with stack depth ", depth_at_[n_], ", expected 1"));
      }
    }
    return std::move(report_);
  }

 private:
  static constexpr int kUnset = -1;

  void Error(VerifyErrorCode code, int pc, std::string message) {
    report_.diagnostics.push_back({code, pc, true, std::move(message)});
  }
  void Warn(VerifyErrorCode code, int pc, std::string message) {
    report_.diagnostics.push_back({code, pc, false, std::move(message)});
  }

  /// Checks one pop of `pops` values at `pc`. Returns false on underflow.
  bool NeedDepth(int pc, int depth, int pops) {
    if (depth >= pops) return true;
    Error(VerifyErrorCode::kStackUnderflow, pc,
          StrCat(OpCodeName(code_[pc].op), " pops ", pops, " value", pops == 1 ? "" : "s",
                 " but the stack holds ", depth));
    return false;
  }

  /// Validates a jump operand and merges `depth` into its target. Targets
  /// must be strictly forward (termination certificate: pc is monotone along
  /// every edge) and may equal n — jumping to n halts the program.
  void MergeJump(int pc, int depth) {
    int target = code_[pc].a;
    if (target <= pc) {
      Error(VerifyErrorCode::kBackwardJump, pc,
            StrCat(OpCodeName(code_[pc].op), " target ", target,
                   " is not strictly forward (breaks the termination proof)"));
      return;
    }
    if (target > n_) {
      Error(VerifyErrorCode::kBadJumpTarget, pc,
            StrCat(OpCodeName(code_[pc].op), " target ", target, " is past the program end ",
                   n_));
      return;
    }
    Merge(pc, target, depth);
  }

  /// Merges an inflowing stack depth into `target`'s state. All predecessors
  /// of a merge point must agree on depth — Eval has a single stack pointer,
  /// so a disagreement means some path reads or leaks stack slots.
  void Merge(int pc, int target, int depth) {
    if (depth_at_[target] == kUnset) {
      depth_at_[target] = depth;
      if (depth > report_.max_stack_depth) report_.max_stack_depth = depth;
      return;
    }
    if (depth_at_[target] != depth) {
      Error(VerifyErrorCode::kStackDepthMismatch, pc,
            StrCat("edge from pc ", pc, " reaches pc ", target, " with stack depth ", depth,
                   " but another path arrives with depth ", depth_at_[target]));
    }
  }

  void Step(int pc) {
    const Instr& ins = code_[pc];
    int depth = depth_at_[pc];
    if (static_cast<uint8_t>(ins.op) > kMaxOpCode) {
      Error(VerifyErrorCode::kBadOpcode, pc,
            StrCat("opcode byte ", static_cast<int>(ins.op), " is outside the ISA"));
      return;
    }
    switch (ins.op) {
      case OpCode::kPushLit:
        if (ins.a < 0 || ins.a >= num_literals_) {
          Error(VerifyErrorCode::kBadLiteralIndex, pc,
                StrCat("literal index ", ins.a, " outside pool of ", num_literals_));
          return;
        }
        Merge(pc, pc + 1, depth + 1);
        return;
      case OpCode::kPushNull:
        Merge(pc, pc + 1, depth + 1);
        return;
      case OpCode::kLoadBase:
      case OpCode::kLoadDetail: {
        bool is_base = ins.op == OpCode::kLoadBase;
        int num_columns = is_base ? num_base_columns_ : num_detail_columns_;
        if (num_columns < 0) {
          Error(VerifyErrorCode::kMissingSide, pc,
                StrCat(OpCodeName(ins.op), " but the ", is_base ? "base" : "detail",
                       " side is absent in this context"));
          return;
        }
        if (ins.a < 0 || ins.a >= num_columns) {
          Error(VerifyErrorCode::kBadColumnIndex, pc,
                StrCat("column index ", ins.a, " outside the ", is_base ? "base" : "detail",
                       " schema of ", num_columns, " columns"));
          return;
        }
        Merge(pc, pc + 1, depth + 1);
        return;
      }
      case OpCode::kNot:
      case OpCode::kNegate:
      case OpCode::kIsNull:
      case OpCode::kToBool:
        if (!NeedDepth(pc, depth, 1)) return;
        Merge(pc, pc + 1, depth);  // replaces the top slot
        return;
      case OpCode::kIn:
        if (ins.a < 0 || ins.a >= num_in_lists_) {
          Error(VerifyErrorCode::kBadInListIndex, pc,
                StrCat("in-list index ", ins.a, " outside pool of ", num_in_lists_));
          return;
        }
        if (!NeedDepth(pc, depth, 1)) return;
        Merge(pc, pc + 1, depth);
        return;
      case OpCode::kCompare:
      case OpCode::kArith: {
        bool ok = ins.op == OpCode::kCompare ? IsCompareOp(ins.u8) : IsArithOp(ins.u8);
        if (!ok) {
          Error(VerifyErrorCode::kBadOperandOp, pc,
                StrCat(OpCodeName(ins.op), " u8=", static_cast<int>(ins.u8), " is not a ",
                       ins.op == OpCode::kCompare ? "comparison" : "arithmetic",
                       " operator"));
          return;
        }
        if (!NeedDepth(pc, depth, 2)) return;
        Merge(pc, pc + 1, depth - 1);
        return;
      }
      case OpCode::kAndJump:
      case OpCode::kOrJump:
        // Taken: the top slot is replaced by the short-circuit Bool and
        // control lands at the merge point with depth unchanged. Not taken:
        // the operand is popped; the right operand and its trailing kToBool
        // rebuild depth before the same merge point.
        if (!NeedDepth(pc, depth, 1)) return;
        MergeJump(pc, depth);
        Merge(pc, pc + 1, depth - 1);
        return;
      case OpCode::kJump:
        MergeJump(pc, depth);
        return;  // no fall-through edge
      case OpCode::kJumpIfNotTruthy:
        if (!NeedDepth(pc, depth, 1)) return;
        MergeJump(pc, depth - 1);
        Merge(pc, pc + 1, depth - 1);
        return;
    }
    Error(VerifyErrorCode::kBadOpcode, pc,
          StrCat("opcode byte ", static_cast<int>(ins.op), " is outside the ISA"));
  }

  const std::vector<Instr>& code_;
  const int n_;
  const int num_literals_;
  const int num_in_lists_;
  const int num_base_columns_;
  const int num_detail_columns_;
  std::vector<int> depth_at_;
  VerifierReport report_;
};

}  // namespace

const char* VerifyErrorCodeName(VerifyErrorCode code) {
  switch (code) {
    case VerifyErrorCode::kEmptyProgram: return "V001";
    case VerifyErrorCode::kBadOpcode: return "V002";
    case VerifyErrorCode::kBadOperandOp: return "V003";
    case VerifyErrorCode::kBadLiteralIndex: return "V004";
    case VerifyErrorCode::kBadInListIndex: return "V005";
    case VerifyErrorCode::kBadColumnIndex: return "V006";
    case VerifyErrorCode::kMissingSide: return "V007";
    case VerifyErrorCode::kBadJumpTarget: return "V008";
    case VerifyErrorCode::kBackwardJump: return "V009";
    case VerifyErrorCode::kStackUnderflow: return "V010";
    case VerifyErrorCode::kStackDepthMismatch: return "V011";
    case VerifyErrorCode::kBadResultArity: return "V012";
    case VerifyErrorCode::kUnreachableCode: return "V100";
  }
  return "V???";
}

std::string VerifierDiagnostic::ToString() const {
  return StrCat("[", VerifyErrorCodeName(code), "] pc ", pc, ": ", message);
}

bool VerifierReport::ok() const {
  for (const VerifierDiagnostic& d : diagnostics) {
    if (d.is_error) return false;
  }
  return true;
}

Status VerifierReport::ToStatus() const {
  int errors = 0;
  const VerifierDiagnostic* first = nullptr;
  for (const VerifierDiagnostic& d : diagnostics) {
    if (!d.is_error) continue;
    if (first == nullptr) first = &d;
    ++errors;
  }
  if (first == nullptr) return Status::OK();
  return Status::InvalidArgument("bytecode verification failed: ", first->ToString(),
                                 errors > 1 ? StrCat(" (+", errors - 1, " more)") : "");
}

std::string VerifierReport::ToString() const {
  if (ok() && diagnostics.empty()) {
    return StrCat("verified: ", verified_instrs, " instrs, max stack ", max_stack_depth);
  }
  std::string out = ok() ? "verified (with warnings):" : "REJECTED:";
  for (const VerifierDiagnostic& d : diagnostics) {
    out += "\n  " + d.ToString();
  }
  return out;
}

VerifierReport VerifyBytecodeProgram(const std::vector<BytecodeExpr::Instr>& code,
                                     int num_literals, int num_in_lists,
                                     int num_base_columns, int num_detail_columns) {
  return Verifier(code, num_literals, num_in_lists, num_base_columns, num_detail_columns)
      .Run();
}

VerifierReport VerifyBytecode(const BytecodeExpr& bc, const Schema* base_schema,
                              const Schema* detail_schema) {
  return VerifyBytecodeProgram(bc.code(), static_cast<int>(bc.literals().size()),
                               static_cast<int>(bc.in_lists().size()),
                               base_schema == nullptr ? -1 : base_schema->num_fields(),
                               detail_schema == nullptr ? -1 : detail_schema->num_fields());
}

}  // namespace mdjoin
