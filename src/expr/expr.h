#ifndef MDJOIN_EXPR_EXPR_H_
#define MDJOIN_EXPR_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "types/value.h"

namespace mdjoin {

/// Which relation a column reference resolves against. An MD-join θ-condition
/// (Definition 3.1) ranges over attributes of both the base-values relation B
/// and the detail relation R; single-table expressions (σ predicates,
/// projections) use kDetail only.
enum class Side {
  kBase,    // B, the base-values relation
  kDetail,  // R, the detail relation
};

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kIn,
  kCase,  // CASE WHEN c1 THEN v1 [WHEN ...] [ELSE e] END
};

enum class UnaryOp { kNot, kNegate, kIsNull };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,  // θ-equality: ALL is a wildcard (see Value::MatchesEq)
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinaryOpToString(BinaryOp op);
const char* UnaryOpToString(UnaryOp op);

class Expr;
/// Expressions are immutable and shared; compilation against schemas happens
/// separately (see compile.h), so one Expr can be reused across plans.
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression-tree node.
///
/// Semantics notes:
///  - Predicates evaluate to Int64 0/1.
///  - Comparisons and arithmetic involving NULL yield false / NULL (SQL-ish
///    two-valued logic: AND/OR treat NULL as false).
///  - kEq uses θ-equality, so a base row whose cube attribute is ALL matches
///    every detail value — exactly the paper's multi-granularity semantics.
///    Ordered comparisons (<, <=, >, >=) involving ALL are false.
class Expr {
 public:
  static ExprPtr Literal(Value v);
  static ExprPtr ColumnRef(Side side, std::string name);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr left, ExprPtr right);
  static ExprPtr In(ExprPtr operand, std::vector<Value> candidates);
  /// CASE WHEN ... THEN ... [ELSE else_expr] END; else_expr may be null
  /// (missing ELSE yields NULL). The SQL idiom behind conditional
  /// aggregation — sum(case when state = 'NY' then sale end) — which is the
  /// standard way to emulate the pivoting the MD-join does natively.
  static ExprPtr Case(std::vector<std::pair<ExprPtr, ExprPtr>> when_then,
                      ExprPtr else_expr);

  ExprKind kind() const { return kind_; }

  // kLiteral
  const Value& literal() const { return literal_; }
  // kColumnRef
  Side side() const { return side_; }
  const std::string& column_name() const { return name_; }
  // kUnary / kBinary / kIn
  UnaryOp unary_op() const { return unary_op_; }
  BinaryOp binary_op() const { return binary_op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  const ExprPtr& operand() const { return left_; }
  const std::vector<Value>& candidates() const { return candidates_; }
  // kCase
  const std::vector<std::pair<ExprPtr, ExprPtr>>& when_then() const {
    return when_then_;
  }
  const ExprPtr& else_expr() const { return left_; }  // may be null

  /// True if any column reference on `side` occurs in this subtree.
  bool ReferencesSide(Side side) const;

  /// Collects the names referenced on `side`.
  void CollectColumns(Side side, std::set<std::string>* out) const;
  std::set<std::string> ReferencedColumns(Side side) const;

  /// Structurally rewrites every column reference on `from` to `to`
  /// (Observation 4.1 uses this to transfer a B-side selection to R).
  static ExprPtr RemapSide(const ExprPtr& e, Side from, Side to);

  /// Structurally rewrites column names on `side` via parallel vectors.
  static ExprPtr RenameColumns(const ExprPtr& e, Side side,
                               const std::vector<std::string>& from,
                               const std::vector<std::string>& to);

  /// Replaces each reference to column `name` on `side` with the paired
  /// expression (Observation 4.1 substitutes B-attribute references with the
  /// corresponding R-side key expressions). References not in the map are
  /// left intact.
  static ExprPtr SubstituteColumns(
      const ExprPtr& e, Side side,
      const std::vector<std::pair<std::string, ExprPtr>>& replacements);

  /// Readable rendering, e.g. "(R.cust = B.cust and R.state = 'NY')".
  std::string ToString() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  Value literal_;
  Side side_ = Side::kDetail;
  std::string name_;
  UnaryOp unary_op_ = UnaryOp::kNot;
  BinaryOp binary_op_ = BinaryOp::kAnd;
  ExprPtr left_;
  ExprPtr right_;
  std::vector<Value> candidates_;
  std::vector<std::pair<ExprPtr, ExprPtr>> when_then_;
};

/// Terse factory helpers; the intended way to write conditions in C++:
///
///   using namespace mdjoin::dsl;
///   ExprPtr theta = And(Eq(RCol("cust"), BCol("cust")),
///                       Eq(RCol("state"), Lit("NY")));
namespace dsl {

inline ExprPtr Lit(int64_t v) { return Expr::Literal(Value::Int64(v)); }
inline ExprPtr Lit(int v) { return Expr::Literal(Value::Int64(v)); }
inline ExprPtr Lit(double v) { return Expr::Literal(Value::Float64(v)); }
inline ExprPtr Lit(const char* v) { return Expr::Literal(Value::String(v)); }
inline ExprPtr Lit(std::string v) { return Expr::Literal(Value::String(std::move(v))); }
inline ExprPtr Lit(Value v) { return Expr::Literal(std::move(v)); }

/// Reference into the base-values relation B.
inline ExprPtr BCol(std::string name) {
  return Expr::ColumnRef(Side::kBase, std::move(name));
}
/// Reference into the detail relation R.
inline ExprPtr RCol(std::string name) {
  return Expr::ColumnRef(Side::kDetail, std::move(name));
}
/// Single-table contexts (σ predicates, projections) resolve kDetail refs.
inline ExprPtr Col(std::string name) { return RCol(std::move(name)); }

inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kNe, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kGe, std::move(a), std::move(b));
}
inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kAnd, std::move(a), std::move(b));
}
template <typename... Rest>
inline ExprPtr And(ExprPtr a, ExprPtr b, Rest... rest) {
  return And(And(std::move(a), std::move(b)), std::move(rest)...);
}
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kOr, std::move(a), std::move(b));
}
inline ExprPtr Not(ExprPtr a) { return Expr::Unary(UnaryOp::kNot, std::move(a)); }
inline ExprPtr Neg(ExprPtr a) { return Expr::Unary(UnaryOp::kNegate, std::move(a)); }
inline ExprPtr IsNull(ExprPtr a) { return Expr::Unary(UnaryOp::kIsNull, std::move(a)); }
inline ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr Div(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kDiv, std::move(a), std::move(b));
}
inline ExprPtr Mod(ExprPtr a, ExprPtr b) {
  return Expr::Binary(BinaryOp::kMod, std::move(a), std::move(b));
}
inline ExprPtr Between(ExprPtr e, ExprPtr lo, ExprPtr hi) {
  ExprPtr e_copy = e;
  return And(Ge(std::move(e_copy), std::move(lo)), Le(std::move(e), std::move(hi)));
}
inline ExprPtr In(ExprPtr e, std::vector<Value> candidates) {
  return Expr::In(std::move(e), std::move(candidates));
}
inline ExprPtr CaseWhen(std::vector<std::pair<ExprPtr, ExprPtr>> when_then,
                        ExprPtr else_expr = nullptr) {
  return Expr::Case(std::move(when_then), std::move(else_expr));
}
inline ExprPtr True() { return Lit(int64_t{1}); }
inline ExprPtr False() { return Lit(int64_t{0}); }

}  // namespace dsl

}  // namespace mdjoin

#endif  // MDJOIN_EXPR_EXPR_H_
