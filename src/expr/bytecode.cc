#include "expr/bytecode.h"

#include <utility>

#include "common/logging.h"
#include "expr/eval_ops.h"
#include "table/table.h"

namespace mdjoin {

namespace {

using OpCode = BytecodeExpr::OpCode;
using Instr = BytecodeExpr::Instr;

const char* OpName(OpCode op) {
  switch (op) {
    case OpCode::kPushLit:
      return "push_lit";
    case OpCode::kPushNull:
      return "push_null";
    case OpCode::kLoadBase:
      return "load_base";
    case OpCode::kLoadDetail:
      return "load_detail";
    case OpCode::kNot:
      return "not";
    case OpCode::kNegate:
      return "negate";
    case OpCode::kIsNull:
      return "is_null";
    case OpCode::kIn:
      return "in";
    case OpCode::kCompare:
      return "compare";
    case OpCode::kArith:
      return "arith";
    case OpCode::kAndJump:
      return "and_jump";
    case OpCode::kOrJump:
      return "or_jump";
    case OpCode::kToBool:
      return "to_bool";
    case OpCode::kJump:
      return "jump";
    case OpCode::kJumpIfNotTruthy:
      return "jump_if_not";
  }
  return "?";
}

/// Recursive postfix emitter. Jump operands are patched as targets become
/// known; every case leaves exactly one more value on the evaluation stack.
struct Emitter {
  const Schema* base;
  const Schema* detail;
  std::vector<Instr> code;
  std::vector<Value> literals;
  std::vector<std::vector<Value>> in_lists;

  int32_t AddLiteral(Value v) {
    literals.push_back(std::move(v));
    return static_cast<int32_t>(literals.size()) - 1;
  }

  Status Emit(const ExprPtr& expr) {
    switch (expr->kind()) {
      case ExprKind::kLiteral:
        code.push_back({OpCode::kPushLit, 0, AddLiteral(expr->literal())});
        return Status::OK();
      case ExprKind::kColumnRef: {
        const Schema* schema = expr->side() == Side::kBase ? base : detail;
        const char* side_name = expr->side() == Side::kBase ? "base" : "detail";
        if (schema == nullptr) {
          return Status::BindError("column ", expr->ToString(), " references the ",
                                   side_name,
                                   " side, which is absent in this context");
        }
        MDJ_ASSIGN_OR_RETURN(int idx, schema->GetFieldIndex(expr->column_name()));
        code.push_back({expr->side() == Side::kBase ? OpCode::kLoadBase
                                                    : OpCode::kLoadDetail,
                        0, idx});
        return Status::OK();
      }
      case ExprKind::kUnary: {
        MDJ_RETURN_NOT_OK(Emit(expr->operand()));
        switch (expr->unary_op()) {
          case UnaryOp::kNot:
            code.push_back({OpCode::kNot, 0, 0});
            return Status::OK();
          case UnaryOp::kNegate:
            code.push_back({OpCode::kNegate, 0, 0});
            return Status::OK();
          case UnaryOp::kIsNull:
            code.push_back({OpCode::kIsNull, 0, 0});
            return Status::OK();
        }
        return Status::Internal("unreachable unary op");
      }
      case ExprKind::kIn: {
        MDJ_RETURN_NOT_OK(Emit(expr->operand()));
        in_lists.push_back(expr->candidates());
        code.push_back(
            {OpCode::kIn, 0, static_cast<int32_t>(in_lists.size()) - 1});
        return Status::OK();
      }
      case ExprKind::kCase: {
        std::vector<int32_t> arm_end_jumps;
        for (const auto& [when_ast, then_ast] : expr->when_then()) {
          MDJ_RETURN_NOT_OK(Emit(when_ast));
          const int32_t skip_arm = static_cast<int32_t>(code.size());
          code.push_back({OpCode::kJumpIfNotTruthy, 0, 0});
          MDJ_RETURN_NOT_OK(Emit(then_ast));
          arm_end_jumps.push_back(static_cast<int32_t>(code.size()));
          code.push_back({OpCode::kJump, 0, 0});
          code[skip_arm].a = static_cast<int32_t>(code.size());
        }
        if (expr->else_expr() != nullptr) {
          MDJ_RETURN_NOT_OK(Emit(expr->else_expr()));
        } else {
          code.push_back({OpCode::kPushNull, 0, 0});
        }
        const int32_t end = static_cast<int32_t>(code.size());
        for (int32_t j : arm_end_jumps) code[j].a = end;
        return Status::OK();
      }
      case ExprKind::kBinary: {
        const BinaryOp op = expr->binary_op();
        if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
          MDJ_RETURN_NOT_OK(Emit(expr->left()));
          const int32_t jump = static_cast<int32_t>(code.size());
          code.push_back(
              {op == BinaryOp::kAnd ? OpCode::kAndJump : OpCode::kOrJump, 0, 0});
          MDJ_RETURN_NOT_OK(Emit(expr->right()));
          code.push_back({OpCode::kToBool, 0, 0});
          code[jump].a = static_cast<int32_t>(code.size());
          return Status::OK();
        }
        MDJ_RETURN_NOT_OK(Emit(expr->left()));
        MDJ_RETURN_NOT_OK(Emit(expr->right()));
        switch (op) {
          case BinaryOp::kEq:
          case BinaryOp::kNe:
          case BinaryOp::kLt:
          case BinaryOp::kLe:
          case BinaryOp::kGt:
          case BinaryOp::kGe:
            code.push_back({OpCode::kCompare, static_cast<uint8_t>(op), 0});
            return Status::OK();
          case BinaryOp::kAdd:
          case BinaryOp::kSub:
          case BinaryOp::kMul:
          case BinaryOp::kDiv:
          case BinaryOp::kMod:
            code.push_back({OpCode::kArith, static_cast<uint8_t>(op), 0});
            return Status::OK();
          default:
            return Status::Internal("unreachable binary op");
        }
      }
    }
    return Status::Internal("unreachable expr kind");
  }
};

}  // namespace

Result<BytecodeExpr> BytecodeExpr::Compile(const ExprPtr& expr,
                                           const Schema* base_schema,
                                           const Schema* detail_schema) {
  if (expr == nullptr) {
    return Status::InvalidArgument("BytecodeExpr: null expression");
  }
  Emitter em{base_schema, detail_schema, {}, {}, {}};
  MDJ_RETURN_NOT_OK(em.Emit(expr));
  BytecodeExpr out;
  out.code_ = std::move(em.code);
  out.literals_ = std::move(em.literals);
  out.in_lists_ = std::move(em.in_lists);
  return out;
}

Value BytecodeExpr::Eval(const RowCtx& ctx) const {
  // One reusable stack per thread: clear() keeps capacity, so steady-state
  // evaluation allocates nothing.
  thread_local std::vector<Value> stack;
  stack.clear();
  const Instr* code = code_.data();
  const int n = static_cast<int>(code_.size());
  for (int pc = 0; pc < n; ++pc) {
    const Instr& ins = code[pc];
    switch (ins.op) {
      case OpCode::kPushLit:
        stack.push_back(literals_[ins.a]);
        break;
      case OpCode::kPushNull:
        stack.push_back(Value::Null());
        break;
      case OpCode::kLoadBase:
        MDJ_DCHECK(ctx.base != nullptr);
        stack.push_back(ctx.base->Get(ctx.base_row, ins.a));
        break;
      case OpCode::kLoadDetail:
        MDJ_DCHECK(ctx.detail != nullptr);
        stack.push_back(ctx.detail->Get(ctx.detail_row, ins.a));
        break;
      case OpCode::kNot: {
        Value& top = stack.back();
        top = top.is_null() ? Value::Bool(false) : Value::Bool(!top.IsTruthy());
        break;
      }
      case OpCode::kNegate: {
        Value& top = stack.back();
        if (top.is_int64()) {
          top = Value::Int64(-top.int64());
        } else if (top.is_float64()) {
          top = Value::Float64(-top.float64());
        } else {
          top = Value::Null();
        }
        break;
      }
      case OpCode::kIsNull: {
        Value& top = stack.back();
        top = Value::Bool(top.is_null());
        break;
      }
      case OpCode::kIn: {
        Value& top = stack.back();
        bool hit = false;
        for (const Value& c : in_lists_[ins.a]) {
          if (top.MatchesEq(c)) {
            hit = true;
            break;
          }
        }
        top = Value::Bool(hit);
        break;
      }
      case OpCode::kCompare: {
        Value b = std::move(stack.back());
        stack.pop_back();
        Value& a = stack.back();
        a = expr_internal::EvalCompare(static_cast<BinaryOp>(ins.u8), a, b);
        break;
      }
      case OpCode::kArith: {
        Value b = std::move(stack.back());
        stack.pop_back();
        Value& a = stack.back();
        a = expr_internal::EvalArith(static_cast<BinaryOp>(ins.u8), a, b);
        break;
      }
      case OpCode::kAndJump: {
        Value& top = stack.back();
        if (!top.IsTruthy()) {
          top = Value::Bool(false);
          pc = ins.a - 1;
        } else {
          stack.pop_back();
        }
        break;
      }
      case OpCode::kOrJump: {
        Value& top = stack.back();
        if (top.IsTruthy()) {
          top = Value::Bool(true);
          pc = ins.a - 1;
        } else {
          stack.pop_back();
        }
        break;
      }
      case OpCode::kToBool: {
        Value& top = stack.back();
        top = Value::Bool(top.IsTruthy());
        break;
      }
      case OpCode::kJump:
        pc = ins.a - 1;
        break;
      case OpCode::kJumpIfNotTruthy: {
        Value v = std::move(stack.back());
        stack.pop_back();
        if (!v.IsTruthy()) pc = ins.a - 1;
        break;
      }
    }
  }
  MDJ_DCHECK(stack.size() == 1);
  return std::move(stack.back());
}

std::string BytecodeExpr::ToString() const {
  std::string out;
  for (size_t i = 0; i < code_.size(); ++i) {
    const Instr& ins = code_[i];
    out += std::to_string(i) + ": " + OpName(ins.op);
    switch (ins.op) {
      case OpCode::kPushLit:
        out += " " + literals_[ins.a].ToString();
        break;
      case OpCode::kLoadBase:
      case OpCode::kLoadDetail:
        out += " col=" + std::to_string(ins.a);
        break;
      case OpCode::kIn:
        out += " list=" + std::to_string(ins.a) + " (" +
               std::to_string(in_lists_[ins.a].size()) + " cands)";
        break;
      case OpCode::kCompare:
      case OpCode::kArith:
        out += " op=" + std::to_string(static_cast<int>(ins.u8));
        break;
      case OpCode::kAndJump:
      case OpCode::kOrJump:
      case OpCode::kJump:
      case OpCode::kJumpIfNotTruthy:
        out += " -> " + std::to_string(ins.a);
        break;
      default:
        break;
    }
    out.push_back('\n');
  }
  return out;
}

BytecodeExpr BytecodeExpr::FromParts(std::vector<Instr> code, std::vector<Value> literals,
                                     std::vector<std::vector<Value>> in_lists) {
  BytecodeExpr bc;
  bc.code_ = std::move(code);
  bc.literals_ = std::move(literals);
  bc.in_lists_ = std::move(in_lists);
  return bc;
}

}  // namespace mdjoin
