#ifndef MDJOIN_EXPR_KERNELS_H_
#define MDJOIN_EXPR_KERNELS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/simd.h"
#include "expr/compile.h"
#include "expr/expr.h"
#include "table/table.h"
#include "table/table_accel.h"

namespace mdjoin {

/// Work counters for one PredicateKernels instance, accumulated by the caller
/// into MdJoinStats at pass/block granularity.
struct KernelStats {
  int64_t kernel_invocations = 0;  // columnar kernel × block applications
  int64_t fallback_rows = 0;       // rows filtered by per-row expression eval
  int64_t dense_blocks = 0;        // blocks that finished with every row live
};

/// Result of filtering one block. When `dense` is true every one of the
/// `count` == n block rows survived and `sel` was never written; otherwise
/// sel[0..count) holds the surviving lane indices (ascending).
struct BlockFilter {
  int count = 0;
  bool dense = false;
};

/// A conjunct list over the detail relation compiled for block-at-a-time
/// evaluation. Each conjunct becomes the cheapest plan its shape admits, and
/// conjuncts run in cost order, each shrinking the live set:
///
///   1. flat     — the column has a typed mirror (table/table_accel.h) and
///                 the conjunct is `col <cmp> literal` or `col IN (...)`:
///                 evaluated over the primitive payload array. While the
///                 block is still dense this is a SIMD bitmask compare
///                 (common/simd.h) — string predicates run as int32 compares
///                 against dictionary codes — and a block whose mask stays
///                 all-ones never materializes a selection vector at all.
///   2. columnar — same shapes without a typed mirror: per-row typed loops
///                 over the Value cells driven by the selection vector.
///   3. generic  — everything else: a per-row CompiledExpr fallback inside
///                 the same selection-vector pass.
///
/// Literals that cannot match a flat column's type compile to constant
/// plans (never-true / true-for-non-null) instead of per-row work.
///
/// Comparison semantics mirror expr/compile.cc exactly: `=` is θ-equality
/// (ALL wildcard), `<>` is false on NULL, ordered comparisons are false for
/// NULL/ALL and for mixed string/numeric operands, and float `<=` / `>=`
/// treat NaN as matching (Value::Compare orders NaN "equal" to everything) —
/// see simd::CmpOp.
class PredicateKernels {
 public:
  PredicateKernels() = default;

  /// Compiles `conjuncts`, which must reference only the detail side (the
  /// MD-join passes ThetaParts::detail_only). `accel` is the detail table's
  /// typed mirror (null disables flat plans — the Value paths still run);
  /// `level` selects the SIMD instruction set for dense compares.
  static Result<PredicateKernels> Compile(
      const std::vector<ExprPtr>& conjuncts, const Schema& detail_schema,
      std::shared_ptr<const TableAccel> accel, simd::Level level);

  /// Filters detail rows [block_start, block_start + n). The block starts
  /// dense (all rows live); flat predicates evaluate as bitmask kernels until
  /// one of them kills a row, at which point the mask compresses into `sel`
  /// and the remaining predicates run sparse. `mask_scratch` must hold
  /// 2 * simd::MaskWords(n) words; `sel` must hold n entries and is only
  /// written when the result is not dense.
  BlockFilter FilterBlock(const Table& detail, int64_t block_start, int n,
                          uint32_t* sel, uint64_t* mask_scratch,
                          KernelStats* stats) const;

  bool empty() const { return preds_.empty(); }
  int num_columnar() const { return num_columnar_; }
  int num_fallback() const { return static_cast<int>(preds_.size()) - num_columnar_; }
  int num_flat() const { return num_flat_; }
  simd::Level level() const { return level_; }

 private:
  enum class PredKind { kCompare, kInList, kGeneric };

  /// Typed-payload plan for one predicate, decided at compile time from the
  /// column representation and the literal's type.
  enum class FlatOp {
    kNone,        // no typed mirror / untranslatable → Value path
    kNever,       // statically false for every row (NULL literal, absent
                  // dictionary string under =, type-mismatched compare, ...)
    kAllNotNull,  // true exactly for non-null rows (ALL literal under =,
                  // type-mismatched <>, ...)
    kCmpI64,      // i64 payload <cmp> i64 literal — dense SIMD
    kCmpF64,      // f64 payload <cmp> f64 literal — dense SIMD
    kCmpI64F64,   // i64 payload: double(x) <cmp> f64 literal — scalar flat
    kCmpCode,     // dict codes <cmp> translated code threshold — dense SIMD
    kInI64,       // i64 payload ∈ i64 set
    kInF64,       // f64 payload ∈ f64 set
    kInCode,      // dict codes ∈ code set
  };

  struct Pred {
    PredKind kind = PredKind::kGeneric;
    int col = -1;                   // kCompare / kInList: detail column index
    BinaryOp op = BinaryOp::kEq;    // kCompare
    Value literal;                  // kCompare
    std::vector<Value> candidates;  // kInList
    CompiledExpr generic;           // kGeneric

    FlatOp flat = FlatOp::kNone;
    simd::CmpOp cmp = simd::CmpOp::kEq;  // kCmp*
    int64_t i64_lit = 0;
    double f64_lit = 0.0;
    int32_t code_lit = 0;
    std::vector<int64_t> in_i64;
    std::vector<double> in_f64;
    std::vector<int32_t> in_codes;
  };

  void PlanFlat(Pred* p) const;

  std::vector<Pred> preds_;
  int num_columnar_ = 0;
  int num_flat_ = 0;
  simd::Level level_ = simd::Level::kScalar;
  std::shared_ptr<const TableAccel> accel_;  // keeps payload arrays alive
};

}  // namespace mdjoin

#endif  // MDJOIN_EXPR_KERNELS_H_
