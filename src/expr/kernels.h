#ifndef MDJOIN_EXPR_KERNELS_H_
#define MDJOIN_EXPR_KERNELS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "expr/compile.h"
#include "expr/expr.h"
#include "table/table.h"

namespace mdjoin {

/// Work counters for one PredicateKernels instance, accumulated by the caller
/// into MdJoinStats at pass/block granularity.
struct KernelStats {
  int64_t kernel_invocations = 0;  // columnar kernel × block applications
  int64_t fallback_rows = 0;       // rows filtered by per-row expression eval
};

/// A conjunct list over the detail relation compiled for block-at-a-time
/// evaluation: each conjunct becomes either a columnar kernel — a typed
/// compare/IN loop over a column slice driven by a selection vector — or, for
/// shapes the kernel grammar does not cover, a per-row CompiledExpr fallback
/// applied inside the same selection-vector pass. Conjuncts run in order,
/// each shrinking the selection vector, so later (possibly fallback)
/// predicates only touch surviving rows.
///
/// Kernel grammar (everything else falls back, results stay identical):
///   R.col <cmp> literal      (either operand order; <cmp> ∈ =, <>, <, <=, >, >=)
///   R.col IN (literals)
///
/// Comparison semantics mirror expr/compile.cc exactly: `=` is θ-equality
/// (ALL wildcard), `<>` is false on NULL, ordered comparisons are false for
/// NULL/ALL and for mixed string/numeric operands.
class PredicateKernels {
 public:
  PredicateKernels() = default;

  /// Compiles `conjuncts`, which must reference only the detail side (the
  /// MD-join passes ThetaParts::detail_only).
  static Result<PredicateKernels> Compile(const std::vector<ExprPtr>& conjuncts,
                                          const Schema& detail_schema);

  /// Filters `sel` (indices relative to `block_start`, ascending, `count`
  /// entries) in place against detail rows [block_start + sel[i]]; returns
  /// the surviving count.
  int FilterBlock(const Table& detail, int64_t block_start, uint32_t* sel, int count,
                  KernelStats* stats) const;

  bool empty() const { return preds_.empty(); }
  int num_columnar() const { return num_columnar_; }
  int num_fallback() const { return static_cast<int>(preds_.size()) - num_columnar_; }

 private:
  enum class PredKind { kCompare, kInList, kGeneric };

  struct Pred {
    PredKind kind = PredKind::kGeneric;
    int col = -1;           // kCompare / kInList: detail column index
    BinaryOp op = BinaryOp::kEq;  // kCompare
    Value literal;          // kCompare
    std::vector<Value> candidates;  // kInList
    CompiledExpr generic;   // kGeneric
  };

  std::vector<Pred> preds_;
  int num_columnar_ = 0;
};

}  // namespace mdjoin

#endif  // MDJOIN_EXPR_KERNELS_H_
