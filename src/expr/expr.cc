#include "expr/expr.h"

#include "common/logging.h"

namespace mdjoin {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "?";
}

const char* UnaryOpToString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot:
      return "not";
    case UnaryOp::kNegate:
      return "-";
    case UnaryOp::kIsNull:
      return "is null";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::ColumnRef(Side side, std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumnRef;
  e->side_ = side;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  MDJ_CHECK(operand != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->unary_op_ = op;
  e->left_ = std::move(operand);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr left, ExprPtr right) {
  MDJ_CHECK(left != nullptr && right != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->binary_op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::In(ExprPtr operand, std::vector<Value> candidates) {
  MDJ_CHECK(operand != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kIn;
  e->left_ = std::move(operand);
  e->candidates_ = std::move(candidates);
  return e;
}

ExprPtr Expr::Case(std::vector<std::pair<ExprPtr, ExprPtr>> when_then,
                   ExprPtr else_expr) {
  MDJ_CHECK(!when_then.empty()) << "CASE needs at least one WHEN arm";
  for (const auto& [when, then] : when_then) {
    MDJ_CHECK(when != nullptr && then != nullptr);
  }
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCase;
  e->when_then_ = std::move(when_then);
  e->left_ = std::move(else_expr);  // may stay null
  return e;
}

bool Expr::ReferencesSide(Side side) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return false;
    case ExprKind::kColumnRef:
      return side_ == side;
    case ExprKind::kUnary:
    case ExprKind::kIn:
      return left_->ReferencesSide(side);
    case ExprKind::kBinary:
      return left_->ReferencesSide(side) || right_->ReferencesSide(side);
    case ExprKind::kCase: {
      for (const auto& [when, then] : when_then_) {
        if (when->ReferencesSide(side) || then->ReferencesSide(side)) return true;
      }
      return left_ != nullptr && left_->ReferencesSide(side);
    }
  }
  return false;
}

void Expr::CollectColumns(Side side, std::set<std::string>* out) const {
  switch (kind_) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kColumnRef:
      if (side_ == side) out->insert(name_);
      return;
    case ExprKind::kUnary:
    case ExprKind::kIn:
      left_->CollectColumns(side, out);
      return;
    case ExprKind::kBinary:
      left_->CollectColumns(side, out);
      right_->CollectColumns(side, out);
      return;
    case ExprKind::kCase:
      for (const auto& [when, then] : when_then_) {
        when->CollectColumns(side, out);
        then->CollectColumns(side, out);
      }
      if (left_ != nullptr) left_->CollectColumns(side, out);
      return;
  }
}

std::set<std::string> Expr::ReferencedColumns(Side side) const {
  std::set<std::string> out;
  CollectColumns(side, &out);
  return out;
}

ExprPtr Expr::RemapSide(const ExprPtr& e, Side from, Side to) {
  switch (e->kind_) {
    case ExprKind::kLiteral:
      return e;
    case ExprKind::kColumnRef:
      if (e->side_ == from) return ColumnRef(to, e->name_);
      return e;
    case ExprKind::kUnary:
      return Unary(e->unary_op_, RemapSide(e->left_, from, to));
    case ExprKind::kIn:
      return In(RemapSide(e->left_, from, to), e->candidates_);
    case ExprKind::kBinary:
      return Binary(e->binary_op_, RemapSide(e->left_, from, to),
                    RemapSide(e->right_, from, to));
    case ExprKind::kCase: {
      std::vector<std::pair<ExprPtr, ExprPtr>> arms;
      for (const auto& [when, then] : e->when_then_) {
        arms.emplace_back(RemapSide(when, from, to), RemapSide(then, from, to));
      }
      return Case(std::move(arms),
                  e->left_ == nullptr ? nullptr : RemapSide(e->left_, from, to));
    }
  }
  return e;
}

ExprPtr Expr::RenameColumns(const ExprPtr& e, Side side,
                            const std::vector<std::string>& from,
                            const std::vector<std::string>& to) {
  MDJ_CHECK(from.size() == to.size());
  switch (e->kind_) {
    case ExprKind::kLiteral:
      return e;
    case ExprKind::kColumnRef: {
      if (e->side_ != side) return e;
      for (size_t i = 0; i < from.size(); ++i) {
        if (e->name_ == from[i]) return ColumnRef(side, to[i]);
      }
      return e;
    }
    case ExprKind::kUnary:
      return Unary(e->unary_op_, RenameColumns(e->left_, side, from, to));
    case ExprKind::kIn:
      return In(RenameColumns(e->left_, side, from, to), e->candidates_);
    case ExprKind::kBinary:
      return Binary(e->binary_op_, RenameColumns(e->left_, side, from, to),
                    RenameColumns(e->right_, side, from, to));
    case ExprKind::kCase: {
      std::vector<std::pair<ExprPtr, ExprPtr>> arms;
      for (const auto& [when, then] : e->when_then_) {
        arms.emplace_back(RenameColumns(when, side, from, to),
                          RenameColumns(then, side, from, to));
      }
      return Case(std::move(arms), e->left_ == nullptr
                                       ? nullptr
                                       : RenameColumns(e->left_, side, from, to));
    }
  }
  return e;
}

ExprPtr Expr::SubstituteColumns(
    const ExprPtr& e, Side side,
    const std::vector<std::pair<std::string, ExprPtr>>& replacements) {
  switch (e->kind_) {
    case ExprKind::kLiteral:
      return e;
    case ExprKind::kColumnRef: {
      if (e->side_ != side) return e;
      for (const auto& [name, repl] : replacements) {
        if (e->name_ == name) return repl;
      }
      return e;
    }
    case ExprKind::kUnary:
      return Unary(e->unary_op_, SubstituteColumns(e->left_, side, replacements));
    case ExprKind::kIn:
      return In(SubstituteColumns(e->left_, side, replacements), e->candidates_);
    case ExprKind::kBinary:
      return Binary(e->binary_op_, SubstituteColumns(e->left_, side, replacements),
                    SubstituteColumns(e->right_, side, replacements));
    case ExprKind::kCase: {
      std::vector<std::pair<ExprPtr, ExprPtr>> arms;
      for (const auto& [when, then] : e->when_then_) {
        arms.emplace_back(SubstituteColumns(when, side, replacements),
                          SubstituteColumns(then, side, replacements));
      }
      return Case(std::move(arms),
                  e->left_ == nullptr
                      ? nullptr
                      : SubstituteColumns(e->left_, side, replacements));
    }
  }
  return e;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral:
      if (literal_.is_string()) return "'" + literal_.ToString() + "'";
      return literal_.ToString();
    case ExprKind::kColumnRef:
      return (side_ == Side::kBase ? "B." : "R.") + name_;
    case ExprKind::kUnary:
      if (unary_op_ == UnaryOp::kIsNull) return "(" + left_->ToString() + " is null)";
      return std::string("(") + UnaryOpToString(unary_op_) + " " + left_->ToString() +
             ")";
    case ExprKind::kIn: {
      std::string out = "(" + left_->ToString() + " in (";
      for (size_t i = 0; i < candidates_.size(); ++i) {
        if (i > 0) out += ", ";
        out += candidates_[i].ToString();
      }
      return out + "))";
    }
    case ExprKind::kBinary:
      return "(" + left_->ToString() + " " + BinaryOpToString(binary_op_) + " " +
             right_->ToString() + ")";
    case ExprKind::kCase: {
      std::string out = "(case";
      for (const auto& [when, then] : when_then_) {
        out += " when " + when->ToString() + " then " + then->ToString();
      }
      if (left_ != nullptr) out += " else " + left_->ToString();
      return out + " end)";
    }
  }
  return "?";
}

}  // namespace mdjoin
