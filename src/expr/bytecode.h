#ifndef MDJOIN_EXPR_BYTECODE_H_
#define MDJOIN_EXPR_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "expr/row_ctx.h"
#include "types/schema.h"
#include "types/value.h"

namespace mdjoin {

/// An expression lowered to a flat postfix program: one contiguous Instr
/// array evaluated by a tight dispatch loop over a value stack. Semantically
/// identical to the closure tree built by expr/compile.cc — both route the
/// comparison and arithmetic operators through expr/eval_ops.h, and the fuzz
/// suite cross-checks them — but without a virtual/indirect call and heap
/// hop per node: the whole program is one cache-resident array walked with a
/// program counter.
///
/// Instruction set (stack effect in brackets):
///
///   kPushLit a          [ → v ]        push literals[a]
///   kPushNull           [ → v ]        push NULL (CASE without ELSE)
///   kLoadBase a         [ → v ]        push base cell, column a
///   kLoadDetail a       [ → v ]        push detail cell, column a
///   kNot                [ v → b ]      NULL → false, else !truthy
///   kNegate             [ v → v ]      -int / -float, else NULL
///   kIsNull             [ v → b ]      Bool(v is NULL)
///   kIn a               [ v → b ]      v MatchesEq any of in_lists[a]
///   kCompare u8         [ a b → v ]    EvalCompare(BinaryOp(u8), a, b)
///   kArith u8           [ a b → v ]    EvalArith(BinaryOp(u8), a, b)
///   kAndJump a          [ v → b? ]     top falsy: top := false, jump a;
///                                      else pop and fall through (short-
///                                      circuit AND; jump lands past the
///                                      right operand's trailing kToBool)
///   kOrJump a           [ v → b? ]     top truthy: top := true, jump a
///   kToBool             [ v → b ]      Bool(truthy) — AND/OR result shaping
///   kJump a             [ ]            pc := a (end of a taken CASE arm)
///   kJumpIfNotTruthy a  [ v → ]        pop; falsy: pc := a (next CASE arm)
///
/// Jump operands are absolute instruction indices. Programs always leave
/// exactly one value on the stack.
class BytecodeExpr {
 public:
  enum class OpCode : uint8_t {
    kPushLit,
    kPushNull,
    kLoadBase,
    kLoadDetail,
    kNot,
    kNegate,
    kIsNull,
    kIn,
    kCompare,
    kArith,
    kAndJump,
    kOrJump,
    kToBool,
    kJump,
    kJumpIfNotTruthy,
  };

  struct Instr {
    OpCode op;
    uint8_t u8 = 0;  // kCompare / kArith: the BinaryOp
    int32_t a = 0;   // literal / list / column index, or jump target
  };

  /// Lowers `expr` against the schemas. Binding errors mirror
  /// CompileExpr's — in practice CompileExpr lowers only after the closure
  /// tree compiled, so this cannot fail on a path users reach.
  static Result<BytecodeExpr> Compile(const ExprPtr& expr, const Schema* base_schema,
                                      const Schema* detail_schema);

  Value Eval(const RowCtx& ctx) const;

  int num_instrs() const { return static_cast<int>(code_.size()); }

  /// Read-only views for the verifier (expr/verifier.h) and disassemblers.
  const std::vector<Instr>& code() const { return code_; }
  const std::vector<Value>& literals() const { return literals_; }
  const std::vector<std::vector<Value>>& in_lists() const { return in_lists_; }

  /// Assembles a program from raw parts, bypassing the emitter. Testing hook:
  /// the verifier's mutated-bytecode corpus needs programs the emitter would
  /// never produce (wild jumps, underflows, bad indices). Not validated —
  /// run the result through VerifyBytecode before Eval.
  static BytecodeExpr FromParts(std::vector<Instr> code, std::vector<Value> literals,
                                std::vector<std::vector<Value>> in_lists);

  /// One-instruction-per-line disassembly, for debugging and EXPLAIN output.
  std::string ToString() const;

 private:
  std::vector<Instr> code_;
  std::vector<Value> literals_;
  std::vector<std::vector<Value>> in_lists_;
};

}  // namespace mdjoin

#endif  // MDJOIN_EXPR_BYTECODE_H_
