#ifndef MDJOIN_EXPR_COMPILE_H_
#define MDJOIN_EXPR_COMPILE_H_

#include <functional>
#include <memory>

#include "common/result.h"
#include "expr/expr.h"
#include "table/table.h"

namespace mdjoin {

/// Evaluation context: a (base row, detail row) pair. Single-table evaluation
/// leaves the unused side null.
struct RowCtx {
  const Table* base = nullptr;
  int64_t base_row = 0;
  const Table* detail = nullptr;
  int64_t detail_row = 0;
};

/// An Expr resolved against concrete schemas: column names become indices and
/// the node tree becomes a closure tree, so per-row evaluation does no name
/// lookups. Compile once, evaluate millions of times.
class CompiledExpr {
 public:
  CompiledExpr() = default;

  /// Evaluates against `ctx`. Predicates return Int64 0/1.
  Value Eval(const RowCtx& ctx) const { return fn_(ctx); }

  /// Convenience for predicates.
  bool EvalBool(const RowCtx& ctx) const { return fn_(ctx).IsTruthy(); }

  /// Static result type inferred at compile time.
  DataType result_type() const { return result_type_; }

  bool valid() const { return static_cast<bool>(fn_); }

 private:
  friend Result<CompiledExpr> CompileExpr(const ExprPtr&, const Schema*, const Schema*);

  std::function<Value(const RowCtx&)> fn_;
  DataType result_type_ = DataType::kInt64;
};

/// Resolves `expr` against the given schemas. Pass nullptr for a side the
/// expression must not reference (a base-side reference with a null base
/// schema is a bind error).
Result<CompiledExpr> CompileExpr(const ExprPtr& expr, const Schema* base_schema,
                                 const Schema* detail_schema);

/// Single-table convenience: kDetail references resolve against `schema`.
inline Result<CompiledExpr> CompileExpr(const ExprPtr& expr, const Schema& schema) {
  return CompileExpr(expr, /*base_schema=*/nullptr, &schema);
}

/// Evaluates a constant expression (no column references).
Result<Value> EvalConstExpr(const ExprPtr& expr);

}  // namespace mdjoin

#endif  // MDJOIN_EXPR_COMPILE_H_
