#ifndef MDJOIN_EXPR_COMPILE_H_
#define MDJOIN_EXPR_COMPILE_H_

#include <functional>
#include <memory>

#include "common/result.h"
#include "expr/bytecode.h"
#include "expr/expr.h"
#include "expr/row_ctx.h"
#include "table/table.h"

namespace mdjoin {

/// An Expr resolved against concrete schemas: column names become indices, so
/// per-row evaluation does no name lookups. Compile once, evaluate millions
/// of times.
///
/// Two execution engines back one CompiledExpr:
///   - a flat bytecode program (expr/bytecode.h) — the default: one
///     cache-resident instruction array walked by a tight dispatch loop;
///   - the original closure tree — kept as the verification oracle
///     (EvalTreeWalk) and as the runtime fallback when bytecode is disabled
///     (MdJoinOptions::theta_bytecode = false, or the MDJOIN_THETA_BYTECODE=0
///     environment kill-switch).
/// Both are compiled from the same AST and share the operator semantics in
/// expr/eval_ops.h; the fuzz suite cross-checks them on random expressions.
class CompiledExpr {
 public:
  CompiledExpr() = default;

  /// Evaluates against `ctx`. Predicates return Int64 0/1.
  Value Eval(const RowCtx& ctx) const { return bc_ ? bc_->Eval(ctx) : fn_(ctx); }

  /// Convenience for predicates.
  bool EvalBool(const RowCtx& ctx) const { return Eval(ctx).IsTruthy(); }

  /// Always evaluates through the closure tree, bypassing bytecode. The
  /// differential oracle for tests; not for hot paths.
  Value EvalTreeWalk(const RowCtx& ctx) const { return fn_(ctx); }

  /// Static result type inferred at compile time.
  DataType result_type() const { return result_type_; }

  bool valid() const { return static_cast<bool>(fn_); }

  bool has_bytecode() const { return bc_ != nullptr; }
  const BytecodeExpr* bytecode() const { return bc_.get(); }

  /// Drops the bytecode program so Eval routes through the closure tree
  /// (the theta_bytecode=false arm of A/B runs).
  void DisableBytecode() { bc_.reset(); }

 private:
  friend Result<CompiledExpr> CompileExpr(const ExprPtr&, const Schema*, const Schema*);

  std::function<Value(const RowCtx&)> fn_;
  std::shared_ptr<const BytecodeExpr> bc_;
  DataType result_type_ = DataType::kInt64;
};

/// Resolves `expr` against the given schemas. Pass nullptr for a side the
/// expression must not reference (a base-side reference with a null base
/// schema is a bind error).
Result<CompiledExpr> CompileExpr(const ExprPtr& expr, const Schema* base_schema,
                                 const Schema* detail_schema);

/// Single-table convenience: kDetail references resolve against `schema`.
inline Result<CompiledExpr> CompileExpr(const ExprPtr& expr, const Schema& schema) {
  return CompileExpr(expr, /*base_schema=*/nullptr, &schema);
}

/// Evaluates a constant expression (no column references).
Result<Value> EvalConstExpr(const ExprPtr& expr);

}  // namespace mdjoin

#endif  // MDJOIN_EXPR_COMPILE_H_
