#ifndef MDJOIN_EXPR_EVAL_OPS_H_
#define MDJOIN_EXPR_EVAL_OPS_H_

#include <cmath>

#include "expr/expr.h"
#include "types/value.h"

namespace mdjoin {
namespace expr_internal {

/// The two non-trivial Value × Value operators, shared by the closure-tree
/// compiler (expr/compile.cc) and the bytecode interpreter (expr/bytecode.cc)
/// so the two execution engines cannot drift apart: an expression evaluated
/// by either must produce the same Value (the fuzz suite cross-checks them).

inline Value EvalArith(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null() || a.is_all() || b.is_all()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) return Value::Null();
  if (a.is_int64() && b.is_int64() && op != BinaryOp::kDiv) {
    int64_t x = a.int64(), y = b.int64();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int64(x + y);
      case BinaryOp::kSub:
        return Value::Int64(x - y);
      case BinaryOp::kMul:
        return Value::Int64(x * y);
      case BinaryOp::kMod:
        return y == 0 ? Value::Null() : Value::Int64(x % y);
      default:
        break;
    }
  }
  double x = a.AsDouble(), y = b.AsDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Float64(x + y);
    case BinaryOp::kSub:
      return Value::Float64(x - y);
    case BinaryOp::kMul:
      return Value::Float64(x * y);
    case BinaryOp::kDiv:
      return y == 0 ? Value::Null() : Value::Float64(x / y);
    case BinaryOp::kMod:
      return y == 0 ? Value::Null() : Value::Float64(std::fmod(x, y));
    default:
      break;
  }
  return Value::Null();
}

inline Value EvalCompare(BinaryOp op, const Value& a, const Value& b) {
  if (op == BinaryOp::kEq) return Value::Bool(a.MatchesEq(b));
  if (op == BinaryOp::kNe) {
    if (a.is_null() || b.is_null()) return Value::Bool(false);
    return Value::Bool(!a.MatchesEq(b));
  }
  // Ordered comparisons: NULL or ALL on either side -> false.
  if (a.is_null() || b.is_null() || a.is_all() || b.is_all()) return Value::Bool(false);
  // Mixed numeric/string comparison is false rather than an error: θ-conditions
  // meet heterogeneous data during exploratory queries.
  bool comparable = (a.is_numeric() && b.is_numeric()) || (a.is_string() && b.is_string());
  if (!comparable) return Value::Bool(false);
  int c = a.Compare(b);
  switch (op) {
    case BinaryOp::kLt:
      return Value::Bool(c < 0);
    case BinaryOp::kLe:
      return Value::Bool(c <= 0);
    case BinaryOp::kGt:
      return Value::Bool(c > 0);
    case BinaryOp::kGe:
      return Value::Bool(c >= 0);
    default:
      break;
  }
  return Value::Bool(false);
}

}  // namespace expr_internal
}  // namespace mdjoin

#endif  // MDJOIN_EXPR_EVAL_OPS_H_
