#ifndef MDJOIN_COMMON_RESULT_H_
#define MDJOIN_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace mdjoin {

/// Either a value of type T or an error Status. The engine's standard way of
/// returning fallible values without exceptions:
///
///   Result<Table> t = MdJoin(...);
///   if (!t.ok()) return t.status();
///   Use(*t);
///
/// or, inside a Result/Status-returning function:
///
///   MDJ_ASSIGN_OR_RETURN(Table t, MdJoin(...));
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs an error result. `status` must not be OK.
  Result(Status status) : value_(std::move(status)) {  // NOLINT: implicit by design
    MDJ_DCHECK(!std::get<Status>(value_).ok());
  }
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Value accessors; must not be called on an error result.
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(value()); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T& value() & {
    MDJ_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(value_);
  }
  const T& value() const& {
    MDJ_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(value_);
  }
  T&& value() && {
    MDJ_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::move(std::get<T>(value_));
  }

  /// Moves the value out, or dies with the error message. For tests/examples.
  T ValueOrDie() && { return std::move(*this).value(); }

 private:
  std::variant<Status, T> value_;
};

/// Evaluates a Result-returning expression; on error propagates the status,
/// otherwise binds the value to `lhs` (a declaration or existing variable).
#define MDJ_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  MDJ_ASSIGN_OR_RETURN_IMPL(                                   \
      MDJ_CONCAT_NAME(_mdj_result_, __COUNTER__), lhs, rexpr)

#define MDJ_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).value()

#define MDJ_CONCAT_NAME(x, y) MDJ_CONCAT_NAME_IMPL(x, y)
#define MDJ_CONCAT_NAME_IMPL(x, y) x##y

}  // namespace mdjoin

#endif  // MDJOIN_COMMON_RESULT_H_
