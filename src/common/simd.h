#ifndef MDJOIN_COMMON_SIMD_H_
#define MDJOIN_COMMON_SIMD_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"

namespace mdjoin {
namespace simd {

/// Instruction-set level a kernel executes at. The scalar level is always
/// available and is the semantic reference: every wider level must produce
/// bit-identical masks and reductions (enforced by
/// tests/simd_kernel_fuzz_test.cc). kAvx2/kNeon are compiled in only on the
/// matching architecture when the MDJOIN_SIMD CMake option is ON; kAvx2 is
/// additionally gated on a runtime cpuid check so one binary runs on
/// pre-AVX2 x86 machines.
enum class Level {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
};

/// User-facing backend selection (MdJoinOptions::simd, the --simd CLI flag).
/// kAuto resolves to the best level this build and machine supports.
enum class Backend {
  kAuto = 0,
  kScalar = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// The widest Level usable here (compile-time support ∧ runtime cpu check).
Level BestLevel();

/// True when `level` can execute on this build + machine.
bool LevelAvailable(Level level);

const char* LevelName(Level level);    // "scalar" / "neon" / "avx2"
const char* BackendName(Backend backend);  // adds "auto"

/// Parses "auto" / "scalar" / "avx2" / "neon" (the --simd flag grammar).
bool ParseBackend(std::string_view name, Backend* out);

/// Resolves a requested backend to an executable level. Pinning a backend the
/// build or machine cannot run is an error, not a silent fallback, so A/B
/// arms and bug reports mean what they say.
Result<Level> ResolveBackend(Backend backend);

/// Comparison operator for the dense compare kernels. Semantics for kLe/kGe
/// on float64 are !(x > lit) / !(x < lit) — i.e. true when x is NaN —
/// matching EvalCompare in expr/compile.cc, which maps them through
/// Value::Compare (NaN compares "equal" there). kEq/kNe/kLt/kGt are plain
/// IEEE and agree with both formulations.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Dense block compares: bit i of mask[i/64] is set iff x[i] <op> lit.
/// Lanes past n in the last word are zero. n <= a few thousand (one block).
void CmpI64(Level level, CmpOp op, const int64_t* x, int n, int64_t lit,
            uint64_t* mask);
void CmpF64(Level level, CmpOp op, const double* x, int n, double lit,
            uint64_t* mask);
void CmpI32(Level level, CmpOp op, const int32_t* x, int n, int32_t lit,
            uint64_t* mask);

/// Number of 64-bit words a mask over n lanes occupies.
inline int MaskWords(int n) { return (n + 63) >> 6; }

/// mask := all lanes [0, n) set.
void MaskSetAll(uint64_t* mask, int n);

/// mask &= "row is not null" (nulls is a 0/1 byte per lane).
void MaskAndNotNull(const uint8_t* nulls, int n, uint64_t* mask);

/// mask := "row is not null".
void MaskFromNotNull(const uint8_t* nulls, int n, uint64_t* mask);

bool MaskAllSet(const uint64_t* mask, int n);
int MaskCount(const uint64_t* mask, int n);

/// Writes the set lane indices (ascending) into sel; returns how many. The
/// bitmask → selection-vector boundary of the adaptive dense path.
int MaskCompress(const uint64_t* mask, int n, uint32_t* sel);

/// Dense reductions. Only exactly-associative operations are offered: int64
/// sum/min/max and null counting reorder freely without changing results.
/// float64 sum and float64 min/max are deliberately absent — reassociation
/// changes f64 sums by ulps and Value::Compare's NaN handling makes float
/// extremes order-dependent, which would break the bit-identity guarantee
/// across backends (DESIGN.md §12).
int64_t SumI64(Level level, const int64_t* x, int n);
int64_t MinI64(Level level, const int64_t* x, int n);  // requires n > 0
int64_t MaxI64(Level level, const int64_t* x, int n);  // requires n > 0
int64_t CountNotNull(Level level, const uint8_t* nulls, int n);

}  // namespace simd
}  // namespace mdjoin

#endif  // MDJOIN_COMMON_SIMD_H_
