#include "common/failpoint.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdjoin {

FailpointRegistry* FailpointRegistry::Global() {
  static FailpointRegistry* registry = [] {
    auto* r = new FailpointRegistry();
    if (const char* spec = std::getenv("MDJOIN_FAILPOINTS"); spec != nullptr) {
      Status s = r->LoadSpec(spec);
      if (!s.ok()) {
        MDJ_CHECK(false) << "bad MDJOIN_FAILPOINTS spec: " << s.ToString();
      }
    }
    return r;
  }();
  return registry;
}

void FailpointRegistry::Enable(const std::string& name, int64_t count, int64_t skip) {
  MutexLock lock(mu_);
  Entry& e = points_[name];
  e.skip = skip;
  e.remaining = count;
  RecountArmedLocked();
}

void FailpointRegistry::Disable(const std::string& name) {
  MutexLock lock(mu_);
  auto it = points_.find(name);
  if (it != points_.end()) {
    it->second.skip = 0;
    it->second.remaining = 0;
  }
  RecountArmedLocked();
}

void FailpointRegistry::Reset() {
  MutexLock lock(mu_);
  points_.clear();
  RecountArmedLocked();
}

bool FailpointRegistry::Evaluate(const char* name) {
  {
    MutexLock lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return false;
    Entry& e = it->second;
    if (e.remaining == 0) return false;
    if (e.skip > 0) {
      --e.skip;
      return false;
    }
    if (e.remaining > 0) --e.remaining;
    ++e.fired;
    if (e.remaining == 0) RecountArmedLocked();
  }
  // A fire is an injected fault: surface it on the trace timeline (the event
  // carries the failpoint's own name, which is a call-site string literal)
  // and in the fleet-wide fire counter.
  static Counter* fires = MetricsRegistry::Global().GetCounter(
      "mdjoin_failpoint_fires_total", "failpoint firings (injected faults)");
  fires->Increment();
  TraceInstant(name, "failpoint");
  return true;
}

int64_t FailpointRegistry::fire_count(const std::string& name) {
  MutexLock lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fired;
}

Status FailpointRegistry::LoadSpec(const std::string& spec) {
  std::string normalized = spec;
  for (char& c : normalized) {
    if (c == ',') c = ';';
  }
  for (const std::string& piece : SplitString(normalized, ';')) {
    std::string entry(StripWhitespace(piece));
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint spec entry '", entry,
                                     "' (want name=count or name=count@skip)");
    }
    std::string name = entry.substr(0, eq);
    std::string counts = entry.substr(eq + 1);
    size_t at = counts.find('@');
    std::string count_str = counts.substr(0, at);
    std::string skip_str = at == std::string::npos ? "0" : counts.substr(at + 1);
    char* end = nullptr;
    int64_t count = std::strtoll(count_str.c_str(), &end, 10);
    bool ok = !count_str.empty() && *end == '\0';
    int64_t skip = std::strtoll(skip_str.c_str(), &end, 10);
    ok = ok && !skip_str.empty() && *end == '\0';
    if (!ok) {
      return Status::InvalidArgument("failpoint spec entry '", entry,
                                     "': count/skip must be integers");
    }
    if (skip < 0) {
      return Status::InvalidArgument("failpoint spec entry '", entry,
                                     "': skip must be >= 0");
    }
    Enable(name, count, skip);
  }
  return Status::OK();
}

void FailpointRegistry::RecountArmedLocked() {
  int armed = 0;
  for (const auto& [name, e] : points_) {
    if (e.remaining != 0) ++armed;
  }
  armed_.store(armed, std::memory_order_relaxed);
}

}  // namespace mdjoin
