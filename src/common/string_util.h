#ifndef MDJOIN_COMMON_STRING_UTIL_H_
#define MDJOIN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mdjoin {

/// Splits `s` on `delim`, keeping empty pieces.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins `pieces` with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double the way table printers want it: integral values render
/// without a fractional part, others with up to 6 significant decimals.
std::string FormatDouble(double v);

namespace string_util_internal {
inline std::string ToPiece(const std::string& s) { return s; }
inline std::string ToPiece(std::string&& s) { return std::move(s); }
inline std::string ToPiece(std::string_view s) { return std::string(s); }
inline std::string ToPiece(const char* s) { return s; }
template <typename T>
std::string ToPiece(const T& v) {
  return std::to_string(v);
}
}  // namespace string_util_internal

/// Concatenates string-likes and numbers into one message string — the same
/// piece conversion Status's variadic constructors use.
template <typename... Args>
std::string StrCat(Args&&... args) {
  std::string out;
  ((out += string_util_internal::ToPiece(std::forward<Args>(args))), ...);
  return out;
}

}  // namespace mdjoin

#endif  // MDJOIN_COMMON_STRING_UTIL_H_
