#ifndef MDJOIN_COMMON_STATUS_H_
#define MDJOIN_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace mdjoin {

/// Error categories used across the engine. Mirrors the RocksDB/Arrow idiom:
/// library code never throws; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kTypeError,
  kParseError,
  kBindError,
  kExecutionError,
  kCancelled,
  kResourceExhausted,
  kDeadlineExceeded,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// Value-semantic success/error indicator.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. Usage:
///
///   Status DoThing() {
///     if (bad) return Status::InvalidArgument("bad thing: ", detail);
///     return Status::OK();
///   }
/// [[nodiscard]]: silently dropping a Status loses an error — every caller
/// must consume it (check ok(), MDJ_RETURN_NOT_OK, or assign). CI promotes
/// the warning to an error on the Clang legs (-Werror=unused-result).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return Make(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status TypeError(Args&&... args) {
    return Make(StatusCode::kTypeError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ParseError(Args&&... args) {
    return Make(StatusCode::kParseError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status BindError(Args&&... args) {
    return Make(StatusCode::kBindError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ExecutionError(Args&&... args) {
    return Make(StatusCode::kExecutionError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Cancelled(Args&&... args) {
    return Make(StatusCode::kCancelled, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ResourceExhausted(Args&&... args) {
    return Make(StatusCode::kResourceExhausted, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status DeadlineExceeded(Args&&... args) {
    return Make(StatusCode::kDeadlineExceeded, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsBindError() const { return code() == StatusCode::kBindError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }
  bool IsDeadlineExceeded() const { return code() == StatusCode::kDeadlineExceeded; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    Status s;
    s.state_ = std::make_unique<State>();
    s.state_->code = code;
    ((s.state_->message += ToMessagePiece(std::forward<Args>(args))), ...);
    return s;
  }

  static std::string ToMessagePiece(const std::string& s) { return s; }
  static std::string ToMessagePiece(const char* s) { return s; }
  static std::string ToMessagePiece(std::string&& s) { return std::move(s); }
  template <typename T>
  static std::string ToMessagePiece(const T& v) {
    return std::to_string(v);
  }

  std::unique_ptr<State> state_;  // nullptr == OK
};

/// Propagates a non-OK status to the caller.
#define MDJ_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::mdjoin::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace mdjoin

#endif  // MDJOIN_COMMON_STATUS_H_
