#ifndef MDJOIN_COMMON_QUERY_GUARD_H_
#define MDJOIN_COMMON_QUERY_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace mdjoin {

/// Limits enforced by a QueryGuard. Every limit defaults to "off" (0), so a
/// default-constructed guard only supports cooperative cancellation.
///
/// Negative or overflow-prone values are *invalid*, not "off": call
/// Validate() before handing options to a guard (the admission layer does),
/// or rely on the QueryGuard constructor, which latches a Validate() failure
/// as an immediate kInvalidArgument trip so the query fails on its first
/// Check() instead of silently wrapping a budget around zero.
struct QueryGuardOptions {
  /// Wall-clock deadline relative to guard construction, in milliseconds.
  /// 0 = off (no deadline). Capped by Validate() at kMaxTimeoutMs so the
  /// deadline arithmetic cannot overflow steady_clock's nanosecond range.
  int64_t timeout_ms = 0;

  /// Soft memory budget in bytes; 0 = off. The classic MD-join path reacts
  /// to pressure against this budget by *degrading to multi-pass* (Theorem
  /// 4.1: lower base_rows_per_pass, pay extra scans of R) instead of
  /// failing. When both budgets are set, must be <= memory_hard_limit_bytes.
  int64_t memory_budget_bytes = 0;

  /// Hard memory ceiling in bytes: a reservation that would cross it fails
  /// with kResourceExhausted. 0 = off (unlimited).
  int64_t memory_hard_limit_bytes = 0;

  /// Budget on detail rows scanned (summed across fragments/passes);
  /// 0 = off.
  int64_t max_detail_rows = 0;

  /// Budget on candidate (b, t) pairs tested; 0 = off.
  int64_t max_candidate_pairs = 0;

  /// Hot loops consult the guard every `check_stride` detail rows, so a
  /// cancel/deadline is observed within one stride per worker. 4096 keeps the
  /// overhead of the per-row countdown under ~2% on the scan benches.
  /// Must be >= 1 (there is no "off": a non-positive stride would make the
  /// GuardTicket countdown wrap).
  int64_t check_stride = 4096;

  /// Upper bound Validate() places on timeout_ms: ~31 years. Far beyond any
  /// real deadline, yet small enough that start + milliseconds(timeout_ms)
  /// stays inside steady_clock's int64 nanosecond representation.
  static constexpr int64_t kMaxTimeoutMs = 1'000'000'000'000;

  /// Rejects option sets that a guard could not enforce faithfully: any
  /// negative limit, timeout_ms > kMaxTimeoutMs (deadline arithmetic would
  /// overflow), check_stride < 1, or a soft memory budget above the hard
  /// limit. OK means every field is either off (0) or a usable bound.
  Status Validate() const;
};

/// Per-query resource governor threaded through the execution stack via
/// MdJoinOptions::guard. One guard instance is shared by every operator,
/// pass, and parallel fragment of a query:
///
///  - cooperative cancellation: Cancel() from any thread; scans observe it at
///    the next stride check and return kCancelled;
///  - deadline: wall-clock timeout checked at the same stride;
///  - memory accounting: ReserveBytes/ReleaseBytes track engine-estimated
///    bytes (base-index build, aggregate states, materialized outputs)
///    against a soft budget (degrade) and a hard limit (fail);
///  - work budgets: caps on detail rows scanned and candidate pairs tested.
///
/// First-error-wins: the first trip (cancel, deadline, budget, or a failed
/// parallel fragment) is latched and every subsequent Check() on any thread
/// returns that same status, which is how sibling fragments short-circuit.
/// All methods are thread-safe.
class QueryGuard {
 public:
  explicit QueryGuard(const QueryGuardOptions& options = {});

  QueryGuard(const QueryGuard&) = delete;
  QueryGuard& operator=(const QueryGuard&) = delete;

  /// Requests cooperative cancellation (idempotent, callable from any thread).
  void Cancel();

  /// Latches `status` as the query's outcome if nothing tripped before.
  /// Non-OK only; used by the parallel layer to propagate fragment failures.
  void Trip(Status status) MDJ_EXCLUDES(mu_);

  bool tripped() const { return tripped_.load(std::memory_order_acquire); }

  /// The latched failure, or OK when the guard has not tripped.
  Status TripStatus() const MDJ_EXCLUDES(mu_);

  /// Accounts `rows_delta` scanned detail rows and `pairs_delta` candidate
  /// pairs, then checks (in order) latched trips, the deadline, and the work
  /// budgets. Called from hot loops at stride granularity — one call per
  /// `check_stride` rows — and once with zero deltas at operator entry so a
  /// pre-issued cancel is observed before any work.
  Status Check(int64_t rows_delta = 0, int64_t pairs_delta = 0);

  /// Reserves `bytes` against the hard limit; `what` names the consumer for
  /// the error message. The failpoint "query_guard:reserve" forces a failure
  /// here to exercise allocation-error paths.
  Status ReserveBytes(int64_t bytes, const char* what);

  void ReleaseBytes(int64_t bytes);

  int64_t bytes_reserved() const { return reserved_.load(std::memory_order_relaxed); }
  int64_t bytes_high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  bool has_memory_budget() const { return options_.memory_budget_bytes > 0; }

  /// Soft budget headroom: memory_budget_bytes - bytes_reserved(), clamped at
  /// 0; int64 max when no soft budget is configured. The MD-join sizes its
  /// per-pass base partition to fit this.
  int64_t remaining_soft_bytes() const;

  int64_t detail_rows_seen() const { return rows_.load(std::memory_order_relaxed); }
  int64_t candidate_pairs_seen() const {
    return pairs_.load(std::memory_order_relaxed);
  }

  int64_t check_stride() const { return options_.check_stride; }
  const QueryGuardOptions& options() const { return options_; }

 private:
  const QueryGuardOptions options_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<bool> tripped_{false};
  std::atomic<int64_t> reserved_{0};
  std::atomic<int64_t> high_water_{0};
  std::atomic<int64_t> rows_{0};
  std::atomic<int64_t> pairs_{0};
  mutable Mutex mu_;
  Status status_ MDJ_GUARDED_BY(mu_);  // first trip, latched
};

/// Per-scan helper for hot loops: counts rows/pairs locally and consults the
/// shared guard only every `check_stride` rows. With a null guard each Tick
/// is a single predictable branch, which is what keeps guard-disabled scans
/// at their old speed.
class GuardTicket {
 public:
  /// `count_rows` = false gives a pure liveness ticket: it checks the guard
  /// every stride without charging the detail-row budget (used by loops over
  /// output rows rather than detail rows).
  explicit GuardTicket(QueryGuard* guard, bool count_rows = true)
      : guard_(guard),
        count_rows_(count_rows),
        stride_(guard != nullptr ? guard->check_stride() : 0),
        countdown_(stride_) {}

  /// Accounts one scanned detail row plus `pairs` candidate pairs; returns
  /// non-OK at stride boundaries once the guard trips.
  Status Tick(int64_t pairs = 0) {
    if (guard_ == nullptr) return Status::OK();
    pending_pairs_ += pairs;
    if (--countdown_ > 0) return Status::OK();
    return Flush(stride_);
  }

  /// Accounts `rows` scanned detail rows plus `pairs` candidate pairs in one
  /// call — the block-at-a-time counterpart of Tick(). Budgets stay exact
  /// (every row/pair is charged); the guard is consulted whenever the stride
  /// countdown is exhausted, so trip latency is at most stride + block rows.
  Status TickBlock(int64_t rows, int64_t pairs) {
    if (guard_ == nullptr) return Status::OK();
    pending_pairs_ += pairs;
    countdown_ -= rows;
    if (countdown_ > 0) return Status::OK();
    return Flush(stride_ - countdown_);
  }

  /// Flushes rows/pairs accumulated since the last stride check and performs
  /// a final guard check. Call at scan end so budgets stay exact.
  Status Finish() {
    if (guard_ == nullptr) return Status::OK();
    return Flush(stride_ - countdown_);
  }

 private:
  Status Flush(int64_t rows) {
    countdown_ = stride_;
    int64_t pairs = pending_pairs_;
    pending_pairs_ = 0;
    return guard_->Check(count_rows_ ? rows : 0, pairs);
  }

  QueryGuard* guard_;
  bool count_rows_;
  int64_t stride_;
  int64_t countdown_;
  int64_t pending_pairs_ = 0;
};

/// RAII memory reservation: releases on destruction. Movable, not copyable.
class ScopedReservation {
 public:
  ScopedReservation() = default;
  ~ScopedReservation() { Release(); }
  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;
  ScopedReservation(ScopedReservation&& other) noexcept
      : guard_(other.guard_), bytes_(other.bytes_) {
    other.guard_ = nullptr;
    other.bytes_ = 0;
  }

  /// Reserves `bytes` on `guard` (no-op when guard is null). A reservation
  /// already held is released first.
  Status Reserve(QueryGuard* guard, int64_t bytes, const char* what);

  void Release();

  int64_t bytes() const { return bytes_; }

 private:
  QueryGuard* guard_ = nullptr;
  int64_t bytes_ = 0;
};

}  // namespace mdjoin

#endif  // MDJOIN_COMMON_QUERY_GUARD_H_
