#include "common/simd.h"

#include <algorithm>

#include "common/logging.h"

// Backend availability. The AVX2 bodies are compiled with a per-function
// target attribute, so the rest of the binary stays baseline-x86 and the
// choice is made per process at runtime (BestLevel's cpuid check). NEON is
// architecturally guaranteed on aarch64, so it needs no runtime check.
#if defined(MDJOIN_ENABLE_SIMD) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define MDJOIN_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(MDJOIN_ENABLE_SIMD) && defined(__ARM_NEON)
#define MDJOIN_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace mdjoin {
namespace simd {

namespace {

template <typename T>
inline bool CmpScalar(CmpOp op, T x, T lit) {
  switch (op) {
    case CmpOp::kEq:
      return x == lit;
    case CmpOp::kNe:
      return x != lit;
    case CmpOp::kLt:
      return x < lit;
    case CmpOp::kLe:
      return !(x > lit);  // NaN-true for float64, == x<=lit for integers
    case CmpOp::kGt:
      return x > lit;
    case CmpOp::kGe:
      return !(x < lit);
  }
  return false;
}

template <typename T>
void CmpScalarLoop(CmpOp op, const T* x, int n, T lit, uint64_t* mask) {
  for (int w = 0; w * 64 < n; ++w) {
    const int lo = w * 64;
    const int hi = std::min(n, lo + 64);
    uint64_t bits = 0;
    for (int i = lo; i < hi; ++i) {
      bits |= static_cast<uint64_t>(CmpScalar(op, x[i], lit)) << (i - lo);
    }
    mask[w] = bits;
  }
}

#if defined(MDJOIN_SIMD_X86)

__attribute__((target("avx2"))) void CmpI64Avx2(CmpOp op, const int64_t* x, int n,
                                                int64_t lit, uint64_t* mask) {
  std::fill(mask, mask + MaskWords(n), uint64_t{0});
  const __m256i vlit = _mm256_set1_epi64x(lit);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    __m256i r;
    uint64_t flip = 0;
    switch (op) {
      case CmpOp::kEq:
        r = _mm256_cmpeq_epi64(v, vlit);
        break;
      case CmpOp::kNe:
        r = _mm256_cmpeq_epi64(v, vlit);
        flip = 0xF;
        break;
      case CmpOp::kLt:
        r = _mm256_cmpgt_epi64(vlit, v);
        break;
      case CmpOp::kLe:
        r = _mm256_cmpgt_epi64(v, vlit);
        flip = 0xF;
        break;
      case CmpOp::kGt:
        r = _mm256_cmpgt_epi64(v, vlit);
        break;
      case CmpOp::kGe:
        r = _mm256_cmpgt_epi64(vlit, v);
        flip = 0xF;
        break;
      default:
        r = _mm256_setzero_si256();
        break;
    }
    const uint64_t bits =
        static_cast<uint64_t>(_mm256_movemask_pd(_mm256_castsi256_pd(r))) ^ flip;
    mask[i >> 6] |= bits << (i & 63);
  }
  for (; i < n; ++i) {
    mask[i >> 6] |= static_cast<uint64_t>(CmpScalar(op, x[i], lit)) << (i & 63);
  }
}

__attribute__((target("avx2"))) void CmpF64Avx2(CmpOp op, const double* x, int n,
                                                double lit, uint64_t* mask) {
  std::fill(mask, mask + MaskWords(n), uint64_t{0});
  const __m256d vlit = _mm256_set1_pd(lit);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    __m256d r;
    // Predicates chosen to agree lane-for-lane with CmpScalar<double>:
    // ordered-quiet where NaN must fail, unordered-quiet where NaN must pass.
    switch (op) {
      case CmpOp::kEq:
        r = _mm256_cmp_pd(v, vlit, _CMP_EQ_OQ);
        break;
      case CmpOp::kNe:
        r = _mm256_cmp_pd(v, vlit, _CMP_NEQ_UQ);
        break;
      case CmpOp::kLt:
        r = _mm256_cmp_pd(v, vlit, _CMP_LT_OQ);
        break;
      case CmpOp::kLe:
        r = _mm256_cmp_pd(v, vlit, _CMP_NGT_UQ);
        break;
      case CmpOp::kGt:
        r = _mm256_cmp_pd(v, vlit, _CMP_GT_OQ);
        break;
      case CmpOp::kGe:
        r = _mm256_cmp_pd(v, vlit, _CMP_NLT_UQ);
        break;
      default:
        r = _mm256_setzero_pd();
        break;
    }
    const uint64_t bits = static_cast<uint64_t>(_mm256_movemask_pd(r));
    mask[i >> 6] |= bits << (i & 63);
  }
  for (; i < n; ++i) {
    mask[i >> 6] |= static_cast<uint64_t>(CmpScalar(op, x[i], lit)) << (i & 63);
  }
}

__attribute__((target("avx2"))) void CmpI32Avx2(CmpOp op, const int32_t* x, int n,
                                                int32_t lit, uint64_t* mask) {
  std::fill(mask, mask + MaskWords(n), uint64_t{0});
  const __m256i vlit = _mm256_set1_epi32(lit);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    __m256i r;
    uint64_t flip = 0;
    switch (op) {
      case CmpOp::kEq:
        r = _mm256_cmpeq_epi32(v, vlit);
        break;
      case CmpOp::kNe:
        r = _mm256_cmpeq_epi32(v, vlit);
        flip = 0xFF;
        break;
      case CmpOp::kLt:
        r = _mm256_cmpgt_epi32(vlit, v);
        break;
      case CmpOp::kLe:
        r = _mm256_cmpgt_epi32(v, vlit);
        flip = 0xFF;
        break;
      case CmpOp::kGt:
        r = _mm256_cmpgt_epi32(v, vlit);
        break;
      case CmpOp::kGe:
        r = _mm256_cmpgt_epi32(vlit, v);
        flip = 0xFF;
        break;
      default:
        r = _mm256_setzero_si256();
        break;
    }
    const uint64_t bits =
        static_cast<uint64_t>(_mm256_movemask_ps(_mm256_castsi256_ps(r))) ^ flip;
    mask[i >> 6] |= bits << (i & 63);
  }
  for (; i < n; ++i) {
    mask[i >> 6] |= static_cast<uint64_t>(CmpScalar(op, x[i], lit)) << (i & 63);
  }
}

__attribute__((target("avx2"))) int64_t SumI64Avx2(const int64_t* x, int n) {
  __m256i acc = _mm256_setzero_si256();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(acc,
                           _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i)));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += x[i];
  return sum;
}

__attribute__((target("avx2"))) int64_t MinMaxI64Avx2(const int64_t* x, int n,
                                                      bool want_min) {
  __m256i best = _mm256_set1_epi64x(x[0]);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    // AVX2 has no 64-bit min/max: select through a signed compare.
    const __m256i v_wins =
        want_min ? _mm256_cmpgt_epi64(best, v) : _mm256_cmpgt_epi64(v, best);
    best = _mm256_blendv_epi8(best, v, v_wins);
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
  int64_t out = lanes[0];
  for (int k = 1; k < 4; ++k) {
    out = want_min ? std::min(out, lanes[k]) : std::max(out, lanes[k]);
  }
  for (; i < n; ++i) out = want_min ? std::min(out, x[i]) : std::max(out, x[i]);
  return out;
}

__attribute__((target("avx2"))) int64_t CountNotNullAvx2(const uint8_t* nulls, int n) {
  // nulls holds 0/1 bytes; sum them 32 at a time via the unsigned byte-sum
  // instruction, then subtract from n.
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  int i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(nulls + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(v, zero));
  }
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int64_t null_count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) null_count += nulls[i];
  return n - null_count;
}

bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

#endif  // MDJOIN_SIMD_X86

#if defined(MDJOIN_SIMD_NEON)

void CmpI64Neon(CmpOp op, const int64_t* x, int n, int64_t lit, uint64_t* mask) {
  std::fill(mask, mask + MaskWords(n), uint64_t{0});
  const int64x2_t vlit = vdupq_n_s64(lit);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t v = vld1q_s64(x + i);
    uint64x2_t r;
    uint64_t flip = 0;
    switch (op) {
      case CmpOp::kEq:
        r = vceqq_s64(v, vlit);
        break;
      case CmpOp::kNe:
        r = vceqq_s64(v, vlit);
        flip = 0x3;
        break;
      case CmpOp::kLt:
        r = vcltq_s64(v, vlit);
        break;
      case CmpOp::kLe:
        r = vcgtq_s64(v, vlit);
        flip = 0x3;
        break;
      case CmpOp::kGt:
        r = vcgtq_s64(v, vlit);
        break;
      case CmpOp::kGe:
        r = vcltq_s64(v, vlit);
        flip = 0x3;
        break;
      default:
        r = vdupq_n_u64(0);
        break;
    }
    const uint64_t bits =
        ((vgetq_lane_u64(r, 0) & 1) | ((vgetq_lane_u64(r, 1) & 1) << 1)) ^ flip;
    mask[i >> 6] |= bits << (i & 63);
  }
  for (; i < n; ++i) {
    mask[i >> 6] |= static_cast<uint64_t>(CmpScalar(op, x[i], lit)) << (i & 63);
  }
}

void CmpF64Neon(CmpOp op, const double* x, int n, double lit, uint64_t* mask) {
  std::fill(mask, mask + MaskWords(n), uint64_t{0});
  const float64x2_t vlit = vdupq_n_f64(lit);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(x + i);
    uint64x2_t r;
    uint64_t flip = 0;
    // NEON float compares are ordered (NaN lanes yield false); the NaN-true
    // ops (Ne/Le/Ge) are expressed by inverting the complementary compare.
    switch (op) {
      case CmpOp::kEq:
        r = vceqq_f64(v, vlit);
        break;
      case CmpOp::kNe:
        r = vceqq_f64(v, vlit);
        flip = 0x3;
        break;
      case CmpOp::kLt:
        r = vcltq_f64(v, vlit);
        break;
      case CmpOp::kLe:
        r = vcgtq_f64(v, vlit);
        flip = 0x3;
        break;
      case CmpOp::kGt:
        r = vcgtq_f64(v, vlit);
        break;
      case CmpOp::kGe:
        r = vcltq_f64(v, vlit);
        flip = 0x3;
        break;
      default:
        r = vdupq_n_u64(0);
        break;
    }
    const uint64_t bits =
        ((vgetq_lane_u64(r, 0) & 1) | ((vgetq_lane_u64(r, 1) & 1) << 1)) ^ flip;
    mask[i >> 6] |= bits << (i & 63);
  }
  for (; i < n; ++i) {
    mask[i >> 6] |= static_cast<uint64_t>(CmpScalar(op, x[i], lit)) << (i & 63);
  }
}

void CmpI32Neon(CmpOp op, const int32_t* x, int n, int32_t lit, uint64_t* mask) {
  std::fill(mask, mask + MaskWords(n), uint64_t{0});
  const int32x4_t vlit = vdupq_n_s32(lit);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const int32x4_t v = vld1q_s32(x + i);
    uint32x4_t r;
    uint64_t flip = 0;
    switch (op) {
      case CmpOp::kEq:
        r = vceqq_s32(v, vlit);
        break;
      case CmpOp::kNe:
        r = vceqq_s32(v, vlit);
        flip = 0xF;
        break;
      case CmpOp::kLt:
        r = vcltq_s32(v, vlit);
        break;
      case CmpOp::kLe:
        r = vcgtq_s32(v, vlit);
        flip = 0xF;
        break;
      case CmpOp::kGt:
        r = vcgtq_s32(v, vlit);
        break;
      case CmpOp::kGe:
        r = vcltq_s32(v, vlit);
        flip = 0xF;
        break;
      default:
        r = vdupq_n_u32(0);
        break;
    }
    const uint64_t bits = ((vgetq_lane_u32(r, 0) & 1) | ((vgetq_lane_u32(r, 1) & 1) << 1) |
                           ((vgetq_lane_u32(r, 2) & 1) << 2) |
                           ((vgetq_lane_u32(r, 3) & 1) << 3)) ^
                          flip;
    mask[i >> 6] |= bits << (i & 63);
  }
  for (; i < n; ++i) {
    mask[i >> 6] |= static_cast<uint64_t>(CmpScalar(op, x[i], lit)) << (i & 63);
  }
}

int64_t SumI64Neon(const int64_t* x, int n) {
  int64x2_t acc = vdupq_n_s64(0);
  int i = 0;
  for (; i + 2 <= n; i += 2) acc = vaddq_s64(acc, vld1q_s64(x + i));
  int64_t sum = vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
  for (; i < n; ++i) sum += x[i];
  return sum;
}

int64_t MinMaxI64Neon(const int64_t* x, int n, bool want_min) {
  int64x2_t best = vdupq_n_s64(x[0]);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t v = vld1q_s64(x + i);
    const uint64x2_t v_wins = want_min ? vcltq_s64(v, best) : vcgtq_s64(v, best);
    best = vbslq_s64(v_wins, v, best);
  }
  int64_t out = vgetq_lane_s64(best, 0);
  const int64_t lane1 = vgetq_lane_s64(best, 1);
  out = want_min ? std::min(out, lane1) : std::max(out, lane1);
  for (; i < n; ++i) out = want_min ? std::min(out, x[i]) : std::max(out, x[i]);
  return out;
}

#endif  // MDJOIN_SIMD_NEON

}  // namespace

Level BestLevel() {
#if defined(MDJOIN_SIMD_X86)
  if (CpuHasAvx2()) return Level::kAvx2;
#endif
#if defined(MDJOIN_SIMD_NEON)
  return Level::kNeon;
#endif
  return Level::kScalar;
}

bool LevelAvailable(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
#if defined(MDJOIN_SIMD_X86)
      return CpuHasAvx2();
#else
      return false;
#endif
    case Level::kNeon:
#if defined(MDJOIN_SIMD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kNeon:
      return "neon";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kAuto:
      return "auto";
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

bool ParseBackend(std::string_view name, Backend* out) {
  if (name == "auto") {
    *out = Backend::kAuto;
  } else if (name == "scalar") {
    *out = Backend::kScalar;
  } else if (name == "avx2") {
    *out = Backend::kAvx2;
  } else if (name == "neon") {
    *out = Backend::kNeon;
  } else {
    return false;
  }
  return true;
}

Result<Level> ResolveBackend(Backend backend) {
  switch (backend) {
    case Backend::kAuto:
      return BestLevel();
    case Backend::kScalar:
      return Level::kScalar;
    case Backend::kAvx2:
      if (!LevelAvailable(Level::kAvx2)) {
        return Status::InvalidArgument(
            "simd backend 'avx2' is not available on this build/machine");
      }
      return Level::kAvx2;
    case Backend::kNeon:
      if (!LevelAvailable(Level::kNeon)) {
        return Status::InvalidArgument(
            "simd backend 'neon' is not available on this build/machine");
      }
      return Level::kNeon;
  }
  return Status::InvalidArgument("unknown simd backend");
}

void CmpI64(Level level, CmpOp op, const int64_t* x, int n, int64_t lit,
            uint64_t* mask) {
#if defined(MDJOIN_SIMD_X86)
  if (level == Level::kAvx2 && CpuHasAvx2()) {
    CmpI64Avx2(op, x, n, lit, mask);
    return;
  }
#endif
#if defined(MDJOIN_SIMD_NEON)
  if (level == Level::kNeon) {
    CmpI64Neon(op, x, n, lit, mask);
    return;
  }
#endif
  (void)level;
  CmpScalarLoop(op, x, n, lit, mask);
}

void CmpF64(Level level, CmpOp op, const double* x, int n, double lit,
            uint64_t* mask) {
#if defined(MDJOIN_SIMD_X86)
  if (level == Level::kAvx2 && CpuHasAvx2()) {
    CmpF64Avx2(op, x, n, lit, mask);
    return;
  }
#endif
#if defined(MDJOIN_SIMD_NEON)
  if (level == Level::kNeon) {
    CmpF64Neon(op, x, n, lit, mask);
    return;
  }
#endif
  (void)level;
  CmpScalarLoop(op, x, n, lit, mask);
}

void CmpI32(Level level, CmpOp op, const int32_t* x, int n, int32_t lit,
            uint64_t* mask) {
#if defined(MDJOIN_SIMD_X86)
  if (level == Level::kAvx2 && CpuHasAvx2()) {
    CmpI32Avx2(op, x, n, lit, mask);
    return;
  }
#endif
#if defined(MDJOIN_SIMD_NEON)
  if (level == Level::kNeon) {
    CmpI32Neon(op, x, n, lit, mask);
    return;
  }
#endif
  (void)level;
  CmpScalarLoop(op, x, n, lit, mask);
}

void MaskSetAll(uint64_t* mask, int n) {
  const int words = MaskWords(n);
  for (int w = 0; w < words; ++w) mask[w] = ~uint64_t{0};
  if (n & 63) mask[words - 1] = (uint64_t{1} << (n & 63)) - 1;
}

void MaskAndNotNull(const uint8_t* nulls, int n, uint64_t* mask) {
  for (int w = 0; w * 64 < n; ++w) {
    const int lo = w * 64;
    const int hi = std::min(n, lo + 64);
    uint64_t null_bits = 0;
    for (int i = lo; i < hi; ++i) {
      null_bits |= static_cast<uint64_t>(nulls[i] != 0) << (i - lo);
    }
    mask[w] &= ~null_bits;
  }
}

void MaskFromNotNull(const uint8_t* nulls, int n, uint64_t* mask) {
  MaskSetAll(mask, n);
  MaskAndNotNull(nulls, n, mask);
}

bool MaskAllSet(const uint64_t* mask, int n) {
  const int words = MaskWords(n);
  for (int w = 0; w + 1 < words; ++w) {
    if (mask[w] != ~uint64_t{0}) return false;
  }
  if (words == 0) return true;
  const uint64_t tail =
      (n & 63) ? (uint64_t{1} << (n & 63)) - 1 : ~uint64_t{0};
  return mask[words - 1] == tail;
}

int MaskCount(const uint64_t* mask, int n) {
  int count = 0;
  for (int w = 0; w < MaskWords(n); ++w) count += __builtin_popcountll(mask[w]);
  return count;
}

int MaskCompress(const uint64_t* mask, int n, uint32_t* sel) {
  int out = 0;
  for (int w = 0; w < MaskWords(n); ++w) {
    uint64_t bits = mask[w];
    const uint32_t base = static_cast<uint32_t>(w) * 64;
    while (bits != 0) {
      sel[out++] = base + static_cast<uint32_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
    }
  }
  return out;
}

int64_t SumI64(Level level, const int64_t* x, int n) {
#if defined(MDJOIN_SIMD_X86)
  if (level == Level::kAvx2 && CpuHasAvx2()) return SumI64Avx2(x, n);
#endif
#if defined(MDJOIN_SIMD_NEON)
  if (level == Level::kNeon) return SumI64Neon(x, n);
#endif
  (void)level;
  int64_t sum = 0;
  for (int i = 0; i < n; ++i) sum += x[i];
  return sum;
}

int64_t MinI64(Level level, const int64_t* x, int n) {
  MDJ_DCHECK(n > 0);
#if defined(MDJOIN_SIMD_X86)
  if (level == Level::kAvx2 && CpuHasAvx2()) return MinMaxI64Avx2(x, n, true);
#endif
#if defined(MDJOIN_SIMD_NEON)
  if (level == Level::kNeon) return MinMaxI64Neon(x, n, true);
#endif
  (void)level;
  int64_t best = x[0];
  for (int i = 1; i < n; ++i) best = std::min(best, x[i]);
  return best;
}

int64_t MaxI64(Level level, const int64_t* x, int n) {
  MDJ_DCHECK(n > 0);
#if defined(MDJOIN_SIMD_X86)
  if (level == Level::kAvx2 && CpuHasAvx2()) return MinMaxI64Avx2(x, n, false);
#endif
#if defined(MDJOIN_SIMD_NEON)
  if (level == Level::kNeon) return MinMaxI64Neon(x, n, false);
#endif
  (void)level;
  int64_t best = x[0];
  for (int i = 1; i < n; ++i) best = std::max(best, x[i]);
  return best;
}

int64_t CountNotNull(Level level, const uint8_t* nulls, int n) {
#if defined(MDJOIN_SIMD_X86)
  if (level == Level::kAvx2 && CpuHasAvx2()) return CountNotNullAvx2(nulls, n);
#endif
  (void)level;
  int64_t null_count = 0;
  for (int i = 0; i < n; ++i) null_count += nulls[i];
  return n - null_count;
}

}  // namespace simd
}  // namespace mdjoin
