#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace mdjoin {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace mdjoin
