#include "common/status.h"

namespace mdjoin {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kBindError:
      return "Bind error";
    case StatusCode::kExecutionError:
      return "Execution error";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace mdjoin
