#ifndef MDJOIN_COMMON_RANDOM_H_
#define MDJOIN_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace mdjoin {

/// Deterministic pseudo-random generator (xoshiro256**). Workload generators
/// and property tests seed this explicitly so every run is reproducible.
class Random {
 public:
  explicit Random(uint64_t seed);

  uint64_t NextUint64();

  /// Uniform in [0, n). `n` must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability `p`.
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

/// Samples ranks in [0, n) with Zipf(theta) skew; rank 0 is the most frequent.
/// theta = 0 degenerates to uniform. Precomputes the CDF once (O(n) space).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Random* rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace mdjoin

#endif  // MDJOIN_COMMON_RANDOM_H_
