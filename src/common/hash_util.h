#ifndef MDJOIN_COMMON_HASH_UTIL_H_
#define MDJOIN_COMMON_HASH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mdjoin {

/// Mixes `v` into the running hash `seed` (boost::hash_combine recipe with a
/// 64-bit golden-ratio constant). Used to hash composite keys.
inline void HashCombine(size_t* seed, size_t v) {
  *seed ^= v + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

template <typename T>
void HashCombineValue(size_t* seed, const T& v) {
  HashCombine(seed, std::hash<T>{}(v));
}

}  // namespace mdjoin

#endif  // MDJOIN_COMMON_HASH_UTIL_H_
