#ifndef MDJOIN_COMMON_THREAD_ANNOTATIONS_H_
#define MDJOIN_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

/// Clang thread-safety analysis annotations (-Wthread-safety), in the style
/// of Abseil's thread_annotations.h. Under Clang the macros expand to the
/// `capability` attribute family and the analysis statically proves that
/// every access to a MDJ_GUARDED_BY member happens with its mutex held;
/// under GCC (which has no such analysis) they expand to nothing, so the
/// annotated code compiles identically everywhere. CI runs a Clang
/// configuration with -Wthread-safety promoted to an error.
///
/// std::mutex / std::lock_guard cannot carry these attributes, so the engine
/// locks through the thin annotated wrappers below (Mutex, MutexLock,
/// CondVar) instead of using the standard types directly.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MDJ_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MDJ_THREAD_ANNOTATION
#define MDJ_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define MDJ_CAPABILITY(x) MDJ_THREAD_ANNOTATION(capability(x))
#define MDJ_SCOPED_CAPABILITY MDJ_THREAD_ANNOTATION(scoped_lockable)
#define MDJ_GUARDED_BY(x) MDJ_THREAD_ANNOTATION(guarded_by(x))
#define MDJ_PT_GUARDED_BY(x) MDJ_THREAD_ANNOTATION(pt_guarded_by(x))
#define MDJ_REQUIRES(...) \
  MDJ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MDJ_EXCLUDES(...) MDJ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define MDJ_ACQUIRE(...) MDJ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MDJ_RELEASE(...) MDJ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MDJ_ASSERT_CAPABILITY(x) \
  MDJ_THREAD_ANNOTATION(assert_capability(x))
#define MDJ_RETURN_CAPABILITY(x) MDJ_THREAD_ANNOTATION(lock_returned(x))
#define MDJ_NO_THREAD_SAFETY_ANALYSIS \
  MDJ_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mdjoin {

/// std::mutex with the `capability` attribute so members can be declared
/// MDJ_GUARDED_BY(mu_) and private helpers MDJ_REQUIRES(mu_).
class MDJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MDJ_ACQUIRE() { mu_.lock(); }
  void Unlock() MDJ_RELEASE() { mu_.unlock(); }

  /// The wrapped mutex, for interop with std condition variables.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex; the scoped_lockable attribute tells the analysis
/// that the capability is held for the object's lifetime.
class MDJ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MDJ_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() MDJ_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying unique_lock, for CondVar::Wait.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable used with MutexLock. Wait atomically releases and
/// re-acquires the lock, so from the analysis's point of view the capability
/// is held across the call — matching the scoped_lockable model above.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Predicate>
  void Wait(MutexLock& lock, Predicate pred) {
    cv_.wait(lock.native(), pred);
  }

  /// Timed wait: returns the predicate's value at wakeup — false means the
  /// deadline passed with the predicate still false. Used by queued admission
  /// waiters whose query deadline may expire before budget frees up.
  template <typename Predicate>
  bool WaitUntil(MutexLock& lock, std::chrono::steady_clock::time_point deadline,
                 Predicate pred) {
    return cv_.wait_until(lock.native(), deadline, pred);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mdjoin

#endif  // MDJOIN_COMMON_THREAD_ANNOTATIONS_H_
