#include "common/query_guard.h"

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdjoin {

namespace {

/// Registry-backed trip accounting: one counter per trip kind plus a total,
/// and an instant trace event so the trip is visible on the worker track
/// that observed it first. Called once per guard (first error wins), so
/// nothing here is hot.
void RecordTrip(const Status& status) {
  static Counter* total = MetricsRegistry::Global().GetCounter(
      "mdjoin_guard_trips_total", "query-guard trips, all causes");
  static Counter* cancelled = MetricsRegistry::Global().GetCounter(
      "mdjoin_guard_trips_cancelled_total", "guard trips: cooperative cancellation");
  static Counter* deadline = MetricsRegistry::Global().GetCounter(
      "mdjoin_guard_trips_deadline_total", "guard trips: wall-clock deadline");
  static Counter* exhausted = MetricsRegistry::Global().GetCounter(
      "mdjoin_guard_trips_resource_exhausted_total",
      "guard trips: memory/row/pair budget exhausted");
  static Counter* other = MetricsRegistry::Global().GetCounter(
      "mdjoin_guard_trips_other_total", "guard trips: propagated failures");
  total->Increment();
  const char* kind = "error";
  switch (status.code()) {
    case StatusCode::kCancelled:
      cancelled->Increment();
      kind = "cancelled";
      break;
    case StatusCode::kDeadlineExceeded:
      deadline->Increment();
      kind = "deadline";
      break;
    case StatusCode::kResourceExhausted:
      exhausted->Increment();
      kind = "resource_exhausted";
      break;
    default:
      other->Increment();
      break;
  }
  TraceInstant("guard_trip", kind);
}

}  // namespace

Status QueryGuardOptions::Validate() const {
  if (timeout_ms < 0) {
    return Status::InvalidArgument("QueryGuardOptions: negative timeout_ms ",
                                   timeout_ms, " (0 means no deadline)");
  }
  if (timeout_ms > kMaxTimeoutMs) {
    return Status::InvalidArgument("QueryGuardOptions: timeout_ms ", timeout_ms,
                                   " overflows the deadline clock (max ",
                                   kMaxTimeoutMs, ")");
  }
  if (memory_budget_bytes < 0) {
    return Status::InvalidArgument("QueryGuardOptions: negative memory_budget_bytes ",
                                   memory_budget_bytes, " (0 means off)");
  }
  if (memory_hard_limit_bytes < 0) {
    return Status::InvalidArgument(
        "QueryGuardOptions: negative memory_hard_limit_bytes ",
        memory_hard_limit_bytes, " (0 means unlimited)");
  }
  if (memory_budget_bytes > 0 && memory_hard_limit_bytes > 0 &&
      memory_budget_bytes > memory_hard_limit_bytes) {
    return Status::InvalidArgument(
        "QueryGuardOptions: soft memory budget ", memory_budget_bytes,
        " exceeds hard limit ", memory_hard_limit_bytes,
        " — degradation could never engage before the hard failure");
  }
  if (max_detail_rows < 0) {
    return Status::InvalidArgument("QueryGuardOptions: negative max_detail_rows ",
                                   max_detail_rows, " (0 means off)");
  }
  if (max_candidate_pairs < 0) {
    return Status::InvalidArgument("QueryGuardOptions: negative max_candidate_pairs ",
                                   max_candidate_pairs, " (0 means off)");
  }
  if (check_stride < 1) {
    return Status::InvalidArgument("QueryGuardOptions: check_stride ", check_stride,
                                   " must be >= 1");
  }
  return Status::OK();
}

QueryGuard::QueryGuard(const QueryGuardOptions& options)
    : options_(options), start_(std::chrono::steady_clock::now()) {
  // Invalid budgets fail the query at its first Check() instead of silently
  // wrapping (a negative budget used to read as "off"; an overflowing
  // timeout used to wrap the deadline into the past).
  if (Status valid = options_.Validate(); !valid.ok()) Trip(std::move(valid));
}

void QueryGuard::Cancel() {
  Trip(Status::Cancelled("query cancelled by caller"));
}

void QueryGuard::Trip(Status status) {
  if (status.ok()) return;
  {
    MutexLock lock(mu_);
    if (tripped_.load(std::memory_order_relaxed)) return;  // first error wins
    status_ = status;
    tripped_.store(true, std::memory_order_release);
  }
  RecordTrip(status);
}

Status QueryGuard::TripStatus() const {
  if (!tripped()) return Status::OK();
  MutexLock lock(mu_);
  return status_;
}

Status QueryGuard::Check(int64_t rows_delta, int64_t pairs_delta) {
  // Failpoints simulate a mid-scan cancel / deadline expiry deterministically:
  // they fire at a stride boundary, exactly where the real events are seen.
  if (MDJ_FAILPOINT("query_guard:cancel")) Cancel();
  if (MDJ_FAILPOINT("query_guard:deadline")) {
    Trip(Status::DeadlineExceeded("deadline expired (failpoint query_guard:deadline)"));
  }

  const int64_t rows = rows_delta > 0
                           ? rows_.fetch_add(rows_delta, std::memory_order_relaxed) +
                                 rows_delta
                           : rows_.load(std::memory_order_relaxed);
  const int64_t pairs = pairs_delta > 0
                            ? pairs_.fetch_add(pairs_delta, std::memory_order_relaxed) +
                                  pairs_delta
                            : pairs_.load(std::memory_order_relaxed);

  if (tripped()) return TripStatus();

  if (options_.timeout_ms > 0) {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const int64_t elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
    if (elapsed_ms >= options_.timeout_ms) {
      Trip(Status::DeadlineExceeded("query exceeded deadline of ", options_.timeout_ms,
                                    "ms (elapsed ", elapsed_ms, "ms)"));
      return TripStatus();
    }
  }
  if (options_.max_detail_rows > 0 && rows > options_.max_detail_rows) {
    Trip(Status::ResourceExhausted("detail-row budget exceeded: scanned ", rows,
                                   " rows, budget ", options_.max_detail_rows));
    return TripStatus();
  }
  if (options_.max_candidate_pairs > 0 && pairs > options_.max_candidate_pairs) {
    Trip(Status::ResourceExhausted("candidate-pair budget exceeded: tested ", pairs,
                                   " pairs, budget ", options_.max_candidate_pairs));
    return TripStatus();
  }
  return Status::OK();
}

Status QueryGuard::ReserveBytes(int64_t bytes, const char* what) {
  if (bytes < 0) bytes = 0;
  if (MDJ_FAILPOINT("query_guard:reserve")) {
    Status s = Status::ResourceExhausted(
        "allocation of ", bytes, " bytes for ", what,
        " failed (failpoint query_guard:reserve)");
    Trip(s);
    return s;
  }
  const int64_t now = reserved_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Track the peak; racy max-update loop is the standard idiom.
  int64_t peak = high_water_.load(std::memory_order_relaxed);
  while (now > peak &&
         !high_water_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  if (options_.memory_hard_limit_bytes > 0 && now > options_.memory_hard_limit_bytes) {
    reserved_.fetch_sub(bytes, std::memory_order_relaxed);
    Status s = Status::ResourceExhausted(
        "memory hard limit exceeded reserving ", bytes, " bytes for ", what, ": ",
        now, " > limit ", options_.memory_hard_limit_bytes);
    Trip(s);
    return s;
  }
  return Status::OK();
}

void QueryGuard::ReleaseBytes(int64_t bytes) {
  if (bytes > 0) reserved_.fetch_sub(bytes, std::memory_order_relaxed);
}

int64_t QueryGuard::remaining_soft_bytes() const {
  if (!has_memory_budget()) return std::numeric_limits<int64_t>::max();
  const int64_t remaining = options_.memory_budget_bytes - bytes_reserved();
  return remaining > 0 ? remaining : 0;
}

Status ScopedReservation::Reserve(QueryGuard* guard, int64_t bytes, const char* what) {
  Release();
  if (guard == nullptr) return Status::OK();
  MDJ_RETURN_NOT_OK(guard->ReserveBytes(bytes, what));
  guard_ = guard;
  bytes_ = bytes;
  return Status::OK();
}

void ScopedReservation::Release() {
  if (guard_ != nullptr) guard_->ReleaseBytes(bytes_);
  guard_ = nullptr;
  bytes_ = 0;
}

}  // namespace mdjoin
