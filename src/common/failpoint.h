#ifndef MDJOIN_COMMON_FAILPOINT_H_
#define MDJOIN_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace mdjoin {

/// Deterministic fault-injection points, modeled on WiredTiger's failpoint /
/// error-injection idiom: code that owns a hard-to-reach error path plants a
/// named `MDJ_FAILPOINT("area:event")` on it; tests (or an operator, via the
/// MDJOIN_FAILPOINTS environment variable) arm the point to fire a fixed
/// number of times after skipping a fixed number of hits. This turns "the
/// allocation failed mid-scan" from an untestable race into a unit test.
///
/// Activation:
///  - programmatic: `FailpointRegistry::Global()->Enable("mdjoin:x", 1, 2)`
///    fires once after skipping two hits;
///  - environment:  `MDJOIN_FAILPOINTS="query_guard:cancel=1;a:b=3@2"` — a
///    `;`/`,`-separated list of `name=count` or `name=count@skip` entries,
///    loaded on first use of the global registry. count -1 means "forever".
///
/// The whole subsystem compiles to `(false)` unless the build defines
/// MDJOIN_FAILPOINTS (CMake option of the same name, ON by default so the
/// test build exercises every injected path; turn OFF for release binaries
/// where even the armed-check branch is unwanted).
class FailpointRegistry {
 public:
  /// Process-wide registry; loads MDJOIN_FAILPOINTS from the environment the
  /// first time it is constructed.
  static FailpointRegistry* Global();

  /// Arms `name`: after `skip` evaluations pass through, the next `count`
  /// evaluations fire (count < 0 = fire forever). Re-enabling resets state.
  void Enable(const std::string& name, int64_t count = 1, int64_t skip = 0)
      MDJ_EXCLUDES(mu_);

  /// Disarms `name`; hit statistics for it are kept until Reset().
  void Disable(const std::string& name) MDJ_EXCLUDES(mu_);

  /// Disarms everything and clears statistics. Tests call this in SetUp.
  void Reset() MDJ_EXCLUDES(mu_);

  /// True iff the point is armed and its skip budget is exhausted; consumes
  /// one firing. Called via MDJ_FAILPOINT, not directly.
  bool Evaluate(const char* name) MDJ_EXCLUDES(mu_);

  /// Times `name` actually fired (not merely evaluated) since Reset().
  int64_t fire_count(const std::string& name) MDJ_EXCLUDES(mu_);

  /// Parses an MDJOIN_FAILPOINTS-style spec; error on malformed entries.
  Status LoadSpec(const std::string& spec);

  /// Fast armed check so unarmed builds pay one relaxed atomic load per site.
  bool any_armed() const { return armed_.load(std::memory_order_relaxed) > 0; }

 private:
  struct Entry {
    int64_t skip = 0;       // evaluations to let through before firing
    int64_t remaining = 0;  // firings left; -1 = unlimited; 0 = disarmed
    int64_t fired = 0;      // statistics
  };

  void RecountArmedLocked() MDJ_REQUIRES(mu_);

  Mutex mu_;
  std::unordered_map<std::string, Entry> points_ MDJ_GUARDED_BY(mu_);
  std::atomic<int> armed_{0};
};

}  // namespace mdjoin

/// True when the named failpoint fires. Zero-cost (constant false) when the
/// build does not define MDJOIN_FAILPOINTS.
#ifdef MDJOIN_FAILPOINTS
#define MDJ_FAILPOINT(name)                                  \
  (::mdjoin::FailpointRegistry::Global()->any_armed() &&     \
   ::mdjoin::FailpointRegistry::Global()->Evaluate(name))
#else
#define MDJ_FAILPOINT(name) (false)
#endif

#endif  // MDJOIN_COMMON_FAILPOINT_H_
