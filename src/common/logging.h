#ifndef MDJOIN_COMMON_LOGGING_H_
#define MDJOIN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mdjoin {
namespace internal {

/// Terminates the process after streaming a diagnostic message. Used by the
/// MDJ_CHECK family for invariant violations that indicate programmer error
/// (as opposed to recoverable conditions, which use Status/Result).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mdjoin

/// Dies (with file/line and any streamed message) if `cond` is false.
#define MDJ_CHECK(cond)                                              \
  if (!(cond))                                                       \
  ::mdjoin::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define MDJ_CHECK_EQ(a, b) MDJ_CHECK((a) == (b))
#define MDJ_CHECK_NE(a, b) MDJ_CHECK((a) != (b))
#define MDJ_CHECK_LT(a, b) MDJ_CHECK((a) < (b))
#define MDJ_CHECK_LE(a, b) MDJ_CHECK((a) <= (b))
#define MDJ_CHECK_GT(a, b) MDJ_CHECK((a) > (b))
#define MDJ_CHECK_GE(a, b) MDJ_CHECK((a) >= (b))

#ifdef NDEBUG
#define MDJ_DCHECK(cond) \
  if (false) ::mdjoin::internal::FatalLogMessage(__FILE__, __LINE__, #cond)
#else
#define MDJ_DCHECK(cond) MDJ_CHECK(cond)
#endif

#endif  // MDJOIN_COMMON_LOGGING_H_
