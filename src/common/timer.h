#ifndef MDJOIN_COMMON_TIMER_H_
#define MDJOIN_COMMON_TIMER_H_

#include <chrono>

namespace mdjoin {

/// Wall-clock stopwatch for coarse timing in examples and bench harness glue
/// (google-benchmark does its own timing for the actual measurements).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mdjoin

#endif  // MDJOIN_COMMON_TIMER_H_
