#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mdjoin {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Random::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  MDJ_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  MDJ_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), cdf_(n) {
  MDJ_CHECK(n > 0);
  double total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= total;
}

uint64_t ZipfGenerator::Next(Random* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace mdjoin
