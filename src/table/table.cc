#include "table/table.h"

#include "table/printer.h"
#include "table/table_accel.h"

namespace mdjoin {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_fields());
}

Table Table::Clone() const {
  Table out(schema_);
  out.columns_ = columns_;
  out.num_rows_ = num_rows_;
  out.accel_ = accel_;  // immutable and matching the copied cells
  return out;
}

void Table::AppendRowUnchecked(std::vector<Value> values) {
  MDJ_DCHECK(static_cast<int>(values.size()) == num_columns());
  for (int c = 0; c < num_columns(); ++c) {
    columns_[c].push_back(std::move(values[c]));
  }
  ++num_rows_;
  accel_.reset();
}

void Table::AppendRowFrom(const Table& src, int64_t row) {
  MDJ_DCHECK(src.num_columns() == num_columns());
  for (int c = 0; c < num_columns(); ++c) {
    columns_[c].push_back(src.Get(row, c));
  }
  ++num_rows_;
  accel_.reset();
}

RowKey Table::GetRow(int64_t row) const {
  RowKey key;
  key.reserve(num_columns());
  for (int c = 0; c < num_columns(); ++c) key.push_back(Get(row, c));
  return key;
}

RowKey Table::GetRowKey(int64_t row, const std::vector<int>& cols) const {
  RowKey key;
  key.reserve(cols.size());
  for (int c : cols) key.push_back(Get(row, c));
  return key;
}

Status Table::AddColumn(Field field, std::vector<Value> values) {
  if (num_rows_ != 0 && static_cast<int64_t>(values.size()) != num_rows_) {
    return Status::InvalidArgument("AddColumn: length ", values.size(),
                                   " != table rows ", num_rows_);
  }
  MDJ_RETURN_NOT_OK(schema_.AddField(std::move(field)));
  if (num_rows_ == 0 && columns_.empty()) {
    num_rows_ = static_cast<int64_t>(values.size());
  }
  columns_.push_back(std::move(values));
  accel_.reset();
  return Status::OK();
}

void Table::RebuildAccel() { accel_ = TableAccel::Build(*this); }

void Table::Reserve(int64_t rows) {
  for (auto& col : columns_) col.reserve(static_cast<size_t>(rows));
}

int64_t Table::ApproxBytes() const {
  int64_t bytes = 0;
  for (const auto& col : columns_) {
    bytes += static_cast<int64_t>(col.capacity() * sizeof(Value));
    for (const Value& v : col) {
      if (v.is_string()) bytes += static_cast<int64_t>(v.string().capacity());
    }
  }
  return bytes;
}

std::string Table::ToString(int64_t max_rows) const {
  return PrintTable(*this, max_rows);
}

}  // namespace mdjoin
