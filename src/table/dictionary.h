#ifndef MDJOIN_TABLE_DICTIONARY_H_
#define MDJOIN_TABLE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mdjoin {

/// Sorted string dictionary for one encoded column: code i is the i-th
/// distinct value in lexicographic (byte) order, so code order == string
/// order. That makes every θ string test an integer test end-to-end:
///   s == lit   ⇔  code == CodeOf(lit)           (absent literal: never)
///   s <  lit   ⇔  code <  LowerBound(lit)
///   s <= lit   ⇔  code <  LowerBound(lit) + (lit present)
///   s >  lit   ⇔  code >= LowerBound(lit) + (lit present)
///   s >= lit   ⇔  code >= LowerBound(lit)
/// (Byte order is exactly what std::string::compare and Value::Compare use,
/// so the translation preserves engine semantics bit-for-bit.)
class Dictionary {
 public:
  /// Builds from any mix of strings (duplicates welcome).
  static Dictionary Build(std::vector<std::string> values);

  /// Code of `s`, or -1 when absent.
  int32_t CodeOf(std::string_view s) const;

  /// First code whose string is >= `s` (== size() when all are smaller).
  int32_t LowerBound(std::string_view s) const;

  /// True when `s` is present (CodeOf(s) >= 0, but without the second probe).
  bool Contains(std::string_view s) const { return CodeOf(s) >= 0; }

  const std::string& Decode(int32_t code) const { return sorted_[code]; }

  int32_t size() const { return static_cast<int32_t>(sorted_.size()); }

  int64_t ApproxBytes() const;

 private:
  std::vector<std::string> sorted_;
};

}  // namespace mdjoin

#endif  // MDJOIN_TABLE_DICTIONARY_H_
