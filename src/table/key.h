#ifndef MDJOIN_TABLE_KEY_H_
#define MDJOIN_TABLE_KEY_H_

#include <vector>

#include "common/hash_util.h"
#include "types/value.h"

namespace mdjoin {

/// Composite key: a row projected onto some columns. Hash/equality are
/// structural (Value::Equals), so ALL keys only collide with ALL keys.
using RowKey = std::vector<Value>;

/// Borrowed composite key: pointers to Values owned elsewhere (table cells,
/// scratch buffers). Hash/equality agree with RowKey's, so hash containers
/// keyed on RowKey can be probed through the C++20 heterogeneous-lookup
/// overloads without materializing (and copying string payloads into) a
/// RowKey per probe — the hot-path win for the MD-join's base index.
struct RowKeyView {
  const Value* const* vals = nullptr;
  size_t size = 0;
};

struct RowKeyHash {
  using is_transparent = void;

  size_t operator()(const RowKey& key) const {
    size_t seed = key.size();
    for (const Value& v : key) HashCombine(&seed, v.Hash());
    return seed;
  }
  size_t operator()(const RowKeyView& key) const {
    size_t seed = key.size;
    for (size_t i = 0; i < key.size; ++i) HashCombine(&seed, key.vals[i]->Hash());
    return seed;
  }
};

struct RowKeyEqual {
  using is_transparent = void;

  bool operator()(const RowKey& a, const RowKey& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
  bool operator()(const RowKeyView& a, const RowKey& b) const {
    if (a.size != b.size()) return false;
    for (size_t i = 0; i < a.size; ++i) {
      if (!a.vals[i]->Equals(b[i])) return false;
    }
    return true;
  }
  bool operator()(const RowKey& a, const RowKeyView& b) const { return (*this)(b, a); }
  bool operator()(const RowKeyView& a, const RowKeyView& b) const {
    if (a.size != b.size) return false;
    for (size_t i = 0; i < a.size; ++i) {
      if (!a.vals[i]->Equals(*b.vals[i])) return false;
    }
    return true;
  }
};

/// Lexicographic comparison via Value::Compare; used by sort-based operators.
inline int CompareRowKeys(const RowKey& a, const RowKey& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

}  // namespace mdjoin

#endif  // MDJOIN_TABLE_KEY_H_
