#include "table/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "table/table_builder.h"

namespace mdjoin {

namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// Splits one logical CSV line into fields, honoring double quotes.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quote in CSV line: ", line);
  fields.push_back(std::move(cur));
  return fields;
}

Result<Value> ParseCell(const std::string& raw, DataType type) {
  if (raw.empty()) return Value::Null();
  if (raw == "ALL") return Value::All();
  switch (type) {
    case DataType::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(raw.c_str(), &end, 10);
      if (errno != 0 || end != raw.c_str() + raw.size()) {
        return Status::ParseError("bad int64 cell: '", raw, "'");
      }
      return Value::Int64(v);
    }
    case DataType::kFloat64: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(raw.c_str(), &end);
      if (errno != 0 || end != raw.c_str() + raw.size()) {
        return Status::ParseError("bad float64 cell: '", raw, "'");
      }
      return Value::Float64(v);
    }
    case DataType::kString:
      return Value::String(raw);
  }
  return Status::Internal("unreachable");
}

}  // namespace

namespace {

/// CSV cell rendering differs from display rendering in one way: float64
/// uses max_digits10 so parsing recovers the exact bits (ToString's %.6g is
/// for humans and would corrupt a round trip).
std::string CsvCell(const Value& v) {
  if (v.is_float64()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v.float64());
    return buf;
  }
  return v.ToString();
}

}  // namespace

std::string TableToCsv(const Table& t) {
  std::string out;
  const Schema& schema = t.schema();
  for (int c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) out += ",";
    out += QuoteField(schema.field(c).name);
  }
  out += "\n";
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    for (int c = 0; c < schema.num_fields(); ++c) {
      if (c > 0) out += ",";
      const Value& v = t.Get(r, c);
      if (v.is_null()) continue;  // empty field
      out += QuoteField(CsvCell(v));
    }
    out += "\n";
  }
  return out;
}

Result<Table> TableFromCsv(const std::string& csv, const Schema& schema) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) return Status::ParseError("empty CSV input");
  MDJ_ASSIGN_OR_RETURN(std::vector<std::string> header, ParseCsvLine(line));
  if (static_cast<int>(header.size()) != schema.num_fields()) {
    return Status::ParseError("CSV header has ", header.size(), " columns, schema has ",
                              schema.num_fields());
  }
  for (int c = 0; c < schema.num_fields(); ++c) {
    if (header[c] != schema.field(c).name) {
      return Status::ParseError("CSV header column ", c, " is '", header[c],
                                "', expected '", schema.field(c).name, "'");
    }
  }
  TableBuilder builder(schema);
  int64_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    MDJ_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseCsvLine(line));
    if (static_cast<int>(fields.size()) != schema.num_fields()) {
      return Status::ParseError("CSV line ", lineno, " has ", fields.size(), " fields");
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (int c = 0; c < schema.num_fields(); ++c) {
      MDJ_ASSIGN_OR_RETURN(Value v, ParseCell(fields[c], schema.field(c).type));
      row.push_back(std::move(v));
    }
    MDJ_RETURN_NOT_OK(builder.AppendRow(std::move(row)));
  }
  return std::move(builder).Finish();
}

Status WriteCsvFile(const Table& t, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::ExecutionError("cannot open '", path, "' for writing");
  out << TableToCsv(t);
  if (!out) return Status::ExecutionError("write to '", path, "' failed");
  return Status::OK();
}

Result<Table> ReadCsvFile(const std::string& path, const Schema& schema) {
  std::ifstream in(path);
  if (!in) return Status::ExecutionError("cannot open '", path, "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return TableFromCsv(buf.str(), schema);
}

}  // namespace mdjoin
