#include "table/table_builder.h"

#include "common/logging.h"

namespace mdjoin {

Status TableBuilder::AppendRow(std::vector<Value> values) {
  const Schema& schema = table_.schema();
  if (static_cast<int>(values.size()) != schema.num_fields()) {
    return Status::InvalidArgument("AppendRow: got ", values.size(), " values, expected ",
                                   schema.num_fields());
  }
  for (int c = 0; c < schema.num_fields(); ++c) {
    const Value& v = values[c];
    if (v.is_null() || v.is_all()) continue;
    Result<DataType> t = v.Type();
    if (!t.ok()) return t.status();
    DataType expected = schema.field(c).type;
    bool ok = (*t == expected) ||
              (IsNumeric(*t) && IsNumeric(expected));  // int64 literals into float cols
    if (!ok) {
      return Status::TypeError("AppendRow: column '", schema.field(c).name, "' expects ",
                               DataTypeToString(expected), ", got ",
                               DataTypeToString(*t));
    }
  }
  table_.AppendRowUnchecked(std::move(values));
  return Status::OK();
}

void TableBuilder::AppendRowOrDie(std::vector<Value> values) {
  Status s = AppendRow(std::move(values));
  MDJ_CHECK(s.ok()) << s.ToString();
}

}  // namespace mdjoin
