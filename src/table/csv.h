#ifndef MDJOIN_TABLE_CSV_H_
#define MDJOIN_TABLE_CSV_H_

#include <string>

#include "common/result.h"
#include "table/table.h"

namespace mdjoin {

/// Serializes `t` as CSV with a header row. NULL renders as an empty field,
/// ALL as the literal token "ALL". Fields containing commas, quotes or
/// newlines are double-quoted.
std::string TableToCsv(const Table& t);

/// Parses CSV produced by TableToCsv (or hand-written data) against `schema`.
/// The header row must match the schema's column names in order. Empty fields
/// parse to NULL; "ALL" parses to the roll-up marker.
Result<Table> TableFromCsv(const std::string& csv, const Schema& schema);

/// Writes `t` to `path` as CSV; error on I/O failure.
Status WriteCsvFile(const Table& t, const std::string& path);

/// Reads `path` and parses against `schema`.
Result<Table> ReadCsvFile(const std::string& path, const Schema& schema);

}  // namespace mdjoin

#endif  // MDJOIN_TABLE_CSV_H_
