#include "table/clustered_index.h"

#include "table/table_ops.h"

namespace mdjoin {

Result<ClusteredIndex> ClusteredIndex::Build(const Table& t, const std::string& column) {
  MDJ_ASSIGN_OR_RETURN(int idx, t.schema().GetFieldIndex(column));
  Table sorted = SortTable(t, {{idx, /*ascending=*/true}});
  return ClusteredIndex(std::move(sorted), column, idx);
}

int64_t ClusteredIndex::LowerBound(const Value& v) const {
  int64_t lo = 0, hi = table_.num_rows();
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    if (table_.Get(mid, column_index_).Compare(v) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int64_t ClusteredIndex::UpperBound(const Value& v) const {
  int64_t lo = 0, hi = table_.num_rows();
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    if (table_.Get(mid, column_index_).Compare(v) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Table ClusteredIndex::RangeScan(const Value& lo, const Value& hi) const {
  int64_t begin = LowerBound(lo);
  int64_t end = UpperBound(hi);
  Table out(table_.schema());
  if (end > begin) {
    out.Reserve(end - begin);
    for (int64_t r = begin; r < end; ++r) out.AppendRowFrom(table_, r);
  }
  return out;
}

}  // namespace mdjoin
