#ifndef MDJOIN_TABLE_TABLE_OPS_H_
#define MDJOIN_TABLE_TABLE_OPS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace mdjoin {

/// Structural table utilities shared by the relational-algebra layer, the
/// cube generators and the MD-join evaluator. These operate positionally or
/// by column name and are independent of the expression system.

/// One sort key: column index plus direction.
struct SortKey {
  int column;
  bool ascending = true;
};

/// Returns a copy of `t` sorted by `keys` (stable).
Table SortTable(const Table& t, const std::vector<SortKey>& keys);

/// Sorts by named columns, all ascending.
Result<Table> SortTableBy(const Table& t, const std::vector<std::string>& columns);

/// Row indices of `t` in sorted order (stable), without materializing.
std::vector<int64_t> SortedRowIndices(const Table& t, const std::vector<SortKey>& keys);

/// Distinct rows over all columns (first occurrence kept, original order).
Table Distinct(const Table& t);

/// Distinct over the named columns only; output schema is those columns.
Result<Table> DistinctOn(const Table& t, const std::vector<std::string>& columns);

/// Appends all rows of `b` to a copy of `a`. Schemas must match exactly.
Result<Table> Concat(const Table& a, const Table& b);

/// Concatenates many tables; at least one required (defines the schema).
Result<Table> ConcatAll(const std::vector<Table>& tables);

/// New table containing rows of `t` selected by `rows`, in that order.
Table TakeRows(const Table& t, const std::vector<int64_t>& rows);

/// Splits `t` into `n` pieces of near-equal size, preserving order
/// (Theorem 4.1 partitioning: any partition of B is valid).
std::vector<Table> PartitionIntoN(const Table& t, int n);

/// Splits `t` into groups of rows sharing values of the named columns
/// (structural equality: ALL groups with ALL).
Result<std::vector<Table>> PartitionByColumns(const Table& t,
                                              const std::vector<std::string>& columns);

/// Multiset equality of rows, ignoring row order; schemas must match by type
/// and arity (names may differ). The workhorse assertion for the theorem
/// property tests.
bool TablesEqualUnordered(const Table& a, const Table& b);

/// Exact equality including row order and column names.
bool TablesEqualOrdered(const Table& a, const Table& b);

/// Like TablesEqualOrdered, but float64 cells compare with relative tolerance
/// `rel_tol` (plus a tiny absolute floor near zero). Needed when comparing
/// aggregation strategies that sum doubles in different orders — IEEE
/// addition is not associative, so two correct plans can differ in the last
/// ulps once groups grow to thousands of rows.
bool TablesApproxEqualOrdered(const Table& a, const Table& b, double rel_tol = 1e-9);

/// Unordered (multiset) version of the approximate comparison: rows are
/// matched greedily by sorting both tables on all columns first, so it
/// requires tolerant cells to sort adjacently — true for aggregate outputs
/// keyed by exact group columns.
bool TablesApproxEqualUnordered(const Table& a, const Table& b, double rel_tol = 1e-9);

/// Resolves names to column indices; error on unknown.
Result<std::vector<int>> ResolveColumns(const Schema& schema,
                                        const std::vector<std::string>& names);

/// Returns a copy of `t` with columns renamed via parallel vectors.
Result<Table> RenameColumns(const Table& t, const std::vector<std::string>& from,
                            const std::vector<std::string>& to);

/// Returns a copy of `t` with every column name prefixed ("S." etc).
Table PrefixColumns(const Table& t, const std::string& prefix);

}  // namespace mdjoin

#endif  // MDJOIN_TABLE_TABLE_OPS_H_
