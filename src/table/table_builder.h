#ifndef MDJOIN_TABLE_TABLE_BUILDER_H_
#define MDJOIN_TABLE_TABLE_BUILDER_H_

#include <initializer_list>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace mdjoin {

/// Type-checked row-at-a-time Table construction:
///
///   TableBuilder b({{"prod", DataType::kInt64}, {"state", DataType::kString}});
///   MDJ_RETURN_NOT_OK(b.AppendRow({Value::Int64(12), Value::String("NY")}));
///   Table t = std::move(b).Finish();
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema) : table_(std::move(schema)) {}
  TableBuilder(std::initializer_list<Field> fields)
      : table_(Schema(std::vector<Field>(fields))) {}

  /// Validates arity and per-cell types (NULL/ALL allowed anywhere).
  Status AppendRow(std::vector<Value> values);

  /// AppendRow that dies on error; for tests and examples with literal data.
  void AppendRowOrDie(std::vector<Value> values);

  const Schema& schema() const { return table_.schema(); }
  int64_t num_rows() const { return table_.num_rows(); }
  void Reserve(int64_t rows) { table_.Reserve(rows); }

  /// Builds the typed columnar accelerator as part of finishing, so every
  /// loaded/generated table arrives SIMD-ready (operator outputs, which
  /// bypass the builder, simply have none).
  Table Finish() && {
    table_.RebuildAccel();
    return std::move(table_);
  }

 private:
  Table table_;
};

}  // namespace mdjoin

#endif  // MDJOIN_TABLE_TABLE_BUILDER_H_
