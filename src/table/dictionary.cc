#include "table/dictionary.h"

#include <algorithm>

namespace mdjoin {

Dictionary Dictionary::Build(std::vector<std::string> values) {
  Dictionary d;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  d.sorted_ = std::move(values);
  return d;
}

int32_t Dictionary::CodeOf(std::string_view s) const {
  const int32_t lb = LowerBound(s);
  if (lb < size() && sorted_[static_cast<size_t>(lb)] == s) return lb;
  return -1;
}

int32_t Dictionary::LowerBound(std::string_view s) const {
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), s);
  return static_cast<int32_t>(it - sorted_.begin());
}

int64_t Dictionary::ApproxBytes() const {
  int64_t bytes = static_cast<int64_t>(sorted_.capacity() * sizeof(std::string));
  for (const std::string& s : sorted_) {
    bytes += static_cast<int64_t>(s.capacity());
  }
  return bytes;
}

}  // namespace mdjoin
