#ifndef MDJOIN_TABLE_CLUSTERED_INDEX_H_
#define MDJOIN_TABLE_CLUSTERED_INDEX_H_

#include <string>

#include "common/result.h"
#include "table/table.h"

namespace mdjoin {

/// A clustered (sorted) copy of a table on one key column, supporting
/// binary-searched range scans. This is the storage structure §4.2 assumes
/// when it says a pushed-down selection makes the MD-join read "an indexed
/// instead of a full scan of R" (Example 4.1's year ranges): feed
/// RangeScan()'s result to MdJoin as the detail relation and only the
/// qualifying region is ever touched.
class ClusteredIndex {
 public:
  /// Sorts a copy of `t` on `column` (NULLs first, per Value ordering).
  static Result<ClusteredIndex> Build(const Table& t, const std::string& column);

  /// The clustered table (sorted by the key column).
  const Table& table() const { return table_; }
  const std::string& key_column() const { return column_; }

  /// First row index with key >= v / > v (standard bounds).
  int64_t LowerBound(const Value& v) const;
  int64_t UpperBound(const Value& v) const;

  /// Rows with lo <= key <= hi, as a contiguous slice of the clustered
  /// table. O(log n + answer).
  Table RangeScan(const Value& lo, const Value& hi) const;

  /// Rows with key == v.
  Table PointScan(const Value& v) const { return RangeScan(v, v); }

 private:
  ClusteredIndex(Table table, std::string column, int column_index)
      : table_(std::move(table)), column_(std::move(column)), column_index_(column_index) {}

  Table table_;
  std::string column_;
  int column_index_;
};

}  // namespace mdjoin

#endif  // MDJOIN_TABLE_CLUSTERED_INDEX_H_
