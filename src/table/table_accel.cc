#include "table/table_accel.h"

namespace mdjoin {

namespace {

FlatColumn BuildColumn(const std::vector<Value>& cells) {
  FlatColumn out;
  const size_t n = cells.size();
  if (n == 0) return out;  // kNone: nothing to accelerate

  // One classification pass: the column flattens iff every cell shares one
  // storage type (or is NULL). A single ALL or mixed-type cell vetoes.
  bool any_int = false, any_float = false, any_string = false, any_null = false;
  for (const Value& v : cells) {
    if (v.is_null()) {
      any_null = true;
    } else if (v.is_int64()) {
      any_int = true;
    } else if (v.is_float64()) {
      any_float = true;
    } else if (v.is_string()) {
      any_string = true;
    } else {
      return out;  // ALL
    }
    if (static_cast<int>(any_int) + static_cast<int>(any_float) +
            static_cast<int>(any_string) >
        1) {
      return out;  // mixed types
    }
  }
  if (!any_int && !any_float && !any_string) return out;  // all NULL

  out.has_nulls = any_null;
  if (any_null) out.nulls.assign(n, 0);

  if (any_int) {
    out.rep = FlatColumn::Rep::kInt64;
    out.i64.resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (cells[i].is_null()) {
        out.nulls[i] = 1;
        out.i64[i] = 0;
      } else {
        out.i64[i] = cells[i].int64();
      }
    }
  } else if (any_float) {
    out.rep = FlatColumn::Rep::kFloat64;
    out.f64.resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (cells[i].is_null()) {
        out.nulls[i] = 1;
        out.f64[i] = 0.0;
      } else {
        out.f64[i] = cells[i].float64();
      }
    }
  } else {
    out.rep = FlatColumn::Rep::kDict;
    std::vector<std::string> values;
    values.reserve(n);
    for (const Value& v : cells) {
      if (!v.is_null()) values.push_back(v.string());
    }
    auto dict = std::make_shared<Dictionary>(Dictionary::Build(std::move(values)));
    out.codes.resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (cells[i].is_null()) {
        out.nulls[i] = 1;
        out.codes[i] = -1;
      } else {
        out.codes[i] = dict->CodeOf(cells[i].string());
      }
    }
    out.dict = std::move(dict);
  }
  return out;
}

}  // namespace

std::shared_ptr<const TableAccel> TableAccel::Build(const Table& table) {
  auto accel = std::make_shared<TableAccel>();
  accel->num_rows = table.num_rows();
  accel->cols.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    accel->cols.push_back(BuildColumn(table.column(c)));
  }
  return accel;
}

int64_t TableAccel::ApproxBytes() const {
  int64_t bytes = 0;
  for (const FlatColumn& col : cols) {
    bytes += static_cast<int64_t>(col.i64.capacity() * sizeof(int64_t));
    bytes += static_cast<int64_t>(col.f64.capacity() * sizeof(double));
    bytes += static_cast<int64_t>(col.codes.capacity() * sizeof(int32_t));
    bytes += static_cast<int64_t>(col.nulls.capacity());
    if (col.dict != nullptr) bytes += col.dict->ApproxBytes();
  }
  return bytes;
}

}  // namespace mdjoin
