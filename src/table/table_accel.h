#ifndef MDJOIN_TABLE_TABLE_ACCEL_H_
#define MDJOIN_TABLE_TABLE_ACCEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "table/dictionary.h"
#include "table/table.h"

namespace mdjoin {

/// Typed mirror of one Table column for the SIMD kernels. Table cells are
/// Value variants — great for NULL/ALL/mixed-type generality, hostile to
/// vector units. A FlatColumn unpacks a column into a contiguous primitive
/// array plus a null bytemap when (and only when) every cell is one storage
/// type or NULL:
///
///   kInt64   — all cells int64/NULL;  payload in `i64` (null slots hold 0)
///   kFloat64 — all cells float64/NULL; payload in `f64`
///   kDict    — all cells string/NULL; payload in `codes` against a sorted
///              Dictionary (null slots hold -1), so θ string tests run as
///              int32 compares and strings are only decoded at output
///   kNone    — ALL cells, mixed types, or empty: engines use the Value path
///
/// ALL never flattens by design: it appears in base-values tables, and the
/// accelerator serves the detail side of scans.
struct FlatColumn {
  enum class Rep { kNone, kInt64, kFloat64, kDict };

  Rep rep = Rep::kNone;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<int32_t> codes;
  std::vector<uint8_t> nulls;  // 0/1 per row; empty when has_nulls is false
  bool has_nulls = false;
  std::shared_ptr<const Dictionary> dict;

  /// Null bytemap for the SIMD mask helpers, nullptr when the column is
  /// null-free (kernels then skip the mask pass entirely).
  const uint8_t* null_bytes() const { return has_nulls ? nulls.data() : nullptr; }

  bool flat() const { return rep != Rep::kNone; }
};

/// Immutable per-table bundle of FlatColumns, built once at load time
/// (TableBuilder::Finish, the CSV loader) and cached on the Table behind a
/// shared_ptr. Tables assembled through mutators (operator outputs) simply
/// have no accelerator and scan through the Value path; every Table mutator
/// drops the cache so a stale mirror can never be read.
struct TableAccel {
  std::vector<FlatColumn> cols;
  int64_t num_rows = 0;

  static std::shared_ptr<const TableAccel> Build(const Table& table);

  int64_t ApproxBytes() const;
};

}  // namespace mdjoin

#endif  // MDJOIN_TABLE_TABLE_ACCEL_H_
