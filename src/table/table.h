#ifndef MDJOIN_TABLE_TABLE_H_
#define MDJOIN_TABLE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/key.h"
#include "types/schema.h"
#include "types/value.h"

namespace mdjoin {

struct TableAccel;

/// In-memory columnar relation: a Schema plus one Value vector per column.
/// Cheap to move, explicit to copy (Clone). All engine operators (relational
/// algebra, cube generators, the MD-join itself) consume and produce Tables.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  Table Clone() const;

  const Schema& schema() const { return schema_; }
  int num_columns() const { return schema_.num_fields(); }
  int64_t num_rows() const { return num_rows_; }

  const Value& Get(int64_t row, int col) const {
    MDJ_DCHECK(row >= 0 && row < num_rows_);
    MDJ_DCHECK(col >= 0 && col < num_columns());
    return columns_[col][row];
  }
  void Set(int64_t row, int col, Value v) {
    MDJ_DCHECK(row >= 0 && row < num_rows_);
    MDJ_DCHECK(col >= 0 && col < num_columns());
    columns_[col][row] = std::move(v);
    accel_.reset();
  }

  const std::vector<Value>& column(int col) const { return columns_[col]; }

  /// Appends a row without type checking (internal fast path; use
  /// TableBuilder for checked construction). `values` must have one entry per
  /// column.
  void AppendRowUnchecked(std::vector<Value> values);

  /// Appends row `row` of `src`; schemas must have equal arity.
  void AppendRowFrom(const Table& src, int64_t row);

  /// Materializes row `row` as a RowKey over all columns.
  RowKey GetRow(int64_t row) const;

  /// Materializes row `row` projected onto `cols`.
  RowKey GetRowKey(int64_t row, const std::vector<int>& cols) const;

  /// Appends an entire column; only valid while the table has 0 rows or the
  /// column length matches num_rows(). Returns error on name clash.
  Status AddColumn(Field field, std::vector<Value> values);

  void Reserve(int64_t rows);

  /// Rough heap footprint of the table's cells (Value storage plus string
  /// payloads), used by the QueryGuard memory accountant when the executor
  /// materializes intermediates. O(rows × columns).
  int64_t ApproxBytes() const;

  /// Typed columnar mirror for the SIMD kernels (table/table_accel.h), or
  /// null when none was built. Built explicitly at load time via
  /// RebuildAccel(); every mutator drops it, so a non-null accelerator is
  /// always in sync with the cells. Engines treat null as "use the Value
  /// path" — never an error.
  const std::shared_ptr<const TableAccel>& accel() const { return accel_; }

  /// (Re)builds the typed mirror from the current cells. Called by
  /// TableBuilder::Finish and the CSV loader; operator outputs skip it.
  void RebuildAccel();

  /// Human-readable grid (delegates to printer.h).
  std::string ToString(int64_t max_rows = 50) const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
  int64_t num_rows_ = 0;
  std::shared_ptr<const TableAccel> accel_;  // immutable snapshot, shareable
};

}  // namespace mdjoin

#endif  // MDJOIN_TABLE_TABLE_H_
