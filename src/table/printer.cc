#include "table/printer.h"

#include <algorithm>
#include <vector>

#include "table/table.h"

namespace mdjoin {

std::string PrintTable(const Table& t, int64_t max_rows) {
  const Schema& schema = t.schema();
  int ncols = schema.num_fields();
  int64_t nrows = t.num_rows();
  int64_t shown = (max_rows > 0 && nrows > max_rows) ? max_rows : nrows;

  std::vector<std::vector<std::string>> cells;
  cells.reserve(static_cast<size_t>(shown) + 1);
  std::vector<std::string> header;
  header.reserve(ncols);
  for (int c = 0; c < ncols; ++c) header.push_back(schema.field(c).name);
  cells.push_back(std::move(header));
  for (int64_t r = 0; r < shown; ++r) {
    std::vector<std::string> row;
    row.reserve(ncols);
    for (int c = 0; c < ncols; ++c) row.push_back(t.Get(r, c).ToString());
    cells.push_back(std::move(row));
  }

  std::vector<size_t> widths(ncols, 0);
  for (const auto& row : cells) {
    for (int c = 0; c < ncols; ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::vector<bool> right_align(ncols);
  for (int c = 0; c < ncols; ++c) right_align[c] = IsNumeric(schema.field(c).type);

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out += "|";
    for (int c = 0; c < ncols; ++c) {
      out += " ";
      size_t pad = widths[c] - row[c].size();
      if (right_align[c]) out += std::string(pad, ' ');
      out += row[c];
      if (!right_align[c]) out += std::string(pad, ' ');
      out += " |";
    }
    out += "\n";
  };
  auto emit_sep = [&] {
    out += "+";
    for (int c = 0; c < ncols; ++c) {
      out += std::string(widths[c] + 2, '-');
      out += "+";
    }
    out += "\n";
  };

  emit_sep();
  emit_row(cells[0]);
  emit_sep();
  for (size_t i = 1; i < cells.size(); ++i) emit_row(cells[i]);
  emit_sep();
  if (shown < nrows) {
    out += "(" + std::to_string(nrows - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace mdjoin
