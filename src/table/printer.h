#ifndef MDJOIN_TABLE_PRINTER_H_
#define MDJOIN_TABLE_PRINTER_H_

#include <string>

namespace mdjoin {

class Table;

/// Renders `t` as an aligned text grid with a header row, truncating after
/// `max_rows` rows (<=0 means no limit). Numeric columns right-align.
std::string PrintTable(const Table& t, int64_t max_rows = 50);

}  // namespace mdjoin

#endif  // MDJOIN_TABLE_PRINTER_H_
