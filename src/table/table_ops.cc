#include "table/table_ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace mdjoin {

std::vector<int64_t> SortedRowIndices(const Table& t, const std::vector<SortKey>& keys) {
  std::vector<int64_t> idx(static_cast<size_t>(t.num_rows()));
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](int64_t a, int64_t b) {
    for (const SortKey& k : keys) {
      int c = t.Get(a, k.column).Compare(t.Get(b, k.column));
      if (c != 0) return k.ascending ? c < 0 : c > 0;
    }
    return false;
  });
  return idx;
}

Table SortTable(const Table& t, const std::vector<SortKey>& keys) {
  return TakeRows(t, SortedRowIndices(t, keys));
}

Result<Table> SortTableBy(const Table& t, const std::vector<std::string>& columns) {
  MDJ_ASSIGN_OR_RETURN(std::vector<int> cols, ResolveColumns(t.schema(), columns));
  std::vector<SortKey> keys;
  keys.reserve(cols.size());
  for (int c : cols) keys.push_back({c, /*ascending=*/true});
  return SortTable(t, keys);
}

Table Distinct(const Table& t) {
  std::unordered_set<RowKey, RowKeyHash, RowKeyEqual> seen;
  Table out(t.schema());
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (seen.insert(t.GetRow(r)).second) out.AppendRowFrom(t, r);
  }
  return out;
}

Result<Table> DistinctOn(const Table& t, const std::vector<std::string>& columns) {
  MDJ_ASSIGN_OR_RETURN(std::vector<int> cols, ResolveColumns(t.schema(), columns));
  std::vector<Field> fields;
  fields.reserve(cols.size());
  for (int c : cols) fields.push_back(t.schema().field(c));
  Table out{Schema(std::move(fields))};
  std::unordered_set<RowKey, RowKeyHash, RowKeyEqual> seen;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    RowKey key = t.GetRowKey(r, cols);
    if (seen.insert(key).second) out.AppendRowUnchecked(std::move(key));
  }
  return out;
}

Result<Table> Concat(const Table& a, const Table& b) {
  if (!a.schema().Equals(b.schema())) {
    return Status::InvalidArgument("Concat: schema mismatch [", a.schema().ToString(),
                                   "] vs [", b.schema().ToString(), "]");
  }
  Table out = a.Clone();
  for (int64_t r = 0; r < b.num_rows(); ++r) out.AppendRowFrom(b, r);
  return out;
}

Result<Table> ConcatAll(const std::vector<Table>& tables) {
  if (tables.empty()) return Status::InvalidArgument("ConcatAll: no input tables");
  Table out = tables[0].Clone();
  for (size_t i = 1; i < tables.size(); ++i) {
    if (!tables[i].schema().Equals(out.schema())) {
      return Status::InvalidArgument("ConcatAll: schema mismatch at table ", i);
    }
    for (int64_t r = 0; r < tables[i].num_rows(); ++r) out.AppendRowFrom(tables[i], r);
  }
  return out;
}

Table TakeRows(const Table& t, const std::vector<int64_t>& rows) {
  Table out(t.schema());
  out.Reserve(static_cast<int64_t>(rows.size()));
  for (int64_t r : rows) out.AppendRowFrom(t, r);
  return out;
}

std::vector<Table> PartitionIntoN(const Table& t, int n) {
  MDJ_CHECK(n > 0);
  std::vector<Table> out;
  out.reserve(static_cast<size_t>(n));
  int64_t rows = t.num_rows();
  int64_t base = rows / n, extra = rows % n;
  int64_t start = 0;
  for (int i = 0; i < n; ++i) {
    int64_t len = base + (i < extra ? 1 : 0);
    Table piece(t.schema());
    piece.Reserve(len);
    for (int64_t r = start; r < start + len; ++r) piece.AppendRowFrom(t, r);
    start += len;
    out.push_back(std::move(piece));
  }
  return out;
}

Result<std::vector<Table>> PartitionByColumns(const Table& t,
                                              const std::vector<std::string>& columns) {
  MDJ_ASSIGN_OR_RETURN(std::vector<int> cols, ResolveColumns(t.schema(), columns));
  std::unordered_map<RowKey, size_t, RowKeyHash, RowKeyEqual> group_of;
  std::vector<Table> out;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    RowKey key = t.GetRowKey(r, cols);
    auto [it, inserted] = group_of.try_emplace(std::move(key), out.size());
    if (inserted) out.emplace_back(t.schema());
    out[it->second].AppendRowFrom(t, r);
  }
  return out;
}

namespace {

bool SchemasCompatible(const Schema& a, const Schema& b) {
  if (a.num_fields() != b.num_fields()) return false;
  for (int i = 0; i < a.num_fields(); ++i) {
    // Numeric columns are interchangeable: an int64 SUM and the same SUM
    // computed as float64 must still compare equal row-wise.
    DataType ta = a.field(i).type, tb = b.field(i).type;
    if (ta != tb && !(IsNumeric(ta) && IsNumeric(tb))) return false;
  }
  return true;
}

}  // namespace

bool TablesEqualUnordered(const Table& a, const Table& b) {
  if (!SchemasCompatible(a.schema(), b.schema())) return false;
  if (a.num_rows() != b.num_rows()) return false;
  std::unordered_map<RowKey, int64_t, RowKeyHash, RowKeyEqual> counts;
  for (int64_t r = 0; r < a.num_rows(); ++r) ++counts[a.GetRow(r)];
  for (int64_t r = 0; r < b.num_rows(); ++r) {
    auto it = counts.find(b.GetRow(r));
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

bool TablesEqualOrdered(const Table& a, const Table& b) {
  if (!a.schema().Equals(b.schema())) return false;
  if (a.num_rows() != b.num_rows()) return false;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      if (!a.Get(r, c).Equals(b.Get(r, c))) return false;
    }
  }
  return true;
}

namespace {

bool CellsApproxEqual(const Value& a, const Value& b, double rel_tol) {
  if (a.is_float64() || b.is_float64()) {
    if (!a.is_numeric() || !b.is_numeric()) return a.Equals(b);
    double x = a.AsDouble(), y = b.AsDouble();
    if (x == y) return true;
    double scale = std::max(std::abs(x), std::abs(y));
    return std::abs(x - y) <= rel_tol * std::max(scale, 1.0);
  }
  return a.Equals(b);
}

bool RowsApproxEqual(const Table& a, int64_t ra, const Table& b, int64_t rb,
                     double rel_tol) {
  for (int c = 0; c < a.num_columns(); ++c) {
    if (!CellsApproxEqual(a.Get(ra, c), b.Get(rb, c), rel_tol)) return false;
  }
  return true;
}

std::vector<SortKey> AllColumnKeys(const Table& t) {
  std::vector<SortKey> keys;
  for (int c = 0; c < t.num_columns(); ++c) keys.push_back({c, true});
  return keys;
}

}  // namespace

bool TablesApproxEqualOrdered(const Table& a, const Table& b, double rel_tol) {
  if (a.num_columns() != b.num_columns() || a.num_rows() != b.num_rows()) return false;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    if (!RowsApproxEqual(a, r, b, r, rel_tol)) return false;
  }
  return true;
}

bool TablesApproxEqualUnordered(const Table& a, const Table& b, double rel_tol) {
  if (a.num_columns() != b.num_columns() || a.num_rows() != b.num_rows()) return false;
  Table sa = SortTable(a, AllColumnKeys(a));
  Table sb = SortTable(b, AllColumnKeys(b));
  // Sorting may interleave rows whose float cells differ in the last ulps; a
  // bounded look-back window absorbs those local swaps.
  constexpr int64_t kWindow = 8;
  std::vector<bool> used(static_cast<size_t>(sb.num_rows()), false);
  for (int64_t r = 0; r < sa.num_rows(); ++r) {
    bool matched = false;
    for (int64_t w = std::max<int64_t>(0, r - kWindow);
         w < std::min(sb.num_rows(), r + kWindow + 1); ++w) {
      if (!used[static_cast<size_t>(w)] && RowsApproxEqual(sa, r, sb, w, rel_tol)) {
        used[static_cast<size_t>(w)] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

Result<std::vector<int>> ResolveColumns(const Schema& schema,
                                        const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    MDJ_ASSIGN_OR_RETURN(int idx, schema.GetFieldIndex(name));
    out.push_back(idx);
  }
  return out;
}

Result<Table> RenameColumns(const Table& t, const std::vector<std::string>& from,
                            const std::vector<std::string>& to) {
  if (from.size() != to.size()) {
    return Status::InvalidArgument("RenameColumns: from/to size mismatch");
  }
  std::vector<Field> fields = t.schema().fields();
  for (size_t i = 0; i < from.size(); ++i) {
    MDJ_ASSIGN_OR_RETURN(int idx, t.schema().GetFieldIndex(from[i]));
    fields[idx].name = to[i];
  }
  Table out = t.Clone();
  Table renamed{Schema(std::move(fields))};
  for (int64_t r = 0; r < out.num_rows(); ++r) renamed.AppendRowFrom(out, r);
  return renamed;
}

Table PrefixColumns(const Table& t, const std::string& prefix) {
  std::vector<Field> fields = t.schema().fields();
  for (Field& f : fields) f.name = prefix + f.name;
  Table out{Schema(std::move(fields))};
  for (int64_t r = 0; r < t.num_rows(); ++r) out.AppendRowFrom(t, r);
  return out;
}

}  // namespace mdjoin
