#include "optimizer/plan.h"

#include "common/logging.h"
#include "expr/compile.h"

namespace mdjoin {

const char* PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kTableRef:
      return "TableRef";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kDistinct:
      return "Distinct";
    case PlanKind::kUnion:
      return "Union";
    case PlanKind::kPartition:
      return "Partition";
    case PlanKind::kHashJoin:
      return "HashJoin";
    case PlanKind::kGroupBy:
      return "GroupBy";
    case PlanKind::kMdJoin:
      return "MdJoin";
    case PlanKind::kGeneralizedMdJoin:
      return "GeneralizedMdJoin";
    case PlanKind::kCubeBase:
      return "CubeBase";
    case PlanKind::kCuboidBase:
      return "CuboidBase";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kEmptyRef:
      return "EmptyRef";
  }
  return "?";
}

PlanPtr MakeNode(PlanKind kind, std::vector<PlanPtr> children) {
  auto node = std::make_shared<PlanNode>(kind);
  for (const PlanPtr& c : children) MDJ_CHECK(c != nullptr);
  node->children_ = std::move(children);  // MakeNode is a friend
  return node;
}

namespace {

/// Mutable handle used by factories before the node is published as const.
PlanNode* Mutable(const PlanPtr& p) { return const_cast<PlanNode*>(p.get()); }

}  // namespace

PlanPtr TableRef(std::string name) {
  PlanPtr p = MakeNode(PlanKind::kTableRef, {});
  Mutable(p)->table_name = std::move(name);
  return p;
}

PlanPtr FilterPlan(PlanPtr child, ExprPtr predicate) {
  PlanPtr p = MakeNode(PlanKind::kFilter, {std::move(child)});
  Mutable(p)->predicate = std::move(predicate);
  return p;
}

PlanPtr ProjectPlan(PlanPtr child, std::vector<ProjectItem> items) {
  PlanPtr p = MakeNode(PlanKind::kProject, {std::move(child)});
  Mutable(p)->projections = std::move(items);
  return p;
}

PlanPtr DistinctPlan(PlanPtr child) {
  return MakeNode(PlanKind::kDistinct, {std::move(child)});
}

PlanPtr UnionPlan(std::vector<PlanPtr> children) {
  return MakeNode(PlanKind::kUnion, std::move(children));
}

PlanPtr PartitionPlan(PlanPtr child, int index, int count) {
  MDJ_CHECK(count > 0 && index >= 0 && index < count);
  PlanPtr p = MakeNode(PlanKind::kPartition, {std::move(child)});
  Mutable(p)->partition_index = index;
  Mutable(p)->partition_count = count;
  return p;
}

PlanPtr HashJoinPlan(PlanPtr left, PlanPtr right, std::vector<std::string> left_keys,
                     std::vector<std::string> right_keys, JoinType type) {
  PlanPtr p = MakeNode(PlanKind::kHashJoin, {std::move(left), std::move(right)});
  Mutable(p)->left_keys = std::move(left_keys);
  Mutable(p)->right_keys = std::move(right_keys);
  Mutable(p)->join_type = type;
  return p;
}

PlanPtr GroupByPlan(PlanPtr child, std::vector<std::string> group_columns,
                    std::vector<AggSpec> aggs) {
  PlanPtr p = MakeNode(PlanKind::kGroupBy, {std::move(child)});
  Mutable(p)->group_columns = std::move(group_columns);
  Mutable(p)->aggs = std::move(aggs);
  return p;
}

PlanPtr MdJoinPlan(PlanPtr base, PlanPtr detail, std::vector<AggSpec> aggs,
                   ExprPtr theta) {
  PlanPtr p = MakeNode(PlanKind::kMdJoin, {std::move(base), std::move(detail)});
  Mutable(p)->aggs = std::move(aggs);
  Mutable(p)->theta = std::move(theta);
  return p;
}

PlanPtr GeneralizedMdJoinPlan(PlanPtr base, PlanPtr detail,
                              std::vector<MdJoinComponent> components) {
  PlanPtr p =
      MakeNode(PlanKind::kGeneralizedMdJoin, {std::move(base), std::move(detail)});
  Mutable(p)->components = std::move(components);
  return p;
}

PlanPtr CubeBasePlan(PlanPtr child, std::vector<std::string> dims) {
  PlanPtr p = MakeNode(PlanKind::kCubeBase, {std::move(child)});
  Mutable(p)->cube_dims = std::move(dims);
  return p;
}

PlanPtr CuboidBasePlan(PlanPtr child, std::vector<std::string> dims, CuboidMask mask) {
  PlanPtr p = MakeNode(PlanKind::kCuboidBase, {std::move(child)});
  Mutable(p)->cube_dims = std::move(dims);
  Mutable(p)->cuboid_mask = mask;
  return p;
}

PlanPtr SortPlan(PlanPtr child, std::vector<std::string> columns,
                 std::vector<bool> ascending) {
  PlanPtr p = MakeNode(PlanKind::kSort, {std::move(child)});
  if (ascending.empty()) ascending.assign(columns.size(), true);
  MDJ_CHECK(ascending.size() == columns.size());
  Mutable(p)->sort_columns = std::move(columns);
  Mutable(p)->sort_ascending = std::move(ascending);
  return p;
}

PlanPtr EmptyRefPlan(Schema schema) {
  PlanPtr p = MakeNode(PlanKind::kEmptyRef, {});
  Mutable(p)->empty_schema = std::make_shared<const Schema>(std::move(schema));
  return p;
}

PlanPtr CloneWithChildren(const PlanPtr& node, std::vector<PlanPtr> children) {
  PlanPtr p = MakeNode(node->kind(), std::move(children));
  PlanNode* m = Mutable(p);
  m->table_name = node->table_name;
  m->predicate = node->predicate;
  m->projections = node->projections;
  m->partition_index = node->partition_index;
  m->partition_count = node->partition_count;
  m->left_keys = node->left_keys;
  m->right_keys = node->right_keys;
  m->join_type = node->join_type;
  m->group_columns = node->group_columns;
  m->aggs = node->aggs;
  m->theta = node->theta;
  m->components = node->components;
  m->cube_dims = node->cube_dims;
  m->cuboid_mask = node->cuboid_mask;
  m->sort_columns = node->sort_columns;
  m->sort_ascending = node->sort_ascending;
  m->empty_schema = node->empty_schema;
  return p;
}

std::string PlanNode::Label() const {
  std::string out = PlanKindToString(kind_);
  switch (kind_) {
    case PlanKind::kTableRef:
      out += "(" + table_name + ")";
      break;
    case PlanKind::kFilter:
      out += "(" + (predicate ? predicate->ToString() : "?") + ")";
      break;
    case PlanKind::kProject: {
      out += "(";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) out += ", ";
        out += projections[i].name;
      }
      out += ")";
      break;
    }
    case PlanKind::kPartition:
      out += "(" + std::to_string(partition_index) + "/" +
             std::to_string(partition_count) + ")";
      break;
    case PlanKind::kHashJoin: {
      out += "(";
      for (size_t i = 0; i < left_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += left_keys[i] + "=" + right_keys[i];
      }
      out += join_type == JoinType::kLeftOuter ? "; left outer)" : ")";
      break;
    }
    case PlanKind::kGroupBy: {
      out += "(keys: ";
      for (size_t i = 0; i < group_columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_columns[i];
      }
      out += "; aggs: ";
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i > 0) out += ", ";
        out += aggs[i].ToString();
      }
      out += ")";
      break;
    }
    case PlanKind::kMdJoin: {
      out += "(aggs: ";
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i > 0) out += ", ";
        out += aggs[i].ToString();
      }
      out += "; theta: " + (theta ? theta->ToString() : "?") + ")";
      break;
    }
    case PlanKind::kGeneralizedMdJoin: {
      out += "(" + std::to_string(components.size()) + " components";
      for (const MdJoinComponent& c : components) {
        out += "; [";
        for (size_t i = 0; i < c.aggs.size(); ++i) {
          if (i > 0) out += ", ";
          out += c.aggs[i].ToString();
        }
        out += " | " + (c.theta ? c.theta->ToString() : "?") + "]";
      }
      out += ")";
      break;
    }
    case PlanKind::kCubeBase:
    case PlanKind::kCuboidBase: {
      out += "(";
      for (size_t i = 0; i < cube_dims.size(); ++i) {
        if (i > 0) out += ", ";
        if (kind_ == PlanKind::kCuboidBase && !(cuboid_mask & (CuboidMask{1} << i))) {
          out += "ALL";
        } else {
          out += cube_dims[i];
        }
      }
      out += ")";
      break;
    }
    case PlanKind::kSort: {
      out += "(";
      for (size_t i = 0; i < sort_columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += sort_columns[i];
        if (!sort_ascending[i]) out += " desc";
      }
      out += ")";
      break;
    }
    case PlanKind::kEmptyRef:
      out += "(" + (empty_schema ? empty_schema->ToString() : std::string("?")) + ")";
      break;
    default:
      break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

Status Catalog::Register(std::string name, const Table* table) {
  MDJ_CHECK(table != nullptr);
  if (paged_.count(name) != 0) {
    return Status::AlreadyExists("table '", name, "' already registered (paged)");
  }
  auto [it, inserted] = tables_.try_emplace(std::move(name), table);
  if (!inserted) return Status::AlreadyExists("table '", it->first, "' already registered");
  return Status::OK();
}

Status Catalog::RegisterPaged(std::string name, const PagedTable* table,
                              Schema schema, int64_t num_rows) {
  MDJ_CHECK(table != nullptr);
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '", name, "' already registered");
  }
  auto [it, inserted] = paged_.try_emplace(
      std::move(name), PagedEntry{table, std::move(schema), num_rows});
  if (!inserted) {
    return Status::AlreadyExists("table '", it->first, "' already registered (paged)");
  }
  return Status::OK();
}

Result<const Table*> Catalog::Lookup(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '", name, "'");
  return it->second;
}

const PagedTable* Catalog::FindPaged(const std::string& name) const {
  auto it = paged_.find(name);
  return it == paged_.end() ? nullptr : it->second.table;
}

Result<const Schema*> Catalog::LookupSchema(const std::string& name) const {
  auto it = tables_.find(name);
  if (it != tables_.end()) return &it->second->schema();
  auto pit = paged_.find(name);
  if (pit != paged_.end()) return &pit->second.schema;
  return Status::NotFound("no table named '", name, "'");
}

Result<int64_t> Catalog::LookupNumRows(const std::string& name) const {
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second->num_rows();
  auto pit = paged_.find(name);
  if (pit != paged_.end()) return pit->second.num_rows;
  return Status::NotFound("no table named '", name, "'");
}

Status Catalog::RegisterStats(const std::string& name, const TableStats* stats) {
  MDJ_CHECK(stats != nullptr);
  if (tables_.count(name) == 0 && paged_.count(name) == 0) {
    return Status::NotFound("RegisterStats: no table named '", name, "'");
  }
  stats_[name] = stats;
  return Status::OK();
}

const TableStats* Catalog::FindStats(const std::string& name) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size() + paged_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  for (const auto& [name, entry] : paged_) out.push_back(name);
  return out;
}

// ---------------------------------------------------------------------------
// Schema inference
// ---------------------------------------------------------------------------

namespace {

Result<Schema> InferAggOutputs(const Schema& base, const Schema& detail,
                               const std::vector<AggSpec>& aggs, Schema out) {
  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound, BindAggs(aggs, &base, &detail));
  for (const BoundAgg& b : bound) {
    MDJ_RETURN_NOT_OK(out.AddField(b.output_field));
  }
  return out;
}

}  // namespace

Result<Schema> InferSchema(const PlanPtr& plan, const Catalog& catalog) {
  if (plan == nullptr) return Status::InvalidArgument("InferSchema: null plan");
  switch (plan->kind()) {
    case PlanKind::kTableRef: {
      MDJ_ASSIGN_OR_RETURN(const Schema* s, catalog.LookupSchema(plan->table_name));
      return *s;
    }
    case PlanKind::kFilter: {
      MDJ_ASSIGN_OR_RETURN(Schema child, InferSchema(plan->child(0), catalog));
      // Type-check the predicate against the child schema.
      MDJ_ASSIGN_OR_RETURN(CompiledExpr c, CompileExpr(plan->predicate, child));
      (void)c;
      return child;
    }
    case PlanKind::kProject: {
      MDJ_ASSIGN_OR_RETURN(Schema child, InferSchema(plan->child(0), catalog));
      std::vector<Field> fields;
      for (const ProjectItem& item : plan->projections) {
        MDJ_ASSIGN_OR_RETURN(CompiledExpr c, CompileExpr(item.expr, child));
        fields.push_back(Field{item.name, c.result_type()});
      }
      return Schema(std::move(fields));
    }
    case PlanKind::kDistinct:
    case PlanKind::kPartition:
      return InferSchema(plan->child(0), catalog);
    case PlanKind::kSort: {
      MDJ_ASSIGN_OR_RETURN(Schema child, InferSchema(plan->child(0), catalog));
      for (const std::string& c : plan->sort_columns) {
        MDJ_ASSIGN_OR_RETURN(int idx, child.GetFieldIndex(c));
        (void)idx;
      }
      return child;
    }
    case PlanKind::kUnion: {
      if (plan->children().empty()) {
        return Status::InvalidArgument("Union with no children");
      }
      MDJ_ASSIGN_OR_RETURN(Schema first, InferSchema(plan->child(0), catalog));
      for (size_t i = 1; i < plan->children().size(); ++i) {
        MDJ_ASSIGN_OR_RETURN(Schema other,
                             InferSchema(plan->children()[i], catalog));
        if (!other.Equals(first)) {
          return Status::TypeError("Union children have mismatched schemas: [",
                                   first.ToString(), "] vs [", other.ToString(), "]");
        }
      }
      return first;
    }
    case PlanKind::kHashJoin: {
      MDJ_ASSIGN_OR_RETURN(Schema left, InferSchema(plan->child(0), catalog));
      MDJ_ASSIGN_OR_RETURN(Schema right, InferSchema(plan->child(1), catalog));
      // Mirror ra::HashJoin's schema: left columns, then right non-key
      // columns with "_r" suffixing on clashes.
      std::vector<Field> fields = left.fields();
      auto taken = [&fields](const std::string& name) {
        for (const Field& f : fields) {
          if (f.name == name) return true;
        }
        return false;
      };
      for (const Field& f : right.fields()) {
        bool is_key = false;
        for (const std::string& k : plan->right_keys) is_key = is_key || k == f.name;
        if (is_key) continue;
        Field out = f;
        while (taken(out.name)) out.name += "_r";
        fields.push_back(std::move(out));
      }
      return Schema(std::move(fields));
    }
    case PlanKind::kGroupBy: {
      MDJ_ASSIGN_OR_RETURN(Schema child, InferSchema(plan->child(0), catalog));
      std::vector<Field> fields;
      for (const std::string& g : plan->group_columns) {
        MDJ_ASSIGN_OR_RETURN(int idx, child.GetFieldIndex(g));
        fields.push_back(child.field(idx));
      }
      MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                           BindAggs(plan->aggs, nullptr, &child));
      for (const BoundAgg& b : bound) fields.push_back(b.output_field);
      return Schema(std::move(fields));
    }
    case PlanKind::kMdJoin: {
      MDJ_ASSIGN_OR_RETURN(Schema base, InferSchema(plan->child(0), catalog));
      MDJ_ASSIGN_OR_RETURN(Schema detail, InferSchema(plan->child(1), catalog));
      // Type-check θ while we are here.
      MDJ_ASSIGN_OR_RETURN(CompiledExpr c, CompileExpr(plan->theta, &base, &detail));
      (void)c;
      return InferAggOutputs(base, detail, plan->aggs, base);
    }
    case PlanKind::kGeneralizedMdJoin: {
      MDJ_ASSIGN_OR_RETURN(Schema base, InferSchema(plan->child(0), catalog));
      MDJ_ASSIGN_OR_RETURN(Schema detail, InferSchema(plan->child(1), catalog));
      Schema out = base;
      for (const MdJoinComponent& comp : plan->components) {
        MDJ_ASSIGN_OR_RETURN(CompiledExpr c, CompileExpr(comp.theta, &base, &detail));
        (void)c;
        MDJ_ASSIGN_OR_RETURN(out, InferAggOutputs(base, detail, comp.aggs, out));
      }
      return out;
    }
    case PlanKind::kCubeBase:
    case PlanKind::kCuboidBase: {
      MDJ_ASSIGN_OR_RETURN(Schema child, InferSchema(plan->child(0), catalog));
      std::vector<Field> fields;
      for (const std::string& d : plan->cube_dims) {
        MDJ_ASSIGN_OR_RETURN(int idx, child.GetFieldIndex(d));
        fields.push_back(child.field(idx));
      }
      return Schema(std::move(fields));
    }
    case PlanKind::kEmptyRef: {
      if (plan->empty_schema == nullptr) {
        return Status::InvalidArgument("EmptyRef carries no schema");
      }
      return *plan->empty_schema;
    }
  }
  return Status::Internal("unreachable plan kind");
}

namespace {

void ExplainRec(const PlanPtr& plan, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += plan->Label();
  *out += "\n";
  for (const PlanPtr& c : plan->children()) ExplainRec(c, depth + 1, out);
}

}  // namespace

std::string ExplainPlan(const PlanPtr& plan) {
  std::string out;
  if (plan != nullptr) ExplainRec(plan, 0, &out);
  return out;
}

}  // namespace mdjoin
