#ifndef MDJOIN_OPTIMIZER_OPTIMIZE_H_
#define MDJOIN_OPTIMIZER_OPTIMIZE_H_

#include <string>
#include <vector>

#include "obs/query_profile.h"
#include "optimizer/plan.h"

namespace mdjoin {

/// Which rewrites the driver may apply. The defaults apply everything that
/// is beneficial under the plain executor; cube roll-up chains only pay off
/// under ExecutePlanCse (shared parent cuboids), so they are opt-in.
struct OptimizeOptions {
  bool enable_pushdown = true;       // Theorem 4.2
  bool enable_transfer = true;       // Observation 4.1
  bool enable_fusion = true;         // Theorem 4.3
  bool enable_cube_rollup = false;   // cube expansion + Theorem 4.5 chains
  bool enable_unsat_rewrite = true;  // certified empty-result rewrite
  /// Theorem 4.4 equijoin split. Opt-in: splitting pays off only when the
  /// independent MD-joins can actually run at different sites (or in
  /// parallel), which the single-node executor does not exploit, so default
  /// plans keep the nested shape.
  bool enable_split = false;
  int max_rounds = 4;                // fixpoint guard per node

  /// Plan-feedback store (stats/feedback.h) consulted by the cost model when
  /// ranking rewrites: nodes with measured cardinalities beat the model's
  /// constants, so repeated queries converge on measurement-backed rewrite
  /// decisions. Not owned, may be null.
  const class FeedbackStore* feedback = nullptr;

  /// Debug invariant mode: re-run the full PlanAnalyzer over the plan after
  /// every accepted rule application and fail fast with the analyzer's
  /// structured diagnostic if the rewrite produced an ill-formed plan. Also
  /// enabled (independently of this flag) by setting the MDJOIN_VERIFY_PLANS
  /// environment variable to a non-empty value other than "0".
  bool verify_plans = false;
};

/// What the driver did, for explainability and tests.
struct OptimizeReport {
  std::vector<std::string> applied;  // human-readable rule firings

  std::string ToString() const;
};

/// Rule-driven plan optimization: rewrites bottom-up, firing each enabled
/// rule wherever its pattern matches, re-checking with the cost model that
/// the rewrite does not increase estimated work (a tiny cost-based
/// optimizer in the sense of §4: the transformations make MD-join plans
/// "immediately incorporable into present cost- and algebraic-based query
/// optimizers"). Result equivalence is guaranteed by the rules' theorems and
/// enforced by the property-test suite.
/// `rewrite_log`, when non-null, receives one RewriteRecord per rule firing
/// that produced a candidate plan — accepted or rejected — carrying the
/// cost-model certificate (estimated work before/after). EXPLAIN ANALYZE
/// surfaces this log through QueryProfile::rewrites.
Result<PlanPtr> OptimizePlan(const PlanPtr& plan, const Catalog& catalog,
                             const OptimizeOptions& options = {},
                             OptimizeReport* report = nullptr,
                             std::vector<RewriteRecord>* rewrite_log = nullptr);

}  // namespace mdjoin

#endif  // MDJOIN_OPTIMIZER_OPTIMIZE_H_
