#include "optimizer/rules.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "analyze/plan_analyzer.h"
#include "expr/conjuncts.h"

namespace mdjoin {

// Every rule's legality precondition is decided by a PlanAnalyzer certificate
// (analyze/plan_analyzer.h) — the rules contain no private θ classification
// or provenance guessing. A rule's job here is purely the tree surgery; the
// certificate is the proof it is allowed.

namespace {

Status NotApplicable(const char* rule, const std::string& why) {
  return Status::InvalidArgument(rule, ": rule not applicable: ", why);
}

bool IsMdJoin(const PlanPtr& p) { return p->kind() == PlanKind::kMdJoin; }

/// Structural plan identity via the explain rendering (labels carry the full
/// payload). Used to decide whether two detail subplans are "the same
/// relation" for fusion.
bool SamePlan(const PlanPtr& a, const PlanPtr& b) {
  return a == b || ExplainPlan(a) == ExplainPlan(b);
}

}  // namespace

Result<PlanPtr> ApplyBasePartitioning(const PlanPtr& plan, int num_partitions) {
  if (!IsMdJoin(plan)) return NotApplicable("Theorem 4.1", "root is not an MD-join");
  if (num_partitions < 1) {
    return NotApplicable("Theorem 4.1", "partition count must be >= 1");
  }
  std::vector<PlanPtr> pieces;
  pieces.reserve(static_cast<size_t>(num_partitions));
  for (int i = 0; i < num_partitions; ++i) {
    pieces.push_back(MdJoinPlan(PartitionPlan(plan->child(0), i, num_partitions),
                                plan->child(1), plan->aggs, plan->theta));
  }
  return UnionPlan(std::move(pieces));
}

Result<PlanPtr> ApplySelectionPushdown(const PlanPtr& plan) {
  MDJ_ASSIGN_OR_RETURN(PushdownCertificate cert, CertifyDetailPushdown(plan));
  ExprPtr detail_sel = CombineConjuncts(cert.detail_only);
  return MdJoinPlan(plan->child(0), FilterPlan(plan->child(1), std::move(detail_sel)),
                    plan->aggs, CombineTheta(cert.remainder));
}

Result<PlanPtr> ApplyBaseSelectionTransfer(const PlanPtr& plan) {
  MDJ_ASSIGN_OR_RETURN(TransferCertificate cert, CertifyEquiTransfer(plan));
  const PlanPtr& base = plan->child(0);
  const ExprPtr& sel = base->predicate;
  // Substitute B attributes with R key expressions. The resulting predicate
  // references R via kDetail, exactly the frame a Filter over R expects.
  ExprPtr detail_sel = Expr::SubstituteColumns(sel, Side::kDetail, cert.substitution);
  // Idempotence guard: the pattern (base is a Filter) persists after the
  // rewrite, so a rule driver would otherwise stack the same σ on R every
  // round. If the detail child already carries this predicate, we are done.
  if (plan->child(1)->kind() == PlanKind::kFilter &&
      plan->child(1)->predicate->ToString() == detail_sel->ToString()) {
    return NotApplicable("Observation 4.1", "selection already transferred");
  }
  return MdJoinPlan(base, FilterPlan(plan->child(1), std::move(detail_sel)), plan->aggs,
                    plan->theta);
}

Result<PlanPtr> ApplyUnsatThetaRewrite(const PlanPtr& plan, const Catalog& catalog) {
  if (!IsMdJoin(plan)) return NotApplicable("unsat-θ", "root is not an MD-join");
  // Idempotence guard: once the detail child is an EmptyRef the rewrite has
  // already happened; re-proving unsatisfiability every round is wasted work.
  if (plan->child(1)->kind() == PlanKind::kEmptyRef) {
    return NotApplicable("unsat-θ", "detail child is already empty");
  }
  MDJ_ASSIGN_OR_RETURN(UnsatThetaCertificate cert, CertifyUnsatTheta(plan));
  (void)cert;
  MDJ_ASSIGN_OR_RETURN(Schema detail_schema, InferSchema(plan->child(1), catalog));
  // θ is kept on the node: it is provably unsatisfiable, so evaluating it
  // over the empty relation is free, and keeping it preserves the plan's
  // self-description (EXPLAIN still shows the original condition).
  return MdJoinPlan(plan->child(0), EmptyRefPlan(std::move(detail_schema)),
                    plan->aggs, plan->theta);
}

Result<PlanPtr> FuseMdJoinSeries(const PlanPtr& plan) {
  if (!IsMdJoin(plan)) return NotApplicable("Theorem 4.3", "root is not an MD-join");
  // Collect the chain of nested MD-joins, outermost first.
  std::vector<PlanPtr> chain;
  PlanPtr cursor = plan;
  while (IsMdJoin(cursor)) {
    chain.push_back(cursor);
    cursor = cursor->child(0);
  }
  PlanPtr innermost_base = cursor;
  if (chain.size() < 2) {
    return NotApplicable("Theorem 4.3", "series has a single MD-join");
  }
  // Application order: innermost (applied first) to outermost.
  std::reverse(chain.begin(), chain.end());

  // θ-independence analysis: the analyzer assigns each component the
  // earliest generation whose outputs its θ / aggregate arguments do not
  // reference. Same-generation components are mutually independent — the
  // Theorem 4.3 legality condition for fusing them.
  const ChainDependencyCertificate cert = CertifyChainDependencies(chain);
  const size_t k = chain.size();

  // Group components by (generation, detail subplan); emit one (generalized)
  // MD-join per group, stacked in generation order. Groups keep first-member
  // order within a generation.
  int max_gen = *std::max_element(cert.generation.begin(), cert.generation.end());
  PlanPtr current = innermost_base;
  bool fused_anything = false;
  for (int gen = 0; gen <= max_gen; ++gen) {
    // Partition this generation's members into detail-equality groups.
    std::vector<std::vector<size_t>> groups;
    for (size_t i = 0; i < k; ++i) {
      if (cert.generation[i] != gen) continue;
      bool placed = false;
      for (std::vector<size_t>& g : groups) {
        if (SamePlan(chain[g[0]]->child(1), chain[i]->child(1))) {
          g.push_back(i);
          placed = true;
          break;
        }
      }
      if (!placed) groups.push_back({i});
    }
    for (const std::vector<size_t>& g : groups) {
      if (g.size() == 1) {
        const PlanPtr& node = chain[g[0]];
        current = MdJoinPlan(current, node->child(1), node->aggs, node->theta);
      } else {
        fused_anything = true;
        std::vector<MdJoinComponent> comps;
        comps.reserve(g.size());
        for (size_t i : g) comps.push_back({chain[i]->aggs, chain[i]->theta});
        current = GeneralizedMdJoinPlan(current, chain[g[0]]->child(1), std::move(comps));
      }
    }
  }
  if (!fused_anything) {
    return NotApplicable("Theorem 4.3",
                         "no two independent MD-joins share a detail relation");
  }
  return current;
}

Result<PlanPtr> CommuteMdJoins(const PlanPtr& plan, const Catalog& catalog) {
  MDJ_RETURN_NOT_OK(CertifyOuterIndependence(plan, catalog, "Theorem 4.3 (commute)"));
  const PlanPtr& inner = plan->child(0);
  PlanPtr new_inner =
      MdJoinPlan(inner->child(0), plan->child(1), plan->aggs, plan->theta);
  return MdJoinPlan(std::move(new_inner), inner->child(1), inner->aggs, inner->theta);
}

Result<PlanPtr> SplitToEquiJoin(const PlanPtr& plan, const Catalog& catalog) {
  MDJ_RETURN_NOT_OK(CertifyOuterIndependence(plan, catalog, "Theorem 4.4"));
  const PlanPtr& inner = plan->child(0);
  const PlanPtr& b_plan = inner->child(0);
  // The theorem's standing assumption is that B is duplicate-free (otherwise
  // the equijoin multiplies rows). The analyzer must produce structural
  // evidence; without it the rule refuses instead of trusting callers.
  Result<DistinctnessCertificate> distinct = CertifyBaseDistinct(b_plan);
  if (!distinct.ok()) return distinct.status();
  MDJ_ASSIGN_OR_RETURN(Schema base_schema, InferSchema(b_plan, catalog));
  std::vector<std::string> keys;
  keys.reserve(static_cast<size_t>(base_schema.num_fields()));
  for (const Field& f : base_schema.fields()) keys.push_back(f.name);
  PlanPtr right = MdJoinPlan(b_plan, plan->child(1), plan->aggs, plan->theta);
  return HashJoinPlan(inner, std::move(right), keys, keys, JoinType::kInner);
}

Result<PlanPtr> ApplyRollup(const PlanPtr& plan, CuboidMask finer_mask) {
  MDJ_ASSIGN_OR_RETURN(RollupCertificate cert, CertifyRollup(plan));
  const PlanPtr& base = plan->child(0);
  const CuboidMask coarse = base->cuboid_mask;
  if ((coarse & finer_mask) != coarse || coarse == finer_mask) {
    return NotApplicable("Theorem 4.5", "finer mask is not a strict superset");
  }
  std::vector<AggSpec> rollup_specs;
  rollup_specs.reserve(plan->aggs.size());
  for (const AggSpec& a : plan->aggs) {
    MDJ_ASSIGN_OR_RETURN(AggSpec r, RollupSpec(a));
    rollup_specs.push_back(std::move(r));
  }
  PlanPtr finer_base = CuboidBasePlan(base->child(0), cert.dims, finer_mask);
  PlanPtr finer_cuboid =
      MdJoinPlan(std::move(finer_base), plan->child(1), plan->aggs, plan->theta);
  return MdJoinPlan(base, std::move(finer_cuboid), std::move(rollup_specs), plan->theta);
}

Result<PlanPtr> ExpandCubeBase(const PlanPtr& plan) {
  if (!IsMdJoin(plan)) return NotApplicable("cube expansion", "root is not an MD-join");
  const PlanPtr& base = plan->child(0);
  if (base->kind() != PlanKind::kCubeBase) {
    return NotApplicable("cube expansion", "base child is not a CUBE BY generator");
  }
  MDJ_ASSIGN_OR_RETURN(CubeLattice lattice, CubeLattice::Make(base->cube_dims));
  std::vector<PlanPtr> pieces;
  for (int level = lattice.num_dims(); level >= 0; --level) {
    for (CuboidMask mask : lattice.CuboidsAtLevel(level)) {
      pieces.push_back(
          MdJoinPlan(CuboidBasePlan(base->child(0), base->cube_dims, mask),
                     plan->child(1), plan->aggs, plan->theta));
    }
  }
  return UnionPlan(std::move(pieces));
}

Result<PlanPtr> ExpandCubeBaseWithRollups(const PlanPtr& plan) {
  MDJ_ASSIGN_OR_RETURN(PlanPtr expanded, ExpandCubeBase(plan));
  const PlanPtr& base = plan->child(0);
  MDJ_ASSIGN_OR_RETURN(CubeLattice lattice, CubeLattice::Make(base->cube_dims));
  // Re-plan each non-full cuboid to roll up from its finest direct parent
  // (lowest set bit added — deterministic; a cost-based optimizer would pick
  // by estimated parent size). The full cuboid keeps reading the detail
  // relation. Relies on executor CSE to share parent results.
  std::map<CuboidMask, PlanPtr> cuboid_plans;
  for (const PlanPtr& piece : expanded->children()) {
    cuboid_plans[piece->child(0)->cuboid_mask] = piece;
  }
  const CuboidMask full = lattice.full_cuboid();
  // Process from finest to coarsest so parents are already re-planned.
  for (int level = lattice.num_dims() - 1; level >= 0; --level) {
    for (CuboidMask mask : lattice.CuboidsAtLevel(level)) {
      // Choose the direct parent with the lowest added bit.
      CuboidMask parent = 0;
      for (int bit = 0; bit < lattice.num_dims(); ++bit) {
        CuboidMask candidate = mask | (CuboidMask{1} << bit);
        if (candidate != mask && candidate <= full) {
          parent = candidate;
          break;
        }
      }
      MDJ_ASSIGN_OR_RETURN(PlanPtr rolled, ApplyRollup(cuboid_plans[mask], parent));
      // Splice the re-planned parent in as the detail of the rolled plan:
      // ApplyRollup rebuilt the parent from scratch; use the shared one.
      const PlanPtr& coarse_base = rolled->child(0);
      cuboid_plans[mask] = MdJoinPlan(coarse_base, cuboid_plans[parent], rolled->aggs,
                                      rolled->theta);
    }
  }
  std::vector<PlanPtr> pieces;
  for (int level = lattice.num_dims(); level >= 0; --level) {
    for (CuboidMask mask : lattice.CuboidsAtLevel(level)) {
      pieces.push_back(cuboid_plans[mask]);
    }
  }
  return UnionPlan(std::move(pieces));
}

}  // namespace mdjoin
