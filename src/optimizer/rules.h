#ifndef MDJOIN_OPTIMIZER_RULES_H_
#define MDJOIN_OPTIMIZER_RULES_H_

#include "optimizer/plan.h"

namespace mdjoin {

/// Algebraic rewrite rules, one per result in the paper's §4. Each rule takes
/// a plan whose root matches the rule's pattern and returns the rewritten
/// plan, or an InvalidArgument status explaining why the rule does not apply
/// (pattern mismatch or violated precondition). Every precondition is decided
/// statically by a PlanAnalyzer certificate (analyze/plan_analyzer.h); the
/// property tests that execute both sides of every rewrite remain as a
/// dynamic backstop, and verify_plans mode re-runs the analyzer after each
/// accepted rewrite.

/// Theorem 4.1 — base-values partitioning:
///   MD(B, R, l, θ) = ∪_{i<m} MD(B_i, R, l, θ)
/// Rewrites the root MD-join into a union of MD-joins over an m-way row
/// split of B. Each fragment re-scans R (the trade the theorem prices:
/// memory-resident fragments for extra scans, or fragments on m processors).
Result<PlanPtr> ApplyBasePartitioning(const PlanPtr& plan, int num_partitions);

/// Theorem 4.2 — selection pushdown:
///   MD(B, R, l, θ1 ∧ θ2) = MD(B, σ_{θ2}(R), l, θ1)   (θ2 over R only)
/// Moves the R-only conjuncts of θ into an explicit σ on the detail child.
Result<PlanPtr> ApplySelectionPushdown(const PlanPtr& plan);

/// Observation 4.1 — base-selection transfer: for a root of shape
/// MD(σ_c(B), R, l, θ) where every B-attribute referenced by c is bound to an
/// R-side expression by an equi conjunct of θ, also wraps the detail child in
/// σ_{c'} with the attribute references substituted. The base σ is retained
/// (the output must still contain only σ_c(B)'s rows).
Result<PlanPtr> ApplyBaseSelectionTransfer(const PlanPtr& plan);

/// Statically-unsatisfiable θ: when the interval abstract interpretation
/// (analyze/range_analysis.h, via CertifyUnsatTheta) proves that no
/// (base, detail) pair can satisfy the root MD-join's θ, replaces the detail
/// child with an EmptyRef carrying the detail schema:
///   MD(B, R, l, θ)  =  MD(B, ∅_R, l, θ)      (θ unsatisfiable)
/// MD-join outer semantics are preserved bit-for-bit — every base row still
/// appears, with each aggregate finalized over the empty multiset — but R is
/// never scanned. `catalog` is needed to infer R's schema for the EmptyRef.
Result<PlanPtr> ApplyUnsatThetaRewrite(const PlanPtr& plan, const Catalog& catalog);

/// Theorem 4.3 — series fusion: rewrites a chain of nested MD-joins
/// MD(MD(...MD(B, R, l1, θ1)..., R, lk, θk)) into the minimal stack of
/// generalized MD-joins. Dependency analysis assigns each component the
/// earliest generation whose θ references no output of a later-or-equal
/// generation; same-generation components over structurally identical detail
/// subplans fuse into one generalized MD-join (k scans of R become one per
/// generation). Returns the (possibly unchanged) rewritten plan.
Result<PlanPtr> FuseMdJoinSeries(const PlanPtr& plan);

/// Theorem 4.3 — commutativity: swaps two adjacent MD-joins
///   MD(MD(B, R1, l1, θ1), R2, l2, θ2) = MD(MD(B, R2, l2, θ2), R1, l1, θ1)
/// Precondition: θ2 references only attributes of B (not l1's outputs).
/// `catalog` is needed to infer B's schema for the check.
Result<PlanPtr> CommuteMdJoins(const PlanPtr& plan, const Catalog& catalog);

/// Theorem 4.4 — split into an equijoin of independent MD-joins:
///   MD(MD(B, R1, l1, θ1), R2, l2, θ2) = MD(B, R1, l1, θ1) ⋈_B MD(B, R2, l2, θ2)
/// Preconditions: θ2 references only attributes of B (provenance-checked by
/// CertifyOuterIndependence), and B's rows are distinct — the theorem's
/// standing assumption, for which the rule now demands structural evidence
/// from CertifyBaseDistinct (a Distinct node, cube base-values generator, or
/// GroupBy below distinctness-preserving operators). Without evidence the
/// rule returns InvalidArgument naming the offending node instead of
/// trusting callers. Enables moving each MD-join to its relation's site.
Result<PlanPtr> SplitToEquiJoin(const PlanPtr& plan, const Catalog& catalog);

/// Theorem 4.5 — roll-up: for a root of shape
/// MD(CuboidBase(S, dims, coarse), R, l, θ_eq) with l distributive and
/// coarse ⊂ finer, re-bases the aggregation on the finer cuboid:
///   MD(CuboidBase(coarse), MD(CuboidBase(finer), R, l, θ), l', θ)
/// where l' re-aggregates l's outputs (count → sum). The inner MD-join is the
/// finer cuboid's computation; the outer one reads |finer| rows instead of
/// |R|.
Result<PlanPtr> ApplyRollup(const PlanPtr& plan, CuboidMask finer_mask);

/// Granularity expansion (Theorem 4.1 along the lattice): rewrites
/// MD(CubeBase(S, dims), R, l, θ) into a union of per-cuboid MD-joins,
/// finest level first — the shape PIPESORT-style plans start from and the
/// precondition for ApplyRollup.
Result<PlanPtr> ExpandCubeBase(const PlanPtr& plan);

/// Composes ExpandCubeBase with ApplyRollup along lattice edges: every
/// non-full cuboid is rolled up from a parent (each cuboid's smallest
/// superset among already-planned cuboids, following the paper's observation
/// that this expresses [AAD+96]-style cube plans algebraically). Only the
/// full cuboid reads the detail relation.
Result<PlanPtr> ExpandCubeBaseWithRollups(const PlanPtr& plan);

}  // namespace mdjoin

#endif  // MDJOIN_OPTIMIZER_RULES_H_
