#include "optimizer/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ctime>

#include "analyze/plan_invariants.h"
#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/cost.h"
#include "stats/feedback.h"

#include "core/generalized.h"
#include "cube/base_tables.h"
#include "parallel/parallel_mdjoin.h"
#include "ra/filter.h"
#include "ra/group_by.h"
#include "ra/join.h"
#include "ra/project.h"
#include "storage/out_of_core.h"
#include "storage/spill.h"
#include "table/table_ops.h"

namespace mdjoin {

namespace {

/// Optional memo for ExecutePlanCse: explain-rendering of a subtree → result.
using CseCache = std::unordered_map<std::string, Table>;

Result<Table> Exec(const PlanPtr& plan, const Catalog& catalog,
                   const MdJoinOptions& md_options, ExecStats* stats,
                   CseCache* cse = nullptr, OperatorProfile* parent_profile = nullptr);

Result<Table> ExecNode(const PlanPtr& plan, const Catalog& catalog,
                       const MdJoinOptions& md_options, ExecStats* stats,
                       CseCache* cse, OperatorProfile* profile = nullptr);

Status AccountMaterialization(const MdJoinOptions& md_options, const Table& t);

/// CPU time of the calling thread, for OperatorProfile::cpu_ms. The executor
/// recurses on one thread, so this is inclusive of children (like elapsed_ms)
/// but excludes the parallel engine's worker threads — a node whose wall time
/// far exceeds its cpu_ms is either parallel or blocked.
double ThreadCpuMs() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) * 1e3 + static_cast<double>(ts.tv_nsec) / 1e6;
}

Result<Table> Exec(const PlanPtr& plan, const Catalog& catalog,
                   const MdJoinOptions& md_options, ExecStats* stats, CseCache* cse,
                   OperatorProfile* parent_profile) {
  // Guard gate per plan node: a cancel/deadline issued between operators is
  // observed here even when no MD-join scan is running; inside scans the
  // stride checks take over.
  if (md_options.guard != nullptr) {
    MDJ_RETURN_NOT_OK(md_options.guard->Check());
  }
  if (MDJ_FAILPOINT("executor:node_error")) {
    return Status::Internal("plan node '", plan->Label(),
                            "' failed (failpoint executor:node_error)");
  }
  Span node_span(PlanKindToString(plan->kind()), "plan");
  if (parent_profile != nullptr) {
    auto node = std::make_unique<OperatorProfile>();
    OperatorProfile* raw = node.get();
    raw->label = plan->Label();
    parent_profile->children.push_back(std::move(node));
    const auto start = std::chrono::steady_clock::now();
    const double cpu_start = ThreadCpuMs();
    Result<Table> result = ExecNode(plan, catalog, md_options, stats, cse, raw);
    raw->elapsed_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                  start)
            .count();
    raw->cpu_ms = ThreadCpuMs() - cpu_start;
    double child_ms = 0;
    for (const auto& c : raw->children) child_ms += c->elapsed_ms;
    raw->self_ms = raw->elapsed_ms - child_ms;
    if (result.ok()) {
      raw->output_rows = result->num_rows();
      node_span.SetArg("rows", raw->output_rows);
      MDJ_RETURN_NOT_OK(AccountMaterialization(md_options, *result));
    }
    return result;
  }
  if (cse != nullptr) {
    std::string key = ExplainPlan(plan);
    auto it = cse->find(key);
    if (it != cse->end()) {
      ++stats->cse_hits;
      return it->second.Clone();
    }
    MDJ_ASSIGN_OR_RETURN(Table out, ExecNode(plan, catalog, md_options, stats, cse));
    MDJ_RETURN_NOT_OK(AccountMaterialization(md_options, out));
    cse->emplace(std::move(key), out.Clone());
    return out;
  }
  MDJ_ASSIGN_OR_RETURN(Table out, ExecNode(plan, catalog, md_options, stats, cse));
  MDJ_RETURN_NOT_OK(AccountMaterialization(md_options, out));
  return out;
}

/// Charges a freshly materialized node output against the guard's memory
/// accountant. The reservation is transient (released immediately): the
/// executor hands tables up the tree rather than owning them, so this checks
/// each materialization against the hard limit and feeds the high-water
/// counter without double-charging long-lived results.
Status AccountMaterialization(const MdJoinOptions& md_options, const Table& t) {
  if (md_options.guard == nullptr) return Status::OK();
  MDJ_RETURN_NOT_OK(
      md_options.guard->ReserveBytes(t.ApproxBytes(), "materialized node output"));
  md_options.guard->ReleaseBytes(t.ApproxBytes());
  return Status::OK();
}

/// Copies one MD-join evaluation's counters into an operator profile —
/// shared by the sequential, paged, and spill arms of kMdJoin (the parallel
/// arm reports through ParallelMdJoinStats instead).
void FillMdJoinProfile(OperatorProfile* profile, const MdJoinStats& s,
                       size_t num_aggs) {
  profile->is_mdjoin = true;
  profile->detail_rows_scanned = s.detail_rows_scanned;
  profile->detail_rows_qualified = s.detail_rows_qualified;
  profile->candidate_pairs = s.candidate_pairs;
  profile->matched_pairs = s.matched_pairs;
  profile->agg_updates = s.matched_pairs * static_cast<int64_t>(num_aggs);
  profile->passes = s.passes_over_detail;
  profile->blocks = s.blocks;
  profile->kernel_invocations = s.kernel_invocations;
  profile->index_probe_lookups = s.index_probe_lookups;
  profile->index_probe_memo_hits = s.index_probe_memo_hits;
  profile->blocks_read = s.blocks_read;
  profile->blocks_pruned = s.blocks_pruned;
  profile->blocks_faulted = s.blocks_faulted;
  profile->block_cache_hits = s.block_cache_hits;
  profile->spill_partitions = s.spill_partitions;
  profile->spill_bytes_written = s.spill_bytes_written;
}

Result<Table> ExecNode(const PlanPtr& plan, const Catalog& catalog,
                       const MdJoinOptions& md_options, ExecStats* stats,
                       CseCache* cse, OperatorProfile* profile) {
  ++stats->nodes_executed;
  switch (plan->kind()) {
    case PlanKind::kTableRef: {
      // Paged relation consumed outside an MD-join detail position (the one
      // place with a block-at-a-time path): materialize it whole, charged to
      // the guard while assembling. Correct for every operator, just not
      // out-of-core — the planner keeps paged tables in detail position.
      if (const PagedTable* paged = catalog.FindPaged(plan->table_name)) {
        MDJ_ASSIGN_OR_RETURN(Table all, paged->ReadAll(md_options.guard));
        stats->rows_materialized += all.num_rows();
        return all;
      }
      MDJ_ASSIGN_OR_RETURN(const Table* t, catalog.Lookup(plan->table_name));
      Table copy = t->Clone();
      stats->rows_materialized += copy.num_rows();
      return copy;
    }
    case PlanKind::kFilter: {
      MDJ_ASSIGN_OR_RETURN(Table child, Exec(plan->child(0), catalog, md_options, stats, cse, profile));
      MDJ_ASSIGN_OR_RETURN(Table out, Filter(child, plan->predicate));
      stats->rows_materialized += out.num_rows();
      return out;
    }
    case PlanKind::kProject: {
      MDJ_ASSIGN_OR_RETURN(Table child, Exec(plan->child(0), catalog, md_options, stats, cse, profile));
      MDJ_ASSIGN_OR_RETURN(Table out, Project(child, plan->projections));
      stats->rows_materialized += out.num_rows();
      return out;
    }
    case PlanKind::kDistinct: {
      MDJ_ASSIGN_OR_RETURN(Table child, Exec(plan->child(0), catalog, md_options, stats, cse, profile));
      Table out = Distinct(child);
      stats->rows_materialized += out.num_rows();
      return out;
    }
    case PlanKind::kUnion: {
      std::vector<Table> pieces;
      pieces.reserve(plan->children().size());
      for (const PlanPtr& c : plan->children()) {
        MDJ_ASSIGN_OR_RETURN(Table piece, Exec(c, catalog, md_options, stats, cse, profile));
        pieces.push_back(std::move(piece));
      }
      MDJ_ASSIGN_OR_RETURN(Table out, ConcatAll(pieces));
      stats->rows_materialized += out.num_rows();
      return out;
    }
    case PlanKind::kPartition: {
      MDJ_ASSIGN_OR_RETURN(Table child, Exec(plan->child(0), catalog, md_options, stats, cse, profile));
      std::vector<Table> parts = PartitionIntoN(child, plan->partition_count);
      Table out = std::move(parts[static_cast<size_t>(plan->partition_index)]);
      stats->rows_materialized += out.num_rows();
      return out;
    }
    case PlanKind::kHashJoin: {
      MDJ_ASSIGN_OR_RETURN(Table left, Exec(plan->child(0), catalog, md_options, stats, cse, profile));
      MDJ_ASSIGN_OR_RETURN(Table right, Exec(plan->child(1), catalog, md_options, stats, cse, profile));
      MDJ_ASSIGN_OR_RETURN(Table out, HashJoin(left, right, plan->left_keys,
                                               plan->right_keys, plan->join_type));
      stats->rows_materialized += out.num_rows();
      return out;
    }
    case PlanKind::kGroupBy: {
      MDJ_ASSIGN_OR_RETURN(Table child, Exec(plan->child(0), catalog, md_options, stats, cse, profile));
      MDJ_ASSIGN_OR_RETURN(Table out, GroupBy(child, plan->group_columns, plan->aggs));
      stats->rows_materialized += out.num_rows();
      return out;
    }
    case PlanKind::kMdJoin: {
      MDJ_ASSIGN_OR_RETURN(Table base, Exec(plan->child(0), catalog, md_options, stats, cse, profile));
      // Out-of-core fast path: a detail child that is directly a paged
      // catalog reference is never materialized — the paged driver streams
      // its blocks through zone-map pruning and the block cache, parallelizes
      // internally when num_threads > 1, and spills when enable_spill is set.
      const PagedTable* paged_detail =
          plan->child(1)->kind() == PlanKind::kTableRef
              ? catalog.FindPaged(plan->child(1)->table_name)
              : nullptr;
      if (paged_detail != nullptr) {
        ++stats->mdjoin_operators;
        MdJoinStats md_stats;
        Result<Table> out = PagedMdJoin(base, *paged_detail, plan->aggs,
                                        plan->theta, md_options, &md_stats);
        stats->detail_rows_scanned += md_stats.detail_rows_scanned;
        stats->candidate_pairs += md_stats.candidate_pairs;
        stats->matched_pairs += md_stats.matched_pairs;
        if (profile != nullptr) {
          FillMdJoinProfile(profile, md_stats, plan->aggs.size());
          profile->num_threads = md_options.num_threads;
        }
        MDJ_RETURN_NOT_OK(out.status());
        stats->rows_materialized += out->num_rows();
        return out;
      }
      MDJ_ASSIGN_OR_RETURN(Table detail, Exec(plan->child(1), catalog, md_options, stats, cse, profile));
      ++stats->mdjoin_operators;
      // The partitioned-spill escape hatch subsumes the threading choice: its
      // per-partition joins run through the parallel engine themselves when
      // num_threads > 1.
      if (md_options.enable_spill) {
        MdJoinStats md_stats;
        Result<Table> out = SpillMdJoin(base, detail, plan->aggs, plan->theta,
                                        md_options, &md_stats);
        stats->detail_rows_scanned += md_stats.detail_rows_scanned;
        stats->candidate_pairs += md_stats.candidate_pairs;
        stats->matched_pairs += md_stats.matched_pairs;
        if (profile != nullptr) {
          FillMdJoinProfile(profile, md_stats, plan->aggs.size());
          profile->num_threads = md_options.num_threads;
        }
        MDJ_RETURN_NOT_OK(out.status());
        stats->rows_materialized += out->num_rows();
        return out;
      }
      // num_threads > 1 routes the node through the morsel-driven parallel
      // engine (detail split: one logical scan of R, per-thread partials).
      // The sequential evaluator stays the default and the ablation baseline.
      if (md_options.num_threads > 1) {
        ParallelMdJoinStats pstats;
        // On failure the stats still hold partial counts; copy them into the
        // profile either way so a cancelled query's profile stays truthful.
        Result<Table> out = ParallelMdJoinDetailSplit(
            base, detail, plan->aggs, plan->theta, md_options.num_threads,
            md_options.num_threads, md_options, &pstats);
        stats->detail_rows_scanned += pstats.total_detail_rows_scanned;
        stats->candidate_pairs += pstats.candidate_pairs;
        stats->matched_pairs += pstats.matched_pairs;
        if (profile != nullptr) {
          profile->is_mdjoin = true;
          profile->detail_rows_scanned = pstats.total_detail_rows_scanned;
          profile->detail_rows_qualified = pstats.detail_rows_qualified;
          profile->candidate_pairs = pstats.candidate_pairs;
          profile->matched_pairs = pstats.matched_pairs;
          profile->agg_updates =
              pstats.matched_pairs * static_cast<int64_t>(plan->aggs.size());
          profile->passes = 1;
          profile->blocks = pstats.blocks;
          profile->kernel_invocations = pstats.kernel_invocations;
          profile->index_probe_lookups = pstats.index_probe_lookups;
          profile->index_probe_memo_hits = pstats.index_probe_memo_hits;
          profile->morsels = pstats.morsels_executed;
          profile->steal_waits = pstats.steal_waits;
          profile->num_threads = pstats.num_threads;
        }
        MDJ_RETURN_NOT_OK(out.status());
        stats->rows_materialized += out->num_rows();
        return out;
      }
      MdJoinStats md_stats;
      Result<Table> out =
          MdJoin(base, detail, plan->aggs, plan->theta, md_options, &md_stats);
      stats->detail_rows_scanned += md_stats.detail_rows_scanned;
      stats->candidate_pairs += md_stats.candidate_pairs;
      stats->matched_pairs += md_stats.matched_pairs;
      if (profile != nullptr) {
        FillMdJoinProfile(profile, md_stats, plan->aggs.size());
      }
      MDJ_RETURN_NOT_OK(out.status());
      stats->rows_materialized += out->num_rows();
      return out;
    }
    case PlanKind::kGeneralizedMdJoin: {
      MDJ_ASSIGN_OR_RETURN(Table base, Exec(plan->child(0), catalog, md_options, stats, cse, profile));
      MDJ_ASSIGN_OR_RETURN(Table detail, Exec(plan->child(1), catalog, md_options, stats, cse, profile));
      MdJoinStats md_stats;
      Result<Table> out =
          GeneralizedMdJoin(base, detail, plan->components, md_options, &md_stats);
      ++stats->mdjoin_operators;
      stats->detail_rows_scanned += md_stats.detail_rows_scanned;
      stats->candidate_pairs += md_stats.candidate_pairs;
      stats->matched_pairs += md_stats.matched_pairs;
      if (profile != nullptr) {
        int64_t num_aggs = 0;
        for (const MdJoinComponent& comp : plan->components) {
          num_aggs += static_cast<int64_t>(comp.aggs.size());
        }
        profile->is_mdjoin = true;
        profile->detail_rows_scanned = md_stats.detail_rows_scanned;
        profile->detail_rows_qualified = md_stats.detail_rows_qualified;
        profile->candidate_pairs = md_stats.candidate_pairs;
        profile->matched_pairs = md_stats.matched_pairs;
        profile->agg_updates = md_stats.matched_pairs * num_aggs;
        profile->passes = md_stats.passes_over_detail;
        profile->blocks = md_stats.blocks;
        profile->kernel_invocations = md_stats.kernel_invocations;
        profile->index_probe_lookups = md_stats.index_probe_lookups;
        profile->index_probe_memo_hits = md_stats.index_probe_memo_hits;
      }
      MDJ_RETURN_NOT_OK(out.status());
      stats->rows_materialized += out->num_rows();
      return out;
    }
    case PlanKind::kCubeBase: {
      MDJ_ASSIGN_OR_RETURN(Table child, Exec(plan->child(0), catalog, md_options, stats, cse, profile));
      MDJ_ASSIGN_OR_RETURN(Table out, CubeByBase(child, plan->cube_dims));
      stats->rows_materialized += out.num_rows();
      return out;
    }
    case PlanKind::kSort: {
      MDJ_ASSIGN_OR_RETURN(Table child, Exec(plan->child(0), catalog, md_options, stats, cse, profile));
      MDJ_ASSIGN_OR_RETURN(std::vector<int> cols,
                           ResolveColumns(child.schema(), plan->sort_columns));
      std::vector<SortKey> keys;
      for (size_t i = 0; i < cols.size(); ++i) {
        keys.push_back({cols[i], plan->sort_ascending[i]});
      }
      Table out = SortTable(child, keys);
      stats->rows_materialized += out.num_rows();
      return out;
    }
    case PlanKind::kCuboidBase: {
      MDJ_ASSIGN_OR_RETURN(Table child, Exec(plan->child(0), catalog, md_options, stats, cse, profile));
      MDJ_ASSIGN_OR_RETURN(CubeLattice lattice, CubeLattice::Make(plan->cube_dims));
      MDJ_ASSIGN_OR_RETURN(Table out, CuboidBase(child, lattice, plan->cuboid_mask));
      stats->rows_materialized += out.num_rows();
      return out;
    }
    case PlanKind::kEmptyRef: {
      if (plan->empty_schema == nullptr) {
        return Status::InvalidArgument("EmptyRef carries no schema");
      }
      return Table{*plan->empty_schema};
    }
  }
  return Status::Internal("unreachable plan kind");
}

/// Debug invariant mode: statically verify the plan before evaluating it,
/// when asked to by the options or the MDJOIN_VERIFY_PLANS environment
/// variable. Executing an ill-formed tree would surface as a confusing
/// runtime error deep inside some operator; the analyzer diagnostic names
/// the offending node and rule instead.
/// Lockstep walk over the plan and profile trees, annotating each profiled
/// operator with the cost model's estimated cardinality. Estimation runs over
/// the same catalog (and optional feedback store) the optimizer saw, so
/// `est=` in the rendering is the number the plan was ranked with. Profile
/// children can be a prefix of plan children (the paged MD-join fast path
/// never executes its materialized detail child), hence the bounds guard; a
/// failed estimate leaves est_rows at -1 and the node renders without it.
void AnnotateEstimates(const PlanPtr& plan, OperatorProfile* profile,
                       const Catalog& catalog, const FeedbackStore* feedback) {
  if (plan == nullptr || profile == nullptr) return;
  Result<PlanCost> cost = EstimateCost(plan, catalog, feedback);
  if (cost.ok()) profile->est_rows = cost->output_rows;
  const size_t n = std::min(profile->children.size(), plan->children().size());
  for (size_t i = 0; i < n; ++i) {
    AnnotateEstimates(plan->child(static_cast<int>(i)), profile->children[i].get(),
                      catalog, feedback);
  }
}

double MaxQError(const OperatorProfile& node) {
  double worst = node.qerror();
  for (const auto& child : node.children) {
    worst = std::max(worst, MaxQError(*child));
  }
  return worst;
}

/// Feeds each operator's measured output cardinality (and for MD-joins the
/// detail-scan volume and selectivity) back into the store under the
/// subtree's fingerprint. Runs only on complete executions: partial counts
/// from a tripped guard would poison the EWMA.
void HarvestFeedback(const PlanPtr& plan, const OperatorProfile& profile,
                     FeedbackStore* feedback) {
  feedback->Record(PlanFingerprint(plan),
                   static_cast<double>(profile.output_rows),
                   profile.is_mdjoin
                       ? static_cast<double>(profile.detail_rows_scanned)
                       : -1.0,
                   profile.is_mdjoin ? profile.selectivity() : -1.0);
  const size_t n = std::min(profile.children.size(), plan->children().size());
  for (size_t i = 0; i < n; ++i) {
    HarvestFeedback(plan->child(static_cast<int>(i)), *profile.children[i],
                    feedback);
  }
}

Histogram* PlanQErrorHistogram() {
  static Histogram* h = MetricsRegistry::Global().GetHistogram(
      "mdjoin_plan_qerror", {1, 2, 3, 5, 8, 16, 32, 64, 128, 256},
      "per-query worst cardinality q-error of EXPLAIN ANALYZE estimates");
  return h;
}

Status MaybeVerify(const PlanPtr& plan, const Catalog& catalog,
                   const MdJoinOptions& md_options, const char* context) {
  if (!md_options.verify_plans && !VerifyPlansEnabledByEnv()) return Status::OK();
  return VerifyPlan(plan, catalog, context);
}

}  // namespace

Result<Table> ExecutePlan(const PlanPtr& plan, const Catalog& catalog,
                          const MdJoinOptions& md_options, ExecStats* stats) {
  if (plan == nullptr) return Status::InvalidArgument("ExecutePlan: null plan");
  MDJ_RETURN_NOT_OK(MaybeVerify(plan, catalog, md_options, "ExecutePlan"));
  ExecStats local;
  if (stats == nullptr) stats = &local;
  *stats = ExecStats{};
  return Exec(plan, catalog, md_options, stats);
}

Result<Table> ExecutePlanCse(const PlanPtr& plan, const Catalog& catalog,
                             const MdJoinOptions& md_options, ExecStats* stats) {
  if (plan == nullptr) return Status::InvalidArgument("ExecutePlanCse: null plan");
  MDJ_RETURN_NOT_OK(MaybeVerify(plan, catalog, md_options, "ExecutePlanCse"));
  ExecStats local;
  if (stats == nullptr) stats = &local;
  *stats = ExecStats{};
  CseCache cache;
  return Exec(plan, catalog, md_options, stats, &cache);
}

Result<Table> ExplainAnalyze(const PlanPtr& plan, const Catalog& catalog,
                             const MdJoinOptions& md_options, QueryProfile* profile) {
  if (profile == nullptr) {
    return Status::InvalidArgument("ExplainAnalyze: null profile");
  }
  // The rewrite log is the optimizer's contribution (filled before this
  // call); everything execution-owned starts fresh.
  profile->root.reset();
  profile->complete = false;
  profile->terminal.clear();
  profile->total_ms = 0;
  profile->max_qerror = -1;
  profile->analysis = StaticAnalysisReport(plan, catalog);

  Status setup = [&]() -> Status {
    if (plan == nullptr) return Status::InvalidArgument("ExplainAnalyze: null plan");
    return MaybeVerify(plan, catalog, md_options, "ExplainAnalyze");
  }();
  if (!setup.ok()) {
    profile->terminal = setup.ToString();
    return setup;
  }

  ExecStats stats;
  OperatorProfile holder;  // transient parent; its first child is the real root
  holder.label = "(root)";
  const auto start = std::chrono::steady_clock::now();
  Result<Table> result =
      Exec(plan, catalog, md_options, &stats, /*cse=*/nullptr, &holder);
  profile->total_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start)
          .count();
  if (!holder.children.empty()) {
    profile->root = std::move(holder.children[0]);
  } else {
    // The root node failed before its profile was created (pre-issued cancel
    // observed at the guard gate); a stub keeps the profile well-formed.
    profile->root = std::make_unique<OperatorProfile>();
    profile->root->label = plan->Label();
  }
  profile->complete = result.ok();
  profile->terminal = result.ok() ? "ok" : result.status().ToString();
  // Estimated-vs-actual: annotate with what the cost model (plus any prior
  // feedback) would have predicted, THEN harvest this run's measurements —
  // the ordering is what makes a repeated query's q-error shrink run over
  // run instead of trivially matching itself.
  AnnotateEstimates(plan, profile->root.get(), catalog, md_options.feedback);
  profile->max_qerror = MaxQError(*profile->root);
  if (profile->complete && profile->max_qerror >= 0) {
    PlanQErrorHistogram()->Observe(
        static_cast<int64_t>(std::llround(profile->max_qerror)));
  }
  if (profile->complete && md_options.feedback != nullptr) {
    HarvestFeedback(plan, *profile->root, md_options.feedback);
  }
  return result;
}

std::string ProfiledResult::ToString() const { return profile.ToText(); }

Result<ProfiledResult> ExecutePlanProfiled(const PlanPtr& plan, const Catalog& catalog,
                                           const MdJoinOptions& md_options) {
  ProfiledResult result;
  MDJ_ASSIGN_OR_RETURN(result.table,
                       ExplainAnalyze(plan, catalog, md_options, &result.profile));
  return result;
}

}  // namespace mdjoin
