#ifndef MDJOIN_OPTIMIZER_PROFILE_H_
#define MDJOIN_OPTIMIZER_PROFILE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/mdjoin.h"
#include "optimizer/plan.h"

namespace mdjoin {

/// Per-node execution record: the EXPLAIN ANALYZE view of a plan.
struct ProfileNode {
  std::string label;         // PlanNode::Label() of the operator
  int64_t output_rows = 0;
  double elapsed_ms = 0;     // inclusive of children
  double self_ms = 0;        // exclusive: elapsed minus children
  std::vector<std::unique_ptr<ProfileNode>> children;
};

struct ProfiledResult {
  Table table;
  std::unique_ptr<ProfileNode> profile;

  /// Indented tree: one line per operator with rows and timings, e.g.
  ///   MdJoin(...)                 rows=1000  total=12.3ms  self=11.1ms
  std::string ToString() const;
};

/// Executes `plan` while recording per-node row counts and wall-clock
/// timings. Functionally identical to ExecutePlan (no CSE — every node runs,
/// so the numbers reflect the plan as written).
Result<ProfiledResult> ExecutePlanProfiled(const PlanPtr& plan, const Catalog& catalog,
                                           const MdJoinOptions& md_options = {});

}  // namespace mdjoin

#endif  // MDJOIN_OPTIMIZER_PROFILE_H_
