#include "optimizer/cost.h"

#include <cmath>

#include "expr/conjuncts.h"

namespace mdjoin {

namespace {

constexpr double kFilterSelectivity = 0.3;
constexpr double kDistinctRatio = 0.6;
constexpr double kGroupByRatio = 0.2;
constexpr double kCuboidRatio = 0.2;

Result<PlanCost> CostMdJoinLike(double base_rows, double base_work, double detail_rows,
                                double detail_work, bool has_equi) {
  PlanCost cost;
  cost.output_rows = base_rows;
  double pairs = has_equi ? detail_rows  // one indexed probe per tuple
                          : detail_rows * base_rows;
  cost.work = base_work + detail_work + detail_rows + pairs + base_rows;
  return cost;
}

}  // namespace

Result<PlanCost> EstimateCost(const PlanPtr& plan, const Catalog& catalog) {
  if (plan == nullptr) return Status::InvalidArgument("EstimateCost: null plan");
  switch (plan->kind()) {
    case PlanKind::kTableRef: {
      MDJ_ASSIGN_OR_RETURN(int64_t rows, catalog.LookupNumRows(plan->table_name));
      return PlanCost{static_cast<double>(rows), 0};
    }
    case PlanKind::kFilter: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, EstimateCost(plan->child(0), catalog));
      return PlanCost{child.output_rows * kFilterSelectivity,
                      child.work + child.output_rows};
    }
    case PlanKind::kProject: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, EstimateCost(plan->child(0), catalog));
      return PlanCost{child.output_rows, child.work + child.output_rows};
    }
    case PlanKind::kDistinct: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, EstimateCost(plan->child(0), catalog));
      return PlanCost{child.output_rows * kDistinctRatio, child.work + child.output_rows};
    }
    case PlanKind::kUnion: {
      PlanCost total;
      for (const PlanPtr& c : plan->children()) {
        MDJ_ASSIGN_OR_RETURN(PlanCost cc, EstimateCost(c, catalog));
        total.output_rows += cc.output_rows;
        total.work += cc.work;
      }
      return total;
    }
    case PlanKind::kPartition: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, EstimateCost(plan->child(0), catalog));
      return PlanCost{child.output_rows / plan->partition_count,
                      child.work + child.output_rows};
    }
    case PlanKind::kHashJoin: {
      MDJ_ASSIGN_OR_RETURN(PlanCost l, EstimateCost(plan->child(0), catalog));
      MDJ_ASSIGN_OR_RETURN(PlanCost r, EstimateCost(plan->child(1), catalog));
      return PlanCost{std::max(l.output_rows, r.output_rows),
                      l.work + r.work + l.output_rows + r.output_rows};
    }
    case PlanKind::kGroupBy: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, EstimateCost(plan->child(0), catalog));
      return PlanCost{child.output_rows * kGroupByRatio, child.work + child.output_rows};
    }
    case PlanKind::kMdJoin: {
      MDJ_ASSIGN_OR_RETURN(PlanCost b, EstimateCost(plan->child(0), catalog));
      MDJ_ASSIGN_OR_RETURN(PlanCost r, EstimateCost(plan->child(1), catalog));
      bool has_equi = !AnalyzeTheta(plan->theta).equi.empty();
      return CostMdJoinLike(b.output_rows, b.work, r.output_rows, r.work, has_equi);
    }
    case PlanKind::kGeneralizedMdJoin: {
      MDJ_ASSIGN_OR_RETURN(PlanCost b, EstimateCost(plan->child(0), catalog));
      MDJ_ASSIGN_OR_RETURN(PlanCost r, EstimateCost(plan->child(1), catalog));
      PlanCost cost;
      cost.output_rows = b.output_rows;
      cost.work = b.work + r.work + r.output_rows;  // ONE scan of R
      for (const MdJoinComponent& comp : plan->components) {
        bool has_equi = !AnalyzeTheta(comp.theta).equi.empty();
        cost.work += has_equi ? r.output_rows : r.output_rows * b.output_rows;
      }
      cost.work += b.output_rows;
      return cost;
    }
    case PlanKind::kCubeBase: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, EstimateCost(plan->child(0), catalog));
      double cuboids = std::pow(2.0, static_cast<double>(plan->cube_dims.size()));
      return PlanCost{child.output_rows * kCuboidRatio * cuboids,
                      child.work + child.output_rows};
    }
    case PlanKind::kSort: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, EstimateCost(plan->child(0), catalog));
      return PlanCost{child.output_rows, child.work + 2 * child.output_rows};
    }
    case PlanKind::kCuboidBase: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, EstimateCost(plan->child(0), catalog));
      return PlanCost{child.output_rows * kCuboidRatio, child.work + child.output_rows};
    }
    case PlanKind::kEmptyRef:
      return PlanCost{0, 0};
  }
  return Status::Internal("unreachable plan kind");
}

Result<size_t> ChooseCheapestPlan(const std::vector<PlanPtr>& alternatives,
                                  const Catalog& catalog) {
  if (alternatives.empty()) {
    return Status::InvalidArgument("ChooseCheapestPlan: no alternatives");
  }
  size_t best = 0;
  double best_work = 0;
  for (size_t i = 0; i < alternatives.size(); ++i) {
    MDJ_ASSIGN_OR_RETURN(PlanCost c, EstimateCost(alternatives[i], catalog));
    if (i == 0 || c.work < best_work) {
      best = i;
      best_work = c.work;
    }
  }
  return best;
}

}  // namespace mdjoin
