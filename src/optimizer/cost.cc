#include "optimizer/cost.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "expr/conjuncts.h"
#include "stats/feedback.h"
#include "stats/table_stats.h"

namespace mdjoin {

namespace {

constexpr double kFilterSelectivity = 0.3;
constexpr double kDistinctRatio = 0.6;
constexpr double kGroupByRatio = 0.2;
constexpr double kCuboidRatio = 0.2;

Result<PlanCost> CostMdJoinLike(double base_rows, double base_work, double detail_rows,
                                double detail_work, bool has_equi) {
  PlanCost cost;
  cost.output_rows = base_rows;
  double pairs = has_equi ? detail_rows  // one indexed probe per tuple
                          : detail_rows * base_rows;
  cost.work = base_work + detail_work + detail_rows + pairs + base_rows;
  return cost;
}

std::optional<CmpOp> ToCmpOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return CmpOp::kEq;
    case BinaryOp::kNe: return CmpOp::kNe;
    case BinaryOp::kLt: return CmpOp::kLt;
    case BinaryOp::kLe: return CmpOp::kLe;
    case BinaryOp::kGt: return CmpOp::kGt;
    case BinaryOp::kGe: return CmpOp::kGe;
    default: return std::nullopt;
  }
}

/// `literal <op> column` is `column <flipped-op> literal`.
CmpOp FlipCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

/// Statistics of the table a node ultimately scans, reached by looking
/// through operators that do not change which rows exist (σ keeps a subset,
/// π/sort keep all); null when the chain does not bottom out at an analyzed
/// scan.
const TableStats* StatsForInput(const PlanPtr& node, const Catalog& catalog) {
  const PlanNode* n = node.get();
  while (n != nullptr) {
    switch (n->kind()) {
      case PlanKind::kTableRef:
        return catalog.FindStats(n->table_name);
      case PlanKind::kFilter:
      case PlanKind::kProject:
      case PlanKind::kSort:
        n = n->child(0).get();
        break;
      default:
        return nullptr;
    }
  }
  return nullptr;
}

/// Selectivity of one conjunct. `column <op> literal` shapes (either
/// orientation) read the analyzed column; anything else falls back to the
/// documented constant.
double ConjunctSelectivity(const ExprPtr& conjunct, const TableStats& stats) {
  if (conjunct == nullptr || conjunct->kind() != ExprKind::kBinary) {
    return kFilterSelectivity;
  }
  std::optional<CmpOp> op = ToCmpOp(conjunct->binary_op());
  if (!op.has_value()) return kFilterSelectivity;
  const Expr* column = nullptr;
  const Expr* literal = nullptr;
  bool flipped = false;
  const Expr* l = conjunct->left().get();
  const Expr* r = conjunct->right().get();
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral) {
    column = l;
    literal = r;
  } else if (l->kind() == ExprKind::kLiteral && r->kind() == ExprKind::kColumnRef) {
    column = r;
    literal = l;
    flipped = true;
  } else {
    return kFilterSelectivity;
  }
  const ColumnStats* cs = stats.FindColumn(column->column_name());
  if (cs == nullptr) return kFilterSelectivity;
  return cs->SelectivityCmp(flipped ? FlipCmp(*op) : *op, literal->literal());
}

double PredicateSelectivity(const ExprPtr& predicate, const TableStats* stats) {
  if (stats == nullptr) return kFilterSelectivity;
  double sel = 1.0;
  for (const ExprPtr& c : SplitConjuncts(predicate)) {
    sel *= ConjunctSelectivity(c, *stats);
  }
  return std::clamp(sel, 0.0, 1.0);
}

/// Product of the NDVs of `columns`, or nullopt when any column lacks
/// statistics (callers then fall back to the ratio constants). The product
/// is the standard independence-assumption group-count estimate; callers
/// clamp it to the input cardinality.
std::optional<double> NdvProduct(const TableStats* stats,
                                 const std::vector<std::string>& columns) {
  if (stats == nullptr || columns.empty()) return std::nullopt;
  double product = 1.0;
  for (const std::string& name : columns) {
    const ColumnStats* cs = stats->FindColumn(name);
    if (cs == nullptr) return std::nullopt;
    product *= static_cast<double>(std::max<int64_t>(cs->ndv, 1));
  }
  return product;
}

Result<PlanCost> EstimateCostImpl(const PlanPtr& plan, const Catalog& catalog,
                                  const FeedbackStore* feedback);

/// Recursion entry point: structural estimate, then the feedback override —
/// a fingerprint that has been executed before uses its measured output
/// cardinality, which is what makes the second run of a repeated query
/// estimate better than the first.
Result<PlanCost> Estimate(const PlanPtr& plan, const Catalog& catalog,
                          const FeedbackStore* feedback) {
  MDJ_ASSIGN_OR_RETURN(PlanCost cost, EstimateCostImpl(plan, catalog, feedback));
  if (feedback != nullptr) {
    std::optional<FeedbackEntry> entry = feedback->Lookup(PlanFingerprint(plan));
    if (entry.has_value() && entry->output_rows >= 0) {
      cost.output_rows = entry->output_rows;
    }
  }
  return cost;
}

Result<PlanCost> EstimateCostImpl(const PlanPtr& plan, const Catalog& catalog,
                                  const FeedbackStore* feedback) {
  if (plan == nullptr) return Status::InvalidArgument("EstimateCost: null plan");
  switch (plan->kind()) {
    case PlanKind::kTableRef: {
      MDJ_ASSIGN_OR_RETURN(int64_t rows, catalog.LookupNumRows(plan->table_name));
      return PlanCost{static_cast<double>(rows), 0};
    }
    case PlanKind::kFilter: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, Estimate(plan->child(0), catalog, feedback));
      const double sel =
          PredicateSelectivity(plan->predicate, StatsForInput(plan->child(0), catalog));
      return PlanCost{child.output_rows * sel, child.work + child.output_rows};
    }
    case PlanKind::kProject: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, Estimate(plan->child(0), catalog, feedback));
      return PlanCost{child.output_rows, child.work + child.output_rows};
    }
    case PlanKind::kDistinct: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, Estimate(plan->child(0), catalog, feedback));
      double out = child.output_rows * kDistinctRatio;
      if (const TableStats* stats = StatsForInput(plan->child(0), catalog)) {
        // Distinct over all columns: NDV product, clamped to the input size.
        std::vector<std::string> columns;
        columns.reserve(stats->columns.size());
        for (const ColumnStats& c : stats->columns) columns.push_back(c.name);
        if (std::optional<double> ndv = NdvProduct(stats, columns)) {
          out = std::min(*ndv, child.output_rows);
        }
      }
      return PlanCost{out, child.work + child.output_rows};
    }
    case PlanKind::kUnion: {
      PlanCost total;
      for (const PlanPtr& c : plan->children()) {
        MDJ_ASSIGN_OR_RETURN(PlanCost cc, Estimate(c, catalog, feedback));
        total.output_rows += cc.output_rows;
        total.work += cc.work;
      }
      return total;
    }
    case PlanKind::kPartition: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, Estimate(plan->child(0), catalog, feedback));
      return PlanCost{child.output_rows / plan->partition_count,
                      child.work + child.output_rows};
    }
    case PlanKind::kHashJoin: {
      MDJ_ASSIGN_OR_RETURN(PlanCost l, Estimate(plan->child(0), catalog, feedback));
      MDJ_ASSIGN_OR_RETURN(PlanCost r, Estimate(plan->child(1), catalog, feedback));
      return PlanCost{std::max(l.output_rows, r.output_rows),
                      l.work + r.work + l.output_rows + r.output_rows};
    }
    case PlanKind::kGroupBy: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, Estimate(plan->child(0), catalog, feedback));
      double out = child.output_rows * kGroupByRatio;
      if (std::optional<double> ndv = NdvProduct(
              StatsForInput(plan->child(0), catalog), plan->group_columns)) {
        out = std::min(*ndv, child.output_rows);
      }
      return PlanCost{out, child.work + child.output_rows};
    }
    case PlanKind::kMdJoin: {
      MDJ_ASSIGN_OR_RETURN(PlanCost b, Estimate(plan->child(0), catalog, feedback));
      MDJ_ASSIGN_OR_RETURN(PlanCost r, Estimate(plan->child(1), catalog, feedback));
      bool has_equi = !AnalyzeTheta(plan->theta).equi.empty();
      return CostMdJoinLike(b.output_rows, b.work, r.output_rows, r.work, has_equi);
    }
    case PlanKind::kGeneralizedMdJoin: {
      MDJ_ASSIGN_OR_RETURN(PlanCost b, Estimate(plan->child(0), catalog, feedback));
      MDJ_ASSIGN_OR_RETURN(PlanCost r, Estimate(plan->child(1), catalog, feedback));
      PlanCost cost;
      cost.output_rows = b.output_rows;
      cost.work = b.work + r.work + r.output_rows;  // ONE scan of R
      for (const MdJoinComponent& comp : plan->components) {
        bool has_equi = !AnalyzeTheta(comp.theta).equi.empty();
        cost.work += has_equi ? r.output_rows : r.output_rows * b.output_rows;
      }
      cost.work += b.output_rows;
      return cost;
    }
    case PlanKind::kCubeBase: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, Estimate(plan->child(0), catalog, feedback));
      double cuboids = std::pow(2.0, static_cast<double>(plan->cube_dims.size()));
      double out = child.output_rows * kCuboidRatio * cuboids;
      if (const TableStats* stats = StatsForInput(plan->child(0), catalog)) {
        // Sum over all 2^d cuboids of the per-cuboid NDV products has the
        // closed form prod_i (ndv_i + 1) under independence.
        double product = 1.0;
        bool covered = true;
        for (const std::string& dim : plan->cube_dims) {
          const ColumnStats* cs = stats->FindColumn(dim);
          if (cs == nullptr) {
            covered = false;
            break;
          }
          product *= static_cast<double>(std::max<int64_t>(cs->ndv, 1)) + 1.0;
        }
        if (covered) out = std::min(product, cuboids * child.output_rows);
      }
      return PlanCost{out, child.work + child.output_rows};
    }
    case PlanKind::kSort: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, Estimate(plan->child(0), catalog, feedback));
      return PlanCost{child.output_rows, child.work + 2 * child.output_rows};
    }
    case PlanKind::kCuboidBase: {
      MDJ_ASSIGN_OR_RETURN(PlanCost child, Estimate(plan->child(0), catalog, feedback));
      double out = child.output_rows * kCuboidRatio;
      // Dims present in the cuboid (mask bit i <-> cube_dims[i]); the absent
      // ones are ALL, contributing factor 1.
      std::vector<std::string> present;
      for (size_t i = 0; i < plan->cube_dims.size(); ++i) {
        if ((plan->cuboid_mask >> i) & 1u) present.push_back(plan->cube_dims[i]);
      }
      if (std::optional<double> ndv =
              NdvProduct(StatsForInput(plan->child(0), catalog), present)) {
        out = std::min(*ndv, child.output_rows);
      }
      return PlanCost{out, child.work + child.output_rows};
    }
    case PlanKind::kEmptyRef:
      return PlanCost{0, 0};
  }
  return Status::Internal("unreachable plan kind");
}

}  // namespace

double QError(double estimated_rows, double actual_rows) {
  const double est = std::max(estimated_rows, 1.0);
  const double act = std::max(actual_rows, 1.0);
  return std::max(est / act, act / est);
}

uint64_t PlanFingerprint(const PlanPtr& plan) {
  return FingerprintString(ExplainPlan(plan));
}

Result<PlanCost> EstimateCost(const PlanPtr& plan, const Catalog& catalog) {
  return Estimate(plan, catalog, nullptr);
}

Result<PlanCost> EstimateCost(const PlanPtr& plan, const Catalog& catalog,
                              const FeedbackStore* feedback) {
  return Estimate(plan, catalog, feedback);
}

Result<size_t> ChooseCheapestPlan(const std::vector<PlanPtr>& alternatives,
                                  const Catalog& catalog) {
  if (alternatives.empty()) {
    return Status::InvalidArgument("ChooseCheapestPlan: no alternatives");
  }
  size_t best = 0;
  double best_work = 0;
  for (size_t i = 0; i < alternatives.size(); ++i) {
    MDJ_ASSIGN_OR_RETURN(PlanCost c, EstimateCost(alternatives[i], catalog));
    if (i == 0 || c.work < best_work) {
      best = i;
      best_work = c.work;
    }
  }
  return best;
}

}  // namespace mdjoin
