#ifndef MDJOIN_OPTIMIZER_COST_H_
#define MDJOIN_OPTIMIZER_COST_H_

#include "optimizer/plan.h"

namespace mdjoin {

/// Estimated cost of a plan. `work` is in abstract row-touch units:
/// tuples scanned plus candidate pairs tested plus rows materialized.
/// Deliberately simple — the point (paper §4) is that MD-join plans become
/// amenable to ordinary cost-based optimization once the transformations
/// exist; the constants here only need to rank alternatives sensibly.
struct PlanCost {
  double output_rows = 0;
  double work = 0;
};

/// Heuristics (documented so benches can reason about rankings):
///  - TableRef: |T| rows, no work.
///  - Filter: selectivity 0.3; Distinct: 0.6; GroupBy: 0.2 of child rows.
///  - CubeBase over d dims: 2^d × 0.2 × child; CuboidBase: 0.2 × child.
///  - MD-join with an equi conjunct: work = |R| + |R| (index probes);
///    without: work = |R| × |B| (nested loop). Output rows = |B|.
///  - Generalized MD-join: one scan of R plus per-component probe work.
///  - HashJoin: |L| + |R|; Union: sum; Partition: child / count.
Result<PlanCost> EstimateCost(const PlanPtr& plan, const Catalog& catalog);

/// Returns the index of the cheapest plan by `work`. Errors if empty or if
/// any estimate fails — a minimal cost-based chooser for rule alternatives.
Result<size_t> ChooseCheapestPlan(const std::vector<PlanPtr>& alternatives,
                                  const Catalog& catalog);

}  // namespace mdjoin

#endif  // MDJOIN_OPTIMIZER_COST_H_
