#ifndef MDJOIN_OPTIMIZER_COST_H_
#define MDJOIN_OPTIMIZER_COST_H_

#include "optimizer/plan.h"

namespace mdjoin {

class FeedbackStore;

/// Estimated cost of a plan. `work` is in abstract row-touch units:
/// tuples scanned plus candidate pairs tested plus rows materialized.
/// Deliberately simple — the point (paper §4) is that MD-join plans become
/// amenable to ordinary cost-based optimization once the transformations
/// exist; the constants here only need to rank alternatives sensibly.
struct PlanCost {
  double output_rows = 0;
  double work = 0;
};

/// Q-error of an estimate against a measurement: max(est/act, act/est) with
/// both sides floored at one row, so it is always >= 1 and symmetric in
/// over- vs. under-estimation. 1.0 means the estimate was exact.
double QError(double estimated_rows, double actual_rows);

/// FNV-1a fingerprint of the canonical ExplainPlan rendering of `plan` —
/// the identity under which the feedback store accumulates measurements.
/// The same rendering keys the server's result cache, so feedback, caching,
/// and the query log all agree on what "the same plan" means.
uint64_t PlanFingerprint(const PlanPtr& plan);

/// Fallback heuristics, used when no statistics or feedback cover a node
/// (documented so benches can reason about rankings):
///  - TableRef: |T| rows, no work.
///  - Filter: selectivity 0.3; Distinct: 0.6; GroupBy: 0.2 of child rows.
///  - CubeBase over d dims: 2^d × 0.2 × child; CuboidBase: 0.2 × child.
///  - MD-join with an equi conjunct: work = |R| + |R| (index probes);
///    without: work = |R| × |B| (nested loop). Output rows = |B|.
///  - Generalized MD-join: one scan of R plus per-component probe work.
///  - HashJoin: |L| + |R|; Union: sum; Partition: child / count.
///
/// When the catalog carries AnalyzeTable statistics (Catalog::FindStats),
/// cardinalities come from them instead: filters over a scanned table use
/// per-conjunct histogram/NDV selectivities, and Distinct/GroupBy/Cube
/// output sizes use NDV products clamped to the input size. When a feedback
/// store is supplied, a node whose fingerprint has been observed uses the
/// measured output cardinality outright — measurements beat models.
Result<PlanCost> EstimateCost(const PlanPtr& plan, const Catalog& catalog);
Result<PlanCost> EstimateCost(const PlanPtr& plan, const Catalog& catalog,
                              const FeedbackStore* feedback);

/// Returns the index of the cheapest plan by `work`. Errors if empty or if
/// any estimate fails — a minimal cost-based chooser for rule alternatives.
Result<size_t> ChooseCheapestPlan(const std::vector<PlanPtr>& alternatives,
                                  const Catalog& catalog);

}  // namespace mdjoin

#endif  // MDJOIN_OPTIMIZER_COST_H_
