#include "optimizer/optimize.h"

#include "analyze/plan_invariants.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "optimizer/cost.h"
#include "optimizer/rules.h"

namespace mdjoin {

std::string OptimizeReport::ToString() const {
  std::string out;
  for (const std::string& entry : applied) {
    out += entry;
    out += "\n";
  }
  return out;
}

namespace {

/// Applies `candidate` if it succeeded and does not increase estimated work.
/// Returns true when the plan was replaced; returns a non-OK status only in
/// verify_plans mode, when the accepted rewrite fails static verification.
Result<bool> Accept(const Result<PlanPtr>& candidate, const Catalog& catalog,
                    const OptimizeOptions& options, const char* rule_name,
                    PlanPtr* plan, OptimizeReport* report,
                    std::vector<RewriteRecord>* rewrite_log) {
  if (!candidate.ok()) return false;
  Result<PlanCost> before = EstimateCost(*plan, catalog, options.feedback);
  Result<PlanCost> after = EstimateCost(*candidate, catalog, options.feedback);
  if (!before.ok() || !after.ok()) {
    // The rule matched but the cost model could not certify the rewrite, so
    // the decision still deserves a record: keep whichever side estimated
    // (-1 marks the missing one) and name the failing estimate.
    if (rewrite_log != nullptr) {
      RewriteRecord record;
      record.rule = rule_name;
      record.node = (*plan)->Label();
      record.accepted = false;
      record.cost_before = before.ok() ? before->work : -1;
      record.cost_after = after.ok() ? after->work : -1;
      record.detail = "rejected: cost estimate failed: " +
                      (before.ok() ? after.status() : before.status()).ToString();
      rewrite_log->push_back(std::move(record));
    }
    return false;
  }

  // The rule produced a candidate, so the decision (either way) is worth a
  // rewrite record: rule, target node, and the cost certificate.
  RewriteRecord record;
  record.rule = rule_name;
  record.node = (*plan)->Label();
  record.cost_before = before->work;
  record.cost_after = after->work;

  if (after->work > before->work) {
    record.accepted = false;
    record.detail = "rejected: estimated work would increase";
    if (rewrite_log != nullptr) rewrite_log->push_back(std::move(record));
    return false;
  }
  if (options.verify_plans || VerifyPlansEnabledByEnv()) {
    MDJ_RETURN_NOT_OK(VerifyPlan(*candidate, catalog, rule_name));
  }
  *plan = *candidate;
  record.accepted = true;
  record.detail = "accepted: estimated work " +
                  std::to_string(static_cast<long long>(before->work)) + " -> " +
                  std::to_string(static_cast<long long>(after->work));
  if (rewrite_log != nullptr) rewrite_log->push_back(std::move(record));
  if (report != nullptr) {
    report->applied.push_back(std::string(rule_name) + " (work " +
                              std::to_string(static_cast<long long>(before->work)) +
                              " -> " +
                              std::to_string(static_cast<long long>(after->work)) + ")");
  }
  return true;
}

Result<PlanPtr> OptimizeRec(const PlanPtr& plan, const Catalog& catalog,
                            const OptimizeOptions& options, OptimizeReport* report,
                            std::vector<RewriteRecord>* rewrite_log);

/// Fusion must fire on the *raw* chain: optimizing the inner MD-joins first
/// would push their detail-only conjuncts into per-component Filter nodes,
/// making the shared detail relation look different per component and
/// defeating the Theorem 4.3 match. So chains fuse top-down before the
/// regular bottom-up pass.
Result<PlanPtr> TryFuseChainFirst(const PlanPtr& plan, const Catalog& catalog,
                                  const OptimizeOptions& options,
                                  OptimizeReport* report,
                                  std::vector<RewriteRecord>* rewrite_log,
                                  bool* fused) {
  *fused = false;
  if (!options.enable_fusion || plan->kind() != PlanKind::kMdJoin ||
      plan->child(0)->kind() != PlanKind::kMdJoin) {
    return plan;
  }
  PlanPtr current = plan;
  MDJ_ASSIGN_OR_RETURN(bool accepted,
                       Accept(FuseMdJoinSeries(current), catalog, options,
                              "Theorem 4.3 fusion", &current, report, rewrite_log));
  *fused = accepted;
  return current;
}

Result<PlanPtr> OptimizeRec(const PlanPtr& plan, const Catalog& catalog,
                            const OptimizeOptions& options, OptimizeReport* report,
                            std::vector<RewriteRecord>* rewrite_log) {
  {
    bool fused = false;
    MDJ_ASSIGN_OR_RETURN(
        PlanPtr maybe_fused,
        TryFuseChainFirst(plan, catalog, options, report, rewrite_log, &fused));
    if (fused) return OptimizeRec(maybe_fused, catalog, options, report, rewrite_log);
  }
  // Children first.
  std::vector<PlanPtr> new_children;
  bool changed = false;
  new_children.reserve(plan->children().size());
  for (const PlanPtr& child : plan->children()) {
    MDJ_ASSIGN_OR_RETURN(PlanPtr rewritten,
                         OptimizeRec(child, catalog, options, report, rewrite_log));
    changed = changed || rewritten != child;
    new_children.push_back(std::move(rewritten));
  }
  PlanPtr current = changed ? CloneWithChildren(plan, std::move(new_children)) : plan;

  for (int round = 0; round < options.max_rounds; ++round) {
    bool fired = false;
    bool accepted = false;
    if (options.enable_unsat_rewrite && current->kind() == PlanKind::kMdJoin) {
      MDJ_ASSIGN_OR_RETURN(
          accepted, Accept(ApplyUnsatThetaRewrite(current, catalog), catalog, options,
                           "unsat-θ empty-result", &current, report, rewrite_log));
      if (accepted) {
        static Counter* unsat_rewrites = MetricsRegistry::Global().GetCounter(
            "mdjoin_unsat_theta_rewrites_total",
            "MD-joins whose detail child was replaced by an empty relation "
            "because interval analysis proved θ unsatisfiable");
        unsat_rewrites->Increment();
      }
      fired |= accepted;
    }
    if (options.enable_fusion && current->kind() == PlanKind::kMdJoin) {
      MDJ_ASSIGN_OR_RETURN(accepted,
                           Accept(FuseMdJoinSeries(current), catalog, options,
                                  "Theorem 4.3 fusion", &current, report, rewrite_log));
      fired |= accepted;
    }
    if (options.enable_cube_rollup && current->kind() == PlanKind::kMdJoin) {
      MDJ_ASSIGN_OR_RETURN(accepted,
                           Accept(ExpandCubeBaseWithRollups(current), catalog, options,
                                  "Theorem 4.5 cube roll-up expansion", &current,
                                  report, rewrite_log));
      fired |= accepted;
    }
    if (options.enable_split && current->kind() == PlanKind::kMdJoin) {
      MDJ_ASSIGN_OR_RETURN(accepted,
                           Accept(SplitToEquiJoin(current, catalog), catalog, options,
                                  "Theorem 4.4 equijoin split", &current, report,
                                  rewrite_log));
      fired |= accepted;
    }
    if (options.enable_pushdown && current->kind() == PlanKind::kMdJoin) {
      MDJ_ASSIGN_OR_RETURN(accepted,
                           Accept(ApplySelectionPushdown(current), catalog, options,
                                  "Theorem 4.2 selection pushdown", &current, report,
                                  rewrite_log));
      fired |= accepted;
    }
    if (options.enable_transfer && current->kind() == PlanKind::kMdJoin) {
      MDJ_ASSIGN_OR_RETURN(accepted,
                           Accept(ApplyBaseSelectionTransfer(current), catalog, options,
                                  "Observation 4.1 selection transfer", &current,
                                  report, rewrite_log));
      fired |= accepted;
    }
    if (!fired) break;
  }
  return current;
}

}  // namespace

Result<PlanPtr> OptimizePlan(const PlanPtr& plan, const Catalog& catalog,
                             const OptimizeOptions& options, OptimizeReport* report,
                             std::vector<RewriteRecord>* rewrite_log) {
  if (plan == nullptr) return Status::InvalidArgument("OptimizePlan: null plan");
  return OptimizeRec(plan, catalog, options, report, rewrite_log);
}

}  // namespace mdjoin
