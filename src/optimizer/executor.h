#ifndef MDJOIN_OPTIMIZER_EXECUTOR_H_
#define MDJOIN_OPTIMIZER_EXECUTOR_H_

#include "core/mdjoin.h"
#include "optimizer/plan.h"

namespace mdjoin {

/// Work counters accumulated over a whole plan execution, for comparing
/// rewritten plans in the experiment harness.
struct ExecStats {
  int64_t nodes_executed = 0;
  int64_t detail_rows_scanned = 0;   // summed over all (generalized) MD-joins
  int64_t candidate_pairs = 0;
  int64_t matched_pairs = 0;
  int64_t mdjoin_operators = 0;      // MD-join nodes evaluated
  int64_t rows_materialized = 0;     // total output rows across nodes
  int64_t cse_hits = 0;              // subtree reuses (ExecutePlanCse only)
};

/// Executes `plan` against `catalog`. Every node materializes its result (an
/// in-memory engine in the paper's §4.1.1 spirit). MD-join nodes run with
/// `md_options`.
Result<Table> ExecutePlan(const PlanPtr& plan, const Catalog& catalog,
                          const MdJoinOptions& md_options = {},
                          ExecStats* stats = nullptr);

/// ExecutePlan with common-subexpression elimination: structurally identical
/// subtrees (same explain rendering) are evaluated once and their results
/// reused. Rewrites like ExpandCubeBaseWithRollups (Theorem 4.5 chains) build
/// trees where a finer cuboid feeds several coarser ones; the paper notes
/// "usually optimizers perform common subexpression elimination" — this is
/// that step. `stats->cse_hits` counts reuses.
Result<Table> ExecutePlanCse(const PlanPtr& plan, const Catalog& catalog,
                             const MdJoinOptions& md_options = {},
                             ExecStats* stats = nullptr);

}  // namespace mdjoin

#endif  // MDJOIN_OPTIMIZER_EXECUTOR_H_
