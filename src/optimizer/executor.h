#ifndef MDJOIN_OPTIMIZER_EXECUTOR_H_
#define MDJOIN_OPTIMIZER_EXECUTOR_H_

#include "core/mdjoin.h"
#include "obs/query_profile.h"
#include "optimizer/plan.h"

namespace mdjoin {

/// Work counters accumulated over a whole plan execution, for comparing
/// rewritten plans in the experiment harness.
struct ExecStats {
  int64_t nodes_executed = 0;
  int64_t detail_rows_scanned = 0;   // summed over all (generalized) MD-joins
  int64_t candidate_pairs = 0;
  int64_t matched_pairs = 0;
  int64_t mdjoin_operators = 0;      // MD-join nodes evaluated
  int64_t rows_materialized = 0;     // total output rows across nodes
  int64_t cse_hits = 0;              // subtree reuses (ExecutePlanCse only)
};

/// Executes `plan` against `catalog`. Every node materializes its result (an
/// in-memory engine in the paper's §4.1.1 spirit). MD-join nodes run with
/// `md_options`.
Result<Table> ExecutePlan(const PlanPtr& plan, const Catalog& catalog,
                          const MdJoinOptions& md_options = {},
                          ExecStats* stats = nullptr);

/// ExecutePlan with common-subexpression elimination: structurally identical
/// subtrees (same explain rendering) are evaluated once and their results
/// reused. Rewrites like ExpandCubeBaseWithRollups (Theorem 4.5 chains) build
/// trees where a finer cuboid feeds several coarser ones; the paper notes
/// "usually optimizers perform common subexpression elimination" — this is
/// that step. `stats->cse_hits` counts reuses.
Result<Table> ExecutePlanCse(const PlanPtr& plan, const Catalog& catalog,
                             const MdJoinOptions& md_options = {},
                             ExecStats* stats = nullptr);

/// EXPLAIN ANALYZE: executes `plan` while recording a per-operator
/// QueryProfile (rows, wall/CPU timings, MD-join scan counters). `profile`
/// must be non-null; its `rewrites` log is preserved (populate it via
/// OptimizePlan's rewrite_log before calling), everything else is reset.
///
/// The profile is always well-formed on return — on a guard trip or operator
/// failure the tree holds partial counts for whatever executed, `complete` is
/// false, and `terminal` carries the error status (the terminal event). The
/// returned Result mirrors that status. No CSE: every node runs, so the
/// numbers reflect the plan as written.
Result<Table> ExplainAnalyze(const PlanPtr& plan, const Catalog& catalog,
                             const MdJoinOptions& md_options, QueryProfile* profile);

/// Convenience wrapper around ExplainAnalyze for callers that only care
/// about the success path.
struct ProfiledResult {
  Table table;
  QueryProfile profile;

  /// QueryProfile::ToText(): indented operator tree + rewrite log + terminal.
  std::string ToString() const;
};

Result<ProfiledResult> ExecutePlanProfiled(const PlanPtr& plan, const Catalog& catalog,
                                           const MdJoinOptions& md_options = {});

}  // namespace mdjoin

#endif  // MDJOIN_OPTIMIZER_EXECUTOR_H_
