#ifndef MDJOIN_OPTIMIZER_PLAN_H_
#define MDJOIN_OPTIMIZER_PLAN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "agg/agg_spec.h"
#include "common/result.h"
#include "core/generalized.h"
#include "cube/lattice.h"
#include "expr/expr.h"
#include "ra/join.h"
#include "ra/project.h"
#include "table/table.h"

namespace mdjoin {

/// Logical/physical plan node kinds. The tree is logical enough to rewrite
/// algebraically (the §4 theorems are tree transformations) and physical
/// enough to execute directly — appropriate for an in-memory engine.
enum class PlanKind {
  kTableRef,           // named input relation from the catalog
  kFilter,             // σ
  kProject,            // π (extended projection)
  kDistinct,           // duplicate elimination over all columns
  kUnion,              // bag union (concat) of same-schema children
  kPartition,          // slice i of an m-way row split of the child (Thm 4.1)
  kHashJoin,           // equijoin on named key columns
  kGroupBy,            // conventional Σ aggregation
  kMdJoin,             // MD(B, R, l, θ) — children: [base, detail]
  kGeneralizedMdJoin,  // MD(B, R, (l..), (θ..)) — children: [base, detail]
  kCubeBase,           // CUBE BY base-values generator over the child
  kCuboidBase,         // one cuboid of the child (π_{X,ALL..}) (Thm 4.5)
  kSort,               // order the child by named columns
  kEmptyRef,           // constant empty relation with a fixed schema
};

const char* PlanKindToString(PlanKind kind);

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// Immutable plan node; rewrites build new trees and share unchanged
/// subtrees. Payload fields are public and set by the factory functions below
/// (the node is const after construction).
class PlanNode {
 public:
  explicit PlanNode(PlanKind kind) : kind_(kind) {}

  PlanKind kind() const { return kind_; }
  const std::vector<PlanPtr>& children() const { return children_; }
  const PlanPtr& child(int i) const { return children_[static_cast<size_t>(i)]; }

  // --- payloads (validity depends on kind) ---
  std::string table_name;                    // kTableRef
  ExprPtr predicate;                         // kFilter
  std::vector<ProjectItem> projections;      // kProject
  int partition_index = 0;                   // kPartition
  int partition_count = 1;                   // kPartition
  std::vector<std::string> left_keys;        // kHashJoin
  std::vector<std::string> right_keys;       // kHashJoin
  JoinType join_type = JoinType::kInner;     // kHashJoin
  std::vector<std::string> group_columns;    // kGroupBy
  std::vector<AggSpec> aggs;                 // kGroupBy, kMdJoin
  ExprPtr theta;                             // kMdJoin
  std::vector<MdJoinComponent> components;   // kGeneralizedMdJoin
  std::vector<std::string> cube_dims;        // kCubeBase, kCuboidBase
  CuboidMask cuboid_mask = 0;                // kCuboidBase
  std::vector<std::string> sort_columns;     // kSort
  std::vector<bool> sort_ascending;          // kSort (parallel to sort_columns)
  std::shared_ptr<const Schema> empty_schema;  // kEmptyRef

  /// One-line description of this node (no children).
  std::string Label() const;

 private:
  friend PlanPtr MakeNode(PlanKind, std::vector<PlanPtr>);

  PlanKind kind_;
  std::vector<PlanPtr> children_;
};

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

PlanPtr TableRef(std::string name);
PlanPtr FilterPlan(PlanPtr child, ExprPtr predicate);
PlanPtr ProjectPlan(PlanPtr child, std::vector<ProjectItem> items);
PlanPtr DistinctPlan(PlanPtr child);
PlanPtr UnionPlan(std::vector<PlanPtr> children);
PlanPtr PartitionPlan(PlanPtr child, int index, int count);
PlanPtr HashJoinPlan(PlanPtr left, PlanPtr right, std::vector<std::string> left_keys,
                     std::vector<std::string> right_keys,
                     JoinType type = JoinType::kInner);
PlanPtr GroupByPlan(PlanPtr child, std::vector<std::string> group_columns,
                    std::vector<AggSpec> aggs);
PlanPtr MdJoinPlan(PlanPtr base, PlanPtr detail, std::vector<AggSpec> aggs,
                   ExprPtr theta);
PlanPtr GeneralizedMdJoinPlan(PlanPtr base, PlanPtr detail,
                              std::vector<MdJoinComponent> components);
PlanPtr CubeBasePlan(PlanPtr child, std::vector<std::string> dims);
PlanPtr CuboidBasePlan(PlanPtr child, std::vector<std::string> dims, CuboidMask mask);

PlanPtr SortPlan(PlanPtr child, std::vector<std::string> columns,
                 std::vector<bool> ascending = {});

/// Leaf producing zero rows with `schema`. Rewrites substitute it for a
/// subtree proven to contribute nothing (e.g. the detail child of an MD-join
/// whose θ is statically unsatisfiable) while keeping the plan type-correct.
PlanPtr EmptyRefPlan(Schema schema);

/// Copy of `node` with its children replaced (payload preserved). The
/// building block for rewrites that recurse through unchanged operators.
PlanPtr CloneWithChildren(const PlanPtr& node, std::vector<PlanPtr> children);

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

/// Name → relation binding used at execution and schema-inference time. Holds
/// non-owning pointers; the caller keeps the relations alive.
///
/// Two kinds share one namespace: in-memory Tables and paged block files
/// (storage/paged_table). The plan layer must not link against storage
/// (storage sits above it), so paged entries carry their schema and row count
/// by value and the PagedTable pointer stays opaque here — the executor,
/// which does link storage, is the only consumer that dereferences it.
/// Registration sites use RegisterPagedTable (storage/out_of_core.h), which
/// fills the redundant fields from the table itself.
class Catalog {
 public:
  Status Register(std::string name, const Table* table);
  Status RegisterPaged(std::string name, const class PagedTable* table,
                       Schema schema, int64_t num_rows);

  /// In-memory binding only; NotFound for paged names (callers that can only
  /// consume a Table use LookupSchema/LookupNumRows or the executor's
  /// materialization fallback instead).
  Result<const Table*> Lookup(const std::string& name) const;
  /// The paged binding, or null when `name` is unbound or in-memory.
  const class PagedTable* FindPaged(const std::string& name) const;

  /// Schema / cardinality of either kind of binding.
  Result<const Schema*> LookupSchema(const std::string& name) const;
  Result<int64_t> LookupNumRows(const std::string& name) const;

  /// Attaches AnalyzeTable statistics to an already-registered name. The
  /// pointer stays opaque here for the same layering reason as PagedTable —
  /// the plan layer must not link against stats; the cost model (which does)
  /// is the only consumer that dereferences it. Re-registering overwrites:
  /// a fresh ANALYZE supersedes the old scan.
  Status RegisterStats(const std::string& name, const class TableStats* stats);
  /// The statistics binding, or null when `name` has none.
  const class TableStats* FindStats(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  struct PagedEntry {
    const class PagedTable* table = nullptr;
    Schema schema;
    int64_t num_rows = 0;
  };
  std::unordered_map<std::string, const Table*> tables_;
  std::unordered_map<std::string, PagedEntry> paged_;
  std::unordered_map<std::string, const class TableStats*> stats_;
};

/// Output schema of `plan` against `catalog`, without executing. Errors on
/// unbound names or type mismatches — running this is the plan's type check.
Result<Schema> InferSchema(const PlanPtr& plan, const Catalog& catalog);

/// Renders the plan tree, one node per line, children indented.
std::string ExplainPlan(const PlanPtr& plan);

}  // namespace mdjoin

#endif  // MDJOIN_OPTIMIZER_PLAN_H_
