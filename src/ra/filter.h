#ifndef MDJOIN_RA_FILTER_H_
#define MDJOIN_RA_FILTER_H_

#include "common/result.h"
#include "expr/expr.h"
#include "table/table.h"

namespace mdjoin {

/// σ_predicate(t): rows of `t` satisfying `predicate` (a single-table
/// expression; column references use Side::kDetail / dsl::Col).
Result<Table> Filter(const Table& t, const ExprPtr& predicate);

}  // namespace mdjoin

#endif  // MDJOIN_RA_FILTER_H_
