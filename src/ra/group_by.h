#ifndef MDJOIN_RA_GROUP_BY_H_
#define MDJOIN_RA_GROUP_BY_H_

#include <string>
#include <vector>

#include "agg/agg_spec.h"
#include "common/result.h"
#include "table/table.h"

namespace mdjoin {

/// Conventional hash GROUP BY aggregation (the Σ operator the paper contrasts
/// MD-join with): groups `t` on the named columns and computes `aggs` within
/// each group. Aggregate arguments are single-table expressions over `t`
/// (Side::kDetail). Groups appear in first-occurrence order. Unlike the
/// MD-join, only groups that occur in `t` appear in the output.
Result<Table> GroupBy(const Table& t, const std::vector<std::string>& group_columns,
                      const std::vector<AggSpec>& aggs);

/// Aggregates all of `t` as a single group (GROUP BY ()); always returns
/// exactly one row.
Result<Table> AggregateAll(const Table& t, const std::vector<AggSpec>& aggs);

/// Streaming sort-based aggregation: `t` MUST already be ordered so that
/// equal group keys are contiguous (e.g., sorted by `group_columns`); groups
/// are emitted as their runs end, holding one accumulator set at a time —
/// the evaluation style PIPESORT's pipelined paths assume (§4.4). Returns
/// InvalidArgument if a key run re-appears later (input not grouped).
/// Output equals GroupBy() on the same input up to row order.
Result<Table> SortedGroupBy(const Table& t, const std::vector<std::string>& group_columns,
                            const std::vector<AggSpec>& aggs);

}  // namespace mdjoin

#endif  // MDJOIN_RA_GROUP_BY_H_
