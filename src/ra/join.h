#ifndef MDJOIN_RA_JOIN_H_
#define MDJOIN_RA_JOIN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "table/table.h"

namespace mdjoin {

enum class JoinType {
  kInner,
  kLeftOuter,
};

/// Hash equi-join of `left` and `right` on the named key columns (structural
/// Value equality). Output schema is left's columns followed by right's
/// non-key columns; duplicate names on the right get a "_r" suffix.
/// kLeftOuter pads unmatched left rows with NULLs — the shape SQL needs to
/// emulate the MD-join's outer semantics (paper §3, Example 2.2).
Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys,
                       JoinType type = JoinType::kInner);

/// General θ-join by nested loops: `condition` references `left` columns via
/// Side::kBase and `right` columns via Side::kDetail. Output schema is all
/// left columns then all right columns (right duplicates suffixed "_r").
/// kLeftOuter keeps unmatched left rows NULL-padded.
Result<Table> NestedLoopJoin(const Table& left, const Table& right,
                             const ExprPtr& condition, JoinType type = JoinType::kInner);

/// Cartesian product (for tiny inputs / tests).
Result<Table> CrossProduct(const Table& left, const Table& right);

}  // namespace mdjoin

#endif  // MDJOIN_RA_JOIN_H_
