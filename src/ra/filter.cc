#include "ra/filter.h"

#include "expr/compile.h"

namespace mdjoin {

Result<Table> Filter(const Table& t, const ExprPtr& predicate) {
  MDJ_ASSIGN_OR_RETURN(CompiledExpr pred, CompileExpr(predicate, t.schema()));
  Table out(t.schema());
  RowCtx ctx;
  ctx.detail = &t;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    ctx.detail_row = r;
    if (pred.EvalBool(ctx)) out.AppendRowFrom(t, r);
  }
  return out;
}

}  // namespace mdjoin
