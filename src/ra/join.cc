#include "ra/join.h"

#include <unordered_map>
#include <unordered_set>

#include "expr/compile.h"
#include "table/key.h"
#include "table/table_ops.h"

namespace mdjoin {

namespace {

/// Output schema for a join: all left fields, then right fields (minus
/// `skip_right` indices), suffixing right names that clash.
Schema JoinSchema(const Table& left, const Table& right,
                  const std::unordered_set<int>& skip_right) {
  std::vector<Field> fields = left.schema().fields();
  Schema left_schema = left.schema();
  auto taken = [&fields](const std::string& name) {
    for (const Field& f : fields) {
      if (f.name == name) return true;
    }
    return false;
  };
  for (int c = 0; c < right.num_columns(); ++c) {
    if (skip_right.count(c)) continue;
    Field f = right.schema().field(c);
    while (taken(f.name)) f.name += "_r";
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

void AppendJoined(Table* out, const Table& left, int64_t lrow, const Table& right,
                  int64_t rrow, const std::unordered_set<int>& skip_right,
                  bool right_null) {
  std::vector<Value> row;
  row.reserve(static_cast<size_t>(out->num_columns()));
  for (int c = 0; c < left.num_columns(); ++c) row.push_back(left.Get(lrow, c));
  for (int c = 0; c < right.num_columns(); ++c) {
    if (skip_right.count(c)) continue;
    row.push_back(right_null ? Value::Null() : right.Get(rrow, c));
  }
  out->AppendRowUnchecked(std::move(row));
}

}  // namespace

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::vector<std::string>& left_keys,
                       const std::vector<std::string>& right_keys,
                       JoinType type) {
  if (left_keys.size() != right_keys.size()) {
    return Status::InvalidArgument("HashJoin: key count mismatch");
  }
  MDJ_ASSIGN_OR_RETURN(std::vector<int> lcols, ResolveColumns(left.schema(), left_keys));
  MDJ_ASSIGN_OR_RETURN(std::vector<int> rcols, ResolveColumns(right.schema(), right_keys));

  std::unordered_set<int> skip_right(rcols.begin(), rcols.end());
  Table out{JoinSchema(left, right, skip_right)};

  std::unordered_map<RowKey, std::vector<int64_t>, RowKeyHash, RowKeyEqual> index;
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    index[right.GetRowKey(r, rcols)].push_back(r);
  }

  for (int64_t l = 0; l < left.num_rows(); ++l) {
    auto it = index.find(left.GetRowKey(l, lcols));
    if (it == index.end()) {
      if (type == JoinType::kLeftOuter) {
        AppendJoined(&out, left, l, right, 0, skip_right, /*right_null=*/true);
      }
      continue;
    }
    for (int64_t r : it->second) {
      AppendJoined(&out, left, l, right, r, skip_right, /*right_null=*/false);
    }
  }
  return out;
}

Result<Table> NestedLoopJoin(const Table& left, const Table& right,
                             const ExprPtr& condition, JoinType type) {
  MDJ_ASSIGN_OR_RETURN(CompiledExpr cond,
                       CompileExpr(condition, &left.schema(), &right.schema()));
  std::unordered_set<int> skip_right;
  Table out{JoinSchema(left, right, skip_right)};
  RowCtx ctx;
  ctx.base = &left;
  ctx.detail = &right;
  for (int64_t l = 0; l < left.num_rows(); ++l) {
    ctx.base_row = l;
    bool matched = false;
    for (int64_t r = 0; r < right.num_rows(); ++r) {
      ctx.detail_row = r;
      if (cond.EvalBool(ctx)) {
        matched = true;
        AppendJoined(&out, left, l, right, r, skip_right, /*right_null=*/false);
      }
    }
    if (!matched && type == JoinType::kLeftOuter) {
      AppendJoined(&out, left, l, right, 0, skip_right, /*right_null=*/true);
    }
  }
  return out;
}

Result<Table> CrossProduct(const Table& left, const Table& right) {
  return NestedLoopJoin(left, right, dsl::True(), JoinType::kInner);
}

}  // namespace mdjoin
