#include "ra/group_by.h"

#include <unordered_map>
#include <unordered_set>

#include "table/key.h"
#include "table/table_ops.h"

namespace mdjoin {

Result<Table> GroupBy(const Table& t, const std::vector<std::string>& group_columns,
                      const std::vector<AggSpec>& aggs) {
  MDJ_ASSIGN_OR_RETURN(std::vector<int> gcols, ResolveColumns(t.schema(), group_columns));
  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                       BindAggs(aggs, /*base_schema=*/nullptr, &t.schema()));

  std::vector<Field> fields;
  for (int c : gcols) fields.push_back(t.schema().field(c));
  for (const BoundAgg& b : bound) fields.push_back(b.output_field);

  // Group states, in first-occurrence order.
  struct Group {
    RowKey key;
    std::vector<std::unique_ptr<AggregateState>> states;
  };
  std::unordered_map<RowKey, size_t, RowKeyHash, RowKeyEqual> group_of;
  std::vector<Group> groups;

  RowCtx ctx;
  ctx.detail = &t;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    RowKey key = t.GetRowKey(r, gcols);
    auto [it, inserted] = group_of.try_emplace(key, groups.size());
    if (inserted) {
      Group g;
      g.key = std::move(key);
      g.states.reserve(bound.size());
      for (const BoundAgg& b : bound) g.states.push_back(b.fn->MakeState());
      groups.push_back(std::move(g));
    }
    Group& g = groups[it->second];
    ctx.detail_row = r;
    for (size_t i = 0; i < bound.size(); ++i) {
      bound[i].UpdateFromRow(g.states[i].get(), ctx);
    }
  }

  Table out{Schema(std::move(fields))};
  out.Reserve(static_cast<int64_t>(groups.size()));
  for (Group& g : groups) {
    std::vector<Value> row = std::move(g.key);
    for (size_t i = 0; i < bound.size(); ++i) {
      row.push_back(bound[i].fn->Finalize(*g.states[i]));
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

Result<Table> SortedGroupBy(const Table& t, const std::vector<std::string>& group_columns,
                            const std::vector<AggSpec>& aggs) {
  MDJ_ASSIGN_OR_RETURN(std::vector<int> gcols, ResolveColumns(t.schema(), group_columns));
  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                       BindAggs(aggs, /*base_schema=*/nullptr, &t.schema()));
  std::vector<Field> fields;
  for (int c : gcols) fields.push_back(t.schema().field(c));
  for (const BoundAgg& b : bound) fields.push_back(b.output_field);
  Table out{Schema(std::move(fields))};

  // One live accumulator set; a closed key set for the contiguity check.
  std::unordered_set<RowKey, RowKeyHash, RowKeyEqual> closed;
  RowKey current_key;
  bool has_group = false;
  std::vector<std::unique_ptr<AggregateState>> states;

  auto emit = [&] {
    std::vector<Value> row = current_key;
    for (size_t i = 0; i < bound.size(); ++i) {
      row.push_back(bound[i].fn->Finalize(*states[i]));
    }
    out.AppendRowUnchecked(std::move(row));
  };

  RowCtx ctx;
  ctx.detail = &t;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    RowKey key = t.GetRowKey(r, gcols);
    if (!has_group || !RowKeyEqual()(key, current_key)) {
      if (has_group) {
        emit();
        closed.insert(current_key);
      }
      if (closed.count(key)) {
        return Status::InvalidArgument(
            "SortedGroupBy: input is not grouped on the key columns (a key run "
            "re-appeared); sort the input or use GroupBy");
      }
      current_key = std::move(key);
      has_group = true;
      states.clear();
      for (const BoundAgg& b : bound) states.push_back(b.fn->MakeState());
    }
    ctx.detail_row = r;
    for (size_t i = 0; i < bound.size(); ++i) {
      bound[i].UpdateFromRow(states[i].get(), ctx);
    }
  }
  if (has_group) emit();
  return out;
}

Result<Table> AggregateAll(const Table& t, const std::vector<AggSpec>& aggs) {
  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                       BindAggs(aggs, /*base_schema=*/nullptr, &t.schema()));
  std::vector<Field> fields;
  for (const BoundAgg& b : bound) fields.push_back(b.output_field);

  std::vector<std::unique_ptr<AggregateState>> states;
  states.reserve(bound.size());
  for (const BoundAgg& b : bound) states.push_back(b.fn->MakeState());

  RowCtx ctx;
  ctx.detail = &t;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    ctx.detail_row = r;
    for (size_t i = 0; i < bound.size(); ++i) {
      bound[i].UpdateFromRow(states[i].get(), ctx);
    }
  }

  Table out{Schema(std::move(fields))};
  std::vector<Value> row;
  row.reserve(bound.size());
  for (size_t i = 0; i < bound.size(); ++i) row.push_back(bound[i].fn->Finalize(*states[i]));
  out.AppendRowUnchecked(std::move(row));
  return out;
}

}  // namespace mdjoin
