#ifndef MDJOIN_RA_PROJECT_H_
#define MDJOIN_RA_PROJECT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "table/table.h"

namespace mdjoin {

/// One output column of a projection: an expression and its name.
struct ProjectItem {
  ExprPtr expr;
  std::string name;
};

/// π over computed expressions (extended projection). No deduplication; use
/// Distinct for set semantics.
Result<Table> Project(const Table& t, const std::vector<ProjectItem>& items);

/// Plain column-list projection.
Result<Table> ProjectColumns(const Table& t, const std::vector<std::string>& columns);

}  // namespace mdjoin

#endif  // MDJOIN_RA_PROJECT_H_
