#include "ra/project.h"

#include "expr/compile.h"
#include "table/table_ops.h"

namespace mdjoin {

Result<Table> Project(const Table& t, const std::vector<ProjectItem>& items) {
  std::vector<CompiledExpr> exprs;
  std::vector<Field> fields;
  exprs.reserve(items.size());
  fields.reserve(items.size());
  for (const ProjectItem& item : items) {
    MDJ_ASSIGN_OR_RETURN(CompiledExpr c, CompileExpr(item.expr, t.schema()));
    fields.push_back(Field{item.name, c.result_type()});
    exprs.push_back(std::move(c));
  }
  Table out{Schema(std::move(fields))};
  out.Reserve(t.num_rows());
  RowCtx ctx;
  ctx.detail = &t;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    ctx.detail_row = r;
    std::vector<Value> row;
    row.reserve(exprs.size());
    for (const CompiledExpr& e : exprs) row.push_back(e.Eval(ctx));
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

Result<Table> ProjectColumns(const Table& t, const std::vector<std::string>& columns) {
  MDJ_ASSIGN_OR_RETURN(std::vector<int> cols, ResolveColumns(t.schema(), columns));
  std::vector<Field> fields;
  fields.reserve(cols.size());
  for (int c : cols) fields.push_back(t.schema().field(c));
  Table out{Schema(std::move(fields))};
  out.Reserve(t.num_rows());
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    out.AppendRowUnchecked(t.GetRowKey(r, cols));
  }
  return out;
}

}  // namespace mdjoin
