#include "core/detail_scan.h"

#include <algorithm>

#include "expr/compile.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdjoin {

Result<CompiledTheta> CompileTheta(const ThetaParts& parts, const Schema& base_schema,
                                   const Table& detail, const MdJoinOptions& options,
                                   bool vectorized) {
  CompiledTheta ct;
  // Resolve the SIMD backend up front so a pinned-but-unavailable backend is
  // a query compile error in every mode, never a silent fallback mid-scan.
  MDJ_ASSIGN_OR_RETURN(ct.level, simd::ResolveBackend(options.simd));
  ct.use_flat = options.use_flat_columns;
  if (ct.use_flat) ct.accel = detail.accel();
  const Schema& detail_schema = detail.schema();
  if (!parts.base_only.empty()) {
    MDJ_ASSIGN_OR_RETURN(ct.base_pred,
                         CompileExpr(CombineConjuncts(parts.base_only), &base_schema,
                                     /*detail_schema=*/nullptr));
  }

  // Detail-side selection (Theorem 4.2). When pushdown is disabled the
  // conjuncts join the residual so results are identical.
  std::vector<ExprPtr> residual_conjuncts = parts.residual;
  if (options.push_detail_selection) {
    if (!parts.detail_only.empty()) {
      if (vectorized) {
        MDJ_ASSIGN_OR_RETURN(ct.kernels,
                             PredicateKernels::Compile(parts.detail_only, detail_schema,
                                                       ct.accel, ct.level));
        ct.has_kernels = true;
      } else {
        MDJ_ASSIGN_OR_RETURN(ct.detail_pred,
                             CompileExpr(CombineConjuncts(parts.detail_only),
                                         /*base_schema=*/nullptr, &detail_schema));
      }
    }
  } else {
    residual_conjuncts.insert(residual_conjuncts.end(), parts.detail_only.begin(),
                              parts.detail_only.end());
  }

  // Without the index the equi conjuncts must be re-checked per pair.
  ct.indexed = options.use_index && !parts.equi.empty();
  if (!ct.indexed) {
    for (const EquiPair& pair : parts.equi) {
      residual_conjuncts.push_back(
          Expr::Binary(BinaryOp::kEq, pair.base_expr, pair.detail_expr));
    }
  }

  if (!residual_conjuncts.empty()) {
    MDJ_ASSIGN_OR_RETURN(ct.residual,
                         CompileExpr(CombineConjuncts(std::move(residual_conjuncts)),
                                     &base_schema, &detail_schema));
  }
  if (!options.theta_bytecode) {
    // Ablation arm: pin the closure-tree walker for this join's predicates.
    ct.base_pred.DisableBytecode();
    ct.detail_pred.DisableBytecode();
    ct.residual.DisableBytecode();
  }
  return ct;
}

DetailScanWorker::DetailScanWorker(const Table& base,
                                   const std::vector<BoundAgg>& bound_aggs,
                                   bool vectorized_mode, QueryGuard* guard)
    : aggs(&bound_aggs), vectorized(vectorized_mode), ticket(guard) {
  if (vectorized) {
    cols.reserve(bound_aggs.size());
    for (const BoundAgg& b : bound_aggs) {
      cols.push_back(AggStateColumn::Make(b.fn, base.num_rows()));
    }
  } else {
    heap.resize(bound_aggs.size());
    for (size_t i = 0; i < bound_aggs.size(); ++i) {
      heap[i].reserve(static_cast<size_t>(base.num_rows()));
      for (int64_t r = 0; r < base.num_rows(); ++r) {
        heap[i].push_back(bound_aggs[i].fn->MakeState());
      }
    }
  }
}

void DetailScanWorker::BeginJob() {
  // The probe memo caches full-key → candidates for one specific index;
  // serving those lists against a different job's index would be wrong.
  // Its hit counters are fleet-wide, though: fold them into the worker's
  // stats before the reset discards them.
  stats.index_probe_lookups += scratch.memo_lookups;
  stats.index_probe_memo_hits += scratch.memo_hits;
  scratch = BaseIndex::ProbeScratch{};
}

Status DetailScanWorker::FinishScan() {
  stats.index_probe_lookups += scratch.memo_lookups;
  stats.index_probe_memo_hits += scratch.memo_hits;
  scratch.memo_lookups = 0;  // folded; next BeginJob must not double-count
  scratch.memo_hits = 0;
  return ticket.Finish();
}

Value DetailScanWorker::FinalizeCell(size_t agg, int64_t base_row) const {
  return vectorized
             ? cols[agg].Finalize(base_row)
             : (*aggs)[agg].fn->Finalize(*heap[agg][static_cast<size_t>(base_row)]);
}

Result<DetailScan> DetailScan::Prepare(const Table& base, const Table& detail,
                                       const std::vector<BoundAgg>& aggs,
                                       const ThetaParts& parts,
                                       const CompiledTheta* theta,
                                       std::vector<int64_t> pass_rows,
                                       const MdJoinOptions& options) {
  DetailScan scan;
  scan.base_ = &base;
  scan.detail_ = &detail;
  scan.aggs_ = &aggs;
  scan.theta_ = theta;
  scan.vectorized_ = options.execution_mode != ExecutionMode::kRow;

  // Rows eligible for updates: those satisfying the B-only conjuncts. The
  // others still appear in the output (with identity aggregates) but can
  // never match.
  if (!theta->base_pred.valid()) {
    scan.active_ = std::move(pass_rows);
  } else {
    RowCtx ctx;
    ctx.base = &base;
    for (int64_t row : pass_rows) {
      ctx.base_row = row;
      if (theta->base_pred.EvalBool(ctx)) scan.active_.push_back(row);
    }
  }

  // Index on the equi part (§4.5), or nested loop when disabled/absent. The
  // per-job index is the memory the guard's soft budget governs; the caller
  // sized pass_rows so this reservation fits (or degraded to more passes).
  // The hard limit is still enforced here.
  if (theta->indexed) {
    MDJ_RETURN_NOT_OK(scan.index_bytes_.Reserve(
        options.guard,
        static_cast<int64_t>(scan.active_.size()) * kGuardBytesPerIndexedBaseRow,
        "base index"));
    MDJ_ASSIGN_OR_RETURN(
        scan.index_, BaseIndex::Build(base, scan.active_, parts.equi, detail.schema()));
    scan.index_masks_ = scan.index_.num_masks();
  }

  // The guard promises trip latency within ~one check stride of detail rows;
  // that promise outranks block shape, so a guarded scan never processes more
  // than a stride between checks.
  scan.block_ = options.block_size > 0 ? options.block_size : 1024;
  if (options.guard != nullptr && options.guard->check_stride() > 0) {
    scan.block_ = std::min<int64_t>(scan.block_, options.guard->check_stride());
  }

  // Plain detail-column aggregate arguments read straight from column
  // storage; one pointer per aggregate, hoisted out of the scan.
  scan.arg_cols_.assign(aggs.size(), nullptr);
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].detail_arg_col >= 0) {
      scan.arg_cols_[a] = detail.column(aggs[a].detail_arg_col).data();
    }
  }
  return scan;
}

Status DetailScan::ScanChunk(const Table& chunk, int64_t lo, int64_t hi,
                             DetailScanWorker* worker) const {
  Span span("scan_range", "scan");
  const Table& base = *base_;
  const Table& detail = chunk;
  const std::vector<BoundAgg>& aggs = *aggs_;
  const CompiledTheta& ct = *theta_;
  // Everything hoisted against the prepared table is valid only when that is
  // the table being scanned; a decoded block from the paged reader carries
  // the same schema but its own row numbering and storage.
  const bool home = (&chunk == detail_);
  std::vector<const Value*> foreign_args;
  const Value* const* arg_cols = arg_cols_.data();
  if (!home) {
    foreign_args.assign(aggs.size(), nullptr);
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].detail_arg_col >= 0) {
        foreign_args[a] = chunk.column(aggs[a].detail_arg_col).data();
      }
    }
    arg_cols = foreign_args.data();
  }

  RowCtx ctx;
  ctx.base = &base;
  ctx.detail = &detail;
  // Work counters stay in locals and flush into the worker's stats once per
  // range; per-row stores into shared stat structs were measurable in the
  // scan loop. A guard trip mid-scan must still flush, so cancelled queries
  // report how far they got.
  int64_t scanned = 0, qualified = 0, cand_pairs = 0, matched = 0, blocks = 0;
  int64_t fused_blocks = 0;
  KernelStats kstats;
  Status status;

  // The code-key probe memo reads the typed mirror; the use_flat_columns=false
  // ablation arm must not (BeginJob reset scratch, so set it every range),
  // and neither may a foreign chunk, whose codes live in a different mirror.
  worker->scratch.allow_code_keys = ct.use_flat && home;

  if (vectorized_) {
    std::vector<AggStateColumn>& cols = worker->cols;
    if (static_cast<int64_t>(worker->sel.size()) < block_) {
      worker->sel.resize(static_cast<size_t>(block_));
    }
    const size_t mask_words =
        2 * static_cast<size_t>(simd::MaskWords(static_cast<int>(block_)));
    if (worker->mask.size() < mask_words) worker->mask.resize(mask_words);
    uint32_t* sel = worker->sel.data();
    uint64_t* mask = worker->mask.data();

    // Typed argument plans: when an aggregate's argument is a plain detail
    // column with an int64/float64 mirror and the accumulator is flat, the
    // match loop reads the primitive payload and calls the typed UpdateMany —
    // no Value is touched. NULL cells are skipped outright, which is exactly
    // what every flat kind does with a NULL Value.
    struct ArgPlan {
      const int64_t* i64 = nullptr;
      const double* f64 = nullptr;
      const uint8_t* nulls = nullptr;
    };
    std::vector<ArgPlan> plans(aggs.size());
    if (ct.accel != nullptr && home) {
      for (size_t a = 0; a < aggs.size(); ++a) {
        const int c = aggs[a].detail_arg_col;
        if (c < 0 || !cols[a].is_flat()) continue;
        const FlatColumn& fc = ct.accel->cols[static_cast<size_t>(c)];
        if (fc.rep == FlatColumn::Rep::kInt64) {
          plans[a].i64 = fc.i64.data();
        } else if (fc.rep == FlatColumn::Rep::kFloat64) {
          plans[a].f64 = fc.f64.data();
        } else {
          continue;
        }
        plans[a].nulls = fc.null_bytes();
      }
    }

    // Fused predicate+aggregate path: with no index and no residual, every
    // selected detail row matches exactly the active base rows, so the probe
    // and match-list machinery collapses — block-reducible aggregates (count,
    // min, max) fold the whole block once per group, and the rest skip Value
    // fabrication via the typed plans. Exactness: integer count adds
    // reassociate freely, and the block min/max fold is replace-iff-strictly-
    // better with keep-first ties — the same verdict per-row updates reach
    // (NaN never replaces an incumbent either way). Float sums stay per-row
    // in row order, preserving bit-identical accumulation.
    const bool fused_eligible = !ct.indexed && !ct.residual.valid();
    const int64_t* fgroups = active_.data();
    const int64_t ng = static_cast<int64_t>(active_.size());

    for (int64_t start = lo; start < hi && status.ok(); start += block_) {
      const int n = static_cast<int>(std::min<int64_t>(block_, hi - start));
      BlockFilter filt;
      if (ct.has_kernels) {
        filt = ct.kernels.FilterBlock(detail, start, n, sel, mask, &kstats);
      } else {
        filt.count = n;
        filt.dense = true;
      }
      const int count = filt.count;
      ++blocks;
      scanned += n;
      qualified += count;
      // Dense blocks never wrote sel; translate lane i on the fly.
      auto row_at = [&](int i) -> int64_t {
        return start + (filt.dense ? i : static_cast<int>(sel[static_cast<size_t>(i)]));
      };

      int64_t pairs_this_block = 0;
      if (fused_eligible) {
        ++fused_blocks;
        pairs_this_block = static_cast<int64_t>(count) * ng;
        matched += pairs_this_block;
        if (count > 0 && ng > 0) {
          for (size_t a = 0; a < aggs.size(); ++a) {
            const BoundAgg& agg = aggs[a];
            AggStateColumn& col = cols[a];
            const FlatAggKind kind = col.kind();
            if (!agg.has_arg) {
              if (kind == FlatAggKind::kCount) {
                col.AddCountMany(fgroups, ng, count);
              } else {
                for (int i = 0; i < count; ++i) col.UpdateCountStarMany(fgroups, ng);
              }
              continue;
            }
            const ArgPlan& ap = plans[a];
            if (ap.i64 != nullptr) {
              if (kind == FlatAggKind::kCount) {
                int64_t nn = 0;
                if (ap.nulls == nullptr) {
                  nn = count;
                } else {
                  for (int i = 0; i < count; ++i) nn += ap.nulls[row_at(i)] == 0;
                }
                if (nn > 0) col.AddCountMany(fgroups, ng, nn);
              } else if (kind == FlatAggKind::kMin || kind == FlatAggKind::kMax) {
                bool have = false;
                int64_t best = 0;
                for (int i = 0; i < count; ++i) {
                  const int64_t t = row_at(i);
                  if (ap.nulls != nullptr && ap.nulls[t]) continue;
                  const int64_t x = ap.i64[t];
                  if (!have) {
                    have = true;
                    best = x;
                  } else if (kind == FlatAggKind::kMin ? x < best : x > best) {
                    best = x;
                  }
                }
                if (have) col.UpdateManyI64(fgroups, ng, best);
              } else {
                for (int i = 0; i < count; ++i) {
                  const int64_t t = row_at(i);
                  if (ap.nulls != nullptr && ap.nulls[t]) continue;
                  col.UpdateManyI64(fgroups, ng, ap.i64[t]);
                }
              }
            } else if (ap.f64 != nullptr) {
              if (kind == FlatAggKind::kCount) {
                int64_t nn = 0;
                if (ap.nulls == nullptr) {
                  nn = count;
                } else {
                  for (int i = 0; i < count; ++i) nn += ap.nulls[row_at(i)] == 0;
                }
                if (nn > 0) col.AddCountMany(fgroups, ng, nn);
              } else if (kind == FlatAggKind::kMin || kind == FlatAggKind::kMax) {
                bool have = false;
                double best = 0.0;
                for (int i = 0; i < count; ++i) {
                  const int64_t t = row_at(i);
                  if (ap.nulls != nullptr && ap.nulls[t]) continue;
                  const double x = ap.f64[t];
                  if (!have) {
                    have = true;
                    best = x;
                  } else if (kind == FlatAggKind::kMin ? x < best : x > best) {
                    best = x;
                  }
                }
                if (have) col.UpdateManyF64(fgroups, ng, best);
              } else {
                for (int i = 0; i < count; ++i) {
                  const int64_t t = row_at(i);
                  if (ap.nulls != nullptr && ap.nulls[t]) continue;
                  col.UpdateManyF64(fgroups, ng, ap.f64[t]);
                }
              }
            } else if (arg_cols[a] != nullptr) {
              const Value* cells = arg_cols[a];
              for (int i = 0; i < count; ++i) col.UpdateMany(fgroups, ng, cells[row_at(i)]);
            } else {
              // Computed argument: may reference the base row, so per pair.
              for (int i = 0; i < count; ++i) {
                ctx.detail_row = row_at(i);
                for (int64_t k = 0; k < ng; ++k) {
                  ctx.base_row = fgroups[k];
                  agg.UpdateColumnFromRow(&col, fgroups[k], ctx);
                }
              }
            }
          }
        }
      } else {
        for (int i = 0; i < count; ++i) {
          const int64_t t = row_at(i);

          const int64_t* cand;
          int64_t ncand;
          if (ct.indexed) {
            const BaseIndex::ProbeResult pr =
                index_.ProbeSpan(detail, t, &worker->scratch, &worker->candidates);
            cand = pr.rows;
            ncand = pr.count;
          } else {
            cand = fgroups;
            ncand = ng;
          }
          pairs_this_block += ncand;
          if (ncand == 0) continue;

          ctx.detail_row = t;
          // Resolve the residual once into a match list, then fold the row into
          // every aggregate column-at-a-time: kind dispatch and argument
          // decoding happen once per (row, aggregate), not once per pair.
          const int64_t* match_rows = cand;
          int64_t nmatch = ncand;
          if (ct.residual.valid()) {
            worker->matched_buf.clear();
            for (int64_t k = 0; k < ncand; ++k) {
              ctx.base_row = cand[k];
              if (ct.residual.EvalBool(ctx)) worker->matched_buf.push_back(cand[k]);
            }
            match_rows = worker->matched_buf.data();
            nmatch = static_cast<int64_t>(worker->matched_buf.size());
          }
          if (nmatch == 0) continue;
          matched += nmatch;
          for (size_t a = 0; a < aggs.size(); ++a) {
            const BoundAgg& agg = aggs[a];
            if (plans[a].i64 != nullptr) {
              if (plans[a].nulls == nullptr || plans[a].nulls[t] == 0) {
                cols[a].UpdateManyI64(match_rows, nmatch, plans[a].i64[t]);
              }
            } else if (plans[a].f64 != nullptr) {
              if (plans[a].nulls == nullptr || plans[a].nulls[t] == 0) {
                cols[a].UpdateManyF64(match_rows, nmatch, plans[a].f64[t]);
              }
            } else if (arg_cols[a] != nullptr) {
              cols[a].UpdateMany(match_rows, nmatch, arg_cols[a][t]);
            } else if (!agg.has_arg) {
              cols[a].UpdateCountStarMany(match_rows, nmatch);
            } else {
              // Computed argument: may reference the base row, so per pair.
              for (int64_t k = 0; k < nmatch; ++k) {
                ctx.base_row = match_rows[k];
                agg.UpdateColumnFromRow(&cols[a], match_rows[k], ctx);
              }
            }
          }
        }
      }
      cand_pairs += pairs_this_block;
      status = worker->ticket.TickBlock(n, pairs_this_block);
    }
  } else {
    auto& states = worker->heap;
    for (int64_t t = lo; t < hi && status.ok(); ++t) {
      ctx.detail_row = t;
      ++scanned;
      int64_t pairs_this_row = 0;
      if (!ct.detail_pred.valid() || ct.detail_pred.EvalBool(ctx)) {
        ++qualified;

        const int64_t* cand;
        int64_t ncand;
        if (ct.indexed) {
          const BaseIndex::ProbeResult pr =
              index_.ProbeSpan(detail, t, &worker->scratch, &worker->candidates);
          cand = pr.rows;
          ncand = pr.count;
        } else {
          cand = active_.data();
          ncand = static_cast<int64_t>(active_.size());
        }
        pairs_this_row = ncand;
        cand_pairs += pairs_this_row;

        for (int64_t k = 0; k < ncand; ++k) {
          const int64_t b = cand[k];
          ctx.base_row = b;
          if (ct.residual.valid() && !ct.residual.EvalBool(ctx)) continue;
          ++matched;
          for (size_t i = 0; i < aggs.size(); ++i) {
            aggs[i].UpdateFromRow(states[i][static_cast<size_t>(b)].get(), ctx);
          }
        }
      }
      status = worker->ticket.Tick(pairs_this_row);
    }
  }

  worker->stats.detail_rows_scanned += scanned;
  worker->stats.detail_rows_qualified += qualified;
  worker->stats.candidate_pairs += cand_pairs;
  worker->stats.matched_pairs += matched;
  worker->stats.blocks += blocks;
  worker->stats.kernel_invocations += kstats.kernel_invocations;
  worker->stats.kernel_fallback_rows += kstats.fallback_rows;
  worker->stats.dense_blocks += kstats.dense_blocks;
  worker->stats.fused_blocks += fused_blocks;

  // One registry flush per range keeps the scan loop free of shared atomics
  // while the fleet-wide counters stay ~a-morsel fresh.
  static Counter* c_scanned = MetricsRegistry::Global().GetCounter(
      "mdjoin_detail_rows_scanned_total", "detail tuples read by MD-join scans");
  static Counter* c_qualified = MetricsRegistry::Global().GetCounter(
      "mdjoin_detail_rows_qualified_total",
      "detail tuples surviving pushed-down selection");
  static Counter* c_pairs = MetricsRegistry::Global().GetCounter(
      "mdjoin_candidate_pairs_total", "(base, detail) pairs tested after index pruning");
  static Counter* c_matched = MetricsRegistry::Global().GetCounter(
      "mdjoin_matched_pairs_total", "pairs satisfying the full theta condition");
  static Counter* c_blocks = MetricsRegistry::Global().GetCounter(
      "mdjoin_scan_blocks_total", "vectorized detail blocks processed");
  static Counter* c_kernels = MetricsRegistry::Global().GetCounter(
      "mdjoin_kernel_invocations_total", "columnar predicate kernel runs");
  c_scanned->Increment(scanned);
  c_qualified->Increment(qualified);
  c_pairs->Increment(cand_pairs);
  c_matched->Increment(matched);
  c_blocks->Increment(blocks);
  c_kernels->Increment(kstats.kernel_invocations);

  span.SetArg("rows", hi - lo);
  span.SetArg("matched", matched);
  return status;
}

Status MergeWorkerPartials(DetailScanWorker* into, const DetailScanWorker& from,
                           QueryGuard* guard) {
  const std::vector<BoundAgg>& aggs = *into->aggs;
  // A liveness-only ticket: merged cells are not detail rows, so nothing is
  // charged against the row budget, but a cancel/deadline still lands within
  // one stride of cells — even inside a single wide column.
  GuardTicket ticket(guard, /*count_rows=*/false);
  const int64_t chunk =
      std::max<int64_t>(1, guard != nullptr ? guard->check_stride() : 1 << 16);
  if (into->vectorized) {
    for (size_t i = 0; i < aggs.size(); ++i) {
      const int64_t groups = into->cols[i].groups();
      for (int64_t lo = 0; lo < groups; lo += chunk) {
        const int64_t hi = std::min<int64_t>(lo + chunk, groups);
        into->cols[i].MergeRange(from.cols[i], lo, hi);
        MDJ_RETURN_NOT_OK(ticket.TickBlock(hi - lo, 0));
      }
    }
  } else {
    for (size_t i = 0; i < aggs.size(); ++i) {
      const size_t nrows = into->heap[i].size();
      for (size_t r = 0; r < nrows; ++r) {
        aggs[i].fn->Merge(into->heap[i][r].get(), *from.heap[i][r]);
        MDJ_RETURN_NOT_OK(ticket.Tick());
      }
    }
  }
  return ticket.Finish();
}

}  // namespace mdjoin
