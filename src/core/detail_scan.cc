#include "core/detail_scan.h"

#include <algorithm>

#include "expr/compile.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdjoin {

Result<CompiledTheta> CompileTheta(const ThetaParts& parts, const Schema& base_schema,
                                   const Schema& detail_schema,
                                   const MdJoinOptions& options, bool vectorized) {
  CompiledTheta ct;
  if (!parts.base_only.empty()) {
    MDJ_ASSIGN_OR_RETURN(ct.base_pred,
                         CompileExpr(CombineConjuncts(parts.base_only), &base_schema,
                                     /*detail_schema=*/nullptr));
  }

  // Detail-side selection (Theorem 4.2). When pushdown is disabled the
  // conjuncts join the residual so results are identical.
  std::vector<ExprPtr> residual_conjuncts = parts.residual;
  if (options.push_detail_selection) {
    if (!parts.detail_only.empty()) {
      if (vectorized) {
        MDJ_ASSIGN_OR_RETURN(ct.kernels,
                             PredicateKernels::Compile(parts.detail_only, detail_schema));
        ct.has_kernels = true;
      } else {
        MDJ_ASSIGN_OR_RETURN(ct.detail_pred,
                             CompileExpr(CombineConjuncts(parts.detail_only),
                                         /*base_schema=*/nullptr, &detail_schema));
      }
    }
  } else {
    residual_conjuncts.insert(residual_conjuncts.end(), parts.detail_only.begin(),
                              parts.detail_only.end());
  }

  // Without the index the equi conjuncts must be re-checked per pair.
  ct.indexed = options.use_index && !parts.equi.empty();
  if (!ct.indexed) {
    for (const EquiPair& pair : parts.equi) {
      residual_conjuncts.push_back(
          Expr::Binary(BinaryOp::kEq, pair.base_expr, pair.detail_expr));
    }
  }

  if (!residual_conjuncts.empty()) {
    MDJ_ASSIGN_OR_RETURN(ct.residual,
                         CompileExpr(CombineConjuncts(std::move(residual_conjuncts)),
                                     &base_schema, &detail_schema));
  }
  return ct;
}

DetailScanWorker::DetailScanWorker(const Table& base,
                                   const std::vector<BoundAgg>& bound_aggs,
                                   bool vectorized_mode, QueryGuard* guard)
    : aggs(&bound_aggs), vectorized(vectorized_mode), ticket(guard) {
  if (vectorized) {
    cols.reserve(bound_aggs.size());
    for (const BoundAgg& b : bound_aggs) {
      cols.push_back(AggStateColumn::Make(b.fn, base.num_rows()));
    }
  } else {
    heap.resize(bound_aggs.size());
    for (size_t i = 0; i < bound_aggs.size(); ++i) {
      heap[i].reserve(static_cast<size_t>(base.num_rows()));
      for (int64_t r = 0; r < base.num_rows(); ++r) {
        heap[i].push_back(bound_aggs[i].fn->MakeState());
      }
    }
  }
}

void DetailScanWorker::BeginJob() {
  // The probe memo caches full-key → candidates for one specific index;
  // serving those lists against a different job's index would be wrong.
  // Its hit counters are fleet-wide, though: fold them into the worker's
  // stats before the reset discards them.
  stats.index_probe_lookups += scratch.memo_lookups;
  stats.index_probe_memo_hits += scratch.memo_hits;
  scratch = BaseIndex::ProbeScratch{};
}

Status DetailScanWorker::FinishScan() {
  stats.index_probe_lookups += scratch.memo_lookups;
  stats.index_probe_memo_hits += scratch.memo_hits;
  scratch.memo_lookups = 0;  // folded; next BeginJob must not double-count
  scratch.memo_hits = 0;
  return ticket.Finish();
}

Value DetailScanWorker::FinalizeCell(size_t agg, int64_t base_row) const {
  return vectorized
             ? cols[agg].Finalize(base_row)
             : (*aggs)[agg].fn->Finalize(*heap[agg][static_cast<size_t>(base_row)]);
}

Result<DetailScan> DetailScan::Prepare(const Table& base, const Table& detail,
                                       const std::vector<BoundAgg>& aggs,
                                       const ThetaParts& parts,
                                       const CompiledTheta* theta,
                                       std::vector<int64_t> pass_rows,
                                       const MdJoinOptions& options) {
  DetailScan scan;
  scan.base_ = &base;
  scan.detail_ = &detail;
  scan.aggs_ = &aggs;
  scan.theta_ = theta;
  scan.vectorized_ = options.execution_mode != ExecutionMode::kRow;

  // Rows eligible for updates: those satisfying the B-only conjuncts. The
  // others still appear in the output (with identity aggregates) but can
  // never match.
  if (!theta->base_pred.valid()) {
    scan.active_ = std::move(pass_rows);
  } else {
    RowCtx ctx;
    ctx.base = &base;
    for (int64_t row : pass_rows) {
      ctx.base_row = row;
      if (theta->base_pred.EvalBool(ctx)) scan.active_.push_back(row);
    }
  }

  // Index on the equi part (§4.5), or nested loop when disabled/absent. The
  // per-job index is the memory the guard's soft budget governs; the caller
  // sized pass_rows so this reservation fits (or degraded to more passes).
  // The hard limit is still enforced here.
  if (theta->indexed) {
    MDJ_RETURN_NOT_OK(scan.index_bytes_.Reserve(
        options.guard,
        static_cast<int64_t>(scan.active_.size()) * kGuardBytesPerIndexedBaseRow,
        "base index"));
    MDJ_ASSIGN_OR_RETURN(
        scan.index_, BaseIndex::Build(base, scan.active_, parts.equi, detail.schema()));
    scan.index_masks_ = scan.index_.num_masks();
  }

  // The guard promises trip latency within ~one check stride of detail rows;
  // that promise outranks block shape, so a guarded scan never processes more
  // than a stride between checks.
  scan.block_ = options.block_size > 0 ? options.block_size : 1024;
  if (options.guard != nullptr && options.guard->check_stride() > 0) {
    scan.block_ = std::min<int64_t>(scan.block_, options.guard->check_stride());
  }

  // Plain detail-column aggregate arguments read straight from column
  // storage; one pointer per aggregate, hoisted out of the scan.
  scan.arg_cols_.assign(aggs.size(), nullptr);
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].detail_arg_col >= 0) {
      scan.arg_cols_[a] = detail.column(aggs[a].detail_arg_col).data();
    }
  }
  return scan;
}

Status DetailScan::ScanRange(int64_t lo, int64_t hi, DetailScanWorker* worker) const {
  Span span("scan_range", "scan");
  const Table& base = *base_;
  const Table& detail = *detail_;
  const std::vector<BoundAgg>& aggs = *aggs_;
  const CompiledTheta& ct = *theta_;

  RowCtx ctx;
  ctx.base = &base;
  ctx.detail = &detail;
  // Work counters stay in locals and flush into the worker's stats once per
  // range; per-row stores into shared stat structs were measurable in the
  // scan loop. A guard trip mid-scan must still flush, so cancelled queries
  // report how far they got.
  int64_t scanned = 0, qualified = 0, cand_pairs = 0, matched = 0, blocks = 0;
  KernelStats kstats;
  Status status;

  if (vectorized_) {
    std::vector<AggStateColumn>& cols = worker->cols;
    if (static_cast<int64_t>(worker->sel.size()) < block_) {
      worker->sel.resize(static_cast<size_t>(block_));
    }
    uint32_t* sel = worker->sel.data();
    for (int64_t start = lo; start < hi && status.ok(); start += block_) {
      const int n = static_cast<int>(std::min<int64_t>(block_, hi - start));
      for (int i = 0; i < n; ++i) sel[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
      int count = n;
      if (ct.has_kernels) {
        count = ct.kernels.FilterBlock(detail, start, sel, count, &kstats);
      }
      ++blocks;
      scanned += n;
      qualified += count;

      int64_t pairs_this_block = 0;
      for (int i = 0; i < count; ++i) {
        const int64_t t = start + sel[static_cast<size_t>(i)];

        const std::vector<int64_t>* probe_rows;
        if (ct.indexed) {
          worker->candidates.clear();
          index_.Probe(detail, t, &worker->scratch, &worker->candidates);
          probe_rows = &worker->candidates;
        } else {
          probe_rows = &active_;
        }
        pairs_this_block += static_cast<int64_t>(probe_rows->size());
        if (probe_rows->empty()) continue;

        ctx.detail_row = t;
        // Resolve the residual once into a match list, then fold the row into
        // every aggregate column-at-a-time: kind dispatch and argument
        // decoding happen once per (row, aggregate), not once per pair.
        const int64_t* match_rows = probe_rows->data();
        int64_t nmatch = static_cast<int64_t>(probe_rows->size());
        if (ct.residual.valid()) {
          worker->matched_buf.clear();
          for (int64_t b : *probe_rows) {
            ctx.base_row = b;
            if (ct.residual.EvalBool(ctx)) worker->matched_buf.push_back(b);
          }
          match_rows = worker->matched_buf.data();
          nmatch = static_cast<int64_t>(worker->matched_buf.size());
        }
        if (nmatch == 0) continue;
        matched += nmatch;
        for (size_t a = 0; a < aggs.size(); ++a) {
          const BoundAgg& agg = aggs[a];
          if (arg_cols_[a] != nullptr) {
            cols[a].UpdateMany(match_rows, nmatch, arg_cols_[a][t]);
          } else if (!agg.has_arg) {
            cols[a].UpdateCountStarMany(match_rows, nmatch);
          } else {
            // Computed argument: may reference the base row, so per pair.
            for (int64_t k = 0; k < nmatch; ++k) {
              ctx.base_row = match_rows[k];
              agg.UpdateColumnFromRow(&cols[a], match_rows[k], ctx);
            }
          }
        }
      }
      cand_pairs += pairs_this_block;
      status = worker->ticket.TickBlock(n, pairs_this_block);
    }
  } else {
    auto& states = worker->heap;
    for (int64_t t = lo; t < hi && status.ok(); ++t) {
      ctx.detail_row = t;
      ++scanned;
      int64_t pairs_this_row = 0;
      if (!ct.detail_pred.valid() || ct.detail_pred.EvalBool(ctx)) {
        ++qualified;

        const std::vector<int64_t>* probe_rows;
        if (ct.indexed) {
          worker->candidates.clear();
          index_.Probe(detail, t, &worker->scratch, &worker->candidates);
          probe_rows = &worker->candidates;
        } else {
          probe_rows = &active_;
        }
        pairs_this_row = static_cast<int64_t>(probe_rows->size());
        cand_pairs += pairs_this_row;

        for (int64_t b : *probe_rows) {
          ctx.base_row = b;
          if (ct.residual.valid() && !ct.residual.EvalBool(ctx)) continue;
          ++matched;
          for (size_t i = 0; i < aggs.size(); ++i) {
            aggs[i].UpdateFromRow(states[i][static_cast<size_t>(b)].get(), ctx);
          }
        }
      }
      status = worker->ticket.Tick(pairs_this_row);
    }
  }

  worker->stats.detail_rows_scanned += scanned;
  worker->stats.detail_rows_qualified += qualified;
  worker->stats.candidate_pairs += cand_pairs;
  worker->stats.matched_pairs += matched;
  worker->stats.blocks += blocks;
  worker->stats.kernel_invocations += kstats.kernel_invocations;
  worker->stats.kernel_fallback_rows += kstats.fallback_rows;

  // One registry flush per range keeps the scan loop free of shared atomics
  // while the fleet-wide counters stay ~a-morsel fresh.
  static Counter* c_scanned = MetricsRegistry::Global().GetCounter(
      "mdjoin_detail_rows_scanned_total", "detail tuples read by MD-join scans");
  static Counter* c_qualified = MetricsRegistry::Global().GetCounter(
      "mdjoin_detail_rows_qualified_total",
      "detail tuples surviving pushed-down selection");
  static Counter* c_pairs = MetricsRegistry::Global().GetCounter(
      "mdjoin_candidate_pairs_total", "(base, detail) pairs tested after index pruning");
  static Counter* c_matched = MetricsRegistry::Global().GetCounter(
      "mdjoin_matched_pairs_total", "pairs satisfying the full theta condition");
  static Counter* c_blocks = MetricsRegistry::Global().GetCounter(
      "mdjoin_scan_blocks_total", "vectorized detail blocks processed");
  static Counter* c_kernels = MetricsRegistry::Global().GetCounter(
      "mdjoin_kernel_invocations_total", "columnar predicate kernel runs");
  c_scanned->Increment(scanned);
  c_qualified->Increment(qualified);
  c_pairs->Increment(cand_pairs);
  c_matched->Increment(matched);
  c_blocks->Increment(blocks);
  c_kernels->Increment(kstats.kernel_invocations);

  span.SetArg("rows", hi - lo);
  span.SetArg("matched", matched);
  return status;
}

Status MergeWorkerPartials(DetailScanWorker* into, const DetailScanWorker& from,
                           QueryGuard* guard) {
  const std::vector<BoundAgg>& aggs = *into->aggs;
  // A liveness-only ticket: merged cells are not detail rows, so nothing is
  // charged against the row budget, but a cancel/deadline still lands within
  // one stride of cells — even inside a single wide column.
  GuardTicket ticket(guard, /*count_rows=*/false);
  const int64_t chunk =
      std::max<int64_t>(1, guard != nullptr ? guard->check_stride() : 1 << 16);
  if (into->vectorized) {
    for (size_t i = 0; i < aggs.size(); ++i) {
      const int64_t groups = into->cols[i].groups();
      for (int64_t lo = 0; lo < groups; lo += chunk) {
        const int64_t hi = std::min<int64_t>(lo + chunk, groups);
        into->cols[i].MergeRange(from.cols[i], lo, hi);
        MDJ_RETURN_NOT_OK(ticket.TickBlock(hi - lo, 0));
      }
    }
  } else {
    for (size_t i = 0; i < aggs.size(); ++i) {
      const size_t nrows = into->heap[i].size();
      for (size_t r = 0; r < nrows; ++r) {
        aggs[i].fn->Merge(into->heap[i][r].get(), *from.heap[i][r]);
        MDJ_RETURN_NOT_OK(ticket.Tick());
      }
    }
  }
  return ticket.Finish();
}

}  // namespace mdjoin
