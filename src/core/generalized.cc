#include "core/generalized.h"

#include <numeric>
#include <unordered_set>

#include "core/base_index.h"
#include "expr/compile.h"
#include "expr/conjuncts.h"

namespace mdjoin {

namespace {

/// Per-component compiled machinery for the shared scan.
struct CompiledComponent {
  std::vector<BoundAgg> aggs;
  ThetaParts parts;
  std::vector<int64_t> active;  // base rows passing the B-only conjuncts
  bool indexed = false;
  BaseIndex index;
  CompiledExpr detail_pred;  // R-only conjuncts (pushdown)
  CompiledExpr residual;
  // states[agg][base_row]
  std::vector<std::vector<std::unique_ptr<AggregateState>>> states;
};

}  // namespace

Result<Table> GeneralizedMdJoin(const Table& base, const Table& detail,
                                const std::vector<MdJoinComponent>& components,
                                const MdJoinOptions& options, MdJoinStats* stats) {
  MdJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = MdJoinStats{};
  stats->base_rows = base.num_rows();
  stats->passes_over_detail = 1;

  if (components.empty()) {
    return Status::InvalidArgument("GeneralizedMdJoin: no components");
  }
  QueryGuard* guard = options.guard;
  if (guard != nullptr) MDJ_RETURN_NOT_OK(guard->Check());

  std::vector<int64_t> all_rows(static_cast<size_t>(base.num_rows()));
  std::iota(all_rows.begin(), all_rows.end(), 0);

  std::unordered_set<std::string> seen_outputs;
  std::vector<CompiledComponent> compiled;
  compiled.reserve(components.size());
  // Index and state reservations held until the scan completes.
  std::vector<ScopedReservation> reservations;
  for (const MdJoinComponent& comp : components) {
    if (comp.theta == nullptr) {
      return Status::InvalidArgument("GeneralizedMdJoin: null θ in component");
    }
    CompiledComponent cc;
    MDJ_ASSIGN_OR_RETURN(cc.aggs, BindAggs(comp.aggs, &base.schema(), &detail.schema()));
    for (const BoundAgg& a : cc.aggs) {
      if (!seen_outputs.insert(a.output_field.name).second) {
        return Status::InvalidArgument("GeneralizedMdJoin: duplicate output column '",
                                       a.output_field.name, "' across components");
      }
    }
    cc.parts = AnalyzeTheta(comp.theta);

    if (cc.parts.base_only.empty()) {
      cc.active = all_rows;
    } else {
      MDJ_ASSIGN_OR_RETURN(CompiledExpr base_pred,
                           CompileExpr(CombineConjuncts(cc.parts.base_only),
                                       &base.schema(), nullptr));
      RowCtx bctx;
      bctx.base = &base;
      for (int64_t row : all_rows) {
        bctx.base_row = row;
        if (base_pred.EvalBool(bctx)) cc.active.push_back(row);
      }
    }

    std::vector<ExprPtr> residual_conjuncts = cc.parts.residual;
    if (options.push_detail_selection) {
      if (!cc.parts.detail_only.empty()) {
        MDJ_ASSIGN_OR_RETURN(cc.detail_pred,
                             CompileExpr(CombineConjuncts(cc.parts.detail_only), nullptr,
                                         &detail.schema()));
      }
    } else {
      residual_conjuncts.insert(residual_conjuncts.end(), cc.parts.detail_only.begin(),
                                cc.parts.detail_only.end());
    }

    cc.indexed = options.use_index && !cc.parts.equi.empty();
    if (cc.indexed) {
      ScopedReservation res;
      MDJ_RETURN_NOT_OK(res.Reserve(
          guard, static_cast<int64_t>(cc.active.size()) * kGuardBytesPerIndexedBaseRow,
          "generalized base index"));
      reservations.push_back(std::move(res));
      MDJ_ASSIGN_OR_RETURN(
          cc.index, BaseIndex::Build(base, cc.active, cc.parts.equi, detail.schema()));
      stats->index_masks += cc.index.num_masks();
    } else {
      for (const EquiPair& pair : cc.parts.equi) {
        residual_conjuncts.push_back(
            Expr::Binary(BinaryOp::kEq, pair.base_expr, pair.detail_expr));
      }
    }
    if (!residual_conjuncts.empty()) {
      MDJ_ASSIGN_OR_RETURN(cc.residual,
                           CompileExpr(CombineConjuncts(std::move(residual_conjuncts)),
                                       &base.schema(), &detail.schema()));
    }

    ScopedReservation state_res;
    MDJ_RETURN_NOT_OK(state_res.Reserve(
        guard,
        static_cast<int64_t>(cc.aggs.size()) * base.num_rows() * kGuardBytesPerAggState,
        "generalized aggregate states"));
    reservations.push_back(std::move(state_res));
    cc.states.resize(cc.aggs.size());
    for (size_t i = 0; i < cc.aggs.size(); ++i) {
      cc.states[i].reserve(static_cast<size_t>(base.num_rows()));
      for (int64_t r = 0; r < base.num_rows(); ++r) {
        cc.states[i].push_back(cc.aggs[i].fn->MakeState());
      }
    }
    compiled.push_back(std::move(cc));
  }

  // The single shared scan of R.
  RowCtx ctx;
  ctx.base = &base;
  ctx.detail = &detail;
  std::vector<int64_t> candidates;
  GuardTicket ticket(guard);
  for (int64_t t = 0; t < detail.num_rows(); ++t) {
    ctx.detail_row = t;
    ++stats->detail_rows_scanned;
    bool any_qualified = false;
    int64_t pairs_this_row = 0;
    for (CompiledComponent& cc : compiled) {
      if (cc.detail_pred.valid() && !cc.detail_pred.EvalBool(ctx)) continue;
      any_qualified = true;
      const std::vector<int64_t>* probe_rows;
      if (cc.indexed) {
        candidates.clear();
        cc.index.Probe(ctx, &candidates);
        probe_rows = &candidates;
      } else {
        probe_rows = &cc.active;
      }
      pairs_this_row += static_cast<int64_t>(probe_rows->size());
      for (int64_t b : *probe_rows) {
        ctx.base_row = b;
        ++stats->candidate_pairs;
        if (cc.residual.valid() && !cc.residual.EvalBool(ctx)) continue;
        ++stats->matched_pairs;
        for (size_t i = 0; i < cc.aggs.size(); ++i) {
          cc.aggs[i].UpdateFromRow(cc.states[i][static_cast<size_t>(b)].get(), ctx);
        }
      }
    }
    if (any_qualified) ++stats->detail_rows_qualified;
    MDJ_RETURN_NOT_OK(ticket.Tick(pairs_this_row));
  }
  MDJ_RETURN_NOT_OK(ticket.Finish());

  // Output: base columns then every component's aggregates in order.
  std::vector<Field> fields = base.schema().fields();
  for (const CompiledComponent& cc : compiled) {
    for (const BoundAgg& a : cc.aggs) fields.push_back(a.output_field);
  }
  Table out{Schema(std::move(fields))};
  out.Reserve(base.num_rows());
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    std::vector<Value> row = base.GetRow(r);
    for (const CompiledComponent& cc : compiled) {
      for (size_t i = 0; i < cc.aggs.size(); ++i) {
        row.push_back(cc.aggs[i].fn->Finalize(*cc.states[i][static_cast<size_t>(r)]));
      }
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace mdjoin
