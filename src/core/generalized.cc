#include "core/generalized.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "agg/flat_state.h"
#include "core/base_index.h"
#include "core/detail_scan.h"
#include "expr/compile.h"
#include "expr/conjuncts.h"
#include "expr/kernels.h"
#include "obs/trace.h"

namespace mdjoin {

namespace {

/// Per-component compiled machinery for the shared scan. θ compilation is
/// the same CompileTheta the single-component evaluator and the morsel
/// engine use (core/detail_scan.h); only the interleaved multi-component
/// tuple loop is specific to this operator.
struct CompiledComponent {
  std::vector<BoundAgg> aggs;
  ThetaParts parts;
  CompiledTheta theta;
  std::vector<int64_t> active;  // base rows passing the B-only conjuncts
  BaseIndex index;
  // Per-component: the scratch memoizes THIS index's candidate lists, so it
  // must never be shared across components.
  BaseIndex::ProbeScratch scratch;
  // Row path: states[agg][base_row]. Vectorized path: cols[agg].
  std::vector<std::vector<std::unique_ptr<AggregateState>>> states;
  std::vector<AggStateColumn> cols;
};

}  // namespace

Result<Table> GeneralizedMdJoin(const Table& base, const Table& detail,
                                const std::vector<MdJoinComponent>& components,
                                const MdJoinOptions& options, MdJoinStats* stats) {
  MdJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = MdJoinStats{};
  stats->base_rows = base.num_rows();
  stats->passes_over_detail = 1;

  if (components.empty()) {
    return Status::InvalidArgument("GeneralizedMdJoin: no components");
  }
  QueryGuard* guard = options.guard;
  if (guard != nullptr) MDJ_RETURN_NOT_OK(guard->Check());
  const bool vectorized = options.execution_mode != ExecutionMode::kRow;

  std::vector<int64_t> all_rows(static_cast<size_t>(base.num_rows()));
  std::iota(all_rows.begin(), all_rows.end(), 0);

  std::unordered_set<std::string> seen_outputs;
  std::vector<CompiledComponent> compiled;
  compiled.reserve(components.size());
  // Index and state reservations held until the scan completes.
  std::vector<ScopedReservation> reservations;
  for (const MdJoinComponent& comp : components) {
    if (comp.theta == nullptr) {
      return Status::InvalidArgument("GeneralizedMdJoin: null θ in component");
    }
    CompiledComponent cc;
    MDJ_ASSIGN_OR_RETURN(cc.aggs, BindAggs(comp.aggs, &base.schema(), &detail.schema()));
    for (const BoundAgg& a : cc.aggs) {
      if (!seen_outputs.insert(a.output_field.name).second) {
        return Status::InvalidArgument("GeneralizedMdJoin: duplicate output column '",
                                       a.output_field.name, "' across components");
      }
    }
    cc.parts = AnalyzeTheta(comp.theta);
    MDJ_ASSIGN_OR_RETURN(cc.theta,
                         CompileTheta(cc.parts, base.schema(), detail, options, vectorized));
    cc.scratch.allow_code_keys = cc.theta.use_flat;

    if (!cc.theta.base_pred.valid()) {
      cc.active = all_rows;
    } else {
      RowCtx bctx;
      bctx.base = &base;
      for (int64_t row : all_rows) {
        bctx.base_row = row;
        if (cc.theta.base_pred.EvalBool(bctx)) cc.active.push_back(row);
      }
    }

    if (cc.theta.indexed) {
      ScopedReservation res;
      MDJ_RETURN_NOT_OK(res.Reserve(
          guard, static_cast<int64_t>(cc.active.size()) * kGuardBytesPerIndexedBaseRow,
          "generalized base index"));
      reservations.push_back(std::move(res));
      MDJ_ASSIGN_OR_RETURN(
          cc.index, BaseIndex::Build(base, cc.active, cc.parts.equi, detail.schema()));
      stats->index_masks += cc.index.num_masks();
    }

    ScopedReservation state_res;
    MDJ_RETURN_NOT_OK(state_res.Reserve(
        guard,
        static_cast<int64_t>(cc.aggs.size()) * base.num_rows() * kGuardBytesPerAggState,
        "generalized aggregate states"));
    reservations.push_back(std::move(state_res));
    if (vectorized) {
      cc.cols.reserve(cc.aggs.size());
      for (const BoundAgg& a : cc.aggs) {
        cc.cols.push_back(AggStateColumn::Make(a.fn, base.num_rows()));
      }
    } else {
      cc.states.resize(cc.aggs.size());
      for (size_t i = 0; i < cc.aggs.size(); ++i) {
        cc.states[i].reserve(static_cast<size_t>(base.num_rows()));
        for (int64_t r = 0; r < base.num_rows(); ++r) {
          cc.states[i].push_back(cc.aggs[i].fn->MakeState());
        }
      }
    }
    compiled.push_back(std::move(cc));
  }

  // The single shared scan of R. Work counters accumulate in locals and
  // flush into *stats after the scan — including when a guard trip ends the
  // scan early, so cancelled queries report how far they got.
  RowCtx ctx;
  ctx.base = &base;
  ctx.detail = &detail;
  std::vector<int64_t> candidates;
  GuardTicket ticket(guard);
  int64_t scanned = 0, qualified = 0, cand_pairs = 0, matched = 0;
  int64_t blocks = 0;
  KernelStats kstats;
  Status scan_status = [&]() -> Status {
  Span scan_span("generalized.shared_scan", "mdjoin");
  scan_span.SetArg("components", static_cast<int64_t>(compiled.size()));
  scan_span.SetArg("detail_rows", detail.num_rows());
  if (vectorized) {
    // Block-at-a-time: each component filters the block with its own kernels
    // over a fresh selection vector; a row counts as qualified when it
    // survives at least one component's pushed-down selection (same
    // semantics as the row path's any_qualified flag). A guarded scan clamps
    // the block to the check stride: trip latency outranks block shape.
    int64_t block = options.block_size > 0 ? options.block_size : 1024;
    if (guard != nullptr) block = std::min<int64_t>(block, guard->check_stride());
    std::vector<uint32_t> sel(static_cast<size_t>(block));
    std::vector<uint64_t> mask(
        2 * static_cast<size_t>(simd::MaskWords(static_cast<int>(block))));
    std::vector<uint8_t> qual(static_cast<size_t>(block));
    std::vector<int64_t> matched_buf;
    const int64_t num_rows = detail.num_rows();
    for (int64_t start = 0; start < num_rows; start += block) {
      const int n = static_cast<int>(std::min<int64_t>(block, num_rows - start));
      std::fill(qual.begin(), qual.begin() + n, uint8_t{0});
      ++blocks;
      scanned += n;
      int64_t pairs_this_block = 0;
      for (CompiledComponent& cc : compiled) {
        BlockFilter filt;
        if (cc.theta.has_kernels) {
          filt = cc.theta.kernels.FilterBlock(detail, start, n, sel.data(), mask.data(),
                                              &kstats);
        } else {
          filt.count = n;
          filt.dense = true;
        }
        const int count = filt.count;
        for (int i = 0; i < count; ++i) {
          const uint32_t off =
              filt.dense ? static_cast<uint32_t>(i) : sel[static_cast<size_t>(i)];
          qual[off] = 1;
          const int64_t t = start + off;
          const int64_t* cand;
          int64_t ncand;
          if (cc.theta.indexed) {
            const BaseIndex::ProbeResult pr =
                cc.index.ProbeSpan(detail, t, &cc.scratch, &candidates);
            cand = pr.rows;
            ncand = pr.count;
          } else {
            cand = cc.active.data();
            ncand = static_cast<int64_t>(cc.active.size());
          }
          pairs_this_block += ncand;
          if (ncand == 0) continue;
          ctx.detail_row = t;
          // Residual resolves to a match list first; aggregates then fold the
          // row column-at-a-time (one dispatch per (row, aggregate)).
          const int64_t* match_rows = cand;
          int64_t nmatch = ncand;
          if (cc.theta.residual.valid()) {
            matched_buf.clear();
            for (int64_t k = 0; k < ncand; ++k) {
              ctx.base_row = cand[k];
              if (cc.theta.residual.EvalBool(ctx)) matched_buf.push_back(cand[k]);
            }
            match_rows = matched_buf.data();
            nmatch = static_cast<int64_t>(matched_buf.size());
          }
          if (nmatch == 0) continue;
          matched += nmatch;
          for (size_t i2 = 0; i2 < cc.aggs.size(); ++i2) {
            const BoundAgg& agg = cc.aggs[i2];
            if (agg.detail_arg_col >= 0) {
              cc.cols[i2].UpdateMany(match_rows, nmatch,
                                     detail.column(agg.detail_arg_col)[t]);
            } else if (!agg.has_arg) {
              cc.cols[i2].UpdateCountStarMany(match_rows, nmatch);
            } else {
              for (int64_t k = 0; k < nmatch; ++k) {
                ctx.base_row = match_rows[k];
                agg.UpdateColumnFromRow(&cc.cols[i2], match_rows[k], ctx);
              }
            }
          }
        }
      }
      for (int i = 0; i < n; ++i) qualified += qual[static_cast<size_t>(i)];
      cand_pairs += pairs_this_block;
      MDJ_RETURN_NOT_OK(ticket.TickBlock(n, pairs_this_block));
    }
  } else {
    for (int64_t t = 0; t < detail.num_rows(); ++t) {
      ctx.detail_row = t;
      ++scanned;
      bool any_qualified = false;
      int64_t pairs_this_row = 0;
      for (CompiledComponent& cc : compiled) {
        if (cc.theta.detail_pred.valid() && !cc.theta.detail_pred.EvalBool(ctx)) continue;
        any_qualified = true;
        const std::vector<int64_t>* probe_rows;
        if (cc.theta.indexed) {
          candidates.clear();
          cc.index.Probe(ctx, &candidates);
          probe_rows = &candidates;
        } else {
          probe_rows = &cc.active;
        }
        pairs_this_row += static_cast<int64_t>(probe_rows->size());
        for (int64_t b : *probe_rows) {
          ctx.base_row = b;
          if (cc.theta.residual.valid() && !cc.theta.residual.EvalBool(ctx)) continue;
          ++matched;
          for (size_t i = 0; i < cc.aggs.size(); ++i) {
            cc.aggs[i].UpdateFromRow(cc.states[i][static_cast<size_t>(b)].get(), ctx);
          }
        }
      }
      if (any_qualified) ++qualified;
      cand_pairs += pairs_this_row;
      MDJ_RETURN_NOT_OK(ticket.Tick(pairs_this_row));
    }
  }
  return ticket.Finish();
  }();
  stats->detail_rows_scanned = scanned;
  stats->detail_rows_qualified = qualified;
  stats->candidate_pairs = cand_pairs;
  stats->matched_pairs = matched;
  stats->blocks = blocks;
  stats->kernel_invocations = kstats.kernel_invocations;
  stats->kernel_fallback_rows = kstats.fallback_rows;
  stats->dense_blocks = kstats.dense_blocks;
  for (const CompiledComponent& cc : compiled) {
    stats->index_probe_lookups += cc.scratch.memo_lookups;
    stats->index_probe_memo_hits += cc.scratch.memo_hits;
  }
  MDJ_RETURN_NOT_OK(scan_status);

  // Output: base columns then every component's aggregates in order.
  std::vector<Field> fields = base.schema().fields();
  for (const CompiledComponent& cc : compiled) {
    for (const BoundAgg& a : cc.aggs) fields.push_back(a.output_field);
  }
  Table out{Schema(std::move(fields))};
  out.Reserve(base.num_rows());
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    std::vector<Value> row = base.GetRow(r);
    for (const CompiledComponent& cc : compiled) {
      for (size_t i = 0; i < cc.aggs.size(); ++i) {
        row.push_back(vectorized
                          ? cc.cols[i].Finalize(r)
                          : cc.aggs[i].fn->Finalize(*cc.states[i][static_cast<size_t>(r)]));
      }
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace mdjoin
