#include "core/reference.h"

#include "expr/compile.h"

namespace mdjoin {

Result<Table> MdJoinReference(const Table& base, const Table& detail,
                              const std::vector<AggSpec>& aggs, const ExprPtr& theta) {
  if (theta == nullptr) {
    return Status::InvalidArgument("MdJoinReference: θ-condition must not be null");
  }
  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                       BindAggs(aggs, &base.schema(), &detail.schema()));
  MDJ_ASSIGN_OR_RETURN(CompiledExpr cond,
                       CompileExpr(theta, &base.schema(), &detail.schema()));

  std::vector<Field> fields = base.schema().fields();
  for (const BoundAgg& b : bound) fields.push_back(b.output_field);
  Table out{Schema(std::move(fields))};
  out.Reserve(base.num_rows());

  RowCtx ctx;
  ctx.base = &base;
  ctx.detail = &detail;
  for (int64_t b = 0; b < base.num_rows(); ++b) {
    ctx.base_row = b;
    std::vector<std::unique_ptr<AggregateState>> states;
    states.reserve(bound.size());
    for (const BoundAgg& agg : bound) states.push_back(agg.fn->MakeState());
    for (int64_t t = 0; t < detail.num_rows(); ++t) {
      ctx.detail_row = t;
      if (!cond.EvalBool(ctx)) continue;
      for (size_t i = 0; i < bound.size(); ++i) {
        bound[i].UpdateFromRow(states[i].get(), ctx);
      }
    }
    std::vector<Value> row = base.GetRow(b);
    for (size_t i = 0; i < bound.size(); ++i) {
      row.push_back(bound[i].fn->Finalize(*states[i]));
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace mdjoin
