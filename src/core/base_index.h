#ifndef MDJOIN_CORE_BASE_INDEX_H_
#define MDJOIN_CORE_BASE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "expr/compile.h"
#include "expr/conjuncts.h"
#include "table/key.h"
#include "table/table.h"

namespace mdjoin {

/// Hash index over the base-values relation B for the equi part of a
/// θ-condition (paper §4.5): given a detail tuple t, Probe() returns a
/// superset of the *relative set* Rel(t) — the B rows that can possibly be
/// updated for t — pruned from |B| to the rows agreeing on the equi keys.
///
/// Cube-aware: base rows may hold ALL in key positions (multi-granularity
/// base tables, Example 2.1/2.3). Rows are bucketed by their "ALL-mask" — the
/// subset of key positions that are ALL — with one hash map per mask, keyed
/// on the non-ALL positions only. A probe consults every mask bucket, so a
/// full d-dimensional cube costs 2^d map lookups per detail tuple, matching
/// the per-tuple update cost of the classical cube algorithms the paper
/// generalizes. For a plain (ALL-free) base table there is exactly one
/// bucket and a probe is a single lookup.
class BaseIndex {
 public:
  /// Builds an index over `rows` of `base` using the equi pairs of θ.
  /// Key expressions may be computed (e.g. B.month + 1). Rows whose key
  /// contains NULL are left out: NULL matches no detail value.
  static Result<BaseIndex> Build(const Table& base, const std::vector<int64_t>& rows,
                                 const std::vector<EquiPair>& equi,
                                 const Schema& detail_schema);

  /// Reusable buffers for Probe: caller-owned so a scan's probes do zero
  /// steady-state allocation. One scratch per scanning thread; a scratch must
  /// not be reused across different indexes (the memo below caches this
  /// index's candidate lists).
  struct ProbeScratch {
    std::vector<Value> computed;      // storage for non-column key expressions
    std::vector<const Value*> key;    // detail key, one pointer per equi position
    std::vector<const Value*> probe;  // per-bucket gathered probe key
    // Probe memo for multi-bucket (cube) indexes: full detail key → candidate
    // rows. Keyed on exact values (RowKeyEqual is strict Equals, no wildcard
    // semantics), so it is a pure-function cache. Capped, and abandoned after
    // a warmup window when the key cardinality is too high to pay off.
    std::unordered_map<RowKey, std::vector<int64_t>, RowKeyHash, RowKeyEqual> memo;
    int64_t memo_lookups = 0;
    int64_t memo_hits = 0;
    bool memo_enabled = true;
  };

  /// Appends to `out` every indexed base row whose key θ-matches detail row
  /// `detail_row`. If some detail key value is ALL (possible when a cuboid
  /// feeds another MD-join), falls back to an exhaustive wildcard walk.
  ///
  /// Plain-column detail keys are read straight from the column (no Value
  /// copy, no closure call) and buckets are probed through RowKeyView
  /// heterogeneous lookup, so the per-tuple cost is hashing alone.
  void Probe(const Table& detail, int64_t detail_row, ProbeScratch* scratch,
             std::vector<int64_t>* out) const;

  /// Convenience overload allocating its own scratch; prefer the scratch
  /// overload in scan loops.
  void Probe(const RowCtx& detail_ctx, std::vector<int64_t>* out) const;

  /// Number of distinct ALL-masks (== hash maps) in the index.
  int64_t num_masks() const { return static_cast<int64_t>(buckets_.size()); }

  int num_keys() const { return static_cast<int>(detail_keys_.size()); }

 private:
  using Bucket = std::unordered_map<RowKey, std::vector<int64_t>, RowKeyHash, RowKeyEqual>;

  struct MaskBucket {
    uint64_t all_mask;                // bit i set => key position i is ALL
    std::vector<int> probe_positions; // key positions that participate (non-ALL)
    Bucket map;
  };

  std::vector<CompiledExpr> detail_keys_;
  std::vector<int> detail_cols_;  // plain-column key positions (else -1)
  std::vector<MaskBucket> buckets_;
  // Rows whose base-side key evaluation produced ALL in *every* position are
  // still regular bucket entries (empty probe key). Nothing else special.
};

}  // namespace mdjoin

#endif  // MDJOIN_CORE_BASE_INDEX_H_
