#ifndef MDJOIN_CORE_BASE_INDEX_H_
#define MDJOIN_CORE_BASE_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "expr/compile.h"
#include "expr/conjuncts.h"
#include "table/key.h"
#include "table/table.h"
#include "table/table_accel.h"

namespace mdjoin {

/// Borrowed view of an encoded probe key for heterogeneous memo lookups
/// (the code-key analogue of RowKeyView in table/key.h).
struct CodeKeyView {
  const uint64_t* data;
  size_t size;
};

struct CodeKeyHash {
  using is_transparent = void;
  static size_t Mix(const uint64_t* d, size_t n) {
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (size_t i = 0; i < n; ++i) {
      h ^= d[i] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
  size_t operator()(const std::vector<uint64_t>& k) const {
    return Mix(k.data(), k.size());
  }
  size_t operator()(const CodeKeyView& k) const { return Mix(k.data, k.size); }
};

struct CodeKeyEqual {
  using is_transparent = void;
  static bool Eq(const uint64_t* a, size_t an, const uint64_t* b, size_t bn) {
    if (an != bn) return false;
    for (size_t i = 0; i < an; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
  bool operator()(const std::vector<uint64_t>& a,
                  const std::vector<uint64_t>& b) const {
    return Eq(a.data(), a.size(), b.data(), b.size());
  }
  bool operator()(const std::vector<uint64_t>& a, const CodeKeyView& b) const {
    return Eq(a.data(), a.size(), b.data, b.size);
  }
  bool operator()(const CodeKeyView& a, const std::vector<uint64_t>& b) const {
    return Eq(a.data, a.size, b.data(), b.size());
  }
};

/// Hash index over the base-values relation B for the equi part of a
/// θ-condition (paper §4.5): given a detail tuple t, Probe() returns a
/// superset of the *relative set* Rel(t) — the B rows that can possibly be
/// updated for t — pruned from |B| to the rows agreeing on the equi keys.
///
/// Cube-aware: base rows may hold ALL in key positions (multi-granularity
/// base tables, Example 2.1/2.3). Rows are bucketed by their "ALL-mask" — the
/// subset of key positions that are ALL — with one hash map per mask, keyed
/// on the non-ALL positions only. A probe consults every mask bucket, so a
/// full d-dimensional cube costs 2^d map lookups per detail tuple, matching
/// the per-tuple update cost of the classical cube algorithms the paper
/// generalizes. For a plain (ALL-free) base table there is exactly one
/// bucket and a probe is a single lookup.
class BaseIndex {
 public:
  /// Builds an index over `rows` of `base` using the equi pairs of θ.
  /// Key expressions may be computed (e.g. B.month + 1). Rows whose key
  /// contains NULL are left out: NULL matches no detail value.
  static Result<BaseIndex> Build(const Table& base, const std::vector<int64_t>& rows,
                                 const std::vector<EquiPair>& equi,
                                 const Schema& detail_schema);

  /// Reusable buffers for Probe: caller-owned so a scan's probes do zero
  /// steady-state allocation. One scratch per scanning thread; a scratch must
  /// not be reused across different indexes (the memo below caches this
  /// index's candidate lists).
  struct ProbeScratch {
    std::vector<Value> computed;      // storage for non-column key expressions
    std::vector<const Value*> key;    // detail key, one pointer per equi position
    std::vector<const Value*> probe;  // per-bucket gathered probe key
    // Probe memo for multi-bucket (cube) indexes: full detail key → candidate
    // rows. Keyed on exact values (RowKeyEqual is strict Equals, no wildcard
    // semantics), so it is a pure-function cache. Capped, and abandoned after
    // a warmup window when the key cardinality is too high to pay off.
    //
    // Two keyings share the counters and cap. When every key position is a
    // plain column with a typed mirror, keys encode as one uint64 word per
    // position — int64 bits, float64 bits, or a dictionary code — plus one
    // null-tag word, so a memo probe hashes a few machine words and never
    // touches a string or allocates (`code_memo`). Otherwise keys are owned
    // Value vectors (`memo`). Only one of the two maps populates per scratch.
    std::unordered_map<RowKey, std::vector<int64_t>, RowKeyHash, RowKeyEqual> memo;
    std::unordered_map<std::vector<uint64_t>, std::vector<int64_t>, CodeKeyHash,
                       CodeKeyEqual>
        code_memo;
    std::vector<uint64_t> code_key;  // reused encode buffer, nkeys + 1 words
    int codeable = -1;               // -1 undecided, 0 Value keys, 1 code keys
    bool allow_code_keys = true;     // cleared by the use_flat_columns=false arm
    std::shared_ptr<const TableAccel> accel;  // pinned on first probe
    int64_t memo_lookups = 0;
    int64_t memo_hits = 0;
    bool memo_enabled = true;
  };

  /// A probe result borrowed from index/memo storage: valid until the next
  /// ProbeSpan call on the same scratch (a later probe may recycle the gather
  /// buffer or retire the memo). Consume immediately.
  struct ProbeResult {
    const int64_t* rows = nullptr;
    int64_t count = 0;
    bool empty() const { return count == 0; }
  };

  /// Returns every indexed base row whose key θ-matches detail row
  /// `detail_row`, as a span. Single-bucket hits and memo hits alias index /
  /// memo storage directly — no per-probe copying; only multi-bucket misses
  /// gather through `gather` (clobbered). If some detail key value is ALL
  /// (possible when a cuboid feeds another MD-join), falls back to an
  /// exhaustive wildcard walk.
  ///
  /// Plain-column detail keys are read straight from the column (no Value
  /// copy, no closure call) and buckets are probed through RowKeyView
  /// heterogeneous lookup, so the per-tuple cost is hashing alone.
  ProbeResult ProbeSpan(const Table& detail, int64_t detail_row,
                        ProbeScratch* scratch, std::vector<int64_t>* gather) const;

  /// Appends the ProbeSpan result to `out` (copying wrapper for callers that
  /// want to own the list).
  void Probe(const Table& detail, int64_t detail_row, ProbeScratch* scratch,
             std::vector<int64_t>* out) const;

  /// Convenience overload allocating its own scratch; prefer the scratch
  /// overload in scan loops.
  void Probe(const RowCtx& detail_ctx, std::vector<int64_t>* out) const;

  /// Number of distinct ALL-masks (== hash maps) in the index.
  int64_t num_masks() const { return static_cast<int64_t>(buckets_.size()); }

  int num_keys() const { return static_cast<int>(detail_keys_.size()); }

 private:
  using Bucket = std::unordered_map<RowKey, std::vector<int64_t>, RowKeyHash, RowKeyEqual>;

  struct MaskBucket {
    uint64_t all_mask;                // bit i set => key position i is ALL
    std::vector<int> probe_positions; // key positions that participate (non-ALL)
    Bucket map;
  };

  std::vector<CompiledExpr> detail_keys_;
  std::vector<int> detail_cols_;  // plain-column key positions (else -1)
  std::vector<MaskBucket> buckets_;
  // Rows whose base-side key evaluation produced ALL in *every* position are
  // still regular bucket entries (empty probe key). Nothing else special.
};

}  // namespace mdjoin

#endif  // MDJOIN_CORE_BASE_INDEX_H_
