#ifndef MDJOIN_CORE_REFERENCE_H_
#define MDJOIN_CORE_REFERENCE_H_

#include <vector>

#include "agg/agg_spec.h"
#include "common/result.h"
#include "expr/expr.h"
#include "table/table.h"

namespace mdjoin {

/// Literal transcription of Definition 3.1: for each base row b, scan all of
/// R, evaluate θ(b, t) in full, and aggregate the matches. O(|B|·|R|) with no
/// analysis, no index, no pushdown — deliberately the dumbest correct
/// evaluator. The property-test oracle every optimized path is checked
/// against.
Result<Table> MdJoinReference(const Table& base, const Table& detail,
                              const std::vector<AggSpec>& aggs, const ExprPtr& theta);

}  // namespace mdjoin

#endif  // MDJOIN_CORE_REFERENCE_H_
