#include "core/incremental.h"

#include "ra/project.h"

namespace mdjoin {

Result<Table> MdJoinApplyDelta(const Table& previous, const Table& delta_detail,
                               const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                               const MdJoinOptions& options, MdJoinStats* stats) {
  if (options.guard != nullptr) MDJ_RETURN_NOT_OK(options.guard->Check());
  MDJ_ASSIGN_OR_RETURN(bool distributive, AllDistributive(aggs));
  if (!distributive) {
    return Status::InvalidArgument(
        "MdJoinApplyDelta: incremental maintenance needs distributive aggregates "
        "(count/sum/min/max); recompute algebraic/holistic results instead");
  }
  const int num_aggs = static_cast<int>(aggs.size());
  const int num_base_cols = previous.num_columns() - num_aggs;
  if (num_base_cols < 0) {
    return Status::InvalidArgument("MdJoinApplyDelta: previous output narrower than "
                                   "the aggregate list");
  }
  for (int i = 0; i < num_aggs; ++i) {
    const std::string& have = previous.schema().field(num_base_cols + i).name;
    if (have != aggs[static_cast<size_t>(i)].output_name) {
      return Status::InvalidArgument("MdJoinApplyDelta: previous output column '", have,
                                     "' does not match aggregate '",
                                     aggs[static_cast<size_t>(i)].output_name, "'");
    }
  }

  // Base relation = the previous output minus its aggregate columns.
  std::vector<std::string> base_cols;
  for (int c = 0; c < num_base_cols; ++c) {
    base_cols.push_back(previous.schema().field(c).name);
  }
  MDJ_ASSIGN_OR_RETURN(Table base, ProjectColumns(previous, base_cols));

  // Aggregate the delta alone (row-aligned with `previous` by construction:
  // MdJoin preserves base order).
  MDJ_ASSIGN_OR_RETURN(Table delta,
                       MdJoin(base, delta_detail, aggs, theta, options, stats));

  // Combine old and delta values with each aggregate's roll-up function.
  std::vector<const AggregateFunction*> combiners;
  for (const AggSpec& spec : aggs) {
    MDJ_ASSIGN_OR_RETURN(const AggregateFunction* fn,
                         AggregateRegistry::Global()->Lookup(spec.function));
    MDJ_ASSIGN_OR_RETURN(const AggregateFunction* combiner,
                         AggregateRegistry::Global()->Lookup(fn->RollupFunctionName()));
    combiners.push_back(combiner);
  }

  // The delta evaluation above ran under the guard (options flow through
  // MdJoin); the roll-up combine below ticks it too, so a cancel arriving
  // during a large combine is still observed within one stride.
  ScopedReservation combine_bytes;
  MDJ_RETURN_NOT_OK(combine_bytes.Reserve(
      options.guard,
      previous.num_rows() * previous.num_columns() * kGuardBytesPerOutputCell,
      "incremental combine output"));
  GuardTicket ticket(options.guard, /*count_rows=*/false);
  Table out(previous.schema());
  out.Reserve(previous.num_rows());
  for (int64_t r = 0; r < previous.num_rows(); ++r) {
    MDJ_RETURN_NOT_OK(ticket.Tick());
    std::vector<Value> row;
    row.reserve(static_cast<size_t>(previous.num_columns()));
    for (int c = 0; c < num_base_cols; ++c) row.push_back(previous.Get(r, c));
    for (int i = 0; i < num_aggs; ++i) {
      const AggregateFunction* combiner = combiners[static_cast<size_t>(i)];
      std::unique_ptr<AggregateState> state = combiner->MakeState();
      combiner->Update(state.get(), previous.Get(r, num_base_cols + i));
      combiner->Update(state.get(), delta.Get(r, num_base_cols + i));
      row.push_back(combiner->Finalize(*state));
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace mdjoin
