#include "core/mdjoin.h"

#include <numeric>

#include "agg/flat_state.h"
#include "core/detail_scan.h"
#include "expr/conjuncts.h"
#include "obs/trace.h"

namespace mdjoin {

std::string MdJoinStats::ToString() const {
  std::string out;
  out += "base_rows=" + std::to_string(base_rows);
  out += " detail_scanned=" + std::to_string(detail_rows_scanned);
  out += " detail_qualified=" + std::to_string(detail_rows_qualified);
  out += " candidate_pairs=" + std::to_string(candidate_pairs);
  out += " matched_pairs=" + std::to_string(matched_pairs);
  out += " passes=" + std::to_string(passes_over_detail);
  out += " index_masks=" + std::to_string(index_masks);
  if (blocks > 0) {
    out += " blocks=" + std::to_string(blocks);
    out += " kernel_invocations=" + std::to_string(kernel_invocations);
    out += " kernel_fallback_rows=" + std::to_string(kernel_fallback_rows);
    out += " dense_blocks=" + std::to_string(dense_blocks);
    out += " fused_blocks=" + std::to_string(fused_blocks);
  }
  if (index_probe_lookups > 0) {
    out += " probe_lookups=" + std::to_string(index_probe_lookups);
    out += " probe_memo_hits=" + std::to_string(index_probe_memo_hits);
  }
  if (memory_degraded) {
    out += " degraded_rows_per_pass=" + std::to_string(base_rows_per_pass_effective);
  }
  if (blocks_read > 0 || blocks_pruned > 0) {
    out += " blocks_read=" + std::to_string(blocks_read);
    out += " blocks_pruned=" + std::to_string(blocks_pruned);
    out += " blocks_faulted=" + std::to_string(blocks_faulted);
    out += " block_cache_hits=" + std::to_string(block_cache_hits);
  }
  if (spill_partitions > 0) {
    out += " spill_partitions=" + std::to_string(spill_partitions);
    out += " spill_bytes=" + std::to_string(spill_bytes_written);
  }
  return out;
}

Result<Table> MdJoin(const Table& base, const Table& detail,
                     const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                     const MdJoinOptions& options, MdJoinStats* stats) {
  if (theta == nullptr) {
    return Status::InvalidArgument("MdJoin: θ-condition must not be null");
  }
  MdJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = MdJoinStats{};
  stats->base_rows = base.num_rows();

  QueryGuard* guard = options.guard;
  // Observe a pre-issued cancel / expired deadline before doing any work.
  if (guard != nullptr) MDJ_RETURN_NOT_OK(guard->Check());

  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                       BindAggs(aggs, &base.schema(), &detail.schema()));

  ThetaParts parts = AnalyzeTheta(theta);

  const bool vectorized = options.execution_mode != ExecutionMode::kRow;
  MDJ_ASSIGN_OR_RETURN(
      CompiledTheta ct, CompileTheta(parts, base.schema(), detail, options, vectorized));

  // Aggregate states live for the whole query (every pass updates them), so
  // their footprint is reserved up front and cannot be degraded away. Both
  // representations are charged the same estimate so guard-driven
  // degradation is mode-independent (the A/B tests rely on that).
  ScopedReservation state_bytes;
  MDJ_RETURN_NOT_OK(state_bytes.Reserve(
      guard,
      static_cast<int64_t>(bound.size()) * base.num_rows() * kGuardBytesPerAggState,
      "aggregate states"));

  // One worker whose partials are the final states: the sequential evaluator
  // is the single-threaded instance of the same scan machinery the morsel
  // engine schedules (core/detail_scan.h).
  DetailScanWorker worker(base, bound, vectorized, guard);

  // Theorem 4.1 memory staging: ceil(|B| / budget) passes over R. Under a
  // guard soft memory budget the per-pass base partition is additionally
  // capped so the per-pass index fits the remaining budget — graceful
  // degradation to multi-pass, trading scans of R for memory, before the
  // hard limit ever has to fail the query.
  std::vector<int64_t> all_rows(static_cast<size_t>(base.num_rows()));
  std::iota(all_rows.begin(), all_rows.end(), 0);
  int64_t budget =
      options.base_rows_per_pass > 0 ? options.base_rows_per_pass : base.num_rows();
  if (guard != nullptr && guard->has_memory_budget() && ct.indexed &&
      base.num_rows() > 0) {
    const int64_t fit = guard->remaining_soft_bytes() / kGuardBytesPerIndexedBaseRow;
    if (fit < budget) {
      budget = std::max<int64_t>(1, fit);
      stats->memory_degraded = true;
    }
  }
  stats->base_rows_per_pass_effective = budget;

  // Empty-multiset short-circuit: when the detail relation is empty or θ
  // constant-folds to a non-truthy literal, no (b, t) pair can qualify — the
  // outer semantics still emit every base row, with each aggregate finalized
  // over zero matches (the worker pre-allocated all states above), so the
  // pass loop can be skipped without touching R.
  ExprPtr folded_theta = FoldConstants(theta);
  const bool provably_empty =
      detail.num_rows() == 0 ||
      (folded_theta != nullptr && folded_theta->kind() == ExprKind::kLiteral &&
       !folded_theta->literal().IsTruthy());

  // Scan counters accumulate in the worker and fold into *stats at the single
  // exit below — including when a guard trip or reservation failure ends a
  // later pass early, so cancelled queries report how far they got.
  Status run = [&]() -> Status {
    if (provably_empty) return Status::OK();
    for (int64_t start = 0; start < base.num_rows(); start += budget) {
      Span pass_span("mdjoin.pass", "mdjoin");
      pass_span.SetArg("pass", stats->passes_over_detail);
      int64_t end = std::min(start + budget, base.num_rows());
      std::vector<int64_t> pass_rows(all_rows.begin() + start, all_rows.begin() + end);
      ++stats->passes_over_detail;
      MDJ_ASSIGN_OR_RETURN(
          DetailScan scan,
          DetailScan::Prepare(base, detail, bound, parts, &ct, std::move(pass_rows),
                              options));
      stats->index_masks += scan.index_masks();
      pass_span.SetArg("base_rows", end - start);
      worker.BeginJob();
      MDJ_RETURN_NOT_OK(scan.ScanRange(0, detail.num_rows(), &worker));
      MDJ_RETURN_NOT_OK(worker.FinishScan());
    }
    return Status::OK();
  }();
  AccumulateScanStats(worker.stats, stats);
  MDJ_RETURN_NOT_OK(run);

  // Assemble output: base columns then one column per aggregate.
  std::vector<Field> fields = base.schema().fields();
  for (const BoundAgg& b : bound) fields.push_back(b.output_field);
  ScopedReservation output_bytes;
  MDJ_RETURN_NOT_OK(output_bytes.Reserve(
      guard,
      base.num_rows() * static_cast<int64_t>(fields.size()) * kGuardBytesPerOutputCell,
      "materialized output"));
  Table out{Schema(std::move(fields))};
  out.Reserve(base.num_rows());
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    std::vector<Value> row = base.GetRow(r);
    for (size_t i = 0; i < bound.size(); ++i) {
      row.push_back(worker.FinalizeCell(i, r));
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace mdjoin
