#include "core/mdjoin.h"

#include <numeric>

#include "core/base_index.h"
#include "expr/compile.h"
#include "expr/conjuncts.h"

namespace mdjoin {

std::string MdJoinStats::ToString() const {
  std::string out;
  out += "base_rows=" + std::to_string(base_rows);
  out += " detail_scanned=" + std::to_string(detail_rows_scanned);
  out += " detail_qualified=" + std::to_string(detail_rows_qualified);
  out += " candidate_pairs=" + std::to_string(candidate_pairs);
  out += " matched_pairs=" + std::to_string(matched_pairs);
  out += " passes=" + std::to_string(passes_over_detail);
  out += " index_masks=" + std::to_string(index_masks);
  if (memory_degraded) {
    out += " degraded_rows_per_pass=" + std::to_string(base_rows_per_pass_effective);
  }
  return out;
}

namespace {

/// One pass of Algorithm 3.1 over `detail`, updating aggregate states for the
/// base rows listed in `pass_rows`. `states[agg][base_row]`.
struct PassContext {
  const Table* base;
  const Table* detail;
  const std::vector<BoundAgg>* aggs;
  std::vector<std::vector<std::unique_ptr<AggregateState>>>* states;
  MdJoinStats* stats;
};

Status RunPass(const PassContext& pc, const std::vector<int64_t>& pass_rows,
               const ThetaParts& parts, const MdJoinOptions& options) {
  const Table& base = *pc.base;
  const Table& detail = *pc.detail;

  // Rows eligible for updates: those satisfying the B-only conjuncts. The
  // others still appear in the output (with identity aggregates) but can
  // never match.
  std::vector<int64_t> active;
  if (parts.base_only.empty()) {
    active = pass_rows;
  } else {
    MDJ_ASSIGN_OR_RETURN(CompiledExpr base_pred,
                         CompileExpr(CombineConjuncts(parts.base_only), &base.schema(),
                                     /*detail_schema=*/nullptr));
    RowCtx ctx;
    ctx.base = &base;
    for (int64_t row : pass_rows) {
      ctx.base_row = row;
      if (base_pred.EvalBool(ctx)) active.push_back(row);
    }
  }

  // Detail-side selection (Theorem 4.2). When pushdown is disabled the
  // conjuncts join the residual so results are identical.
  CompiledExpr detail_pred;
  std::vector<ExprPtr> residual_conjuncts = parts.residual;
  if (options.push_detail_selection) {
    if (!parts.detail_only.empty()) {
      MDJ_ASSIGN_OR_RETURN(detail_pred,
                           CompileExpr(CombineConjuncts(parts.detail_only),
                                       /*base_schema=*/nullptr, &detail.schema()));
    }
  } else {
    residual_conjuncts.insert(residual_conjuncts.end(), parts.detail_only.begin(),
                              parts.detail_only.end());
  }

  // Index on the equi part (§4.5), or nested loop when disabled/absent.
  const bool indexed = options.use_index && !parts.equi.empty();
  BaseIndex index;
  if (indexed) {
    MDJ_ASSIGN_OR_RETURN(index,
                         BaseIndex::Build(base, active, parts.equi, detail.schema()));
    pc.stats->index_masks += index.num_masks();
  }
  // Without the index the equi conjuncts must be re-checked per pair.
  if (!indexed) {
    for (const EquiPair& pair : parts.equi) {
      residual_conjuncts.push_back(
          Expr::Binary(BinaryOp::kEq, pair.base_expr, pair.detail_expr));
    }
  }

  CompiledExpr residual;
  if (!residual_conjuncts.empty()) {
    MDJ_ASSIGN_OR_RETURN(residual,
                         CompileExpr(CombineConjuncts(std::move(residual_conjuncts)),
                                     &base.schema(), &detail.schema()));
  }

  const std::vector<BoundAgg>& aggs = *pc.aggs;
  auto& states = *pc.states;

  // The per-pass index is the memory the guard's soft budget governs; the
  // caller sized pass_rows so this reservation fits (or degraded to more
  // passes). The hard limit is still enforced here.
  ScopedReservation index_bytes;
  if (indexed) {
    MDJ_RETURN_NOT_OK(index_bytes.Reserve(
        options.guard,
        static_cast<int64_t>(active.size()) * kGuardBytesPerIndexedBaseRow,
        "base index"));
  }

  RowCtx ctx;
  ctx.base = &base;
  ctx.detail = &detail;
  std::vector<int64_t> candidates;
  GuardTicket ticket(options.guard);
  for (int64_t t = 0; t < detail.num_rows(); ++t) {
    ctx.detail_row = t;
    ++pc.stats->detail_rows_scanned;
    int64_t pairs_this_row = 0;
    if (!detail_pred.valid() || detail_pred.EvalBool(ctx)) {
      ++pc.stats->detail_rows_qualified;

      const std::vector<int64_t>* probe_rows;
      if (indexed) {
        candidates.clear();
        index.Probe(ctx, &candidates);
        probe_rows = &candidates;
      } else {
        probe_rows = &active;
      }
      pairs_this_row = static_cast<int64_t>(probe_rows->size());

      for (int64_t b : *probe_rows) {
        ctx.base_row = b;
        ++pc.stats->candidate_pairs;
        if (residual.valid() && !residual.EvalBool(ctx)) continue;
        ++pc.stats->matched_pairs;
        for (size_t i = 0; i < aggs.size(); ++i) {
          aggs[i].UpdateFromRow(states[i][static_cast<size_t>(b)].get(), ctx);
        }
      }
    }
    MDJ_RETURN_NOT_OK(ticket.Tick(pairs_this_row));
  }
  return ticket.Finish();
}

}  // namespace

Result<Table> MdJoin(const Table& base, const Table& detail,
                     const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                     const MdJoinOptions& options, MdJoinStats* stats) {
  if (theta == nullptr) {
    return Status::InvalidArgument("MdJoin: θ-condition must not be null");
  }
  MdJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = MdJoinStats{};
  stats->base_rows = base.num_rows();

  QueryGuard* guard = options.guard;
  // Observe a pre-issued cancel / expired deadline before doing any work.
  if (guard != nullptr) MDJ_RETURN_NOT_OK(guard->Check());

  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                       BindAggs(aggs, &base.schema(), &detail.schema()));

  ThetaParts parts = AnalyzeTheta(theta);

  // Aggregate states live for the whole query (every pass updates them), so
  // their footprint is reserved up front and cannot be degraded away.
  ScopedReservation state_bytes;
  MDJ_RETURN_NOT_OK(state_bytes.Reserve(
      guard,
      static_cast<int64_t>(bound.size()) * base.num_rows() * kGuardBytesPerAggState,
      "aggregate states"));

  std::vector<std::vector<std::unique_ptr<AggregateState>>> states(bound.size());
  for (size_t i = 0; i < bound.size(); ++i) {
    states[i].reserve(static_cast<size_t>(base.num_rows()));
    for (int64_t r = 0; r < base.num_rows(); ++r) {
      states[i].push_back(bound[i].fn->MakeState());
    }
  }

  PassContext pc{&base, &detail, &bound, &states, stats};

  // Theorem 4.1 memory staging: ceil(|B| / budget) passes over R. Under a
  // guard soft memory budget the per-pass base partition is additionally
  // capped so the per-pass index fits the remaining budget — graceful
  // degradation to multi-pass, trading scans of R for memory, before the
  // hard limit ever has to fail the query.
  std::vector<int64_t> all_rows(static_cast<size_t>(base.num_rows()));
  std::iota(all_rows.begin(), all_rows.end(), 0);
  int64_t budget =
      options.base_rows_per_pass > 0 ? options.base_rows_per_pass : base.num_rows();
  const bool will_index = options.use_index && !parts.equi.empty();
  if (guard != nullptr && guard->has_memory_budget() && will_index &&
      base.num_rows() > 0) {
    const int64_t fit = guard->remaining_soft_bytes() / kGuardBytesPerIndexedBaseRow;
    if (fit < budget) {
      budget = std::max<int64_t>(1, fit);
      stats->memory_degraded = true;
    }
  }
  stats->base_rows_per_pass_effective = budget;
  if (base.num_rows() == 0) {
    stats->passes_over_detail = 0;
  } else {
    for (int64_t start = 0; start < base.num_rows(); start += budget) {
      int64_t end = std::min(start + budget, base.num_rows());
      std::vector<int64_t> pass_rows(all_rows.begin() + start, all_rows.begin() + end);
      ++stats->passes_over_detail;
      MDJ_RETURN_NOT_OK(RunPass(pc, pass_rows, parts, options));
    }
  }

  // Assemble output: base columns then one column per aggregate.
  std::vector<Field> fields = base.schema().fields();
  for (const BoundAgg& b : bound) fields.push_back(b.output_field);
  ScopedReservation output_bytes;
  MDJ_RETURN_NOT_OK(output_bytes.Reserve(
      guard,
      base.num_rows() * static_cast<int64_t>(fields.size()) * kGuardBytesPerOutputCell,
      "materialized output"));
  Table out{Schema(std::move(fields))};
  out.Reserve(base.num_rows());
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    std::vector<Value> row = base.GetRow(r);
    for (size_t i = 0; i < bound.size(); ++i) {
      row.push_back(bound[i].fn->Finalize(*states[i][static_cast<size_t>(r)]));
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace mdjoin
