#include "core/mdjoin.h"

#include <numeric>

#include "agg/flat_state.h"
#include "core/base_index.h"
#include "expr/compile.h"
#include "expr/conjuncts.h"
#include "expr/kernels.h"

namespace mdjoin {

std::string MdJoinStats::ToString() const {
  std::string out;
  out += "base_rows=" + std::to_string(base_rows);
  out += " detail_scanned=" + std::to_string(detail_rows_scanned);
  out += " detail_qualified=" + std::to_string(detail_rows_qualified);
  out += " candidate_pairs=" + std::to_string(candidate_pairs);
  out += " matched_pairs=" + std::to_string(matched_pairs);
  out += " passes=" + std::to_string(passes_over_detail);
  out += " index_masks=" + std::to_string(index_masks);
  if (blocks > 0) {
    out += " blocks=" + std::to_string(blocks);
    out += " kernel_invocations=" + std::to_string(kernel_invocations);
    out += " kernel_fallback_rows=" + std::to_string(kernel_fallback_rows);
  }
  if (memory_degraded) {
    out += " degraded_rows_per_pass=" + std::to_string(base_rows_per_pass_effective);
  }
  return out;
}

namespace {

/// θ compiled once per query and shared by every pass (compilation used to be
/// repeated per pass, which dominated multi-pass runs on small partitions).
struct CompiledTheta {
  CompiledExpr base_pred;    // B-only conjuncts; invalid when there are none
  CompiledExpr detail_pred;  // pushed-down R-only conjuncts (row path)
  PredicateKernels kernels;  // pushed-down R-only kernels (vectorized path)
  bool has_kernels = false;
  CompiledExpr residual;     // conjuncts evaluated per candidate pair
  bool indexed = false;      // equi part served by a BaseIndex
};

Result<CompiledTheta> CompileTheta(const ThetaParts& parts, const Schema& base_schema,
                                   const Schema& detail_schema,
                                   const MdJoinOptions& options, bool vectorized) {
  CompiledTheta ct;
  if (!parts.base_only.empty()) {
    MDJ_ASSIGN_OR_RETURN(ct.base_pred,
                         CompileExpr(CombineConjuncts(parts.base_only), &base_schema,
                                     /*detail_schema=*/nullptr));
  }

  // Detail-side selection (Theorem 4.2). When pushdown is disabled the
  // conjuncts join the residual so results are identical.
  std::vector<ExprPtr> residual_conjuncts = parts.residual;
  if (options.push_detail_selection) {
    if (!parts.detail_only.empty()) {
      if (vectorized) {
        MDJ_ASSIGN_OR_RETURN(ct.kernels,
                             PredicateKernels::Compile(parts.detail_only, detail_schema));
        ct.has_kernels = true;
      } else {
        MDJ_ASSIGN_OR_RETURN(ct.detail_pred,
                             CompileExpr(CombineConjuncts(parts.detail_only),
                                         /*base_schema=*/nullptr, &detail_schema));
      }
    }
  } else {
    residual_conjuncts.insert(residual_conjuncts.end(), parts.detail_only.begin(),
                              parts.detail_only.end());
  }

  // Without the index the equi conjuncts must be re-checked per pair.
  ct.indexed = options.use_index && !parts.equi.empty();
  if (!ct.indexed) {
    for (const EquiPair& pair : parts.equi) {
      residual_conjuncts.push_back(
          Expr::Binary(BinaryOp::kEq, pair.base_expr, pair.detail_expr));
    }
  }

  if (!residual_conjuncts.empty()) {
    MDJ_ASSIGN_OR_RETURN(ct.residual,
                         CompileExpr(CombineConjuncts(std::move(residual_conjuncts)),
                                     &base_schema, &detail_schema));
  }
  return ct;
}

/// One pass of Algorithm 3.1 over `detail`, updating aggregate states for the
/// base rows listed in `pass_rows`. Exactly one of `heap_states` (row path,
/// `[agg][base_row]`) and `cols` (vectorized path, one column per agg) is
/// non-null.
struct PassContext {
  const Table* base;
  const Table* detail;
  const std::vector<BoundAgg>* aggs;
  std::vector<std::vector<std::unique_ptr<AggregateState>>>* heap_states;
  std::vector<AggStateColumn>* cols;
  MdJoinStats* stats;
};

/// Rows eligible for updates: those satisfying the B-only conjuncts. The
/// others still appear in the output (with identity aggregates) but can
/// never match.
std::vector<int64_t> ComputeActive(const Table& base,
                                   const std::vector<int64_t>& pass_rows,
                                   const CompiledExpr& base_pred) {
  if (!base_pred.valid()) return pass_rows;
  std::vector<int64_t> active;
  RowCtx ctx;
  ctx.base = &base;
  for (int64_t row : pass_rows) {
    ctx.base_row = row;
    if (base_pred.EvalBool(ctx)) active.push_back(row);
  }
  return active;
}

/// Tuple-at-a-time pass: compiled-closure predicate evaluation and heap
/// aggregate-state updates per row. The ablation baseline for the
/// vectorization experiments.
Status RunPassRow(const PassContext& pc, const std::vector<int64_t>& pass_rows,
                  const ThetaParts& parts, const CompiledTheta& ct,
                  const MdJoinOptions& options) {
  const Table& base = *pc.base;
  const Table& detail = *pc.detail;

  std::vector<int64_t> active = ComputeActive(base, pass_rows, ct.base_pred);

  // Index on the equi part (§4.5), or nested loop when disabled/absent.
  BaseIndex index;
  if (ct.indexed) {
    MDJ_ASSIGN_OR_RETURN(index,
                         BaseIndex::Build(base, active, parts.equi, detail.schema()));
    pc.stats->index_masks += index.num_masks();
  }

  const std::vector<BoundAgg>& aggs = *pc.aggs;
  auto& states = *pc.heap_states;

  // The per-pass index is the memory the guard's soft budget governs; the
  // caller sized pass_rows so this reservation fits (or degraded to more
  // passes). The hard limit is still enforced here.
  ScopedReservation index_bytes;
  if (ct.indexed) {
    MDJ_RETURN_NOT_OK(index_bytes.Reserve(
        options.guard,
        static_cast<int64_t>(active.size()) * kGuardBytesPerIndexedBaseRow,
        "base index"));
  }

  RowCtx ctx;
  ctx.base = &base;
  ctx.detail = &detail;
  std::vector<int64_t> candidates;
  GuardTicket ticket(options.guard);
  // Work counters stay in locals and flush into the shared stats once per
  // pass; per-row stores into *pc.stats were measurable in the scan loop.
  // A guard trip mid-scan must still flush, so cancelled queries report how
  // far they got.
  int64_t scanned = 0, qualified = 0, cand_pairs = 0, matched = 0;
  auto flush = [&] {
    pc.stats->detail_rows_scanned += scanned;
    pc.stats->detail_rows_qualified += qualified;
    pc.stats->candidate_pairs += cand_pairs;
    pc.stats->matched_pairs += matched;
  };
  for (int64_t t = 0; t < detail.num_rows(); ++t) {
    ctx.detail_row = t;
    ++scanned;
    int64_t pairs_this_row = 0;
    if (!ct.detail_pred.valid() || ct.detail_pred.EvalBool(ctx)) {
      ++qualified;

      const std::vector<int64_t>* probe_rows;
      if (ct.indexed) {
        candidates.clear();
        index.Probe(ctx, &candidates);
        probe_rows = &candidates;
      } else {
        probe_rows = &active;
      }
      pairs_this_row = static_cast<int64_t>(probe_rows->size());
      cand_pairs += pairs_this_row;

      for (int64_t b : *probe_rows) {
        ctx.base_row = b;
        if (ct.residual.valid() && !ct.residual.EvalBool(ctx)) continue;
        ++matched;
        for (size_t i = 0; i < aggs.size(); ++i) {
          aggs[i].UpdateFromRow(states[i][static_cast<size_t>(b)].get(), ctx);
        }
      }
    }
    Status tick = ticket.Tick(pairs_this_row);
    if (!tick.ok()) {
      flush();
      return tick;
    }
  }
  flush();
  return ticket.Finish();
}

/// Block-at-a-time pass: detail-only conjuncts run as columnar kernels over a
/// selection vector, surviving rows probe the index through reusable scratch,
/// and matches fold into flat typed aggregate state. Residual conjuncts and
/// non-flat aggregates fall back per row inside the block, so results are
/// identical to the row path.
Status RunPassVectorized(const PassContext& pc, const std::vector<int64_t>& pass_rows,
                         const ThetaParts& parts, const CompiledTheta& ct,
                         const MdJoinOptions& options) {
  const Table& base = *pc.base;
  const Table& detail = *pc.detail;

  std::vector<int64_t> active = ComputeActive(base, pass_rows, ct.base_pred);

  BaseIndex index;
  if (ct.indexed) {
    MDJ_ASSIGN_OR_RETURN(index,
                         BaseIndex::Build(base, active, parts.equi, detail.schema()));
    pc.stats->index_masks += index.num_masks();
  }

  const std::vector<BoundAgg>& aggs = *pc.aggs;
  std::vector<AggStateColumn>& cols = *pc.cols;

  ScopedReservation index_bytes;
  if (ct.indexed) {
    MDJ_RETURN_NOT_OK(index_bytes.Reserve(
        options.guard,
        static_cast<int64_t>(active.size()) * kGuardBytesPerIndexedBaseRow,
        "base index"));
  }

  // The guard promises trip latency within ~one check stride of detail rows;
  // that promise outranks block shape, so a guarded scan never processes more
  // than a stride between checks.
  int64_t block = options.block_size > 0 ? options.block_size : 1024;
  if (options.guard != nullptr) {
    block = std::min<int64_t>(block, options.guard->check_stride());
  }
  std::vector<uint32_t> sel(static_cast<size_t>(block));
  BaseIndex::ProbeScratch scratch;
  std::vector<int64_t> candidates;
  std::vector<int64_t> matched_buf;
  KernelStats kstats;
  RowCtx ctx;
  ctx.base = &base;
  ctx.detail = &detail;
  // Plain detail-column aggregate arguments read straight from column
  // storage; one pointer per aggregate, hoisted out of the scan.
  std::vector<const Value*> arg_cols(aggs.size(), nullptr);
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].detail_arg_col >= 0) {
      arg_cols[a] = detail.column(aggs[a].detail_arg_col).data();
    }
  }
  GuardTicket ticket(options.guard);
  int64_t scanned = 0, qualified = 0, cand_pairs = 0, matched = 0, blocks = 0;
  auto flush = [&] {
    pc.stats->detail_rows_scanned += scanned;
    pc.stats->detail_rows_qualified += qualified;
    pc.stats->candidate_pairs += cand_pairs;
    pc.stats->matched_pairs += matched;
    pc.stats->blocks += blocks;
    pc.stats->kernel_invocations += kstats.kernel_invocations;
    pc.stats->kernel_fallback_rows += kstats.fallback_rows;
  };
  const int64_t num_rows = detail.num_rows();
  for (int64_t start = 0; start < num_rows; start += block) {
    const int n = static_cast<int>(std::min<int64_t>(block, num_rows - start));
    for (int i = 0; i < n; ++i) sel[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
    int count = n;
    if (ct.has_kernels) {
      count = ct.kernels.FilterBlock(detail, start, sel.data(), count, &kstats);
    }
    ++blocks;
    scanned += n;
    qualified += count;

    int64_t pairs_this_block = 0;
    for (int i = 0; i < count; ++i) {
      const int64_t t = start + sel[static_cast<size_t>(i)];

      const std::vector<int64_t>* probe_rows;
      if (ct.indexed) {
        candidates.clear();
        index.Probe(detail, t, &scratch, &candidates);
        probe_rows = &candidates;
      } else {
        probe_rows = &active;
      }
      pairs_this_block += static_cast<int64_t>(probe_rows->size());
      if (probe_rows->empty()) continue;

      ctx.detail_row = t;
      // Resolve the residual once into a match list, then fold the row into
      // every aggregate column-at-a-time: kind dispatch and argument decoding
      // happen once per (row, aggregate), not once per matched pair.
      const int64_t* match_rows = probe_rows->data();
      int64_t nmatch = static_cast<int64_t>(probe_rows->size());
      if (ct.residual.valid()) {
        matched_buf.clear();
        for (int64_t b : *probe_rows) {
          ctx.base_row = b;
          if (ct.residual.EvalBool(ctx)) matched_buf.push_back(b);
        }
        match_rows = matched_buf.data();
        nmatch = static_cast<int64_t>(matched_buf.size());
      }
      if (nmatch == 0) continue;
      matched += nmatch;
      for (size_t a = 0; a < aggs.size(); ++a) {
        const BoundAgg& agg = aggs[a];
        if (arg_cols[a] != nullptr) {
          cols[a].UpdateMany(match_rows, nmatch, arg_cols[a][t]);
        } else if (!agg.has_arg) {
          cols[a].UpdateCountStarMany(match_rows, nmatch);
        } else {
          // Computed argument: may reference the base row, so per pair.
          for (int64_t k = 0; k < nmatch; ++k) {
            ctx.base_row = match_rows[k];
            agg.UpdateColumnFromRow(&cols[a], match_rows[k], ctx);
          }
        }
      }
    }
    cand_pairs += pairs_this_block;
    Status tick = ticket.TickBlock(n, pairs_this_block);
    if (!tick.ok()) {
      flush();
      return tick;
    }
  }
  flush();
  return ticket.Finish();
}

}  // namespace

Result<Table> MdJoin(const Table& base, const Table& detail,
                     const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                     const MdJoinOptions& options, MdJoinStats* stats) {
  if (theta == nullptr) {
    return Status::InvalidArgument("MdJoin: θ-condition must not be null");
  }
  MdJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = MdJoinStats{};
  stats->base_rows = base.num_rows();

  QueryGuard* guard = options.guard;
  // Observe a pre-issued cancel / expired deadline before doing any work.
  if (guard != nullptr) MDJ_RETURN_NOT_OK(guard->Check());

  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                       BindAggs(aggs, &base.schema(), &detail.schema()));

  ThetaParts parts = AnalyzeTheta(theta);

  const bool vectorized = options.execution_mode != ExecutionMode::kRow;
  MDJ_ASSIGN_OR_RETURN(
      CompiledTheta ct,
      CompileTheta(parts, base.schema(), detail.schema(), options, vectorized));

  // Aggregate states live for the whole query (every pass updates them), so
  // their footprint is reserved up front and cannot be degraded away. Both
  // representations are charged the same estimate so guard-driven
  // degradation is mode-independent (the A/B tests rely on that).
  ScopedReservation state_bytes;
  MDJ_RETURN_NOT_OK(state_bytes.Reserve(
      guard,
      static_cast<int64_t>(bound.size()) * base.num_rows() * kGuardBytesPerAggState,
      "aggregate states"));

  std::vector<std::vector<std::unique_ptr<AggregateState>>> heap_states;
  std::vector<AggStateColumn> cols;
  if (vectorized) {
    cols.reserve(bound.size());
    for (const BoundAgg& b : bound) {
      cols.push_back(AggStateColumn::Make(b.fn, base.num_rows()));
    }
  } else {
    heap_states.resize(bound.size());
    for (size_t i = 0; i < bound.size(); ++i) {
      heap_states[i].reserve(static_cast<size_t>(base.num_rows()));
      for (int64_t r = 0; r < base.num_rows(); ++r) {
        heap_states[i].push_back(bound[i].fn->MakeState());
      }
    }
  }

  PassContext pc{&base, &detail, &bound, &heap_states, &cols, stats};

  // Theorem 4.1 memory staging: ceil(|B| / budget) passes over R. Under a
  // guard soft memory budget the per-pass base partition is additionally
  // capped so the per-pass index fits the remaining budget — graceful
  // degradation to multi-pass, trading scans of R for memory, before the
  // hard limit ever has to fail the query.
  std::vector<int64_t> all_rows(static_cast<size_t>(base.num_rows()));
  std::iota(all_rows.begin(), all_rows.end(), 0);
  int64_t budget =
      options.base_rows_per_pass > 0 ? options.base_rows_per_pass : base.num_rows();
  if (guard != nullptr && guard->has_memory_budget() && ct.indexed &&
      base.num_rows() > 0) {
    const int64_t fit = guard->remaining_soft_bytes() / kGuardBytesPerIndexedBaseRow;
    if (fit < budget) {
      budget = std::max<int64_t>(1, fit);
      stats->memory_degraded = true;
    }
  }
  stats->base_rows_per_pass_effective = budget;
  if (base.num_rows() == 0) {
    stats->passes_over_detail = 0;
  } else {
    for (int64_t start = 0; start < base.num_rows(); start += budget) {
      int64_t end = std::min(start + budget, base.num_rows());
      std::vector<int64_t> pass_rows(all_rows.begin() + start, all_rows.begin() + end);
      ++stats->passes_over_detail;
      MDJ_RETURN_NOT_OK(vectorized
                            ? RunPassVectorized(pc, pass_rows, parts, ct, options)
                            : RunPassRow(pc, pass_rows, parts, ct, options));
    }
  }

  // Assemble output: base columns then one column per aggregate.
  std::vector<Field> fields = base.schema().fields();
  for (const BoundAgg& b : bound) fields.push_back(b.output_field);
  ScopedReservation output_bytes;
  MDJ_RETURN_NOT_OK(output_bytes.Reserve(
      guard,
      base.num_rows() * static_cast<int64_t>(fields.size()) * kGuardBytesPerOutputCell,
      "materialized output"));
  Table out{Schema(std::move(fields))};
  out.Reserve(base.num_rows());
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    std::vector<Value> row = base.GetRow(r);
    for (size_t i = 0; i < bound.size(); ++i) {
      row.push_back(vectorized
                        ? cols[i].Finalize(r)
                        : bound[i].fn->Finalize(*heap_states[i][static_cast<size_t>(r)]));
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace mdjoin
