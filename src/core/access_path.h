#ifndef MDJOIN_CORE_ACCESS_PATH_H_
#define MDJOIN_CORE_ACCESS_PATH_H_

#include <optional>

#include "core/mdjoin.h"
#include "table/clustered_index.h"

namespace mdjoin {

/// A contiguous key range derived from a θ-condition's R-only conjuncts.
struct DetailKeyRange {
  std::optional<Value> lo;  // inclusive; empty = unbounded below
  std::optional<Value> hi;  // inclusive; empty = unbounded above

  bool bounded() const { return lo.has_value() || hi.has_value(); }
};

/// Inspects θ's detail-only conjuncts for comparisons between `key_column`
/// and literals (=, >=, >, <=, <, BETWEEN desugar) and intersects them into
/// one inclusive range. Strict bounds are widened to inclusive — the full θ
/// is still evaluated during the join, so the widening never changes
/// results, it only admits at most the boundary keys into the scan.
DetailKeyRange ExtractDetailKeyRange(const ExprPtr& theta, const std::string& key_column);

/// The automated form of Example 4.1: an MD-join whose detail relation is
/// read through a clustered index. The key range implied by θ is extracted
/// and only that slice of R is scanned (Theorem 4.2 turned into an access
/// path). Results are identical to MdJoin(base, index.table(), ...) —
/// `stats->detail_rows_scanned` shows the savings.
Result<Table> MdJoinIndexedDetail(const Table& base, const ClusteredIndex& detail_index,
                                  const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                                  const MdJoinOptions& options = {},
                                  MdJoinStats* stats = nullptr);

}  // namespace mdjoin

#endif  // MDJOIN_CORE_ACCESS_PATH_H_
