#include "core/access_path.h"

#include "expr/compile.h"
#include "expr/conjuncts.h"

namespace mdjoin {

namespace {

/// True if `e` is a plain reference to `key_column` on the detail side.
bool IsKeyRef(const ExprPtr& e, const std::string& key_column) {
  return e->kind() == ExprKind::kColumnRef && e->side() == Side::kDetail &&
         e->column_name() == key_column;
}

/// Narrows `range` with a single comparison `key <op> literal`.
void NarrowLow(DetailKeyRange* range, const Value& v) {
  if (!range->lo || range->lo->Compare(v) < 0) range->lo = v;
}
void NarrowHigh(DetailKeyRange* range, const Value& v) {
  if (!range->hi || range->hi->Compare(v) > 0) range->hi = v;
}

}  // namespace

DetailKeyRange ExtractDetailKeyRange(const ExprPtr& theta,
                                     const std::string& key_column) {
  DetailKeyRange range;
  ThetaParts parts = AnalyzeTheta(theta);
  for (const ExprPtr& conjunct : parts.detail_only) {
    if (conjunct->kind() != ExprKind::kBinary) continue;
    BinaryOp op = conjunct->binary_op();
    const ExprPtr& l = conjunct->left();
    const ExprPtr& r = conjunct->right();
    // Normalize to key <op> literal.
    ExprPtr lit;
    bool key_on_left;
    if (IsKeyRef(l, key_column) && r->kind() == ExprKind::kLiteral) {
      lit = r;
      key_on_left = true;
    } else if (IsKeyRef(r, key_column) && l->kind() == ExprKind::kLiteral) {
      lit = l;
      key_on_left = false;
    } else {
      continue;
    }
    const Value& v = lit->literal();
    if (v.is_null() || v.is_all()) continue;
    // Mirror the operator when the literal is on the left (5 >= key ⇔ key <= 5).
    switch (op) {
      case BinaryOp::kEq:
        NarrowLow(&range, v);
        NarrowHigh(&range, v);
        break;
      case BinaryOp::kGe:
      case BinaryOp::kGt:  // widened to inclusive; θ recheck keeps exactness
        if (key_on_left) {
          NarrowLow(&range, v);
        } else {
          NarrowHigh(&range, v);
        }
        break;
      case BinaryOp::kLe:
      case BinaryOp::kLt:
        if (key_on_left) {
          NarrowHigh(&range, v);
        } else {
          NarrowLow(&range, v);
        }
        break;
      default:
        break;
    }
  }
  return range;
}

Result<Table> MdJoinIndexedDetail(const Table& base, const ClusteredIndex& detail_index,
                                  const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                                  const MdJoinOptions& options, MdJoinStats* stats) {
  if (theta == nullptr) {
    return Status::InvalidArgument("MdJoinIndexedDetail: θ must not be null");
  }
  DetailKeyRange range = ExtractDetailKeyRange(theta, detail_index.key_column());
  if (!range.bounded()) {
    // No usable key predicate: full clustered scan (still correct).
    return MdJoin(base, detail_index.table(), aggs, theta, options, stats);
  }
  // Unbounded ends fall back to the physical extremes of the table.
  const Table& t = detail_index.table();
  if (t.num_rows() == 0) return MdJoin(base, t, aggs, theta, options, stats);
  MDJ_ASSIGN_OR_RETURN(int key_idx, t.schema().GetFieldIndex(detail_index.key_column()));
  Value lo = range.lo ? *range.lo : t.Get(0, key_idx);
  Value hi = range.hi ? *range.hi : t.Get(t.num_rows() - 1, key_idx);
  if (lo.Compare(hi) > 0) {
    // Contradictory range: empty detail slice; outer semantics still produce
    // every base row with identity aggregates.
    Table empty(t.schema());
    return MdJoin(base, empty, aggs, theta, options, stats);
  }
  Table slice = detail_index.RangeScan(lo, hi);
  return MdJoin(base, slice, aggs, theta, options, stats);
}

}  // namespace mdjoin
