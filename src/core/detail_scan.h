#ifndef MDJOIN_CORE_DETAIL_SCAN_H_
#define MDJOIN_CORE_DETAIL_SCAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "agg/agg_spec.h"
#include "agg/flat_state.h"
#include "common/query_guard.h"
#include "core/base_index.h"
#include "core/mdjoin.h"
#include "expr/compile.h"
#include "expr/conjuncts.h"
#include "expr/kernels.h"
#include "table/table.h"

namespace mdjoin {

/// θ compiled once per query and shared by every pass, fragment, and worker
/// (compilation used to be repeated per pass, which dominated multi-pass runs
/// on small partitions). Read-only after CompileTheta, so one instance can be
/// probed from many threads.
struct CompiledTheta {
  CompiledExpr base_pred;    // B-only conjuncts; invalid when there are none
  CompiledExpr detail_pred;  // pushed-down R-only conjuncts (row path)
  PredicateKernels kernels;  // pushed-down R-only kernels (vectorized path)
  bool has_kernels = false;
  CompiledExpr residual;     // conjuncts evaluated per candidate pair
  bool indexed = false;      // equi part served by a BaseIndex

  // Raw-speed plumbing, resolved once per query from MdJoinOptions: the
  // detail table's typed columnar mirror (null when the table has none or
  // use_flat_columns is off), the SIMD level the kernels were compiled for,
  // and whether flat machinery (typed agg updates, code-key probe memos) may
  // engage at all.
  std::shared_ptr<const TableAccel> accel;
  simd::Level level = simd::Level::kScalar;
  bool use_flat = false;
};

/// Compiles the classified θ-conjuncts for one (base, detail) pair under the
/// given options. Disabled optimizations (pushdown, index) fold their
/// conjuncts back into the residual so results are identical either way.
/// Errors if options.simd pins a backend this build/machine cannot run.
Result<CompiledTheta> CompileTheta(const ThetaParts& parts, const Schema& base_schema,
                                   const Table& detail, const MdJoinOptions& options,
                                   bool vectorized);

/// Thread-local mutable side of a detail scan: partial aggregate accumulators
/// over *all* base rows (global row ids), reusable probe/selection buffers,
/// and a GuardTicket that batches guard accounting so concurrent workers
/// never contend on a shared hot atomic between stride checks.
///
/// The sequential evaluator uses exactly one worker whose partials are the
/// final states; the morsel-driven parallel engine gives each thread its own
/// worker and merges them with MergeWorkerPartials when the cursor drains.
struct DetailScanWorker {
  DetailScanWorker(const Table& base, const std::vector<BoundAgg>& bound_aggs,
                   bool vectorized_mode, QueryGuard* guard);

  DetailScanWorker(const DetailScanWorker&) = delete;
  DetailScanWorker& operator=(const DetailScanWorker&) = delete;

  /// Resets per-index state (the probe memo caches one index's candidate
  /// lists). Must be called whenever the worker switches to a different
  /// DetailScan job; cheap enough to call unconditionally before the first.
  void BeginJob();

  /// Flushes the ticket's pending row/pair counts into the guard and performs
  /// a final check, keeping budgets exact. Call once per pass (sequential) or
  /// once per worker when the morsel cursor drains (parallel).
  Status FinishScan();

  /// Finalized value of aggregate `agg` for base row `base_row`.
  Value FinalizeCell(size_t agg, int64_t base_row) const;

  const std::vector<BoundAgg>* aggs = nullptr;
  bool vectorized = true;

  // Partial accumulators, indexed by global base-row id: flat columns on the
  // vectorized path, one heap AggregateState per (agg, row) on the row path.
  std::vector<AggStateColumn> cols;
  std::vector<std::vector<std::unique_ptr<AggregateState>>> heap;

  // Reusable scan buffers (owned per worker: Probe and the selection loop do
  // zero steady-state allocation, and nothing here is shared across threads).
  BaseIndex::ProbeScratch scratch;
  std::vector<uint32_t> sel;
  std::vector<uint64_t> mask;  // kernel bitmask scratch, 2 * MaskWords(block)
  std::vector<int64_t> candidates;
  std::vector<int64_t> matched_buf;

  GuardTicket ticket;
  MdJoinStats stats;  // local work counters; fold with AccumulateScanStats
};

/// One prepared scan job: the read-only machinery for aggregating a set of
/// base rows (`pass_rows`) against ranges of the detail relation — active-row
/// filter, base index (with its memory reservation held for the job's
/// lifetime), and hoisted aggregate-argument column pointers. Safe to call
/// ScanRange concurrently from many workers; all mutation happens through the
/// caller's DetailScanWorker.
class DetailScan {
 public:
  DetailScan() = default;
  DetailScan(DetailScan&&) = default;
  DetailScan& operator=(DetailScan&&) = default;

  /// `theta` is borrowed and must outlive the scan; `pass_rows` are the base
  /// rows this job aggregates (Theorem 4.1 fragment or multi-pass partition).
  static Result<DetailScan> Prepare(const Table& base, const Table& detail,
                                    const std::vector<BoundAgg>& aggs,
                                    const ThetaParts& parts, const CompiledTheta* theta,
                                    std::vector<int64_t> pass_rows,
                                    const MdJoinOptions& options);

  /// Scans detail rows [lo, hi), folding matches into `worker`'s partials.
  /// Vectorized mode consumes the range block-at-a-time (blocks clamped to
  /// the guard's check stride); row mode is the tuple-at-a-time baseline.
  /// Work counters flush into worker->stats before returning — including on
  /// a guard trip, so cancelled queries report how far they got.
  Status ScanRange(int64_t lo, int64_t hi, DetailScanWorker* worker) const {
    return ScanChunk(*detail_, lo, hi, worker);
  }

  /// The out-of-core seam: scans rows [lo, hi) of `chunk`, a table with the
  /// detail schema that need not be the table given to Prepare — the paged
  /// driver passes each decoded block here, so zone-map pruning, faulting,
  /// and eviction stay outside while every scan optimization (kernels, fused
  /// blocks, index probes) runs unchanged. Row-position machinery bound to
  /// the *prepared* table (its typed accel mirror, hoisted argument columns,
  /// code-key probe memos) engages only when `chunk` IS that table; foreign
  /// chunks resolve arguments per call and probe by value.
  Status ScanChunk(const Table& chunk, int64_t lo, int64_t hi,
                   DetailScanWorker* worker) const;

  int64_t index_masks() const { return index_masks_; }
  int64_t active_rows() const { return static_cast<int64_t>(active_.size()); }

 private:
  const Table* base_ = nullptr;
  const Table* detail_ = nullptr;
  const std::vector<BoundAgg>* aggs_ = nullptr;
  const CompiledTheta* theta_ = nullptr;
  std::vector<int64_t> active_;
  BaseIndex index_;
  ScopedReservation index_bytes_;
  int64_t index_masks_ = 0;
  int64_t block_ = 1024;
  std::vector<const Value*> arg_cols_;  // plain detail-column agg arguments
  bool vectorized_ = true;
};

/// Combines `from`'s partial accumulators group-wise into `into` (Theorem 4.1
/// union / detail-split parallelism). Checks the guard every stride of merged
/// cells — even inside one wide column — so cancellation is honored during
/// the merge tail, not only during scans.
Status MergeWorkerPartials(DetailScanWorker* into, const DetailScanWorker& from,
                           QueryGuard* guard);

/// Adds `from`'s scan-loop counters (rows, pairs, blocks, kernels) into `to`,
/// leaving the pass/index/degradation fields — which belong to the driver —
/// untouched.
inline void AccumulateScanStats(const MdJoinStats& from, MdJoinStats* to) {
  to->detail_rows_scanned += from.detail_rows_scanned;
  to->detail_rows_qualified += from.detail_rows_qualified;
  to->candidate_pairs += from.candidate_pairs;
  to->matched_pairs += from.matched_pairs;
  to->blocks += from.blocks;
  to->kernel_invocations += from.kernel_invocations;
  to->kernel_fallback_rows += from.kernel_fallback_rows;
  to->dense_blocks += from.dense_blocks;
  to->fused_blocks += from.fused_blocks;
  to->index_probe_lookups += from.index_probe_lookups;
  to->index_probe_memo_hits += from.index_probe_memo_hits;
}

}  // namespace mdjoin

#endif  // MDJOIN_CORE_DETAIL_SCAN_H_
