#include "core/base_index.h"

#include <bit>

#include "common/logging.h"

namespace mdjoin {

Result<BaseIndex> BaseIndex::Build(const Table& base, const std::vector<int64_t>& rows,
                                   const std::vector<EquiPair>& equi,
                                   const Schema& detail_schema) {
  BaseIndex index;
  std::vector<CompiledExpr> base_keys;
  base_keys.reserve(equi.size());
  index.detail_keys_.reserve(equi.size());
  for (const EquiPair& pair : equi) {
    MDJ_ASSIGN_OR_RETURN(CompiledExpr bk,
                         CompileExpr(pair.base_expr, &base.schema(), nullptr));
    MDJ_ASSIGN_OR_RETURN(CompiledExpr dk,
                         CompileExpr(pair.detail_expr, nullptr, &detail_schema));
    base_keys.push_back(std::move(bk));
    index.detail_keys_.push_back(std::move(dk));
    // Plain-column keys (the overwhelmingly common case) are read straight
    // from the column during probes, bypassing the compiled closure.
    int col = -1;
    if (pair.detail_expr->kind() == ExprKind::kColumnRef &&
        pair.detail_expr->side() == Side::kDetail) {
      if (std::optional<int> idx =
              detail_schema.FindField(pair.detail_expr->column_name())) {
        col = *idx;
      }
    }
    index.detail_cols_.push_back(col);
  }
  MDJ_CHECK(equi.size() <= 64) << "too many equi conjuncts for ALL-mask";

  std::unordered_map<uint64_t, size_t> bucket_of;
  RowCtx ctx;
  ctx.base = &base;
  for (int64_t row : rows) {
    ctx.base_row = row;
    uint64_t mask = 0;
    RowKey key;
    key.reserve(base_keys.size());
    bool has_null = false;
    for (size_t i = 0; i < base_keys.size(); ++i) {
      Value v = base_keys[i].Eval(ctx);
      if (v.is_null()) {
        has_null = true;
        break;
      }
      if (v.is_all()) {
        mask |= (uint64_t{1} << i);
      } else {
        key.push_back(std::move(v));
      }
    }
    if (has_null) continue;  // NULL key never θ-matches anything
    auto [it, inserted] = bucket_of.try_emplace(mask, index.buckets_.size());
    if (inserted) {
      MaskBucket bucket;
      bucket.all_mask = mask;
      for (size_t i = 0; i < base_keys.size(); ++i) {
        if (!(mask & (uint64_t{1} << i))) {
          bucket.probe_positions.push_back(static_cast<int>(i));
        }
      }
      index.buckets_.push_back(std::move(bucket));
    }
    index.buckets_[it->second].map[std::move(key)].push_back(row);
  }
  return index;
}

namespace {

// Probe-memo tuning: cache at most this many distinct keys, and give up on
// memoization entirely when the warmup window shows the hit rate of a
// high-cardinality key stream (the memo then costs one extra hash per probe).
constexpr size_t kProbeMemoCap = 1 << 14;
constexpr int64_t kProbeMemoWarmup = 1 << 13;

}  // namespace

BaseIndex::ProbeResult BaseIndex::ProbeSpan(const Table& detail, int64_t detail_row,
                                            ProbeScratch* scratch,
                                            std::vector<int64_t>* gather) const {
  const size_t nkeys = detail_keys_.size();
  const bool multi = buckets_.size() > 1;

  // Code-key memo: when every key position is a plain column with a typed
  // mirror, the full detail key encodes into machine words — int64 bits,
  // float64 bits, or a dictionary code, plus a null-tag word — and a memo
  // probe is a word hash. No Value is read, no string is hashed, nothing
  // allocates. (Encoding is injective per position because a flat column has
  // one storage type; two bit-distinct NaNs memoize separately, each to the
  // correct — empty — candidate list, since Equals(NaN, NaN) is false.)
  bool code_memoize = false;
  if (multi && scratch->memo_enabled) {
    if (scratch->codeable < 0) {
      scratch->accel = detail.accel();
      scratch->codeable = scratch->allow_code_keys && scratch->accel != nullptr;
      if (scratch->codeable == 1) {
        for (int col : detail_cols_) {
          if (col < 0 || !scratch->accel->cols[static_cast<size_t>(col)].flat()) {
            scratch->codeable = 0;
            break;
          }
        }
      }
    }
    if (scratch->codeable == 1) {
      scratch->code_key.resize(nkeys + 1);
      uint64_t null_tag = 0;
      for (size_t i = 0; i < nkeys; ++i) {
        const FlatColumn& fc =
            scratch->accel->cols[static_cast<size_t>(detail_cols_[i])];
        const size_t r = static_cast<size_t>(detail_row);
        if (fc.has_nulls && fc.nulls[r]) {
          null_tag |= uint64_t{1} << i;
          scratch->code_key[i] = 0;
        } else if (fc.rep == FlatColumn::Rep::kInt64) {
          scratch->code_key[i] = static_cast<uint64_t>(fc.i64[r]);
        } else if (fc.rep == FlatColumn::Rep::kFloat64) {
          scratch->code_key[i] = std::bit_cast<uint64_t>(fc.f64[r]);
        } else {
          scratch->code_key[i] = static_cast<uint64_t>(
              static_cast<uint32_t>(fc.codes[r]));
        }
      }
      scratch->code_key[nkeys] = null_tag;
      if (++scratch->memo_lookups == kProbeMemoWarmup &&
          scratch->memo_hits * 4 < kProbeMemoWarmup) {
        scratch->memo_enabled = false;
        scratch->code_memo.clear();
      } else {
        auto it = scratch->code_memo.find(
            CodeKeyView{scratch->code_key.data(), scratch->code_key.size()});
        if (it != scratch->code_memo.end()) {
          ++scratch->memo_hits;
          return ProbeResult{it->second.data(),
                             static_cast<int64_t>(it->second.size())};
        }
        code_memoize = scratch->code_memo.size() < kProbeMemoCap;
      }
    }
  }

  // Materialize the detail-side key once per tuple — as pointers. Plain
  // columns alias the cell in place; computed keys evaluate into reused
  // scratch slots.
  scratch->key.clear();
  bool any_all = false;
  bool any_computed = false;
  for (size_t i = 0; i < nkeys; ++i) {
    const Value* v;
    if (detail_cols_[i] >= 0) {
      v = &detail.column(detail_cols_[i])[detail_row];
    } else {
      if (!any_computed) {
        scratch->computed.resize(nkeys);
        any_computed = true;
      }
      RowCtx ctx;
      ctx.detail = &detail;
      ctx.detail_row = detail_row;
      scratch->computed[i] = detail_keys_[i].Eval(ctx);
      v = &scratch->computed[i];
    }
    if (v->is_all()) any_all = true;
    scratch->key.push_back(v);
  }

  // Multi-bucket (cube) indexes pay 2^d map lookups per tuple; when the
  // detail key stream repeats — the cube benchmarks have a few hundred
  // distinct (dims) combinations over millions of rows — one memo lookup on
  // the full key replaces all of them. Single-bucket probes are already one
  // lookup, so the memo would be pure overhead there. Value-keyed memo only
  // when the code keying above was unavailable.
  bool value_memoize = false;
  if (multi && scratch->memo_enabled && scratch->codeable != 1) {
    if (++scratch->memo_lookups == kProbeMemoWarmup &&
        scratch->memo_hits * 4 < kProbeMemoWarmup) {
      // High-cardinality keys: the memo misses its way to the cap. Stop.
      scratch->memo_enabled = false;
      scratch->memo.clear();
    } else {
      auto it = scratch->memo.find(RowKeyView{scratch->key.data(), nkeys});
      if (it != scratch->memo.end()) {
        ++scratch->memo_hits;
        return ProbeResult{it->second.data(),
                           static_cast<int64_t>(it->second.size())};
      }
      value_memoize = scratch->memo.size() < kProbeMemoCap;
    }
  }

  gather->clear();
  const std::vector<int64_t>* single = nullptr;  // span-able single source
  for (const MaskBucket& bucket : buckets_) {
    // Gather the probe key for this bucket's non-ALL positions.
    scratch->probe.clear();
    bool skip = false;
    bool wildcard = false;
    for (int pos : bucket.probe_positions) {
      const Value* v = scratch->key[static_cast<size_t>(pos)];
      if (v->is_null()) {
        skip = true;  // NULL matches no base value
        break;
      }
      if (v->is_all()) {
        wildcard = true;  // detail-side ALL matches every base value
        break;
      }
      scratch->probe.push_back(v);
    }
    if (skip) continue;
    if (any_all && wildcard) {
      // Rare path (detail relation containing ALL): the probe key cannot
      // discriminate, walk the whole bucket.
      if (single != nullptr) {
        gather->insert(gather->end(), single->begin(), single->end());
        single = nullptr;
      }
      for (const auto& [key, row_list] : bucket.map) {
        bool match = true;
        size_t ki = 0;
        for (int pos : bucket.probe_positions) {
          if (!key[ki++].MatchesEq(*scratch->key[static_cast<size_t>(pos)])) {
            match = false;
            break;
          }
        }
        if (match) gather->insert(gather->end(), row_list.begin(), row_list.end());
      }
      continue;
    }
    auto it = bucket.map.find(RowKeyView{scratch->probe.data(), scratch->probe.size()});
    if (it == bucket.map.end()) continue;
    // First hit spans the bucket's list in place; a second hit (cube index)
    // downgrades to gathering. Single-bucket indexes therefore never copy.
    if (single == nullptr && gather->empty()) {
      single = &it->second;
    } else {
      if (single != nullptr) {
        gather->insert(gather->end(), single->begin(), single->end());
        single = nullptr;
      }
      gather->insert(gather->end(), it->second.begin(), it->second.end());
    }
  }

  ProbeResult result =
      single != nullptr
          ? ProbeResult{single->data(), static_cast<int64_t>(single->size())}
          : ProbeResult{gather->data(), static_cast<int64_t>(gather->size())};

  // Memo inserts store an owned copy and return a span of the stored vector
  // (node-based map: mapped vectors stay put across rehash).
  if (code_memoize) {
    auto [it, inserted] = scratch->code_memo.emplace(
        scratch->code_key, std::vector<int64_t>(result.rows, result.rows + result.count));
    return ProbeResult{it->second.data(), static_cast<int64_t>(it->second.size())};
  }
  if (value_memoize) {
    RowKey owned;
    owned.reserve(nkeys);
    for (size_t i = 0; i < nkeys; ++i) owned.push_back(*scratch->key[i]);
    auto [it, inserted] = scratch->memo.emplace(
        std::move(owned), std::vector<int64_t>(result.rows, result.rows + result.count));
    return ProbeResult{it->second.data(), static_cast<int64_t>(it->second.size())};
  }
  return result;
}

void BaseIndex::Probe(const Table& detail, int64_t detail_row, ProbeScratch* scratch,
                      std::vector<int64_t>* out) const {
  // ProbeSpan needs a gather buffer that outlives the span; out may already
  // hold rows the caller wants kept, so gather separately then append.
  thread_local std::vector<int64_t> gather;
  ProbeResult r = ProbeSpan(detail, detail_row, scratch, &gather);
  out->insert(out->end(), r.rows, r.rows + r.count);
}

void BaseIndex::Probe(const RowCtx& detail_ctx, std::vector<int64_t>* out) const {
  ProbeScratch scratch;
  // A single-probe scratch can never see a repeat; don't pay for the memo.
  scratch.memo_enabled = false;
  Probe(*detail_ctx.detail, detail_ctx.detail_row, &scratch, out);
}

}  // namespace mdjoin
