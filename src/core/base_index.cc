#include "core/base_index.h"

#include "common/logging.h"

namespace mdjoin {

Result<BaseIndex> BaseIndex::Build(const Table& base, const std::vector<int64_t>& rows,
                                   const std::vector<EquiPair>& equi,
                                   const Schema& detail_schema) {
  BaseIndex index;
  std::vector<CompiledExpr> base_keys;
  base_keys.reserve(equi.size());
  index.detail_keys_.reserve(equi.size());
  for (const EquiPair& pair : equi) {
    MDJ_ASSIGN_OR_RETURN(CompiledExpr bk,
                         CompileExpr(pair.base_expr, &base.schema(), nullptr));
    MDJ_ASSIGN_OR_RETURN(CompiledExpr dk,
                         CompileExpr(pair.detail_expr, nullptr, &detail_schema));
    base_keys.push_back(std::move(bk));
    index.detail_keys_.push_back(std::move(dk));
  }
  MDJ_CHECK(equi.size() <= 64) << "too many equi conjuncts for ALL-mask";

  std::unordered_map<uint64_t, size_t> bucket_of;
  RowCtx ctx;
  ctx.base = &base;
  for (int64_t row : rows) {
    ctx.base_row = row;
    uint64_t mask = 0;
    RowKey key;
    key.reserve(base_keys.size());
    bool has_null = false;
    for (size_t i = 0; i < base_keys.size(); ++i) {
      Value v = base_keys[i].Eval(ctx);
      if (v.is_null()) {
        has_null = true;
        break;
      }
      if (v.is_all()) {
        mask |= (uint64_t{1} << i);
      } else {
        key.push_back(std::move(v));
      }
    }
    if (has_null) continue;  // NULL key never θ-matches anything
    auto [it, inserted] = bucket_of.try_emplace(mask, index.buckets_.size());
    if (inserted) {
      MaskBucket bucket;
      bucket.all_mask = mask;
      for (size_t i = 0; i < base_keys.size(); ++i) {
        if (!(mask & (uint64_t{1} << i))) {
          bucket.probe_positions.push_back(static_cast<int>(i));
        }
      }
      index.buckets_.push_back(std::move(bucket));
    }
    index.buckets_[it->second].map[std::move(key)].push_back(row);
  }
  return index;
}

void BaseIndex::Probe(const RowCtx& detail_ctx, std::vector<int64_t>* out) const {
  // Evaluate the detail-side key once per tuple.
  RowKey detail_key;
  detail_key.reserve(detail_keys_.size());
  bool any_all = false;
  for (const CompiledExpr& dk : detail_keys_) {
    Value v = dk.Eval(detail_ctx);
    if (v.is_all()) any_all = true;
    detail_key.push_back(std::move(v));
  }

  for (const MaskBucket& bucket : buckets_) {
    // Gather the probe key for this bucket's non-ALL positions.
    RowKey probe;
    probe.reserve(bucket.probe_positions.size());
    bool skip = false;
    bool wildcard = false;
    for (int pos : bucket.probe_positions) {
      const Value& v = detail_key[static_cast<size_t>(pos)];
      if (v.is_null()) {
        skip = true;  // NULL matches no base value
        break;
      }
      if (v.is_all()) {
        wildcard = true;  // detail-side ALL matches every base value
        break;
      }
      probe.push_back(v);
    }
    if (skip) continue;
    if (any_all && wildcard) {
      // Rare path (detail relation containing ALL): the probe key cannot
      // discriminate, walk the whole bucket.
      for (const auto& [key, row_list] : bucket.map) {
        bool match = true;
        size_t ki = 0;
        for (int pos : bucket.probe_positions) {
          if (!key[ki++].MatchesEq(detail_key[static_cast<size_t>(pos)])) {
            match = false;
            break;
          }
        }
        if (match) out->insert(out->end(), row_list.begin(), row_list.end());
      }
      continue;
    }
    auto it = bucket.map.find(probe);
    if (it != bucket.map.end()) {
      out->insert(out->end(), it->second.begin(), it->second.end());
    }
  }
}

}  // namespace mdjoin
