#include "core/base_index.h"

#include "common/logging.h"

namespace mdjoin {

Result<BaseIndex> BaseIndex::Build(const Table& base, const std::vector<int64_t>& rows,
                                   const std::vector<EquiPair>& equi,
                                   const Schema& detail_schema) {
  BaseIndex index;
  std::vector<CompiledExpr> base_keys;
  base_keys.reserve(equi.size());
  index.detail_keys_.reserve(equi.size());
  for (const EquiPair& pair : equi) {
    MDJ_ASSIGN_OR_RETURN(CompiledExpr bk,
                         CompileExpr(pair.base_expr, &base.schema(), nullptr));
    MDJ_ASSIGN_OR_RETURN(CompiledExpr dk,
                         CompileExpr(pair.detail_expr, nullptr, &detail_schema));
    base_keys.push_back(std::move(bk));
    index.detail_keys_.push_back(std::move(dk));
    // Plain-column keys (the overwhelmingly common case) are read straight
    // from the column during probes, bypassing the compiled closure.
    int col = -1;
    if (pair.detail_expr->kind() == ExprKind::kColumnRef &&
        pair.detail_expr->side() == Side::kDetail) {
      if (std::optional<int> idx =
              detail_schema.FindField(pair.detail_expr->column_name())) {
        col = *idx;
      }
    }
    index.detail_cols_.push_back(col);
  }
  MDJ_CHECK(equi.size() <= 64) << "too many equi conjuncts for ALL-mask";

  std::unordered_map<uint64_t, size_t> bucket_of;
  RowCtx ctx;
  ctx.base = &base;
  for (int64_t row : rows) {
    ctx.base_row = row;
    uint64_t mask = 0;
    RowKey key;
    key.reserve(base_keys.size());
    bool has_null = false;
    for (size_t i = 0; i < base_keys.size(); ++i) {
      Value v = base_keys[i].Eval(ctx);
      if (v.is_null()) {
        has_null = true;
        break;
      }
      if (v.is_all()) {
        mask |= (uint64_t{1} << i);
      } else {
        key.push_back(std::move(v));
      }
    }
    if (has_null) continue;  // NULL key never θ-matches anything
    auto [it, inserted] = bucket_of.try_emplace(mask, index.buckets_.size());
    if (inserted) {
      MaskBucket bucket;
      bucket.all_mask = mask;
      for (size_t i = 0; i < base_keys.size(); ++i) {
        if (!(mask & (uint64_t{1} << i))) {
          bucket.probe_positions.push_back(static_cast<int>(i));
        }
      }
      index.buckets_.push_back(std::move(bucket));
    }
    index.buckets_[it->second].map[std::move(key)].push_back(row);
  }
  return index;
}

namespace {

// Probe-memo tuning: cache at most this many distinct keys, and give up on
// memoization entirely when the warmup window shows the hit rate of a
// high-cardinality key stream (the memo then costs one extra hash per probe).
constexpr size_t kProbeMemoCap = 1 << 14;
constexpr int64_t kProbeMemoWarmup = 1 << 13;

}  // namespace

void BaseIndex::Probe(const Table& detail, int64_t detail_row, ProbeScratch* scratch,
                      std::vector<int64_t>* out) const {
  const size_t nkeys = detail_keys_.size();
  // Materialize the detail-side key once per tuple — as pointers. Plain
  // columns alias the cell in place; computed keys evaluate into reused
  // scratch slots.
  scratch->key.clear();
  bool any_all = false;
  bool any_computed = false;
  for (size_t i = 0; i < nkeys; ++i) {
    const Value* v;
    if (detail_cols_[i] >= 0) {
      v = &detail.column(detail_cols_[i])[detail_row];
    } else {
      if (!any_computed) {
        scratch->computed.resize(nkeys);
        any_computed = true;
      }
      RowCtx ctx;
      ctx.detail = &detail;
      ctx.detail_row = detail_row;
      scratch->computed[i] = detail_keys_[i].Eval(ctx);
      v = &scratch->computed[i];
    }
    if (v->is_all()) any_all = true;
    scratch->key.push_back(v);
  }

  // Multi-bucket (cube) indexes pay 2^d map lookups per tuple; when the
  // detail key stream repeats — the cube benchmarks have a few hundred
  // distinct (dims) combinations over millions of rows — one memo lookup on
  // the full key replaces all of them. Single-bucket probes are already one
  // lookup, so the memo would be pure overhead there.
  size_t memo_from = 0;
  bool memoize = false;
  if (buckets_.size() > 1 && scratch->memo_enabled) {
    if (++scratch->memo_lookups == kProbeMemoWarmup &&
        scratch->memo_hits * 4 < kProbeMemoWarmup) {
      // High-cardinality keys: the memo misses its way to the cap. Stop.
      scratch->memo_enabled = false;
      scratch->memo.clear();
    } else {
      auto it = scratch->memo.find(RowKeyView{scratch->key.data(), nkeys});
      if (it != scratch->memo.end()) {
        ++scratch->memo_hits;
        out->insert(out->end(), it->second.begin(), it->second.end());
        return;
      }
      memoize = scratch->memo.size() < kProbeMemoCap;
      memo_from = out->size();
    }
  }

  for (const MaskBucket& bucket : buckets_) {
    // Gather the probe key for this bucket's non-ALL positions.
    scratch->probe.clear();
    bool skip = false;
    bool wildcard = false;
    for (int pos : bucket.probe_positions) {
      const Value* v = scratch->key[static_cast<size_t>(pos)];
      if (v->is_null()) {
        skip = true;  // NULL matches no base value
        break;
      }
      if (v->is_all()) {
        wildcard = true;  // detail-side ALL matches every base value
        break;
      }
      scratch->probe.push_back(v);
    }
    if (skip) continue;
    if (any_all && wildcard) {
      // Rare path (detail relation containing ALL): the probe key cannot
      // discriminate, walk the whole bucket.
      for (const auto& [key, row_list] : bucket.map) {
        bool match = true;
        size_t ki = 0;
        for (int pos : bucket.probe_positions) {
          if (!key[ki++].MatchesEq(*scratch->key[static_cast<size_t>(pos)])) {
            match = false;
            break;
          }
        }
        if (match) out->insert(out->end(), row_list.begin(), row_list.end());
      }
      continue;
    }
    auto it = bucket.map.find(RowKeyView{scratch->probe.data(), scratch->probe.size()});
    if (it != bucket.map.end()) {
      out->insert(out->end(), it->second.begin(), it->second.end());
    }
  }

  if (memoize) {
    RowKey owned;
    owned.reserve(nkeys);
    for (size_t i = 0; i < nkeys; ++i) owned.push_back(*scratch->key[i]);
    scratch->memo.emplace(std::move(owned),
                          std::vector<int64_t>(out->begin() +
                                                   static_cast<int64_t>(memo_from),
                                               out->end()));
  }
}

void BaseIndex::Probe(const RowCtx& detail_ctx, std::vector<int64_t>* out) const {
  ProbeScratch scratch;
  // A single-probe scratch can never see a repeat; don't pay for the memo.
  scratch.memo_enabled = false;
  Probe(*detail_ctx.detail, detail_ctx.detail_row, &scratch, out);
}

}  // namespace mdjoin
