#ifndef MDJOIN_CORE_MDJOIN_H_
#define MDJOIN_CORE_MDJOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "agg/agg_spec.h"
#include "common/query_guard.h"
#include "common/result.h"
#include "common/simd.h"
#include "expr/expr.h"
#include "table/table.h"

namespace mdjoin {

/// How the scan of R is executed. Both modes produce identical results; the
/// vectorized path is an execution-level rewrite, not a semantic one.
enum class ExecutionMode {
  /// Pick automatically. Currently always the vectorized path: its per-row
  /// fallbacks (holistic aggregates, UDAFs, residual θ-conjuncts) keep
  /// results identical, so there is no semantic reason to prefer row mode.
  kAuto,

  /// Block-at-a-time: detail rows are processed in fixed-size blocks,
  /// detail-only θ-conjuncts run as columnar predicate kernels producing a
  /// selection vector, and builtin distributive/algebraic aggregates update
  /// flat typed state columns with non-virtual kernels.
  kVectorized,

  /// Tuple-at-a-time Algorithm 3.1 as literally stated: one compiled-closure
  /// predicate evaluation and one heap aggregate-state update per row. Kept
  /// as the ablation baseline for the vectorization experiments.
  kRow,
};

/// Evaluation knobs for MdJoin(). The defaults give the fully-optimized
/// single-operator plan; benches flip individual flags to ablate each
/// optimization from the paper.
struct MdJoinOptions {
  /// §4.5: hash the base relation on the equi part of θ so each detail tuple
  /// only visits (a superset of) its relative set Rel(t). When false,
  /// Algorithm 3.1 degenerates to the nested loop of its literal statement.
  bool use_index = true;

  /// Theorem 4.2: evaluate the R-only conjuncts of θ first and skip
  /// non-qualifying detail tuples before probing.
  bool push_detail_selection = true;

  /// §4.1.1 / Theorem 4.1: maximum number of base rows processed per pass
  /// over the detail relation, simulating a memory budget for B. 0 means
  /// unlimited (single pass). With a budget of m rows and |B| = n, the
  /// evaluator makes ceil(n/m) passes, exactly the trade the paper describes:
  /// "a well-defined increase in the number of scans of R".
  int64_t base_rows_per_pass = 0;

  /// Scan style for R; see ExecutionMode. Results are identical across modes
  /// (enforced by the A/B property tests).
  ExecutionMode execution_mode = ExecutionMode::kAuto;

  /// Detail rows per block in the vectorized path. Sized so a block's column
  /// slices and selection vector stay cache-resident; the default follows
  /// the conventional 1K-row vector size. Values < 1 fall back to 1024.
  int block_size = 1024;

  /// Detail rows per morsel in the morsel-driven parallel engine
  /// (parallel/parallel_mdjoin.cc): the unit of work a thread claims from the
  /// shared cursor. 0 (default) aligns morsels to `block_size` so every
  /// morsel runs whole vectorized blocks. Setting it to detail.num_rows()
  /// degenerates to the legacy static fragment split (one unit per job) —
  /// the ablation baseline in bench E10.
  int64_t morsel_size = 0;

  /// Worker threads for plan execution (optimizer/executor.cc): 1 (default)
  /// evaluates MD-join nodes sequentially; > 1 routes them through the
  /// morsel-driven parallel engine with this many threads. The low-level
  /// MdJoin() entry point ignores this knob — callers pick parallelism
  /// explicitly via ParallelMdJoin*.
  int num_threads = 1;

  /// Optional per-query resource governor (cancellation, deadline, memory
  /// accounting, work budgets), shared by every operator/pass/fragment of
  /// one query. Not owned; must outlive the call. When the guard carries a
  /// soft memory budget, the classic path degrades to multi-pass evaluation
  /// (Theorem 4.1) under pressure instead of failing.
  QueryGuard* guard = nullptr;

  /// Instruction-set backend for the block predicate kernels (common/simd.h).
  /// kAuto picks the widest level this build and machine support. Pinning a
  /// backend the machine cannot run (e.g. kAvx2 on ARM, or any non-scalar
  /// level in an MDJOIN_SIMD=OFF build) is a compile-time error from
  /// MdJoin(), never a silent fallback — A/B arms mean what they say.
  simd::Backend simd = simd::Backend::kAuto;

  /// Use the detail table's typed columnar mirror (table/table_accel.h) when
  /// it has one: flat predicate kernels over primitive payloads, dictionary
  /// codes for string θ-tests, typed aggregate updates, and allocation-free
  /// code-key probe memos. false restores the pure Value-at-a-time vectorized
  /// path — the PR-2-era baseline arm of the raw-speed benches.
  bool use_flat_columns = true;

  /// Evaluate residual θ-conjuncts (and other compiled expressions inside
  /// this join) through the flat bytecode interpreter (expr/bytecode.h).
  /// false pins the closure-tree walker. The MDJOIN_THETA_BYTECODE=0
  /// environment variable overrides both to the tree walker process-wide.
  bool theta_bytecode = true;

  /// Debug invariant mode: the plan executor runs the full static analyzer
  /// (analyze/plan_analyzer.h) over the plan before executing it and fails
  /// fast with a structured diagnostic instead of evaluating an ill-formed
  /// tree. Also enabled (independently of this flag) by setting the
  /// MDJOIN_VERIFY_PLANS environment variable to a non-empty value other
  /// than "0". Ignored by the low-level MdJoin() table entry point, which
  /// has no plan to verify.
  bool verify_plans = false;

  // --- Out-of-core knobs (storage/out_of_core.h consumes these; the
  // in-memory MdJoin() ignores them). Declared here, opaquely, so one options
  // struct travels the whole stack without core linking against storage. ---

  /// Shared decoded-block cache for paged detail scans; not owned, may be
  /// null (every fault then decodes fresh — correct, just slower).
  class BlockCache* block_cache = nullptr;

  /// Allow the paged driver to hash-partition B and R to spill files when the
  /// guard's soft memory budget cannot hold the aggregate state, instead of
  /// (or after) degrading to Theorem-4.1 multi-pass.
  bool enable_spill = false;

  /// Directory for spill partition files; empty picks the system temp dir.
  std::string spill_dir;

  /// Spill fan-out; 0 sizes it from the guard budget (clamped to [2, 64]).
  int spill_partitions = 0;

  /// Plan-fingerprint feedback store (stats/feedback.h), opaque for the same
  /// layering reason as block_cache: core never dereferences it. When set,
  /// EXPLAIN ANALYZE estimates cardinalities from it and harvests measured
  /// ones back into it after a complete run. Not owned, may be null.
  class FeedbackStore* feedback = nullptr;
};

/// Engine-side byte estimates used by the guard's memory accountant. They
/// deliberately over-approximate container overhead a little: the accountant
/// exists to bound blow-ups and trigger degradation, not to audit malloc.
constexpr int64_t kGuardBytesPerAggState = 64;        // one AggregateState
constexpr int64_t kGuardBytesPerIndexedBaseRow = 128; // BaseIndex entry
constexpr int64_t kGuardBytesPerOutputCell = 48;      // one materialized Value

/// Work counters exposed for the experiment harness; incremented across all
/// passes.
struct MdJoinStats {
  int64_t base_rows = 0;
  int64_t detail_rows_scanned = 0;   // tuples read from R (all passes)
  int64_t detail_rows_qualified = 0; // tuples surviving pushed-down selection
  int64_t candidate_pairs = 0;       // (b, t) pairs tested after index pruning
  int64_t matched_pairs = 0;         // pairs satisfying θ
  int64_t passes_over_detail = 0;    // 1 unless base_rows_per_pass forces more
  int64_t index_masks = 0;           // ALL-mask buckets in the base index
  int64_t base_rows_per_pass_effective = 0;  // after guard memory degradation
  bool memory_degraded = false;      // guard budget forced extra passes

  // Vectorized-path counters; all zero when the row path ran.
  int64_t blocks = 0;                // detail blocks processed (all passes)
  int64_t kernel_invocations = 0;    // columnar predicate kernel runs
  int64_t kernel_fallback_rows = 0;  // rows filtered per-row inside blocks
  int64_t dense_blocks = 0;          // blocks whose selection stayed all-rows
  int64_t fused_blocks = 0;          // blocks aggregated without per-row probes

  // Cube-index probe-memo counters (BaseIndex::ProbeScratch): lookups into
  // the full-key → candidate-list cache and the hits among them. Zero when
  // the memo never engaged (non-cube θ or a disabled index).
  int64_t index_probe_lookups = 0;
  int64_t index_probe_memo_hits = 0;

  // Out-of-core counters (storage/out_of_core.cc); zero on in-memory runs.
  // blocks_read = faulted + cache hits; pruned blocks were refuted by their
  // zone maps and never decoded.
  int64_t blocks_read = 0;
  int64_t blocks_pruned = 0;
  int64_t blocks_faulted = 0;   // loader actually ran (cache miss or no cache)
  int64_t block_cache_hits = 0;
  int64_t spill_partitions = 0; // partition pairs spilled and joined
  int64_t spill_bytes_written = 0;

  std::string ToString() const;
};

/// The MD-join MD(B, R, l, θ) of Definition 3.1, evaluated with
/// Algorithm 3.1.
///
/// Output: every row of `base` (in order) extended with one column per
/// AggSpec in `aggs`, aggregating the multiset RNG(b, R, θ) = {t ∈ R :
/// θ(b,t)}. Row count always equals base.num_rows() — the outer-join
/// semantics that makes pivoting queries come out right (Example 2.2).
///
/// `theta` references base columns via Side::kBase (dsl::BCol) and detail
/// columns via Side::kDetail (dsl::RCol); equality is ALL-wildcard (cube
/// rows aggregate at their granularity). Aggregate arguments are expressions
/// over the detail row.
Result<Table> MdJoin(const Table& base, const Table& detail,
                     const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                     const MdJoinOptions& options = {}, MdJoinStats* stats = nullptr);

}  // namespace mdjoin

#endif  // MDJOIN_CORE_MDJOIN_H_
