#ifndef MDJOIN_CORE_INCREMENTAL_H_
#define MDJOIN_CORE_INCREMENTAL_H_

#include "core/mdjoin.h"

namespace mdjoin {

/// Incremental maintenance of a materialized MD-join (an OLAP report or a
/// cube) under detail-relation appends:
///
///   MD(B, R ∪ ΔR, l, θ)  =  combine(MD(B, R, l, θ), MD(B, ΔR, l, θ))
///
/// for distributive `l` — the same algebraic fact as Theorem 4.5's roll-up
/// (partials combine via the roll-up function: counts add, sums add, min/max
/// take extremes), applied along the data axis instead of the granularity
/// axis. Only ΔR is scanned; the previous result is updated column-wise.
///
/// `previous` must be a prior MdJoin output for (`aggs`, `theta`): its first
/// columns are the base relation, followed by one column per AggSpec in
/// order. Row order is preserved. Errors if `aggs` is not all-distributive
/// or if `previous`'s schema does not match base+aggs.
///
/// Floating-point caveat: float64 SUMs maintained incrementally add in a
/// different order than a from-scratch recomputation, so the two can differ
/// in the last ulps (IEEE addition is not associative). Integer sums and
/// counts are exact. Compare with TablesApproxEqualOrdered when validating.
Result<Table> MdJoinApplyDelta(const Table& previous, const Table& delta_detail,
                               const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                               const MdJoinOptions& options = {},
                               MdJoinStats* stats = nullptr);

}  // namespace mdjoin

#endif  // MDJOIN_CORE_INCREMENTAL_H_
