#ifndef MDJOIN_STATS_TABLE_STATS_H_
#define MDJOIN_STATS_TABLE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"
#include "types/value.h"

namespace mdjoin {

/// Per-table / per-column statistics (ROADMAP item 3, observability half).
/// An AnalyzeTable scan produces a TableStats; the catalog carries it as an
/// opaque pointer (Catalog::RegisterStats) so the cost model can replace its
/// hard-coded selectivity constants with measured facts. Statistics are
/// advisory: they only re-rank certified rewrite alternatives, so a stale or
/// missing TableStats can never change query results — just plan choices.

/// Comparison shape of a `column <op> literal` conjunct, as the stats layer
/// sees it. Deliberately local to stats (not expr's BinaryOp) so this library
/// stays below the expression layer; the cost model maps one onto the other.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// HyperLogLog-style NDV sketch: 2^kPrecision one-byte registers tracking the
/// maximum leading-zero run observed per register. Standard error is
/// ~1.04/sqrt(m) ≈ 3.3% at the default 1024 registers — plenty for ranking
/// plans (stats_test pins a 15% property bound). Hashes are finalized through
/// a 64-bit avalanche mix before use, because Value::Hash of small integers
/// is nearly the identity on common standard libraries.
class HllSketch {
 public:
  static constexpr int kPrecision = 10;               // 1024 registers
  static constexpr int kRegisters = 1 << kPrecision;  // one byte each

  HllSketch() : registers_(kRegisters, 0) {}

  void Add(const Value& v) { AddHash(v.Hash()); }
  void AddHash(uint64_t hash);

  /// Cardinality estimate with the small-range (linear counting) correction.
  int64_t Estimate() const;

  /// Registers touched; 0 means nothing was added.
  int64_t nonzero_registers() const;

 private:
  std::vector<uint8_t> registers_;
};

/// Equi-depth histogram over the sorted non-NULL, non-ALL values of one
/// column: every bucket holds ~the same number of rows, so selectivity reads
/// off as (buckets below) + (interpolated fraction within one bucket). The
/// classic estimation bound applies: any range estimate is within ~1/buckets
/// of the true fraction (stats_test pins 2/buckets + epsilon on random data).
struct EquiDepthHistogram {
  std::vector<Value> upper;     // inclusive upper edge of each bucket
  std::vector<int64_t> counts;  // rows per bucket (equal to within 1, by construction)
  Value min;                    // smallest covered value
  int64_t total = 0;            // rows covered (non-NULL, non-ALL)

  bool valid() const { return total > 0 && !upper.empty(); }

  /// P(x <= v) over the covered rows, with linear interpolation inside the
  /// straddled bucket for numeric columns (strings assume mid-bucket).
  double FractionLessOrEqual(const Value& v) const;
};

/// Statistics of one column, from one AnalyzeTable scan.
struct ColumnStats {
  std::string name;
  int64_t num_rows = 0;
  int64_t null_count = 0;
  int64_t all_count = 0;  // Gray et al. roll-up markers (base-values tables)
  int64_t ndv = 0;        // HLL estimate over non-NULL, non-ALL values
  Value min;              // Value::Null() when no plain values exist
  Value max;
  EquiDepthHistogram histogram;

  /// Estimated fraction of rows satisfying `column <op> literal` under the
  /// engine's θ semantics: NULL rows never match; ALL rows match kEq (the
  /// wildcard) and never match ordered comparisons. Always in [0, 1].
  double SelectivityCmp(CmpOp op, const Value& literal) const;
};

struct TableStats {
  std::string table_name;
  int64_t num_rows = 0;
  std::vector<ColumnStats> columns;  // schema order

  const ColumnStats* FindColumn(const std::string& name) const;

  /// Human-readable report for the CLI --stats-dump exit summary.
  std::string SummaryText() const;
};

struct AnalyzeOptions {
  int histogram_buckets = 32;
};

/// Full-scan statistics collection (CLI --analyze). One pass per column:
/// counts, min/max, an HLL NDV sketch, and an equi-depth histogram (the
/// histogram sorts a copy of the column, so this is an offline operation,
/// not a per-query one). Increments mdjoin_stats_tables_analyzed_total.
Result<TableStats> AnalyzeTable(const Table& table, std::string table_name,
                                const AnalyzeOptions& options = {});

}  // namespace mdjoin

#endif  // MDJOIN_STATS_TABLE_STATS_H_
