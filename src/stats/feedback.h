#ifndef MDJOIN_STATS_FEEDBACK_H_
#define MDJOIN_STATS_FEEDBACK_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"

namespace mdjoin {

/// Execution feedback for the cost model (ROADMAP item 3): measured output
/// cardinalities and scan selectivities keyed by canonicalized plan
/// fingerprints, harvested from completed QueryProfiles. The second run of a
/// repeated dashboard-style query estimates from what the first run actually
/// measured instead of the hard-coded constants — Q-error strictly decreases
/// (asserted by stats_test and the CI stats job).
///
/// Feedback is advisory: it re-ranks certified rewrite alternatives and
/// annotates EXPLAIN ANALYZE estimates, never changing results.

/// FNV-1a over `s`. Plan fingerprints hash the canonical ExplainPlan
/// rendering — the same canonical form the result cache keys on
/// (server/result_cache.h MakePlanCacheKey), so cache identity and feedback
/// identity agree.
uint64_t FingerprintString(const std::string& s);

/// One feedback fact, EWMA-smoothed over runs. Negative fields were never
/// observed for this fingerprint.
struct FeedbackEntry {
  double output_rows = -1;          // measured operator output cardinality
  double detail_rows_scanned = -1;  // MD-join nodes: rows read from R
  double selectivity = -1;          // MD-join nodes: qualified / scanned
  int64_t observations = 0;
};

/// Bounded, thread-safe fingerprint → FeedbackEntry map. When full, the
/// oldest-inserted fingerprint is evicted (FIFO): dashboards re-observe
/// their fingerprints every run, so recency ≈ relevance here.
class FeedbackStore {
 public:
  struct Options {
    size_t max_entries = 4096;
    /// EWMA weight of the newest observation. 0.5 converges in a couple of
    /// runs while still damping one-off outliers (a guard-degraded run, say).
    double ewma_alpha = 0.5;
  };

  FeedbackStore();
  explicit FeedbackStore(const Options& options);

  /// Folds one measured observation into the entry for `fingerprint`.
  /// Negative arguments leave the corresponding field untouched.
  void Record(uint64_t fingerprint, double output_rows,
              double detail_rows_scanned = -1, double selectivity = -1)
      MDJ_EXCLUDES(mu_);

  /// The smoothed entry, or nullopt. Increments mdjoin_feedback_hits_total
  /// on a hit (the fleet-wide signal that estimates run on feedback).
  std::optional<FeedbackEntry> Lookup(uint64_t fingerprint) const
      MDJ_EXCLUDES(mu_);

  int64_t size() const MDJ_EXCLUDES(mu_);
  void Clear() MDJ_EXCLUDES(mu_);

 private:
  const Options options_;
  mutable Mutex mu_;
  std::unordered_map<uint64_t, FeedbackEntry> entries_ MDJ_GUARDED_BY(mu_);
  std::vector<uint64_t> insertion_order_ MDJ_GUARDED_BY(mu_);
  size_t evict_next_ MDJ_GUARDED_BY(mu_) = 0;  // FIFO cursor into insertion_order_
};

}  // namespace mdjoin

#endif  // MDJOIN_STATS_FEEDBACK_H_
