#include "stats/query_log.h"

#include <cinttypes>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdjoin {

namespace {

Counter* QueriesLoggedCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_queries_logged_total", "query records appended to the history");
  return c;
}

Counter* SlowQueriesCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_slow_queries_total",
      "queries whose wall time exceeded --slow-query-ms");
  return c;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out->push_back(c);
    }
  }
}

/// Finds `"key":` in `line` and returns the character index just past the
/// colon (skipping spaces), or npos.
size_t FindValue(const std::string& line, const char* key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return std::string::npos;
  pos += needle.size();
  while (pos < line.size() && line[pos] == ' ') ++pos;
  return pos;
}

bool ParseU64(const std::string& line, const char* key, uint64_t* out) {
  size_t pos = FindValue(line, key);
  if (pos == std::string::npos) return false;
  if (line[pos] == '"') ++pos;  // fingerprints are quoted decimal
  *out = std::strtoull(line.c_str() + pos, nullptr, 10);
  return true;
}

bool ParseI64(const std::string& line, const char* key, int64_t* out) {
  size_t pos = FindValue(line, key);
  if (pos == std::string::npos) return false;
  *out = std::strtoll(line.c_str() + pos, nullptr, 10);
  return true;
}

bool ParseDouble(const std::string& line, const char* key, double* out) {
  size_t pos = FindValue(line, key);
  if (pos == std::string::npos) return false;
  *out = std::strtod(line.c_str() + pos, nullptr);
  return true;
}

bool ParseBool(const std::string& line, const char* key, bool* out) {
  size_t pos = FindValue(line, key);
  if (pos == std::string::npos) return false;
  *out = line.compare(pos, 4, "true") == 0;
  return true;
}

bool ParseString(const std::string& line, const char* key, std::string* out) {
  size_t pos = FindValue(line, key);
  if (pos == std::string::npos || line[pos] != '"') return false;
  ++pos;
  out->clear();
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;
    out->push_back(line[pos++]);
  }
  return true;
}

}  // namespace

std::string QueryRecord::ToJsonl() const {
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"fingerprint\":\"%" PRIu64 "\",\"plan_hash\":\"%" PRIu64
                "\",\"wall_ms\":%.3f,\"cpu_ms\":%.3f,\"rows\":%lld",
                fingerprint, plan_hash, wall_ms, cpu_ms,
                static_cast<long long>(rows));
  out += buf;
  out += ",\"outcome\":\"";
  AppendEscaped(&out, outcome);
  out += "\",\"cache\":\"";
  AppendEscaped(&out, cache);
  out += "\"";
  std::snprintf(buf, sizeof(buf),
                ",\"queue_wait_ms\":%lld,\"detail_rows_scanned\":%lld"
                ",\"blocks_read\":%lld,\"spill_bytes\":%lld",
                static_cast<long long>(queue_wait_ms),
                static_cast<long long>(detail_rows_scanned),
                static_cast<long long>(blocks_read),
                static_cast<long long>(spill_bytes));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"guard_tripped\":%s,\"max_qerror\":%.3f,\"slow\":%s}",
                guard_tripped ? "true" : "false", max_qerror,
                slow ? "true" : "false");
  out += buf;
  return out;
}

Result<QueryRecord> QueryRecord::FromJsonl(const std::string& line) {
  QueryRecord r;
  if (!ParseU64(line, "fingerprint", &r.fingerprint) ||
      !ParseU64(line, "plan_hash", &r.plan_hash) ||
      !ParseDouble(line, "wall_ms", &r.wall_ms) ||
      !ParseI64(line, "rows", &r.rows) ||
      !ParseString(line, "outcome", &r.outcome)) {
    return Status::InvalidArgument("query-log line missing required keys: " +
                                   line);
  }
  ParseDouble(line, "cpu_ms", &r.cpu_ms);
  ParseString(line, "cache", &r.cache);
  ParseI64(line, "queue_wait_ms", &r.queue_wait_ms);
  ParseI64(line, "detail_rows_scanned", &r.detail_rows_scanned);
  ParseI64(line, "blocks_read", &r.blocks_read);
  ParseI64(line, "spill_bytes", &r.spill_bytes);
  ParseBool(line, "guard_tripped", &r.guard_tripped);
  ParseDouble(line, "max_qerror", &r.max_qerror);
  ParseBool(line, "slow", &r.slow);
  return r;
}

QueryHistory::QueryHistory(const Options& options) : options_(options) {
  QueriesLoggedCounter();
  SlowQueriesCounter();
  if (!options_.log_path.empty()) {
    log_file_ = std::fopen(options_.log_path.c_str(), "a");
    // A failed open degrades to in-memory history; the CLI surfaces the
    // path it asked for, so silent-null here is observable.
  }
}

QueryHistory::~QueryHistory() {
  MutexLock lock(mu_);
  if (log_file_ != nullptr) std::fclose(log_file_);
}

void QueryHistory::Record(QueryRecord record) {
  record.slow = options_.slow_query_ms > 0 &&
                record.wall_ms >= static_cast<double>(options_.slow_query_ms);
  if (record.slow) {
    SlowQueriesCounter()->Increment();
    TraceInstant("slow_query", "server", "wall_ms",
                 static_cast<int64_t>(record.wall_ms), "rows", record.rows);
  }
  QueriesLoggedCounter()->Increment();
  MutexLock lock(mu_);
  ++total_;
  if (log_file_ != nullptr) {
    const std::string line = record.ToJsonl();
    std::fwrite(line.data(), 1, line.size(), log_file_);
    std::fputc('\n', log_file_);
    std::fflush(log_file_);
  }
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(record));
  } else if (!ring_.empty()) {
    ring_[next_ % ring_.size()] = std::move(record);
    ++next_;
  }
}

std::vector<QueryRecord> QueryHistory::Snapshot() const {
  MutexLock lock(mu_);
  if (ring_.size() < options_.capacity || ring_.empty()) return ring_;
  // Oldest-first: the write cursor points at the oldest slot.
  std::vector<QueryRecord> out;
  out.reserve(ring_.size());
  const size_t start = next_ % ring_.size();
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

int64_t QueryHistory::total_recorded() const {
  MutexLock lock(mu_);
  return total_;
}

std::string QueryHistory::SummaryText() const {
  MutexLock lock(mu_);
  int64_t ok = 0, slow = 0, errors = 0, cache_hits = 0;
  double wall_sum = 0, qerr_max = -1;
  for (const QueryRecord& r : ring_) {
    ok += r.outcome == "ok";
    slow += r.slow;
    errors += r.outcome != "ok";
    cache_hits += r.cache == "hit" || r.cache == "rollup";
    wall_sum += r.wall_ms;
    if (r.max_qerror > qerr_max) qerr_max = r.max_qerror;
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "query history: %lld recorded (%zu retained), %lld ok, %lld "
                "non-ok, %lld slow, %lld cache hits, %.3f ms total wall",
                static_cast<long long>(total_), ring_.size(),
                static_cast<long long>(ok), static_cast<long long>(errors),
                static_cast<long long>(slow),
                static_cast<long long>(cache_hits), wall_sum);
  std::string out = buf;
  if (qerr_max >= 0) {
    std::snprintf(buf, sizeof(buf), ", max q-error %.2f", qerr_max);
    out += buf;
  }
  out += "\n";
  return out;
}

}  // namespace mdjoin
