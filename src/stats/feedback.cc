#include "stats/feedback.h"

#include "obs/metrics.h"

namespace mdjoin {

namespace {

Counter* FeedbackUpdatesCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_feedback_updates_total",
      "plan-fingerprint feedback entries recorded from completed profiles");
  return c;
}

Counter* FeedbackHitsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_feedback_hits_total",
      "cost estimates that used a harvested feedback entry");
  return c;
}

Gauge* FeedbackEntriesGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge(
      "mdjoin_feedback_entries", "live entries in the feedback store");
  return g;
}

/// EWMA fold; the first observation seeds the value directly.
void Fold(double* slot, double observed, double alpha, bool first) {
  if (observed < 0) return;
  if (first || *slot < 0) {
    *slot = observed;
  } else {
    *slot = alpha * observed + (1.0 - alpha) * *slot;
  }
}

}  // namespace

uint64_t FingerprintString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

FeedbackStore::FeedbackStore() : FeedbackStore(Options{}) {}

FeedbackStore::FeedbackStore(const Options& options) : options_(options) {
  // Touch the instruments so metric catalogs are complete before traffic.
  FeedbackUpdatesCounter();
  FeedbackHitsCounter();
  FeedbackEntriesGauge();
}

void FeedbackStore::Record(uint64_t fingerprint, double output_rows,
                           double detail_rows_scanned, double selectivity) {
  MutexLock lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    if (entries_.size() >= options_.max_entries &&
        evict_next_ < insertion_order_.size()) {
      entries_.erase(insertion_order_[evict_next_++]);
    }
    it = entries_.emplace(fingerprint, FeedbackEntry{}).first;
    insertion_order_.push_back(fingerprint);
  }
  FeedbackEntry& e = it->second;
  const bool first = e.observations == 0;
  Fold(&e.output_rows, output_rows, options_.ewma_alpha, first);
  Fold(&e.detail_rows_scanned, detail_rows_scanned, options_.ewma_alpha, first);
  Fold(&e.selectivity, selectivity, options_.ewma_alpha, first);
  ++e.observations;
  FeedbackUpdatesCounter()->Increment();
  FeedbackEntriesGauge()->Set(static_cast<int64_t>(entries_.size()));
}

std::optional<FeedbackEntry> FeedbackStore::Lookup(uint64_t fingerprint) const {
  MutexLock lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return std::nullopt;
  FeedbackHitsCounter()->Increment();
  return it->second;
}

int64_t FeedbackStore::size() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

void FeedbackStore::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  insertion_order_.clear();
  evict_next_ = 0;
  FeedbackEntriesGauge()->Set(0);
}

}  // namespace mdjoin
