#include "stats/table_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"

namespace mdjoin {

namespace {

/// 64-bit avalanche finalizer (splitmix64 / murmur3 fmix64 family). Value's
/// structural hash is std::hash-based, which for small integers is close to
/// the identity on common standard libraries — unusable for HLL register
/// selection without a full-width mix.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Bias-correction constant alpha_m for m >= 128 registers.
double HllAlpha(int m) { return 0.7213 / (1.0 + 1.079 / static_cast<double>(m)); }

Counter* TablesAnalyzedCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_stats_tables_analyzed_total",
      "tables scanned by AnalyzeTable to collect optimizer statistics");
  return c;
}

}  // namespace

void HllSketch::AddHash(uint64_t hash) {
  const uint64_t h = Mix64(hash);
  const uint32_t idx = static_cast<uint32_t>(h >> (64 - kPrecision));
  // Rank = leading-zero run (+1) of the remaining 64 - kPrecision bits.
  const uint64_t rest = h << kPrecision;
  const int rank =
      rest == 0 ? (64 - kPrecision + 1) : (__builtin_clzll(rest) + 1);
  if (static_cast<uint8_t>(rank) > registers_[idx]) {
    registers_[idx] = static_cast<uint8_t>(rank);
  }
}

int64_t HllSketch::nonzero_registers() const {
  int64_t n = 0;
  for (uint8_t r : registers_) n += r != 0;
  return n;
}

int64_t HllSketch::Estimate() const {
  const int m = kRegisters;
  double inverse_sum = 0;
  int zeros = 0;
  for (uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    zeros += r == 0;
  }
  double estimate = HllAlpha(m) * static_cast<double>(m) *
                    static_cast<double>(m) / inverse_sum;
  // Small-range correction: linear counting on the empty-register count.
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = static_cast<double>(m) *
               std::log(static_cast<double>(m) / static_cast<double>(zeros));
  }
  return static_cast<int64_t>(std::llround(estimate));
}

double EquiDepthHistogram::FractionLessOrEqual(const Value& v) const {
  if (!valid()) return 0.5;
  if (v.Compare(min) < 0) return 0.0;
  if (v.Compare(upper.back()) >= 0) return 1.0;
  int64_t below = 0;
  for (size_t i = 0; i < upper.size(); ++i) {
    if (v.Compare(upper[i]) >= 0) {
      below += counts[i];
      continue;
    }
    // v falls inside bucket i: (lower, upper[i]] with lower = previous edge.
    const Value& lower = i == 0 ? min : upper[i - 1];
    double within = 0.5;  // strings: assume mid-bucket
    if (v.is_numeric() && lower.is_numeric() && upper[i].is_numeric()) {
      const double lo = lower.AsDouble();
      const double hi = upper[i].AsDouble();
      within = hi > lo ? (v.AsDouble() - lo) / (hi - lo) : 1.0;
      within = std::clamp(within, 0.0, 1.0);
    }
    return (static_cast<double>(below) +
            within * static_cast<double>(counts[i])) /
           static_cast<double>(total);
  }
  return 1.0;
}

double ColumnStats::SelectivityCmp(CmpOp op, const Value& literal) const {
  if (num_rows <= 0) return 1.0;
  const double rows = static_cast<double>(num_rows);
  const double all_frac = static_cast<double>(all_count) / rows;
  const int64_t plain = num_rows - null_count - all_count;
  const double plain_frac = static_cast<double>(plain) / rows;
  if (literal.is_null()) return 0.0;  // NULL compares to nothing

  // Fraction of *plain* rows equal to the literal: out-of-range literals
  // match nothing; otherwise one distinct value's share.
  auto eq_plain = [&]() -> double {
    if (plain <= 0) return 0.0;
    if (!min.is_null() &&
        (literal.Compare(min) < 0 || literal.Compare(max) > 0)) {
      return 0.0;
    }
    return 1.0 / static_cast<double>(std::max<int64_t>(ndv, 1));
  };
  // Fraction of plain rows with value <= literal, via the histogram.
  auto le_plain = [&]() -> double {
    if (plain <= 0) return 0.0;
    if (histogram.valid()) return histogram.FractionLessOrEqual(literal);
    return 0.5;
  };

  double frac = 0.0;
  switch (op) {
    case CmpOp::kEq:
      // θ-equality: an ALL row is a wildcard and matches any non-NULL value.
      frac = eq_plain() * plain_frac + all_frac;
      break;
    case CmpOp::kNe:
      frac = (1.0 - eq_plain()) * plain_frac;
      break;
    case CmpOp::kLe:
      frac = le_plain() * plain_frac;
      break;
    case CmpOp::kLt:
      frac = std::max(0.0, le_plain() - eq_plain()) * plain_frac;
      break;
    case CmpOp::kGt:
      frac = (1.0 - le_plain()) * plain_frac;
      break;
    case CmpOp::kGe:
      frac = std::min(1.0, 1.0 - le_plain() + eq_plain()) * plain_frac;
      break;
  }
  return std::clamp(frac, 0.0, 1.0);
}

const ColumnStats* TableStats::FindColumn(const std::string& name) const {
  for (const ColumnStats& c : columns) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string TableStats::SummaryText() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "table %s: %lld rows, %zu columns\n",
                table_name.c_str(), static_cast<long long>(num_rows),
                columns.size());
  out += buf;
  for (const ColumnStats& c : columns) {
    std::snprintf(buf, sizeof(buf),
                  "  %-12s ndv=%-8lld nulls=%-6lld all=%-6lld", c.name.c_str(),
                  static_cast<long long>(c.ndv),
                  static_cast<long long>(c.null_count),
                  static_cast<long long>(c.all_count));
    out += buf;
    if (!c.min.is_null()) {
      out += " min=" + c.min.ToString() + " max=" + c.max.ToString();
    }
    if (c.histogram.valid()) {
      std::snprintf(buf, sizeof(buf), " hist=%zu buckets",
                    c.histogram.upper.size());
      out += buf;
    }
    out += "\n";
  }
  return out;
}

Result<TableStats> AnalyzeTable(const Table& table, std::string table_name,
                                const AnalyzeOptions& options) {
  if (options.histogram_buckets < 1) {
    return Status::InvalidArgument("AnalyzeTable: histogram_buckets must be >= 1");
  }
  TableStats stats;
  stats.table_name = std::move(table_name);
  stats.num_rows = table.num_rows();
  stats.columns.reserve(static_cast<size_t>(table.num_columns()));
  for (int col = 0; col < table.num_columns(); ++col) {
    const std::vector<Value>& values = table.column(col);
    ColumnStats cs;
    cs.name = table.schema().field(col).name;
    cs.num_rows = table.num_rows();
    HllSketch sketch;
    std::vector<Value> plain;  // non-NULL, non-ALL, for min/max + histogram
    plain.reserve(values.size());
    for (const Value& v : values) {
      if (v.is_null()) {
        ++cs.null_count;
      } else if (v.is_all()) {
        ++cs.all_count;
      } else {
        sketch.Add(v);
        plain.push_back(v);
      }
    }
    cs.ndv = sketch.Estimate();
    if (!plain.empty()) {
      std::sort(plain.begin(), plain.end(),
                [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
      cs.min = plain.front();
      cs.max = plain.back();
      EquiDepthHistogram& hist = cs.histogram;
      hist.min = plain.front();
      hist.total = static_cast<int64_t>(plain.size());
      const size_t buckets = std::min<size_t>(
          static_cast<size_t>(options.histogram_buckets), plain.size());
      for (size_t b = 0; b < buckets; ++b) {
        // Equal-depth cuts; the last index of bucket b.
        const size_t hi = (b + 1) * plain.size() / buckets - 1;
        const size_t lo = b * plain.size() / buckets;
        hist.upper.push_back(plain[hi]);
        hist.counts.push_back(static_cast<int64_t>(hi - lo + 1));
      }
    }
    stats.columns.push_back(std::move(cs));
  }
  TablesAnalyzedCounter()->Increment();
  return stats;
}

}  // namespace mdjoin
