#ifndef MDJOIN_STATS_QUERY_LOG_H_
#define MDJOIN_STATS_QUERY_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"

namespace mdjoin {

/// Persistent query history: one structured record per completed (or
/// rejected) query, kept in a fixed-capacity in-memory ring and optionally
/// appended as JSONL to a log file (`--query-log=PATH`). The record is the
/// workload-telemetry unit that ties together admission, caching, execution
/// counters, and estimation quality for a single query.

struct QueryRecord {
  uint64_t fingerprint = 0;  // FNV-1a of the canonical plan rendering
  uint64_t plan_hash = 0;    // FNV-1a of the optimized/executed plan rendering
  double wall_ms = 0;
  double cpu_ms = 0;
  int64_t rows = 0;
  /// Terminal outcome: "ok", "shed", "deadline", "cancelled", or "error".
  std::string outcome = "ok";
  /// Result-cache outcome: "miss", "hit", "rollup", or "off".
  std::string cache = "off";
  int64_t queue_wait_ms = 0;
  int64_t detail_rows_scanned = 0;
  int64_t blocks_read = 0;
  int64_t spill_bytes = 0;
  bool guard_tripped = false;
  double max_qerror = -1;  // -1 when no estimates were annotated
  bool slow = false;       // wall_ms exceeded the slow-query threshold

  /// One JSON object on one line (fingerprints as unsigned decimal strings
  /// so 64-bit values survive JSON readers that parse numbers as doubles).
  std::string ToJsonl() const;

  /// Parses a ToJsonl() line back. Tolerates extra keys; missing required
  /// keys are an InvalidArgument.
  static Result<QueryRecord> FromJsonl(const std::string& line);
};

/// Fixed-capacity ring of QueryRecords plus the optional JSONL appender and
/// slow-query detection. Thread-safe: QueryService sessions record
/// concurrently.
class QueryHistory {
 public:
  struct Options {
    size_t capacity = 256;
    std::string log_path;      // empty = in-memory only
    int64_t slow_query_ms = 0; // 0 = slow-query detection off
  };

  explicit QueryHistory(const Options& options);
  ~QueryHistory();

  QueryHistory(const QueryHistory&) = delete;
  QueryHistory& operator=(const QueryHistory&) = delete;

  /// Appends to the ring (evicting the oldest record past capacity), sets
  /// record.slow, writes the JSONL line, and emits the slow-query trace
  /// instant + counter when the threshold is crossed.
  void Record(QueryRecord record) MDJ_EXCLUDES(mu_);

  /// Ring contents, oldest first.
  std::vector<QueryRecord> Snapshot() const MDJ_EXCLUDES(mu_);

  /// Total records ever recorded (>= ring size once capacity is exceeded).
  int64_t total_recorded() const MDJ_EXCLUDES(mu_);

  /// Human-readable digest for the CLI --stats-dump exit report.
  std::string SummaryText() const MDJ_EXCLUDES(mu_);

 private:
  const Options options_;
  mutable Mutex mu_;
  std::vector<QueryRecord> ring_ MDJ_GUARDED_BY(mu_);
  size_t next_ MDJ_GUARDED_BY(mu_) = 0;  // ring write cursor
  int64_t total_ MDJ_GUARDED_BY(mu_) = 0;
  std::FILE* log_file_ MDJ_GUARDED_BY(mu_) = nullptr;
};

}  // namespace mdjoin

#endif  // MDJOIN_STATS_QUERY_LOG_H_
