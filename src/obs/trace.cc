#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace mdjoin {

namespace {

/// One thread's event buffer. The mutex is per-buffer and therefore
/// uncontended on the append path; it exists so Snapshot()/Start() can read
/// or clear buffers belonging to live threads without a data race.
struct ThreadBuffer {
  explicit ThreadBuffer(int32_t id) : tid(id) {}
  const int32_t tid;
  std::mutex mu;
  std::vector<TraceEvent> events;
  const char* thread_name = nullptr;  // static storage, set via SetThreadName
};

/// Owns every thread buffer ever registered. Buffers are never freed (a few
/// hundred bytes per engine thread for the life of the process), so a raw
/// thread_local pointer into the registry stays valid even after the owning
/// thread exits — Snapshot() can always walk the full list.
struct BufferRegistry {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;
  int32_t next_tid = 1;
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
};

BufferRegistry& Registry() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

ThreadBuffer* CurrentBuffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    BufferRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    buffer = new ThreadBuffer(reg.next_tid++);
    reg.buffers.push_back(buffer);
  }
  return buffer;
}

}  // namespace

std::atomic<bool> Tracing::enabled_{false};

void Tracing::Start() {
  BufferRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (ThreadBuffer* buffer : reg.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  reg.epoch = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void Tracing::Stop() { enabled_.store(false, std::memory_order_release); }

int64_t Tracing::NowNs() {
  BufferRegistry& reg = Registry();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - reg.epoch)
      .count();
}

void Tracing::Append(const TraceEvent& event) {
  ThreadBuffer* buffer = CurrentBuffer();
  TraceEvent copy = event;
  copy.tid = buffer->tid;
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(copy);
}

void Tracing::SetThreadName(const char* name) {
  if (!enabled()) return;
  ThreadBuffer* buffer = CurrentBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->thread_name = name;
}

int32_t Tracing::CurrentThreadId() { return CurrentBuffer()->tid; }

std::vector<TraceEvent> Tracing::Snapshot() {
  std::vector<TraceEvent> out;
  BufferRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (ThreadBuffer* buffer : reg.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

int64_t Tracing::event_count() {
  int64_t n = 0;
  BufferRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (ThreadBuffer* buffer : reg.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    n += static_cast<int64_t>(buffer->events.size());
  }
  return n;
}

namespace {

void AppendEscaped(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(*s) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", *s);
          *out += buf;
        } else {
          *out += *s;
        }
    }
  }
}

void AppendEvent(const TraceEvent& e, bool* first, std::string* out) {
  if (!*first) *out += ",\n";
  *first = false;
  char buf[160];
  const double ts_us = static_cast<double>(e.ts_ns) / 1e3;
  *out += "    {\"name\": \"";
  AppendEscaped(e.name, out);
  *out += "\", \"cat\": \"";
  AppendEscaped(e.category != nullptr ? e.category : "exec", out);
  if (e.dur_ns >= 0) {
    const double dur_us = static_cast<double>(e.dur_ns) / 1e3;
    std::snprintf(buf, sizeof(buf),
                  "\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, "
                  "\"tid\": %d",
                  ts_us, dur_us, e.tid);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "\", \"ph\": \"i\", \"ts\": %.3f, \"s\": \"t\", \"pid\": 1, "
                  "\"tid\": %d",
                  ts_us, e.tid);
  }
  *out += buf;
  if (e.arg1_name != nullptr || e.arg2_name != nullptr) {
    *out += ", \"args\": {";
    bool first_arg = true;
    if (e.arg1_name != nullptr) {
      *out += "\"";
      AppendEscaped(e.arg1_name, out);
      std::snprintf(buf, sizeof(buf), "\": %lld", static_cast<long long>(e.arg1));
      *out += buf;
      first_arg = false;
    }
    if (e.arg2_name != nullptr) {
      if (!first_arg) *out += ", ";
      *out += "\"";
      AppendEscaped(e.arg2_name, out);
      std::snprintf(buf, sizeof(buf), "\": %lld", static_cast<long long>(e.arg2));
      *out += buf;
    }
    *out += "}";
  }
  *out += "}";
}

}  // namespace

std::string ChromeTraceWriter::ToJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\n  \"traceEvents\": [\n";
  bool first = true;
  // One thread_name metadata record per distinct track, so the trace viewer
  // labels engine threads. Named buffers get their name; the rest a generic
  // "thread <tid>".
  std::vector<std::pair<int32_t, const char*>> names;
  {
    BufferRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (ThreadBuffer* buffer : reg.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      names.emplace_back(buffer->tid, buffer->thread_name);
    }
  }
  for (const auto& [tid, name] : names) {
    bool has_events = false;
    for (const TraceEvent& e : events) {
      if (e.tid == tid) {
        has_events = true;
        break;
      }
    }
    if (!has_events) continue;
    if (!first) out += ",\n";
    first = false;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                  "\"tid\": %d, \"args\": {\"name\": \"",
                  tid);
    out += buf;
    if (name != nullptr) {
      AppendEscaped(name, &out);
      std::snprintf(buf, sizeof(buf), " %d\"}}", tid);
    } else {
      out += "thread";
      std::snprintf(buf, sizeof(buf), " %d\"}}", tid);
    }
    out += buf;
  }
  for (const TraceEvent& e : events) {
    AppendEvent(e, &first, &out);
  }
  out += "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

bool ChromeTraceWriter::WriteFile(const std::string& path) {
  std::string json = ToJson(Tracing::Snapshot());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace mdjoin
