#ifndef MDJOIN_OBS_TRACE_H_
#define MDJOIN_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mdjoin {

/// Lightweight in-process tracing for the execution engine.
///
/// Design constraints, in priority order:
///  1. Near-zero cost when disabled: a Span is one relaxed atomic load and a
///     null-check in its destructor; no allocation, no lock, no clock read.
///     The overhead tests in tests/obs_test.cc enforce the no-allocation part
///     with a global operator-new hook.
///  2. No contention when enabled: every thread appends to its own buffer
///     (registered once with the global registry); the only synchronization
///     on the hot path is that buffer's uncontended mutex, taken so Snapshot()
///     can read buffers of live threads safely (TSan-clean by construction).
///  3. Events are POD: names/categories are `const char*` to static storage
///     (string literals at the call sites); dynamic payload travels in up to
///     two named int64 args. Nothing in an event is owned.
///
/// The output format is the Chrome trace-event JSON (`chrome://tracing` /
/// Perfetto): one track per engine thread, "X" complete events for spans,
/// "i" instant events for point occurrences (guard trips, steal waits,
/// failpoint fires).
struct TraceEvent {
  const char* name = nullptr;      // static-storage string; never owned
  const char* category = nullptr;  // static-storage string
  int64_t ts_ns = 0;               // steady-clock ns since Tracing::Start()
  int64_t dur_ns = -1;             // span duration; < 0 marks an instant event
  int32_t tid = 0;                 // registry-assigned per-thread track id
  const char* arg1_name = nullptr;
  int64_t arg1 = 0;
  const char* arg2_name = nullptr;
  int64_t arg2 = 0;
};

/// Process-wide trace control. All methods are thread-safe.
class Tracing {
 public:
  /// True while a trace is being collected. One relaxed load; this is the
  /// whole cost of every disabled Span / TraceInstant call site.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Clears all per-thread buffers, resets the trace epoch to now, and starts
  /// collecting. Idempotent (a second Start() restarts the trace).
  static void Start();

  /// Stops collecting. Events already buffered stay available to Snapshot().
  static void Stop();

  /// Copies every buffered event out of all thread buffers, sorted by
  /// timestamp. Safe to call while tracing is active.
  static std::vector<TraceEvent> Snapshot();

  /// Total events currently buffered across all threads.
  static int64_t event_count();

  /// Steady-clock ns since the trace epoch.
  static int64_t NowNs();

  /// Appends one event to the calling thread's buffer (registering the
  /// thread on first use). Called by Span / TraceInstant, not directly.
  static void Append(const TraceEvent& event);

  /// Names the calling thread's track in the trace output (e.g. "worker").
  /// No-op when tracing is disabled and the thread has no buffer yet.
  static void SetThreadName(const char* name);

  /// The registry-assigned track id of the calling thread's buffer, or 0 if
  /// the thread has never appended. Exposed for tests.
  static int32_t CurrentThreadId();

 private:
  static std::atomic<bool> enabled_;
};

/// RAII span: records a complete ("X") event covering its lifetime. When
/// tracing is disabled at construction the span is inert — the destructor
/// sees a null name and does nothing. Not copyable or movable; spans are
/// strictly scoped.
class Span {
 public:
  explicit Span(const char* name, const char* category = "exec") {
    if (Tracing::enabled()) {
      event_.name = name;
      event_.category = category;
      event_.ts_ns = Tracing::NowNs();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (event_.name != nullptr) Finish();
  }

  /// Attaches a named numeric payload (first two calls win; later calls are
  /// dropped). `name` must point to static storage. No-op when inert.
  void SetArg(const char* name, int64_t value) {
    if (event_.name == nullptr) return;
    if (event_.arg1_name == nullptr) {
      event_.arg1_name = name;
      event_.arg1 = value;
    } else if (event_.arg2_name == nullptr) {
      event_.arg2_name = name;
      event_.arg2 = value;
    }
  }

 private:
  void Finish() {
    event_.dur_ns = Tracing::NowNs() - event_.ts_ns;
    if (event_.dur_ns < 0) event_.dur_ns = 0;
    Tracing::Append(event_);
    event_.name = nullptr;
  }

  TraceEvent event_;  // name == nullptr means inert / already finished
};

/// Records an instant ("i") event. Near-zero cost when tracing is disabled.
inline void TraceInstant(const char* name, const char* category = "exec",
                         const char* arg1_name = nullptr, int64_t arg1 = 0,
                         const char* arg2_name = nullptr, int64_t arg2 = 0) {
  if (!Tracing::enabled()) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.ts_ns = Tracing::NowNs();
  e.dur_ns = -1;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  Tracing::Append(e);
}

/// Renders buffered events as `chrome://tracing`-compatible JSON: an object
/// with a "traceEvents" array of "X"/"i" events (timestamps in microseconds)
/// plus one "thread_name" metadata event per track.
class ChromeTraceWriter {
 public:
  static std::string ToJson(const std::vector<TraceEvent>& events);

  /// Snapshot() + ToJson() + write to `path`. Returns false on I/O failure.
  static bool WriteFile(const std::string& path);
};

}  // namespace mdjoin

#endif  // MDJOIN_OBS_TRACE_H_
