#ifndef MDJOIN_OBS_METRICS_H_
#define MDJOIN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mdjoin {

/// Process-wide metrics for the engine: monotonically increasing counters,
/// set/peak gauges, and fixed-boundary histograms, all registered by name in
/// one global registry with text and JSON exposition.
///
/// Hot-path contract: every instrument operation (Increment, Observe, Set,
/// UpdateMax) is one or two relaxed atomic RMWs — no locks, no allocation.
/// The registry's mutex is touched only at registration (call sites cache
/// the instrument pointer in a function-local static, so each site pays the
/// lookup once per process) and during exposition. Instrument pointers are
/// stable for the life of the process.
///
/// The canonical metric name catalog lives in docs/OPERATOR.md §10; names
/// follow the Prometheus convention (`mdjoin_<what>_total` for counters).

/// Monotonic counter.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-value gauge with a lock-free peak tracker.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }

  /// Racy-CAS max update, the standard idiom for peak tracking.
  void UpdateMax(int64_t v) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (v > current &&
           !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
    }
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-boundary histogram: `boundaries` are the inclusive upper edges of
/// the finite buckets; one implicit overflow bucket catches the rest.
/// Observe() is two relaxed RMWs (bucket + sum); bucket search is a linear
/// walk over a handful of boundaries, branch-predictable for latency-shaped
/// distributions.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> boundaries);

  void Observe(int64_t value) {
    size_t i = 0;
    while (i < boundaries_.size() && value > boundaries_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  const std::vector<int64_t>& boundaries() const { return boundaries_; }
  int64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  int64_t total_count() const;
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  const std::vector<int64_t> boundaries_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // boundaries_.size() + 1
  std::atomic<int64_t> sum_{0};
};

/// A point-in-time copy of one instrument, for programmatic inspection.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  int64_t value = 0;  // counter/gauge value; histogram total count
  int64_t sum = 0;    // histogram only
  std::vector<std::pair<int64_t, int64_t>> buckets;  // histogram: (le, count)

  /// Histogram quantile estimates (cumulative walk + within-bucket linear
  /// interpolation). The overflow bucket has no upper edge, so a quantile
  /// landing there reports the last finite boundary — a floor, which is the
  /// honest answer a fixed-boundary histogram can give. 0 when count == 0.
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// Build identity baked in at compile time (configure-time git SHA and CMake
/// build type, via MDJOIN_GIT_SHA / MDJOIN_BUILD_TYPE compile definitions on
/// mdj_obs; "unknown" when absent). Both expositions render it as the
/// conventional info-style gauge `mdjoin_build_info{git_sha=...,
/// build_type=...} 1`, so every scrape is attributable to a revision.
const char* BuildInfoGitSha();
const char* BuildInfoBuildType();

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. The returned pointer is stable for the life of the process. A name
  /// registered as one kind must not be re-requested as another (returns the
  /// existing instrument's slot; the mismatched accessor returns nullptr).
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, std::vector<int64_t> boundaries,
                          const std::string& help = "");

  /// Point-in-time copy of every instrument, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus-style text exposition (one `# HELP` / `# TYPE` pair plus the
  /// sample lines per instrument).
  std::string RenderText() const;

  /// Flat JSON object: counters/gauges as numbers, histograms as objects
  /// with count/sum/buckets.
  std::string RenderJson() const;

  /// Zeroes every instrument, keeping registrations (and therefore every
  /// cached pointer) valid. For tests and for the CLI's per-query output.
  void ResetAllForTest();

 private:
  struct Entry {
    MetricSample::Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // ordered so exposition is stable
};

}  // namespace mdjoin

#endif  // MDJOIN_OBS_METRICS_H_
