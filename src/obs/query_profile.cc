#include "obs/query_profile.h"

#include <algorithm>
#include <cstdio>

namespace mdjoin {

double OperatorProfile::qerror() const {
  if (est_rows < 0) return -1.0;
  const double est = std::max(est_rows, 1.0);
  const double act = std::max(static_cast<double>(output_rows), 1.0);
  return std::max(est / act, act / est);
}

namespace {

void AppendCount(const char* key, int64_t v, std::string* out) {
  char buf[64];
  if (v >= 10'000'000) {
    std::snprintf(buf, sizeof(buf), " %s=%.1fM", key, static_cast<double>(v) / 1e6);
  } else if (v >= 10'000) {
    std::snprintf(buf, sizeof(buf), " %s=%.1fk", key, static_cast<double>(v) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), " %s=%lld", key, static_cast<long long>(v));
  }
  *out += buf;
}

void NodeToText(const OperatorProfile& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.label;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  rows=%lld total=%.3fms self=%.3fms",
                static_cast<long long>(node.output_rows), node.elapsed_ms,
                node.self_ms);
  *out += buf;
  if (node.est_rows >= 0) {
    std::snprintf(buf, sizeof(buf), " est=%.0f act=%lld qerr=%.2f",
                  node.est_rows, static_cast<long long>(node.output_rows),
                  node.qerror());
    *out += buf;
  }
  if (node.is_mdjoin) {
    AppendCount("scanned", node.detail_rows_scanned, out);
    if (node.selectivity() >= 0) {
      std::snprintf(buf, sizeof(buf), " sel=%.1f%%", node.selectivity() * 100.0);
      *out += buf;
    }
    AppendCount("pairs", node.candidate_pairs, out);
    AppendCount("matched", node.matched_pairs, out);
    AppendCount("agg_updates", node.agg_updates, out);
    if (node.passes > 1) AppendCount("passes", node.passes, out);
    if (node.blocks > 0) AppendCount("blocks", node.blocks, out);
    if (node.index_probe_lookups > 0) {
      std::snprintf(buf, sizeof(buf), " probe_hit=%.1f%%",
                    node.probe_hit_rate() * 100.0);
      *out += buf;
    }
    if (node.num_threads > 1) {
      std::snprintf(buf, sizeof(buf), " threads=%d morsels=%lld steals=%lld",
                    node.num_threads, static_cast<long long>(node.morsels),
                    static_cast<long long>(node.steal_waits));
      *out += buf;
    }
    if (node.blocks_read > 0 || node.blocks_pruned > 0) {
      std::snprintf(buf, sizeof(buf),
                    " blocks_read=%lld pruned=%lld faulted=%lld cache_hits=%lld",
                    static_cast<long long>(node.blocks_read),
                    static_cast<long long>(node.blocks_pruned),
                    static_cast<long long>(node.blocks_faulted),
                    static_cast<long long>(node.block_cache_hits));
      *out += buf;
    }
    if (node.spill_partitions > 0) {
      std::snprintf(buf, sizeof(buf), " spill_parts=%lld spill_bytes=%lld",
                    static_cast<long long>(node.spill_partitions),
                    static_cast<long long>(node.spill_bytes_written));
      *out += buf;
    }
  }
  *out += "\n";
  for (const auto& child : node.children) NodeToText(*child, depth + 1, out);
}

void AppendEscapedJson(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendKv(const char* key, int64_t v, bool* first, std::string* out) {
  char buf[64];
  if (!*first) *out += ", ";
  *first = false;
  std::snprintf(buf, sizeof(buf), "\"%s\": %lld", key, static_cast<long long>(v));
  *out += buf;
}

void AppendKvMs(const char* key, double v, bool* first, std::string* out) {
  char buf[64];
  if (!*first) *out += ", ";
  *first = false;
  std::snprintf(buf, sizeof(buf), "\"%s\": %.3f", key, v);
  *out += buf;
}

void NodeToJson(const OperatorProfile& node, std::string* out) {
  *out += "{\"operator\": \"";
  AppendEscapedJson(node.label, out);
  *out += "\", ";
  bool first = true;
  AppendKv("output_rows", node.output_rows, &first, out);
  AppendKvMs("elapsed_ms", node.elapsed_ms, &first, out);
  AppendKvMs("self_ms", node.self_ms, &first, out);
  AppendKvMs("cpu_ms", node.cpu_ms, &first, out);
  if (node.est_rows >= 0) {
    AppendKvMs("est_rows", node.est_rows, &first, out);
    AppendKvMs("qerror", node.qerror(), &first, out);
  }
  if (node.is_mdjoin) {
    AppendKv("detail_rows_scanned", node.detail_rows_scanned, &first, out);
    AppendKv("detail_rows_qualified", node.detail_rows_qualified, &first, out);
    AppendKv("candidate_pairs", node.candidate_pairs, &first, out);
    AppendKv("matched_pairs", node.matched_pairs, &first, out);
    AppendKv("agg_updates", node.agg_updates, &first, out);
    AppendKv("passes", node.passes, &first, out);
    AppendKv("blocks", node.blocks, &first, out);
    AppendKv("kernel_invocations", node.kernel_invocations, &first, out);
    AppendKv("index_probe_lookups", node.index_probe_lookups, &first, out);
    AppendKv("index_probe_memo_hits", node.index_probe_memo_hits, &first, out);
    AppendKv("morsels", node.morsels, &first, out);
    AppendKv("steal_waits", node.steal_waits, &first, out);
    AppendKv("num_threads", node.num_threads, &first, out);
    AppendKv("blocks_read", node.blocks_read, &first, out);
    AppendKv("blocks_pruned", node.blocks_pruned, &first, out);
    AppendKv("blocks_faulted", node.blocks_faulted, &first, out);
    AppendKv("block_cache_hits", node.block_cache_hits, &first, out);
    AppendKv("spill_partitions", node.spill_partitions, &first, out);
    AppendKv("spill_bytes_written", node.spill_bytes_written, &first, out);
    AppendKvMs("selectivity", node.selectivity(), &first, out);
  }
  *out += ", \"children\": [";
  bool first_child = true;
  for (const auto& child : node.children) {
    if (!first_child) *out += ", ";
    first_child = false;
    NodeToJson(*child, out);
  }
  *out += "]}";
}

}  // namespace

std::string QueryProfile::ToText() const {
  std::string out;
  if (root != nullptr) NodeToText(*root, 0, &out);
  if (!rewrites.empty()) {
    out += "rewrites:\n";
    char buf[96];
    for (const RewriteRecord& r : rewrites) {
      std::snprintf(buf, sizeof(buf), "  [%s] ", r.accepted ? "applied" : "rejected");
      out += buf;
      out += r.rule + " @ " + r.node;
      std::snprintf(buf, sizeof(buf), " (work %.0f -> %.0f)", r.cost_before,
                    r.cost_after);
      out += buf;
      if (!r.detail.empty()) out += " — " + r.detail;
      out += "\n";
    }
  }
  if (!analysis.empty()) {
    out += "static analysis:\n";
    for (const std::string& line : analysis) {
      out += "  " + line + "\n";
    }
  }
  char buf[64];
  if (max_qerror >= 0) {
    std::snprintf(buf, sizeof(buf), "max q-error: %.2f\n", max_qerror);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "terminal: %s (%.3fms)\n",
                terminal.empty() ? "ok" : terminal.c_str(), total_ms);
  out += buf;
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{\"terminal\": \"";
  AppendEscapedJson(terminal.empty() ? "ok" : terminal, &out);
  out += "\", \"complete\": ";
  out += complete ? "true" : "false";
  char buf[64];
  std::snprintf(buf, sizeof(buf), ", \"total_ms\": %.3f", total_ms);
  out += buf;
  if (max_qerror >= 0) {
    std::snprintf(buf, sizeof(buf), ", \"max_qerror\": %.3f", max_qerror);
    out += buf;
  }
  out += ", \"rewrites\": [";
  bool first = true;
  for (const RewriteRecord& r : rewrites) {
    if (!first) out += ", ";
    first = false;
    out += "{\"rule\": \"";
    AppendEscapedJson(r.rule, &out);
    out += "\", \"node\": \"";
    AppendEscapedJson(r.node, &out);
    out += "\", \"accepted\": ";
    out += r.accepted ? "true" : "false";
    std::snprintf(buf, sizeof(buf), ", \"cost_before\": %.0f, \"cost_after\": %.0f",
                  r.cost_before, r.cost_after);
    out += buf;
    out += ", \"detail\": \"";
    AppendEscapedJson(r.detail, &out);
    out += "\"}";
  }
  out += "], \"analysis\": [";
  first = true;
  for (const std::string& line : analysis) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    AppendEscapedJson(line, &out);
    out += "\"";
  }
  out += "], \"plan\": ";
  if (root != nullptr) {
    NodeToJson(*root, &out);
  } else {
    out += "null";
  }
  out += "}\n";
  return out;
}

}  // namespace mdjoin
