#include "obs/metrics.h"

#include <cstdio>
#include <limits>

#ifndef MDJOIN_GIT_SHA
#define MDJOIN_GIT_SHA "unknown"
#endif
#ifndef MDJOIN_BUILD_TYPE
#define MDJOIN_BUILD_TYPE "unknown"
#endif

namespace mdjoin {

const char* BuildInfoGitSha() { return MDJOIN_GIT_SHA; }
const char* BuildInfoBuildType() { return MDJOIN_BUILD_TYPE; }

namespace {

/// Quantile estimate over a snapshot's (le, count) buckets: walk to the
/// bucket holding the target rank, then interpolate linearly inside it
/// (lower edge = previous boundary, 0 for the first bucket).
double BucketQuantile(const std::vector<std::pair<int64_t, int64_t>>& buckets,
                      int64_t total, double q) {
  if (total <= 0) return 0;
  const double target = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const int64_t count = buckets[i].second;
    if (count > 0 && static_cast<double>(cumulative + count) >= target) {
      const double lower =
          i == 0 ? 0 : static_cast<double>(buckets[i - 1].first);
      if (buckets[i].first == std::numeric_limits<int64_t>::max()) {
        return lower;  // overflow bucket: floor at the last finite boundary
      }
      const double fraction =
          (target - static_cast<double>(cumulative)) / static_cast<double>(count);
      return lower + (static_cast<double>(buckets[i].first) - lower) * fraction;
    }
    cumulative += count;
  }
  return 0;
}

}  // namespace

Histogram::Histogram(std::vector<int64_t> boundaries)
    : boundaries_(std::move(boundaries)),
      buckets_(new std::atomic<int64_t>[boundaries_.size() + 1]) {
  for (size_t i = 0; i <= boundaries_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

int64_t Histogram::total_count() const {
  int64_t n = 0;
  for (size_t i = 0; i <= boundaries_.size(); ++i) {
    n += buckets_[i].load(std::memory_order_relaxed);
  }
  return n;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= boundaries_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricSample::Kind::kCounter;
    entry.help = help;
    entry.counter = std::make_unique<Counter>();
    it = entries_.emplace(name, std::move(entry)).first;
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricSample::Kind::kGauge;
    entry.help = help;
    entry.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(name, std::move(entry)).first;
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> boundaries,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = MetricSample::Kind::kHistogram;
    entry.help = help;
    entry.histogram = std::make_unique<Histogram>(std::move(boundaries));
    it = entries_.emplace(name, std::move(entry)).first;
  }
  return it->second.histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSample sample;
    sample.name = name;
    sample.help = entry.help;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        sample.value = entry.counter->value();
        break;
      case MetricSample::Kind::kGauge:
        sample.value = entry.gauge->value();
        break;
      case MetricSample::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        sample.value = h.total_count();
        sample.sum = h.sum();
        const std::vector<int64_t>& edges = h.boundaries();
        for (size_t i = 0; i < edges.size(); ++i) {
          sample.buckets.emplace_back(edges[i], h.bucket_count(i));
        }
        sample.buckets.emplace_back(std::numeric_limits<int64_t>::max(),
                                    h.bucket_count(edges.size()));
        sample.p50 = BucketQuantile(sample.buckets, sample.value, 0.5);
        sample.p90 = BucketQuantile(sample.buckets, sample.value, 0.9);
        sample.p99 = BucketQuantile(sample.buckets, sample.value, 0.99);
        break;
      }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

std::string MetricsRegistry::RenderText() const {
  std::string out;
  char buf[96];
  out += "# HELP mdjoin_build_info Build identity (constant 1; the labels carry the information)\n";
  out += "# TYPE mdjoin_build_info gauge\n";
  out += std::string("mdjoin_build_info{git_sha=\"") + BuildInfoGitSha() +
         "\",build_type=\"" + BuildInfoBuildType() + "\"} 1\n";
  for (const MetricSample& s : Snapshot()) {
    if (!s.help.empty()) out += "# HELP " + s.name + " " + s.help + "\n";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += "# TYPE " + s.name + " counter\n";
        std::snprintf(buf, sizeof(buf), " %lld\n", static_cast<long long>(s.value));
        out += s.name + buf;
        break;
      case MetricSample::Kind::kGauge:
        out += "# TYPE " + s.name + " gauge\n";
        std::snprintf(buf, sizeof(buf), " %lld\n", static_cast<long long>(s.value));
        out += s.name + buf;
        break;
      case MetricSample::Kind::kHistogram: {
        out += "# TYPE " + s.name + " histogram\n";
        int64_t cumulative = 0;
        for (const auto& [le, count] : s.buckets) {
          cumulative += count;
          if (le == std::numeric_limits<int64_t>::max()) {
            std::snprintf(buf, sizeof(buf), "_bucket{le=\"+Inf\"} %lld\n",
                          static_cast<long long>(cumulative));
          } else {
            std::snprintf(buf, sizeof(buf), "_bucket{le=\"%lld\"} %lld\n",
                          static_cast<long long>(le),
                          static_cast<long long>(cumulative));
          }
          out += s.name + buf;
        }
        std::snprintf(buf, sizeof(buf), "_sum %lld\n", static_cast<long long>(s.sum));
        out += s.name + buf;
        std::snprintf(buf, sizeof(buf), "_count %lld\n", static_cast<long long>(s.value));
        out += s.name + buf;
        std::snprintf(buf, sizeof(buf), "{quantile=\"0.5\"} %g\n", s.p50);
        out += s.name + buf;
        std::snprintf(buf, sizeof(buf), "{quantile=\"0.9\"} %g\n", s.p90);
        out += s.name + buf;
        std::snprintf(buf, sizeof(buf), "{quantile=\"0.99\"} %g\n", s.p99);
        out += s.name + buf;
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::string out = "{\n";
  char buf[96];
  bool first = false;
  out += std::string("  \"mdjoin_build_info\": {\"git_sha\": \"") +
         BuildInfoGitSha() + "\", \"build_type\": \"" + BuildInfoBuildType() +
         "\", \"value\": 1}";
  for (const MetricSample& s : Snapshot()) {
    if (!first) out += ",\n";
    first = false;
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kGauge:
        std::snprintf(buf, sizeof(buf), "\": %lld", static_cast<long long>(s.value));
        out += "  \"" + s.name + buf;
        break;
      case MetricSample::Kind::kHistogram: {
        std::snprintf(buf, sizeof(buf), "\": {\"count\": %lld, \"sum\": %lld, ",
                      static_cast<long long>(s.value), static_cast<long long>(s.sum));
        out += "  \"" + s.name + buf;
        std::snprintf(buf, sizeof(buf),
                      "\"p50\": %g, \"p90\": %g, \"p99\": %g, ", s.p50, s.p90,
                      s.p99);
        out += buf;
        out += "\"buckets\": [";
        bool first_bucket = true;
        for (const auto& [le, count] : s.buckets) {
          if (!first_bucket) out += ", ";
          first_bucket = false;
          if (le == std::numeric_limits<int64_t>::max()) {
            std::snprintf(buf, sizeof(buf), "{\"le\": \"+Inf\", \"count\": %lld}",
                          static_cast<long long>(count));
          } else {
            std::snprintf(buf, sizeof(buf), "{\"le\": %lld, \"count\": %lld}",
                          static_cast<long long>(le), static_cast<long long>(count));
          }
          out += buf;
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n}\n";
  return out;
}

void MetricsRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        entry.counter->Reset();
        break;
      case MetricSample::Kind::kGauge:
        entry.gauge->Reset();
        break;
      case MetricSample::Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace mdjoin
