#ifndef MDJOIN_OBS_QUERY_PROFILE_H_
#define MDJOIN_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mdjoin {

/// Per-operator execution record: one node of the EXPLAIN ANALYZE tree,
/// mirroring the plan tree. The generic fields (label, rows, timings) are
/// filled for every operator; the scan-counter block is populated only for
/// (generalized / parallel) MD-join nodes and stays zero elsewhere.
struct OperatorProfile {
  std::string label;  // PlanNode::Label() of the operator
  int64_t output_rows = 0;
  double elapsed_ms = 0;  // wall clock, inclusive of children
  double self_ms = 0;     // exclusive: elapsed minus children
  double cpu_ms = 0;      // thread CPU time of the executing thread (self+children)
  /// Optimizer-estimated output cardinality, annotated by EXPLAIN ANALYZE
  /// from the cost model; -1 when no estimate was produced for this node.
  double est_rows = -1;

  // MD-join scan counters (Algorithm 3.1 work accounting).
  bool is_mdjoin = false;
  int64_t detail_rows_scanned = 0;
  int64_t detail_rows_qualified = 0;  // survived pushed-down θ selection
  int64_t candidate_pairs = 0;        // (b, t) pairs tested after index pruning
  int64_t matched_pairs = 0;          // pairs satisfying θ
  int64_t agg_updates = 0;            // aggregate-state updates applied
  int64_t passes = 0;                 // Theorem 4.1 passes over R
  int64_t blocks = 0;                 // vectorized blocks
  int64_t kernel_invocations = 0;     // columnar predicate kernel runs
  int64_t index_probe_lookups = 0;    // probe-memo lookups (cube indexes)
  int64_t index_probe_memo_hits = 0;  // memo hits among those lookups
  int64_t morsels = 0;                // parallel engine: morsels executed
  int64_t steal_waits = 0;            // parallel engine: drained cursor polls
  int num_threads = 1;                // workers that executed this node

  // Out-of-core counters (storage/out_of_core); zero for in-memory nodes.
  int64_t blocks_read = 0;            // storage blocks served (faults + hits)
  int64_t blocks_pruned = 0;          // blocks refuted by zone maps, not decoded
  int64_t blocks_faulted = 0;         // block loads that ran the decoder
  int64_t block_cache_hits = 0;       // blocks served resident from the cache
  int64_t spill_partitions = 0;       // partition pairs spilled and joined
  int64_t spill_bytes_written = 0;    // bytes written to spill files

  /// Fraction of scanned detail rows surviving the pushed-down selection;
  /// -1 when the node scanned nothing.
  double selectivity() const {
    return detail_rows_scanned > 0
               ? static_cast<double>(detail_rows_qualified) /
                     static_cast<double>(detail_rows_scanned)
               : -1.0;
  }

  /// Memo hit rate of the cube-index probe cache; -1 with no lookups.
  double probe_hit_rate() const {
    return index_probe_lookups > 0
               ? static_cast<double>(index_probe_memo_hits) /
                     static_cast<double>(index_probe_lookups)
               : -1.0;
  }

  /// Q-error of the cardinality estimate: max(est/act, act/est), both sides
  /// floored at one row, so always >= 1; -1 when no estimate was annotated.
  double qerror() const;

  std::vector<std::unique_ptr<OperatorProfile>> children;
};

/// One optimizer rewrite attempt recorded during OptimizePlan: the rule, the
/// node it targeted, whether the cost model accepted it, and the estimated
/// work before/after (the certificate that justified the decision).
struct RewriteRecord {
  std::string rule;    // e.g. "Theorem 4.2 selection pushdown"
  std::string node;    // label of the plan node the rule targeted
  bool accepted = false;
  double cost_before = 0;
  double cost_after = 0;
  std::string detail;  // acceptance certificate or rejection reason
};

/// The complete observability record of one query: the operator tree, the
/// optimizer's rewrite log, and a terminal event. A profile of a cancelled
/// or failed query is still well-formed — the tree holds partial counts for
/// whatever executed, and `terminal` carries the trip status (asserted by
/// guardrail_test.cc).
struct QueryProfile {
  std::unique_ptr<OperatorProfile> root;
  std::vector<RewriteRecord> rewrites;
  /// Static-analysis findings for the executed plan, one line each: θ
  /// bytecode verifier verdicts, derived range facts, unsat-θ proofs
  /// (analyze/plan_invariants.h StaticAnalysisReport). Empty when the plan
  /// has no MD-join or analysis was not run.
  std::vector<std::string> analysis;
  bool complete = false;   // execution reached the end successfully
  std::string terminal;    // "ok", or the error status string (terminal event)
  double total_ms = 0;     // wall clock of the whole execution
  /// Worst per-operator q-error in the tree; -1 when no node carries an
  /// estimate (plain EXPLAIN ANALYZE without estimation, failed estimates).
  double max_qerror = -1;

  /// Indented tree, one line per operator:
  ///   MdJoin(...)  rows=1000 total=12.3ms self=11.1ms scanned=1M sel=42.0% ...
  /// followed by the rewrite log and the terminal line.
  std::string ToText() const;

  /// Machine-readable rendering: {"terminal": ..., "rewrites": [...],
  /// "plan": {recursive operator objects}}.
  std::string ToJson() const;
};

}  // namespace mdjoin

#endif  // MDJOIN_OBS_QUERY_PROFILE_H_
