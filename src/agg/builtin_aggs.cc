#include "agg/builtin_aggs.h"

#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace mdjoin {
namespace internal {

namespace {

// ---------------------------------------------------------------------------
// count / count(*)
// ---------------------------------------------------------------------------

struct CountState : AggregateState {
  int64_t count = 0;
};

class CountFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "count";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kDistributive; }
  Result<DataType> ResultType(std::optional<DataType>) const override {
    return DataType::kInt64;
  }
  std::unique_ptr<AggregateState> MakeState() const override {
    return std::make_unique<CountState>();
  }
  void Update(AggregateState* state, const Value& v) const override {
    if (v.is_null()) return;
    ++static_cast<CountState*>(state)->count;
  }
  void Merge(AggregateState* state, const AggregateState& other) const override {
    static_cast<CountState*>(state)->count += static_cast<const CountState&>(other).count;
  }
  Value Finalize(const AggregateState& state) const override {
    return Value::Int64(static_cast<const CountState&>(state).count);
  }
  std::string RollupFunctionName() const override { return "sum"; }
  FlatAggKind flat_kind() const override { return FlatAggKind::kCount; }
};

// ---------------------------------------------------------------------------
// sum
// ---------------------------------------------------------------------------

struct SumState : AggregateState {
  bool any = false;
  bool is_float = false;
  int64_t isum = 0;
  double dsum = 0;
};

class SumFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "sum";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kDistributive; }
  Result<DataType> ResultType(std::optional<DataType> input) const override {
    if (!input) return Status::TypeError("sum requires an argument");
    if (!IsNumeric(*input)) return Status::TypeError("sum requires a numeric argument");
    return *input;
  }
  std::unique_ptr<AggregateState> MakeState() const override {
    return std::make_unique<SumState>();
  }
  void Update(AggregateState* state, const Value& v) const override {
    if (!v.is_numeric()) return;  // skips NULL/ALL
    auto* s = static_cast<SumState*>(state);
    s->any = true;
    if (v.is_float64()) s->is_float = true;
    if (v.is_int64()) s->isum += v.int64();
    s->dsum += v.AsDouble();
  }
  void Merge(AggregateState* state, const AggregateState& other) const override {
    auto* s = static_cast<SumState*>(state);
    const auto& o = static_cast<const SumState&>(other);
    s->any = s->any || o.any;
    s->is_float = s->is_float || o.is_float;
    s->isum += o.isum;
    s->dsum += o.dsum;
  }
  Value Finalize(const AggregateState& state) const override {
    const auto& s = static_cast<const SumState&>(state);
    if (!s.any) return Value::Null();
    if (s.is_float) return Value::Float64(s.dsum);
    return Value::Int64(s.isum);
  }
  std::string RollupFunctionName() const override { return "sum"; }
  FlatAggKind flat_kind() const override { return FlatAggKind::kSum; }
};

// ---------------------------------------------------------------------------
// min / max
// ---------------------------------------------------------------------------

struct ExtremumState : AggregateState {
  bool any = false;
  Value best;
};

class ExtremumFunction : public AggregateFunction {
 public:
  explicit ExtremumFunction(bool is_min) : is_min_(is_min), name_(is_min ? "min" : "max") {}

  const std::string& name() const override { return name_; }
  AggClass agg_class() const override { return AggClass::kDistributive; }
  Result<DataType> ResultType(std::optional<DataType> input) const override {
    if (!input) return Status::TypeError(name_, " requires an argument");
    return *input;
  }
  std::unique_ptr<AggregateState> MakeState() const override {
    return std::make_unique<ExtremumState>();
  }
  void Update(AggregateState* state, const Value& v) const override {
    if (v.is_null() || v.is_all()) return;
    auto* s = static_cast<ExtremumState*>(state);
    if (!s->any || Better(v, s->best)) {
      s->any = true;
      s->best = v;
    }
  }
  void Merge(AggregateState* state, const AggregateState& other) const override {
    const auto& o = static_cast<const ExtremumState&>(other);
    if (o.any) Update(state, o.best);
  }
  Value Finalize(const AggregateState& state) const override {
    const auto& s = static_cast<const ExtremumState&>(state);
    return s.any ? s.best : Value::Null();
  }
  std::string RollupFunctionName() const override { return name_; }
  FlatAggKind flat_kind() const override {
    return is_min_ ? FlatAggKind::kMin : FlatAggKind::kMax;
  }

 private:
  bool Better(const Value& candidate, const Value& incumbent) const {
    int c = candidate.Compare(incumbent);
    return is_min_ ? c < 0 : c > 0;
  }

  bool is_min_;
  std::string name_;
};

// ---------------------------------------------------------------------------
// avg (algebraic: (sum, count))
// ---------------------------------------------------------------------------

struct AvgState : AggregateState {
  double sum = 0;
  int64_t count = 0;
};

class AvgFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "avg";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kAlgebraic; }
  Result<DataType> ResultType(std::optional<DataType> input) const override {
    if (!input) return Status::TypeError("avg requires an argument");
    if (!IsNumeric(*input)) return Status::TypeError("avg requires a numeric argument");
    return DataType::kFloat64;
  }
  std::unique_ptr<AggregateState> MakeState() const override {
    return std::make_unique<AvgState>();
  }
  void Update(AggregateState* state, const Value& v) const override {
    if (!v.is_numeric()) return;
    auto* s = static_cast<AvgState*>(state);
    s->sum += v.AsDouble();
    ++s->count;
  }
  void Merge(AggregateState* state, const AggregateState& other) const override {
    auto* s = static_cast<AvgState*>(state);
    const auto& o = static_cast<const AvgState&>(other);
    s->sum += o.sum;
    s->count += o.count;
  }
  Value Finalize(const AggregateState& state) const override {
    const auto& s = static_cast<const AvgState&>(state);
    if (s.count == 0) return Value::Null();
    return Value::Float64(s.sum / static_cast<double>(s.count));
  }
  FlatAggKind flat_kind() const override { return FlatAggKind::kAvg; }
};

// ---------------------------------------------------------------------------
// var_pop / stddev_pop (algebraic: (sum, sum of squares, count))
// ---------------------------------------------------------------------------

struct VarState : AggregateState {
  double sum = 0;
  double sum_sq = 0;
  int64_t count = 0;
};

class VarFunction : public AggregateFunction {
 public:
  explicit VarFunction(bool stddev)
      : stddev_(stddev), name_(stddev ? "stddev_pop" : "var_pop") {}

  const std::string& name() const override { return name_; }
  AggClass agg_class() const override { return AggClass::kAlgebraic; }
  Result<DataType> ResultType(std::optional<DataType> input) const override {
    if (!input) return Status::TypeError(name_, " requires an argument");
    if (!IsNumeric(*input)) return Status::TypeError(name_, " requires numeric input");
    return DataType::kFloat64;
  }
  std::unique_ptr<AggregateState> MakeState() const override {
    return std::make_unique<VarState>();
  }
  void Update(AggregateState* state, const Value& v) const override {
    if (!v.is_numeric()) return;
    auto* s = static_cast<VarState*>(state);
    double d = v.AsDouble();
    s->sum += d;
    s->sum_sq += d * d;
    ++s->count;
  }
  void Merge(AggregateState* state, const AggregateState& other) const override {
    auto* s = static_cast<VarState*>(state);
    const auto& o = static_cast<const VarState&>(other);
    s->sum += o.sum;
    s->sum_sq += o.sum_sq;
    s->count += o.count;
  }
  Value Finalize(const AggregateState& state) const override {
    const auto& s = static_cast<const VarState&>(state);
    if (s.count == 0) return Value::Null();
    double n = static_cast<double>(s.count);
    double mean = s.sum / n;
    double var = s.sum_sq / n - mean * mean;
    if (var < 0) var = 0;  // guard FP noise
    return Value::Float64(stddev_ ? std::sqrt(var) : var);
  }

 private:
  bool stddev_;
  std::string name_;
};

// ---------------------------------------------------------------------------
// count_distinct (holistic: exact, hash-set state)
// ---------------------------------------------------------------------------

struct CountDistinctState : AggregateState {
  std::unordered_set<Value, ValueHash> seen;
};

class CountDistinctFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "count_distinct";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kHolistic; }
  Result<DataType> ResultType(std::optional<DataType>) const override {
    return DataType::kInt64;
  }
  std::unique_ptr<AggregateState> MakeState() const override {
    return std::make_unique<CountDistinctState>();
  }
  void Update(AggregateState* state, const Value& v) const override {
    if (v.is_null()) return;
    static_cast<CountDistinctState*>(state)->seen.insert(v);
  }
  void Merge(AggregateState* state, const AggregateState& other) const override {
    auto* s = static_cast<CountDistinctState*>(state);
    for (const Value& v : static_cast<const CountDistinctState&>(other).seen) {
      s->seen.insert(v);
    }
  }
  Value Finalize(const AggregateState& state) const override {
    return Value::Int64(
        static_cast<int64_t>(static_cast<const CountDistinctState&>(state).seen.size()));
  }
};

}  // namespace

void RegisterBuiltinAggregates(AggregateRegistry* registry) {
  auto add = [registry](std::unique_ptr<AggregateFunction> fn) {
    Status s = registry->Register(std::move(fn));
    MDJ_CHECK(s.ok()) << s.ToString();
  };
  add(std::make_unique<CountFunction>());
  add(std::make_unique<SumFunction>());
  add(std::make_unique<ExtremumFunction>(/*is_min=*/true));
  add(std::make_unique<ExtremumFunction>(/*is_min=*/false));
  add(std::make_unique<AvgFunction>());
  add(std::make_unique<VarFunction>(/*stddev=*/false));
  add(std::make_unique<VarFunction>(/*stddev=*/true));
  add(std::make_unique<CountDistinctFunction>());
}

}  // namespace internal
}  // namespace mdjoin
