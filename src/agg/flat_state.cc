#include "agg/flat_state.h"

#include "common/logging.h"

namespace mdjoin {

AggStateColumn AggStateColumn::Make(const AggregateFunction* fn, int64_t groups) {
  AggStateColumn col;
  col.fn_ = fn;
  col.kind_ = fn->flat_kind();
  col.groups_ = groups;
  const size_t n = static_cast<size_t>(groups);
  switch (col.kind_) {
    case FlatAggKind::kCount:
      col.i64_.assign(n, 0);
      break;
    case FlatAggKind::kSum:
      col.i64_.assign(n, 0);
      col.f64_.assign(n, 0.0);
      col.flags_.assign(n, 0);
      break;
    case FlatAggKind::kMin:
    case FlatAggKind::kMax:
      col.vals_.assign(n, Value::Null());
      col.flags_.assign(n, 0);
      break;
    case FlatAggKind::kAvg:
      col.i64_.assign(n, 0);
      col.f64_.assign(n, 0.0);
      break;
    case FlatAggKind::kNone:
      col.heap_.reserve(n);
      for (size_t i = 0; i < n; ++i) col.heap_.push_back(fn->MakeState());
      break;
  }
  return col;
}

void AggStateColumn::Merge(const AggStateColumn& other) {
  MergeRange(other, 0, groups_);
}

void AggStateColumn::MergeRange(const AggStateColumn& other, int64_t lo, int64_t hi) {
  MDJ_CHECK(fn_ == other.fn_ && groups_ == other.groups_)
      << "AggStateColumn::MergeRange: mismatched columns";
  MDJ_CHECK(lo >= 0 && hi <= groups_ && lo <= hi)
      << "AggStateColumn::MergeRange: bad range";
  const size_t a = static_cast<size_t>(lo);
  const size_t b = static_cast<size_t>(hi);
  switch (kind_) {
    case FlatAggKind::kCount:
      for (size_t i = a; i < b; ++i) i64_[i] += other.i64_[i];
      break;
    case FlatAggKind::kSum:
      for (size_t i = a; i < b; ++i) {
        i64_[i] += other.i64_[i];
        f64_[i] += other.f64_[i];
        flags_[i] |= other.flags_[i];
      }
      break;
    case FlatAggKind::kMin:
    case FlatAggKind::kMax:
      for (size_t i = a; i < b; ++i) {
        if (other.flags_[i] & kAny) UpdateExtremum(i, other.vals_[i]);
      }
      break;
    case FlatAggKind::kAvg:
      for (size_t i = a; i < b; ++i) {
        f64_[i] += other.f64_[i];
        i64_[i] += other.i64_[i];
      }
      break;
    case FlatAggKind::kNone:
      for (size_t i = a; i < b; ++i) fn_->Merge(heap_[i].get(), *other.heap_[i]);
      break;
  }
}

Value AggStateColumn::Finalize(int64_t g) const {
  const size_t i = static_cast<size_t>(g);
  switch (kind_) {
    case FlatAggKind::kCount:
      return Value::Int64(i64_[i]);
    case FlatAggKind::kSum:
      if (!(flags_[i] & kAny)) return Value::Null();
      if (flags_[i] & kIsFloat) return Value::Float64(f64_[i]);
      return Value::Int64(i64_[i]);
    case FlatAggKind::kMin:
    case FlatAggKind::kMax:
      return (flags_[i] & kAny) ? vals_[i] : Value::Null();
    case FlatAggKind::kAvg:
      if (i64_[i] == 0) return Value::Null();
      return Value::Float64(f64_[i] / static_cast<double>(i64_[i]));
    case FlatAggKind::kNone:
      return fn_->Finalize(*heap_[i]);
  }
  return Value::Null();  // unreachable
}

}  // namespace mdjoin
