#ifndef MDJOIN_AGG_BUILTIN_AGGS_H_
#define MDJOIN_AGG_BUILTIN_AGGS_H_

#include "agg/aggregate.h"

namespace mdjoin {
namespace internal {

/// Installs the built-in aggregate functions into `registry`:
///   count (distributive, rollup: sum)
///   sum   (distributive, rollup: sum)
///   min   (distributive, rollup: min)
///   max   (distributive, rollup: max)
///   avg   (algebraic; state = (sum, count))
///   var_pop, stddev_pop (algebraic; state = (sum, sum of squares, count))
///   count_distinct (holistic; state = hash set)
/// Called once by AggregateRegistry::Global().
void RegisterBuiltinAggregates(AggregateRegistry* registry);

}  // namespace internal
}  // namespace mdjoin

#endif  // MDJOIN_AGG_BUILTIN_AGGS_H_
