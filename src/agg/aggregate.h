#ifndef MDJOIN_AGG_AGGREGATE_H_
#define MDJOIN_AGG_AGGREGATE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "types/value.h"

namespace mdjoin {

/// Gray et al.'s classification [GBLP96], which governs which optimizations
/// apply (paper §3 footnote 2 and Theorem 4.5):
///  - distributive: partials combine losslessly (count, sum, min, max) — the
///    roll-up transformation applies;
///  - algebraic: a bounded intermediate suffices (avg via (sum,count));
///  - holistic: unbounded intermediate (count distinct, median).
enum class AggClass {
  kDistributive,
  kAlgebraic,
  kHolistic,
};

const char* AggClassToString(AggClass c);

/// Opaque per-group accumulator; each AggregateFunction defines its own.
class AggregateState {
 public:
  virtual ~AggregateState() = default;
};

/// Flat-state representations understood by the vectorized MD-join path
/// (agg/flat_state.h). A built-in whose accumulator is a few scalars can
/// declare one of these kinds and have its per-group state stored as
/// contiguous typed arrays — one cache line holds many groups — updated by a
/// non-virtual kernel instead of one heap object + virtual call per group.
/// kNone keeps the classic MakeState()/Update() path (holistic aggregates,
/// UDAFs, anything with unbounded state).
enum class FlatAggKind {
  kNone,
  kCount,  // int64 count per group
  kSum,    // (int64 isum, double dsum, any/is_float flags) per group
  kMin,    // (Value best, any flag) per group
  kMax,    // (Value best, any flag) per group
  kAvg,    // (double sum, int64 count) per group
};

/// A (user-definable) aggregate function, in the UDAF style the paper cites
/// [JM98, WZ00a]: allocate state, add values, merge partials, report.
///
/// Implementations must be stateless and thread-compatible: all per-group
/// data lives in the AggregateState.
class AggregateFunction {
 public:
  virtual ~AggregateFunction() = default;

  virtual const std::string& name() const = 0;
  virtual AggClass agg_class() const = 0;

  /// Output type given the argument type (nullopt for count(*)).
  virtual Result<DataType> ResultType(std::optional<DataType> input) const = 0;

  virtual std::unique_ptr<AggregateState> MakeState() const = 0;

  /// Folds one value into `state`. NULL inputs are skipped by SQL convention
  /// (callers may rely on this; implementations must enforce it).
  virtual void Update(AggregateState* state, const Value& v) const = 0;

  /// Combines a partial accumulator into `state` (used when the detail
  /// relation is processed in fragments).
  virtual void Merge(AggregateState* state, const AggregateState& other) const = 0;

  /// Reports the aggregate. Empty groups produce the function's identity:
  /// 0 for count, NULL for sum/avg/min/max (Definition 3.1's outer-join
  /// semantics: every base row appears even when RNG(b,R,θ) is empty).
  virtual Value Finalize(const AggregateState& state) const = 0;

  /// Theorem 4.5: the function that re-aggregates this function's finalized
  /// outputs when rolling a finer cuboid up to a coarser one ("a count in l
  /// becomes a sum in l'"). Empty string if no such rewrite exists (only
  /// distributive aggregates have one).
  virtual std::string RollupFunctionName() const { return ""; }

  /// Flat-state support for the vectorized evaluator. A non-kNone kind is a
  /// contract that AggStateColumn's kernels for that kind reproduce this
  /// function's Update/Merge/Finalize semantics exactly (A/B-tested in
  /// tests/vectorized_test.cc); implementations that cannot honor that must
  /// return kNone and take the per-group heap-state fallback.
  virtual FlatAggKind flat_kind() const { return FlatAggKind::kNone; }
};

/// Name → implementation registry. Built-ins self-register; user-defined
/// aggregates can be added at runtime (thread-safe).
class AggregateRegistry {
 public:
  static AggregateRegistry* Global();

  /// Registers `fn` under its name(); error if taken.
  Status Register(std::unique_ptr<AggregateFunction> fn) MDJ_EXCLUDES(mu_);

  /// Case-insensitive lookup; NotFound lists known functions.
  Result<const AggregateFunction*> Lookup(const std::string& name) const
      MDJ_EXCLUDES(mu_);

  std::vector<std::string> RegisteredNames() const MDJ_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<AggregateFunction>> fns_
      MDJ_GUARDED_BY(mu_);
};

}  // namespace mdjoin

#endif  // MDJOIN_AGG_AGGREGATE_H_
