#include "agg/holistic_aggs.h"

#include <algorithm>
#include <unordered_map>

namespace mdjoin {
namespace internal {

namespace {

// ---------------------------------------------------------------------------
// median (holistic: buffers all values)
// ---------------------------------------------------------------------------

struct MedianState : AggregateState {
  std::vector<double> values;
};

class MedianFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "median";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kHolistic; }
  Result<DataType> ResultType(std::optional<DataType> input) const override {
    if (!input) return Status::TypeError("median requires an argument");
    if (!IsNumeric(*input)) return Status::TypeError("median requires numeric input");
    return DataType::kFloat64;
  }
  std::unique_ptr<AggregateState> MakeState() const override {
    return std::make_unique<MedianState>();
  }
  void Update(AggregateState* state, const Value& v) const override {
    if (!v.is_numeric()) return;
    static_cast<MedianState*>(state)->values.push_back(v.AsDouble());
  }
  void Merge(AggregateState* state, const AggregateState& other) const override {
    auto* s = static_cast<MedianState*>(state);
    const auto& o = static_cast<const MedianState&>(other);
    s->values.insert(s->values.end(), o.values.begin(), o.values.end());
  }
  Value Finalize(const AggregateState& state) const override {
    // Copy so Finalize stays const-correct on the logical state.
    std::vector<double> values = static_cast<const MedianState&>(state).values;
    if (values.empty()) return Value::Null();
    size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    double upper = values[mid];
    if (values.size() % 2 == 1) return Value::Float64(upper);
    double lower = *std::max_element(values.begin(), values.begin() + mid);
    return Value::Float64((lower + upper) / 2);
  }
};

// ---------------------------------------------------------------------------
// approx_median — the [MRL98]-style trick the paper's footnote 2 mentions:
// "some holistic aggregates can be made algebraic by using approximation".
// A fixed budget of reservoir samples makes the state bounded (algebraic in
// the resource sense); the answer is the sample median.
// ---------------------------------------------------------------------------

struct ApproxMedianState : AggregateState {
  static constexpr size_t kSampleBudget = 256;
  std::vector<double> sample;
  int64_t seen = 0;
  uint64_t rng_state = 0x9e3779b97f4a7c15ULL;

  uint64_t NextRandom() {
    // splitmix64 step — deterministic, seeded identically per state, so
    // results are reproducible run to run.
    uint64_t z = (rng_state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

class ApproxMedianFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "approx_median";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kAlgebraic; }
  Result<DataType> ResultType(std::optional<DataType> input) const override {
    if (!input) return Status::TypeError("approx_median requires an argument");
    if (!IsNumeric(*input)) {
      return Status::TypeError("approx_median requires numeric input");
    }
    return DataType::kFloat64;
  }
  std::unique_ptr<AggregateState> MakeState() const override {
    return std::make_unique<ApproxMedianState>();
  }
  void Update(AggregateState* state, const Value& v) const override {
    if (!v.is_numeric()) return;
    auto* s = static_cast<ApproxMedianState*>(state);
    ++s->seen;
    if (s->sample.size() < ApproxMedianState::kSampleBudget) {
      s->sample.push_back(v.AsDouble());
      return;
    }
    // Reservoir sampling: replace a random slot with probability budget/seen.
    uint64_t slot = s->NextRandom() % static_cast<uint64_t>(s->seen);
    if (slot < ApproxMedianState::kSampleBudget) {
      s->sample[static_cast<size_t>(slot)] = v.AsDouble();
    }
  }
  void Merge(AggregateState* state, const AggregateState& other) const override {
    auto* s = static_cast<ApproxMedianState*>(state);
    const auto& o = static_cast<const ApproxMedianState&>(other);
    // Weighted merge approximation: fold the other sample in via reservoir
    // updates, then combine counts.
    for (double v : o.sample) {
      Update(s, Value::Float64(v));
      --s->seen;  // Update() counted it; the true count is added below
    }
    s->seen += o.seen;
  }
  Value Finalize(const AggregateState& state) const override {
    std::vector<double> sample = static_cast<const ApproxMedianState&>(state).sample;
    if (sample.empty()) return Value::Null();
    size_t mid = sample.size() / 2;
    std::nth_element(sample.begin(), sample.begin() + mid, sample.end());
    return Value::Float64(sample[mid]);
  }
};

// ---------------------------------------------------------------------------
// mode ("most frequent", from the paper's §1 list of complex aggregates)
// ---------------------------------------------------------------------------

struct ModeState : AggregateState {
  std::unordered_map<Value, int64_t, ValueHash> counts;
};

class ModeFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "mode";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kHolistic; }
  Result<DataType> ResultType(std::optional<DataType> input) const override {
    if (!input) return Status::TypeError("mode requires an argument");
    return *input;
  }
  std::unique_ptr<AggregateState> MakeState() const override {
    return std::make_unique<ModeState>();
  }
  void Update(AggregateState* state, const Value& v) const override {
    if (v.is_null() || v.is_all()) return;
    ++static_cast<ModeState*>(state)->counts[v];
  }
  void Merge(AggregateState* state, const AggregateState& other) const override {
    auto* s = static_cast<ModeState*>(state);
    for (const auto& [v, n] : static_cast<const ModeState&>(other).counts) {
      s->counts[v] += n;
    }
  }
  Value Finalize(const AggregateState& state) const override {
    const auto& counts = static_cast<const ModeState&>(state).counts;
    if (counts.empty()) return Value::Null();
    const Value* best = nullptr;
    int64_t best_count = -1;
    for (const auto& [v, n] : counts) {
      // Ties break toward the smaller value for determinism.
      if (n > best_count || (n == best_count && v.Compare(*best) < 0)) {
        best = &v;
        best_count = n;
      }
    }
    return *best;
  }
};

}  // namespace

void RegisterHolisticAggregates(AggregateRegistry* registry) {
  auto add = [registry](std::unique_ptr<AggregateFunction> fn) {
    Status s = registry->Register(std::move(fn));
    MDJ_CHECK(s.ok()) << s.ToString();
  };
  add(std::make_unique<MedianFunction>());
  add(std::make_unique<ApproxMedianFunction>());
  add(std::make_unique<ModeFunction>());
}

}  // namespace internal
}  // namespace mdjoin
