#include "agg/agg_spec.h"

#include <unordered_set>

namespace mdjoin {

std::string AggSpec::ToString() const {
  std::string out = function + "(";
  out += argument ? argument->ToString() : "*";
  out += ") as " + output_name;
  return out;
}

AggSpec Count(std::string output_name) {
  return AggSpec{"count", nullptr, std::move(output_name)};
}
AggSpec Count(ExprPtr argument, std::string output_name) {
  return AggSpec{"count", std::move(argument), std::move(output_name)};
}
AggSpec Sum(ExprPtr argument, std::string output_name) {
  return AggSpec{"sum", std::move(argument), std::move(output_name)};
}
AggSpec Avg(ExprPtr argument, std::string output_name) {
  return AggSpec{"avg", std::move(argument), std::move(output_name)};
}
AggSpec Min(ExprPtr argument, std::string output_name) {
  return AggSpec{"min", std::move(argument), std::move(output_name)};
}
AggSpec Max(ExprPtr argument, std::string output_name) {
  return AggSpec{"max", std::move(argument), std::move(output_name)};
}
AggSpec CountDistinct(ExprPtr argument, std::string output_name) {
  return AggSpec{"count_distinct", std::move(argument), std::move(output_name)};
}

Result<std::vector<BoundAgg>> BindAggs(const std::vector<AggSpec>& specs,
                                       const Schema* base_schema,
                                       const Schema* detail_schema) {
  std::vector<BoundAgg> out;
  out.reserve(specs.size());
  std::unordered_set<std::string> names;
  for (const AggSpec& spec : specs) {
    if (spec.output_name.empty()) {
      return Status::InvalidArgument("aggregate has empty output name: ",
                                     spec.ToString());
    }
    if (!names.insert(spec.output_name).second) {
      return Status::InvalidArgument("duplicate aggregate output name '",
                                     spec.output_name, "'");
    }
    if (base_schema != nullptr && base_schema->FindField(spec.output_name)) {
      return Status::InvalidArgument("aggregate output '", spec.output_name,
                                     "' collides with a base column");
    }
    BoundAgg bound;
    MDJ_ASSIGN_OR_RETURN(bound.fn, AggregateRegistry::Global()->Lookup(spec.function));
    std::optional<DataType> arg_type;
    if (spec.argument != nullptr) {
      bound.has_arg = true;
      MDJ_ASSIGN_OR_RETURN(bound.arg,
                           CompileExpr(spec.argument, base_schema, detail_schema));
      arg_type = bound.arg.result_type();
      if (spec.argument->kind() == ExprKind::kColumnRef &&
          spec.argument->side() == Side::kDetail && detail_schema != nullptr) {
        if (std::optional<int> idx =
                detail_schema->FindField(spec.argument->column_name())) {
          bound.detail_arg_col = *idx;
        }
      }
    }
    MDJ_ASSIGN_OR_RETURN(DataType out_type, bound.fn->ResultType(arg_type));
    bound.output_field = Field{spec.output_name, out_type};
    out.push_back(std::move(bound));
  }
  return out;
}

Result<AggSpec> RollupSpec(const AggSpec& spec) {
  MDJ_ASSIGN_OR_RETURN(const AggregateFunction* fn,
                       AggregateRegistry::Global()->Lookup(spec.function));
  std::string rollup = fn->RollupFunctionName();
  if (rollup.empty()) {
    return Status::InvalidArgument("aggregate '", spec.function,
                                   "' is not distributive; Theorem 4.5 does not apply");
  }
  // The rolled-up aggregate reads the finer cuboid's output column, which is
  // the detail relation of the outer MD-join in the rewritten expression.
  return AggSpec{rollup, Expr::ColumnRef(Side::kDetail, spec.output_name),
                 spec.output_name};
}

Result<bool> AllDistributive(const std::vector<AggSpec>& specs) {
  for (const AggSpec& spec : specs) {
    MDJ_ASSIGN_OR_RETURN(const AggregateFunction* fn,
                         AggregateRegistry::Global()->Lookup(spec.function));
    if (fn->agg_class() != AggClass::kDistributive) return false;
  }
  return true;
}

}  // namespace mdjoin
