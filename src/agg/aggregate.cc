#include "agg/aggregate.h"

#include "common/string_util.h"

namespace mdjoin {

const char* AggClassToString(AggClass c) {
  switch (c) {
    case AggClass::kDistributive:
      return "distributive";
    case AggClass::kAlgebraic:
      return "algebraic";
    case AggClass::kHolistic:
      return "holistic";
  }
  return "unknown";
}

namespace internal {
void RegisterBuiltinAggregates(AggregateRegistry* registry);
void RegisterHolisticAggregates(AggregateRegistry* registry);
}  // namespace internal

AggregateRegistry* AggregateRegistry::Global() {
  static AggregateRegistry* registry = [] {
    auto* r = new AggregateRegistry();
    internal::RegisterBuiltinAggregates(r);
    internal::RegisterHolisticAggregates(r);
    return r;
  }();
  return registry;
}

Status AggregateRegistry::Register(std::unique_ptr<AggregateFunction> fn) {
  MutexLock lock(mu_);
  std::string key = ToLower(fn->name());
  auto [it, inserted] = fns_.try_emplace(std::move(key), std::move(fn));
  if (!inserted) {
    return Status::AlreadyExists("aggregate '", it->first, "' already registered");
  }
  return Status::OK();
}

Result<const AggregateFunction*> AggregateRegistry::Lookup(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = fns_.find(ToLower(name));
  if (it == fns_.end()) {
    std::string known;
    for (const auto& [k, v] : fns_) {
      if (!known.empty()) known += ", ";
      known += k;
    }
    return Status::NotFound("unknown aggregate '", name, "'; known: ", known);
  }
  return it->second.get();
}

std::vector<std::string> AggregateRegistry::RegisteredNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(fns_.size());
  for (const auto& [k, v] : fns_) out.push_back(k);
  return out;
}

}  // namespace mdjoin
