#ifndef MDJOIN_AGG_HOLISTIC_AGGS_H_
#define MDJOIN_AGG_HOLISTIC_AGGS_H_

#include "agg/aggregate.h"
#include "common/logging.h"

namespace mdjoin {
namespace internal {

/// Installs the holistic / approximation aggregates the paper discusses
/// around Algorithm 3.1 (footnote 2) and in the §1 survey of complex
/// aggregate needs:
///   median        (holistic; exact, buffers all values)
///   approx_median (algebraic-by-approximation: bounded reservoir sample,
///                  the [MRL98]-style trade footnote 2 points at)
///   mode          ("most frequent"; holistic, hash-count state)
/// Called once by AggregateRegistry::Global().
void RegisterHolisticAggregates(AggregateRegistry* registry);

}  // namespace internal
}  // namespace mdjoin

#endif  // MDJOIN_AGG_HOLISTIC_AGGS_H_
