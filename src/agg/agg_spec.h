#ifndef MDJOIN_AGG_AGG_SPEC_H_
#define MDJOIN_AGG_AGG_SPEC_H_

#include <string>
#include <vector>

#include "agg/aggregate.h"
#include "agg/flat_state.h"
#include "expr/compile.h"
#include "expr/expr.h"
#include "types/schema.h"

namespace mdjoin {

/// One entry of the MD-join's aggregate list `l` (Definition 3.1): a function
/// f_i, its argument expression over the detail relation (nullptr means
/// count(*)), and the name of the output column it populates.
struct AggSpec {
  std::string function;
  ExprPtr argument;
  std::string output_name;

  std::string ToString() const;
};

/// Factory helpers, e.g. `Sum(RCol("sale"), "total_sale")`.
AggSpec Count(std::string output_name);
AggSpec Count(ExprPtr argument, std::string output_name);
AggSpec Sum(ExprPtr argument, std::string output_name);
AggSpec Avg(ExprPtr argument, std::string output_name);
AggSpec Min(ExprPtr argument, std::string output_name);
AggSpec Max(ExprPtr argument, std::string output_name);
AggSpec CountDistinct(ExprPtr argument, std::string output_name);

/// An AggSpec resolved against schemas: function implementation, compiled
/// argument, and the output field (name + inferred type).
struct BoundAgg {
  const AggregateFunction* fn = nullptr;
  bool has_arg = false;
  CompiledExpr arg;
  Field output_field;

  /// When the argument is a plain detail-column reference, its column index;
  /// -1 otherwise. The vectorized scan reads the cell straight out of the
  /// column instead of running the compiled closure per matched pair.
  int detail_arg_col = -1;

  /// Evaluates the argument (if any) on `ctx` and folds it into `state`.
  void UpdateFromRow(AggregateState* state, const RowCtx& ctx) const {
    if (has_arg) {
      fn->Update(state, arg.Eval(ctx));
    } else {
      // count(*): every matching row counts; feed a non-NULL token.
      fn->Update(state, Value::Int64(1));
    }
  }

  /// Flat-state analogue of UpdateFromRow for scan loops that keep their
  /// accumulators in an AggStateColumn.
  void UpdateColumnFromRow(AggStateColumn* col, int64_t group, const RowCtx& ctx) const {
    if (has_arg) {
      col->Update(group, arg.Eval(ctx));
    } else {
      col->UpdateCountStar(group);
    }
  }
};

/// Binds `specs` against the given schemas (either may be nullptr when that
/// side is absent). Checks function existence, argument bindability, type
/// compatibility and output-name uniqueness against `existing` names.
Result<std::vector<BoundAgg>> BindAggs(const std::vector<AggSpec>& specs,
                                       const Schema* base_schema,
                                       const Schema* detail_schema);

/// Theorem 4.5 support: the spec that re-aggregates `spec`'s finalized
/// output when rolling up from a finer cuboid ("count becomes sum"). Errors
/// for non-distributive aggregates, for which the theorem does not apply.
Result<AggSpec> RollupSpec(const AggSpec& spec);

/// True if every spec's function is distributive (Theorem 4.5 precondition).
Result<bool> AllDistributive(const std::vector<AggSpec>& specs);

}  // namespace mdjoin

#endif  // MDJOIN_AGG_AGG_SPEC_H_
