#ifndef MDJOIN_AGG_FLAT_STATE_H_
#define MDJOIN_AGG_FLAT_STATE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "agg/aggregate.h"
#include "common/logging.h"
#include "types/value.h"

namespace mdjoin {

/// Per-aggregate accumulator storage for every base row of one MD-join, in
/// the layout the vectorized evaluator wants: when the function declares a
/// FlatAggKind, state is struct-of-arrays — one contiguous typed vector per
/// accumulator field (count, isum/dsum, best, ...) plus a validity byte per
/// group — so the scan's update is a non-virtual switch on the kind followed
/// by an indexed store, instead of a unique_ptr deref + virtual Update per
/// matched pair. Functions without a flat kind (holistic built-ins, UDAFs)
/// transparently fall back to one heap AggregateState per group behind the
/// same Update/Merge/Finalize surface, so callers never branch on the
/// representation.
///
/// The flat kernels reproduce the corresponding built-ins' semantics exactly
/// (NULL skipping, ALL handling, sum's int/float promotion); this is enforced
/// by the A/B tests in tests/vectorized_test.cc.
class AggStateColumn {
 public:
  AggStateColumn() = default;
  AggStateColumn(AggStateColumn&&) = default;
  AggStateColumn& operator=(AggStateColumn&&) = default;

  /// Builds accumulators for `groups` groups of function `fn` (not owned;
  /// must outlive the column).
  static AggStateColumn Make(const AggregateFunction* fn, int64_t groups);

  bool is_flat() const { return kind_ != FlatAggKind::kNone; }
  int64_t groups() const { return groups_; }

  /// Folds `v` into group `g`. Hot path: inline kind dispatch, no virtual
  /// call, no heap access for flat kinds.
  void Update(int64_t g, const Value& v) {
    const size_t i = static_cast<size_t>(g);
    switch (kind_) {
      case FlatAggKind::kCount:
        i64_[i] += static_cast<int64_t>(!v.is_null());
        return;
      case FlatAggKind::kSum:
        if (v.is_int64()) {
          int64_t x = v.int64();
          i64_[i] += x;
          f64_[i] += static_cast<double>(x);
          flags_[i] |= kAny;
        } else if (v.is_float64()) {
          f64_[i] += v.float64();
          flags_[i] |= kAny | kIsFloat;
        }
        return;
      case FlatAggKind::kMin:
      case FlatAggKind::kMax:
        UpdateExtremum(i, v);
        return;
      case FlatAggKind::kAvg:
        if (v.is_int64()) {
          f64_[i] += static_cast<double>(v.int64());
          ++i64_[i];
        } else if (v.is_float64()) {
          f64_[i] += v.float64();
          ++i64_[i];
        }
        return;
      case FlatAggKind::kNone:
        fn_->Update(heap_[i].get(), v);
        return;
    }
  }

  /// count(*) fast path: every matched pair counts, no Value is fabricated.
  void UpdateCountStar(int64_t g) {
    if (kind_ == FlatAggKind::kCount) {
      ++i64_[static_cast<size_t>(g)];
    } else {
      fn_->Update(heap_[static_cast<size_t>(g)].get(), Value::Int64(1));
    }
  }

  /// Folds the same value into `n` groups — the shape of the vectorized match
  /// loop, where one detail row matched a whole candidate list. Kind dispatch
  /// and argument decoding happen once; the per-group fold is a tight typed
  /// loop. Semantically identical to calling Update(groups[k], v) n times.
  void UpdateMany(const int64_t* groups, int64_t n, const Value& v) {
    switch (kind_) {
      case FlatAggKind::kCount:
        if (v.is_null()) return;
        for (int64_t k = 0; k < n; ++k) ++i64_[static_cast<size_t>(groups[k])];
        return;
      case FlatAggKind::kSum:
        if (v.is_int64()) {
          const int64_t x = v.int64();
          const double d = static_cast<double>(x);
          for (int64_t k = 0; k < n; ++k) {
            const size_t i = static_cast<size_t>(groups[k]);
            i64_[i] += x;
            f64_[i] += d;
            flags_[i] |= kAny;
          }
        } else if (v.is_float64()) {
          const double d = v.float64();
          for (int64_t k = 0; k < n; ++k) {
            const size_t i = static_cast<size_t>(groups[k]);
            f64_[i] += d;
            flags_[i] |= kAny | kIsFloat;
          }
        }
        return;
      case FlatAggKind::kMin:
      case FlatAggKind::kMax:
        if (v.is_null() || v.is_all()) return;
        for (int64_t k = 0; k < n; ++k) {
          UpdateExtremum(static_cast<size_t>(groups[k]), v);
        }
        return;
      case FlatAggKind::kAvg: {
        double d;
        if (v.is_int64()) {
          d = static_cast<double>(v.int64());
        } else if (v.is_float64()) {
          d = v.float64();
        } else {
          return;
        }
        for (int64_t k = 0; k < n; ++k) {
          const size_t i = static_cast<size_t>(groups[k]);
          f64_[i] += d;
          ++i64_[i];
        }
        return;
      }
      case FlatAggKind::kNone:
        for (int64_t k = 0; k < n; ++k) {
          fn_->Update(heap_[static_cast<size_t>(groups[k])].get(), v);
        }
        return;
    }
  }

  /// Typed UpdateMany for a non-null int64 argument cell: semantically
  /// UpdateMany(groups, n, Value::Int64(x)) but with no Value fabricated and
  /// no per-call storage-type dispatch — the shape the scan hits when the
  /// detail column has a typed mirror (table/table_accel.h).
  void UpdateManyI64(const int64_t* groups, int64_t n, int64_t x) {
    switch (kind_) {
      case FlatAggKind::kCount:
        for (int64_t k = 0; k < n; ++k) ++i64_[static_cast<size_t>(groups[k])];
        return;
      case FlatAggKind::kSum: {
        const double d = static_cast<double>(x);
        for (int64_t k = 0; k < n; ++k) {
          const size_t i = static_cast<size_t>(groups[k]);
          i64_[i] += x;
          f64_[i] += d;
          flags_[i] |= kAny;
        }
        return;
      }
      case FlatAggKind::kMin:
      case FlatAggKind::kMax:
        for (int64_t k = 0; k < n; ++k) {
          UpdateExtremumI64(static_cast<size_t>(groups[k]), x);
        }
        return;
      case FlatAggKind::kAvg: {
        const double d = static_cast<double>(x);
        for (int64_t k = 0; k < n; ++k) {
          const size_t i = static_cast<size_t>(groups[k]);
          f64_[i] += d;
          ++i64_[i];
        }
        return;
      }
      case FlatAggKind::kNone: {
        const Value v = Value::Int64(x);
        for (int64_t k = 0; k < n; ++k) {
          fn_->Update(heap_[static_cast<size_t>(groups[k])].get(), v);
        }
        return;
      }
    }
  }

  /// Typed UpdateMany for a non-null float64 argument cell.
  void UpdateManyF64(const int64_t* groups, int64_t n, double x) {
    switch (kind_) {
      case FlatAggKind::kCount:
        for (int64_t k = 0; k < n; ++k) ++i64_[static_cast<size_t>(groups[k])];
        return;
      case FlatAggKind::kSum:
        for (int64_t k = 0; k < n; ++k) {
          const size_t i = static_cast<size_t>(groups[k]);
          f64_[i] += x;
          flags_[i] |= kAny | kIsFloat;
        }
        return;
      case FlatAggKind::kMin:
      case FlatAggKind::kMax:
        for (int64_t k = 0; k < n; ++k) {
          UpdateExtremumF64(static_cast<size_t>(groups[k]), x);
        }
        return;
      case FlatAggKind::kAvg:
        for (int64_t k = 0; k < n; ++k) {
          const size_t i = static_cast<size_t>(groups[k]);
          f64_[i] += x;
          ++i64_[i];
        }
        return;
      case FlatAggKind::kNone: {
        const Value v = Value::Float64(x);
        for (int64_t k = 0; k < n; ++k) {
          fn_->Update(heap_[static_cast<size_t>(groups[k])].get(), v);
        }
        return;
      }
    }
  }

  /// kCount only: adds a precomputed per-block non-null count (or, for
  /// count(*), the block's row count) to each group. This is the fused-path
  /// shape — the block reduces once, then one add per group — and is exact
  /// because integer addition reassociates freely. Callers must check
  /// kind() == kCount; other kinds have no block-reducible accumulator.
  void AddCountMany(const int64_t* groups, int64_t n, int64_t add) {
    MDJ_DCHECK(kind_ == FlatAggKind::kCount);
    for (int64_t k = 0; k < n; ++k) i64_[static_cast<size_t>(groups[k])] += add;
  }

  FlatAggKind kind() const { return kind_; }

  /// UpdateCountStar over a candidate list; one branch, then a tight loop.
  void UpdateCountStarMany(const int64_t* groups, int64_t n) {
    if (kind_ == FlatAggKind::kCount) {
      for (int64_t k = 0; k < n; ++k) ++i64_[static_cast<size_t>(groups[k])];
    } else {
      for (int64_t k = 0; k < n; ++k) {
        fn_->Update(heap_[static_cast<size_t>(groups[k])].get(), Value::Int64(1));
      }
    }
  }

  /// Combines `other`'s accumulators group-wise into this column (Theorem
  /// 4.1 union / detail-split parallelism). Both sides must come from the
  /// same function and group count.
  void Merge(const AggStateColumn& other);

  /// Merge restricted to groups [lo, hi) — the unit the parallel merge tree
  /// interleaves with guard checks so cancellation lands mid-merge instead of
  /// after a whole |B|-wide column. Merge(other) == MergeRange(other, 0,
  /// groups()).
  void MergeRange(const AggStateColumn& other, int64_t lo, int64_t hi);

  /// Reports group `g` (identity Value for untouched groups, matching the
  /// function's Finalize on a fresh state).
  Value Finalize(int64_t g) const;

 private:
  static constexpr uint8_t kAny = 1;      // group has absorbed >= 1 value
  static constexpr uint8_t kIsFloat = 2;  // sum saw a float64 input

  void UpdateExtremum(size_t i, const Value& v) {
    if (v.is_null() || v.is_all()) return;
    if (!(flags_[i] & kAny)) {
      flags_[i] = kAny;
      vals_[i] = v;
      return;
    }
    // Fast path for the common all-int64 column before the generic Compare.
    int c;
    if (v.is_int64() && vals_[i].is_int64()) {
      int64_t a = v.int64(), b = vals_[i].int64();
      c = a < b ? -1 : (a > b ? 1 : 0);
    } else {
      c = v.Compare(vals_[i]);
    }
    if (kind_ == FlatAggKind::kMin ? c < 0 : c > 0) vals_[i] = v;
  }

  /// Typed extremum folds. Identical to UpdateExtremum with an Int64/Float64
  /// Value, minus the Value until one must be stored. The float compare uses
  /// strict IEEE < / > — exactly Value::Compare's verdict for doubles, with
  /// NaN never replacing the incumbent (Compare ranks it "equal").
  void UpdateExtremumI64(size_t i, int64_t x) {
    if (!(flags_[i] & kAny)) {
      flags_[i] = kAny;
      vals_[i] = Value::Int64(x);
      return;
    }
    if (vals_[i].is_int64()) {
      const int64_t b = vals_[i].int64();
      if (kind_ == FlatAggKind::kMin ? x < b : x > b) vals_[i] = Value::Int64(x);
      return;
    }
    UpdateExtremum(i, Value::Int64(x));
  }

  void UpdateExtremumF64(size_t i, double x) {
    if (!(flags_[i] & kAny)) {
      flags_[i] = kAny;
      vals_[i] = Value::Float64(x);
      return;
    }
    if (vals_[i].is_float64()) {
      const double b = vals_[i].float64();
      if (kind_ == FlatAggKind::kMin ? x < b : x > b) vals_[i] = Value::Float64(x);
      return;
    }
    UpdateExtremum(i, Value::Float64(x));
  }

  const AggregateFunction* fn_ = nullptr;
  FlatAggKind kind_ = FlatAggKind::kNone;
  int64_t groups_ = 0;
  // Flat storage; which vectors are populated depends on kind_:
  //   kCount: i64_ (count)
  //   kSum:   i64_ (int sum), f64_ (double sum), flags_ (any | is_float)
  //   kMin/kMax: vals_ (best), flags_ (any)
  //   kAvg:   f64_ (sum), i64_ (count)
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<uint8_t> flags_;
  std::vector<Value> vals_;
  // kNone fallback: one heap state per group, classic virtual dispatch.
  std::vector<std::unique_ptr<AggregateState>> heap_;
};

}  // namespace mdjoin

#endif  // MDJOIN_AGG_FLAT_STATE_H_
