#include "cube/pipesort.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "cube/base_tables.h"
#include "ra/group_by.h"
#include "table/key.h"
#include "table/table_ops.h"

namespace mdjoin {

int PipesortPlan::num_sorts() const {
  int sorts = 1;  // the initial sort producing the full cuboid
  for (const PipesortEdge& e : edges) {
    if (!e.pipelined) ++sorts;
  }
  return sorts;
}

std::string PipesortPlan::ToString() const {
  auto name = [this](CuboidMask mask) {
    std::string out = "(";
    for (size_t i = 0; i < dims.size(); ++i) {
      if (i > 0) out += ",";
      out += (mask & (CuboidMask{1} << i)) ? dims[i] : "ALL";
    }
    return out + ")";
  };
  std::unordered_map<CuboidMask, CuboidMask> resort_parent;
  for (const PipesortEdge& e : edges) {
    if (!e.pipelined) resort_parent[e.child] = e.parent;
  }
  std::string out;
  for (size_t p = 0; p < paths.size(); ++p) {
    out += "path " + std::to_string(p) + ": ";
    for (size_t i = 0; i < paths[p].size(); ++i) {
      if (i > 0) out += " -> ";
      out += name(paths[p][i]);
    }
    auto it = resort_parent.find(paths[p].front());
    if (it != resort_parent.end()) {
      out += "   [re-sort of " + name(it->second) + "]";
    }
    out += "\n";
  }
  return out;
}

Result<std::map<CuboidMask, int64_t>> CuboidCardinalities(const Table& t,
                                                          const CubeLattice& lattice) {
  std::map<CuboidMask, int64_t> out;
  for (CuboidMask mask : lattice.AllCuboids()) {
    std::vector<int> cols;
    for (int i = 0; i < lattice.num_dims(); ++i) {
      if (mask & (CuboidMask{1} << i)) {
        MDJ_ASSIGN_OR_RETURN(
            int idx, t.schema().GetFieldIndex(lattice.dims()[static_cast<size_t>(i)]));
        cols.push_back(idx);
      }
    }
    std::unordered_set<RowKey, RowKeyHash, RowKeyEqual> distinct;
    for (int64_t r = 0; r < t.num_rows(); ++r) distinct.insert(t.GetRowKey(r, cols));
    out[mask] = static_cast<int64_t>(distinct.size());
  }
  return out;
}

Result<PipesortPlan> BuildPipesortPlan(const CubeLattice& lattice,
                                       const std::map<CuboidMask, int64_t>& cardinality) {
  PipesortPlan plan;
  plan.dims = lattice.dims();
  const int d = lattice.num_dims();

  auto card = [&cardinality](CuboidMask m) -> int64_t {
    auto it = cardinality.find(m);
    return it == cardinality.end() ? 0 : it->second;
  };

  // Root sort order: dimensions by descending cardinality — the [AAD+96]
  // heuristic that maximizes prefix reuse down the lattice.
  std::vector<int> root_order(static_cast<size_t>(d));
  for (int i = 0; i < d; ++i) root_order[static_cast<size_t>(i)] = i;
  std::stable_sort(root_order.begin(), root_order.end(), [&](int a, int b) {
    return card(CuboidMask{1} << a) > card(CuboidMask{1} << b);
  });
  plan.sort_orders[lattice.full_cuboid()] = root_order;

  for (int level = d - 1; level >= 0; --level) {
    std::vector<CuboidMask> children = lattice.CuboidsAtLevel(level);
    std::stable_sort(children.begin(), children.end(),
                     [&](CuboidMask a, CuboidMask b) { return card(a) > card(b); });
    std::unordered_set<CuboidMask> piped_parents;
    for (CuboidMask child : children) {
      // Try to pipeline: an unused parent whose sort-order prefix covers
      // exactly the child's dimensions.
      CuboidMask pipe_parent = 0;
      bool found_pipe = false;
      for (CuboidMask parent : lattice.ParentsOf(child)) {
        if (static_cast<CuboidMask>(parent) > lattice.full_cuboid()) continue;
        if (!plan.sort_orders.count(parent) || piped_parents.count(parent)) continue;
        const std::vector<int>& order = plan.sort_orders[parent];
        CuboidMask prefix = 0;
        for (int i = 0; i < level; ++i) {
          prefix |= CuboidMask{1} << order[static_cast<size_t>(i)];
        }
        if (prefix == child) {
          pipe_parent = parent;
          found_pipe = true;
          break;
        }
      }
      if (found_pipe) {
        piped_parents.insert(pipe_parent);
        const std::vector<int>& parent_order = plan.sort_orders[pipe_parent];
        plan.sort_orders[child] = std::vector<int>(parent_order.begin(),
                                                   parent_order.begin() + level);
        plan.edges.push_back({pipe_parent, child, /*pipelined=*/true});
        continue;
      }
      // Re-sort the cheapest (smallest) computed parent.
      CuboidMask best = 0;
      int64_t best_card = -1;
      for (CuboidMask parent : lattice.ParentsOf(child)) {
        if (!plan.sort_orders.count(parent)) continue;
        if (best_card < 0 || card(parent) < best_card) {
          best = parent;
          best_card = card(parent);
        }
      }
      if (best_card < 0) {
        return Status::Internal("pipesort: no computed parent for a cuboid");
      }
      std::vector<int> order;
      for (int i = 0; i < d; ++i) {
        if (child & (CuboidMask{1} << i)) order.push_back(i);
      }
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return card(CuboidMask{1} << a) > card(CuboidMask{1} << b);
      });
      plan.sort_orders[child] = std::move(order);
      plan.edges.push_back({best, child, /*pipelined=*/false});
    }
  }

  // Assemble pipelined paths: one starting at the full cuboid, one per
  // re-sorted child.
  std::unordered_map<CuboidMask, CuboidMask> pipe_child;
  for (const PipesortEdge& e : plan.edges) {
    if (e.pipelined) pipe_child[e.parent] = e.child;
  }
  std::vector<CuboidMask> starts;
  starts.push_back(lattice.full_cuboid());
  for (const PipesortEdge& e : plan.edges) {
    if (!e.pipelined) starts.push_back(e.child);
  }
  for (CuboidMask start : starts) {
    std::vector<CuboidMask> path{start};
    auto it = pipe_child.find(start);
    while (it != pipe_child.end()) {
      path.push_back(it->second);
      it = pipe_child.find(it->second);
    }
    plan.paths.push_back(std::move(path));
  }
  return plan;
}

namespace {

/// Groups `input` (detail or a finer cuboid) on `attrs` with `specs`; empty
/// attrs means the single grand-total group, skipped when input is empty so
/// an empty cube stays empty. Uses the *streaming* sort-based aggregator:
/// the executor's pipelining invariant guarantees contiguous key runs
/// (sorted detail for the full cuboid, inherited prefix order for pipelined
/// children, explicit re-sorts otherwise) — SortedGroupBy errors out if the
/// invariant is ever violated, so plan bugs surface as errors, not wrong
/// answers.
Result<Table> GroupOrTotal(const Table& input, const std::vector<std::string>& attrs,
                           const std::vector<AggSpec>& specs) {
  if (!attrs.empty()) return SortedGroupBy(input, attrs, specs);
  if (input.num_rows() == 0) {
    // Empty grand total: zero rows (matches MD over an empty base table).
    std::vector<BoundAgg> bound;
    MDJ_ASSIGN_OR_RETURN(bound, BindAggs(specs, nullptr, &input.schema()));
    std::vector<Field> fields;
    for (const BoundAgg& b : bound) fields.push_back(b.output_field);
    return Table{Schema(std::move(fields))};
  }
  return AggregateAll(input, specs);
}

Result<Schema> CubeResultSchema(const Table& detail, const std::vector<std::string>& dims,
                                const std::vector<AggSpec>& aggs) {
  std::vector<Field> fields;
  for (const std::string& d : dims) {
    MDJ_ASSIGN_OR_RETURN(int idx, detail.schema().GetFieldIndex(d));
    fields.push_back(detail.schema().field(idx));
  }
  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                       BindAggs(aggs, nullptr, &detail.schema()));
  for (const BoundAgg& b : bound) fields.push_back(b.output_field);
  return Schema(std::move(fields));
}

}  // namespace

Result<Table> ExecutePipesortPlan(const PipesortPlan& plan, const Table& detail,
                                  const std::vector<AggSpec>& aggs,
                                  CubeExecStats* stats) {
  CubeExecStats local;
  if (stats == nullptr) stats = &local;
  *stats = CubeExecStats{};

  MDJ_ASSIGN_OR_RETURN(CubeLattice lattice, CubeLattice::Make(plan.dims));
  MDJ_ASSIGN_OR_RETURN(Schema cube_schema, CubeResultSchema(detail, plan.dims, aggs));

  // Theorem 4.5 requires distributive aggregates for the roll-up rewrites.
  MDJ_ASSIGN_OR_RETURN(bool distributive, AllDistributive(aggs));
  if (!distributive) {
    return Status::InvalidArgument(
        "pipesort execution rolls cuboids up from finer cuboids (Theorem 4.5), which "
        "requires distributive aggregates");
  }
  std::vector<AggSpec> rollup_specs;
  rollup_specs.reserve(aggs.size());
  for (const AggSpec& a : aggs) {
    MDJ_ASSIGN_OR_RETURN(AggSpec r, RollupSpec(a));
    rollup_specs.push_back(std::move(r));
  }

  // Full cuboid: sort the detail relation by the root order, then aggregate.
  const CuboidMask full = lattice.full_cuboid();
  auto order_it = plan.sort_orders.find(full);
  if (order_it == plan.sort_orders.end()) {
    return Status::InvalidArgument("plan lacks a sort order for the full cuboid");
  }
  std::vector<std::string> root_attrs;
  for (int dim : order_it->second) root_attrs.push_back(plan.dims[static_cast<size_t>(dim)]);
  MDJ_ASSIGN_OR_RETURN(Table sorted_detail, SortTableBy(detail, root_attrs));
  ++stats->sorts;
  stats->rows_scanned += detail.num_rows();
  MDJ_ASSIGN_OR_RETURN(Table full_grouped, GroupOrTotal(sorted_detail, root_attrs, aggs));
  stats->rows_aggregated += full_grouped.num_rows();

  std::map<CuboidMask, Table> results;
  {
    MDJ_ASSIGN_OR_RETURN(Table expanded,
                         WidenGroupedToCube(full_grouped, plan.dims, full, cube_schema));
    results.emplace(full, std::move(expanded));
  }

  // Roll each cuboid up from its tree parent (edges were emitted finest
  // level first, so parents are always ready).
  for (const PipesortEdge& edge : plan.edges) {
    auto parent_it = results.find(edge.parent);
    if (parent_it == results.end()) {
      return Status::Internal("pipesort execution: parent cuboid not yet computed");
    }
    const Table& parent = parent_it->second;
    auto child_order_it = plan.sort_orders.find(edge.child);
    if (child_order_it == plan.sort_orders.end()) {
      return Status::Internal("pipesort execution: missing child sort order");
    }
    std::vector<std::string> child_attrs;
    for (int dim : child_order_it->second) {
      child_attrs.push_back(plan.dims[static_cast<size_t>(dim)]);
    }
    const Table* source = &parent;
    Table resorted;
    if (!edge.pipelined && !child_attrs.empty()) {
      MDJ_ASSIGN_OR_RETURN(resorted, SortTableBy(parent, child_attrs));
      ++stats->sorts;
      source = &resorted;
    }
    stats->rows_scanned += source->num_rows();
    MDJ_ASSIGN_OR_RETURN(Table grouped, GroupOrTotal(*source, child_attrs, rollup_specs));
    stats->rows_aggregated += grouped.num_rows();
    MDJ_ASSIGN_OR_RETURN(Table expanded,
                         WidenGroupedToCube(grouped, plan.dims, edge.child, cube_schema));
    results.emplace(edge.child, std::move(expanded));
  }

  // Concatenate finest-to-coarsest, the display order of Figure 1(a).
  std::vector<Table> ordered;
  for (int level = lattice.num_dims(); level >= 0; --level) {
    for (CuboidMask mask : lattice.CuboidsAtLevel(level)) {
      auto it = results.find(mask);
      if (it == results.end()) return Status::Internal("missing cuboid in results");
      ordered.push_back(std::move(it->second));
    }
  }
  return ConcatAll(ordered);
}

Result<Table> ComputeCubeFromDetailOnly(const CubeLattice& lattice, const Table& detail,
                                        const std::vector<AggSpec>& aggs,
                                        CubeExecStats* stats) {
  CubeExecStats local;
  if (stats == nullptr) stats = &local;
  *stats = CubeExecStats{};
  MDJ_ASSIGN_OR_RETURN(Schema cube_schema,
                       CubeResultSchema(detail, lattice.dims(), aggs));
  std::vector<Table> ordered;
  for (int level = lattice.num_dims(); level >= 0; --level) {
    for (CuboidMask mask : lattice.CuboidsAtLevel(level)) {
      std::vector<std::string> attrs = lattice.CuboidAttrs(mask);
      MDJ_ASSIGN_OR_RETURN(Table sorted, SortTableBy(detail, attrs));
      ++stats->sorts;
      stats->rows_scanned += detail.num_rows();
      MDJ_ASSIGN_OR_RETURN(Table grouped, GroupOrTotal(sorted, attrs, aggs));
      stats->rows_aggregated += grouped.num_rows();
      MDJ_ASSIGN_OR_RETURN(Table expanded,
                           WidenGroupedToCube(grouped, lattice.dims(), mask, cube_schema));
      ordered.push_back(std::move(expanded));
    }
  }
  return ConcatAll(ordered);
}

}  // namespace mdjoin
