#ifndef MDJOIN_CUBE_PARTITIONED_CUBE_H_
#define MDJOIN_CUBE_PARTITIONED_CUBE_H_

#include <string>
#include <vector>

#include "agg/agg_spec.h"
#include "common/result.h"
#include "table/table.h"

namespace mdjoin {

struct PartitionedCubeStats {
  int64_t partitions = 0;           // value-partitions of the chosen dimension
  int64_t detail_rows_scanned = 0;  // across all partition-local MD-joins
  int64_t full_detail_scans = 0;    // scans of the whole detail relation
};

/// Ross–Srivastava-style partitioned cube computation expressed through the
/// paper's algebra (§4.4, last derivation):
///
///   MD(B, R, l, θ) = ∪_z MD(σ_{Di=z}(B), σ_{R.Di=z}(R), l, θ)
///
/// Theorem 4.1 splits the cube's base table B along a chosen dimension Di;
/// Observation 4.1 pushes each value selection through θ's equi conjunct to
/// the detail relation, so each fragment aggregates a partition of R that can
/// fit in memory. The Di=ALL slice of B (cuboids that roll Di up) cannot be
/// pushed — its θ equality is an ALL wildcard — and is evaluated against the
/// full detail relation, which the stats record as one full scan.
///
/// Output: the complete cube [dims..., agg outputs...], extensionally equal
/// to MdJoin(CubeByBase(detail, dims), detail, aggs, θ_eq).
Result<Table> PartitionedCube(const Table& detail, const std::vector<std::string>& dims,
                              const std::vector<AggSpec>& aggs,
                              const std::string& partition_dim,
                              PartitionedCubeStats* stats = nullptr);

}  // namespace mdjoin

#endif  // MDJOIN_CUBE_PARTITIONED_CUBE_H_
