#ifndef MDJOIN_CUBE_PIPESORT_H_
#define MDJOIN_CUBE_PIPESORT_H_

#include <map>
#include <string>
#include <vector>

#include "agg/agg_spec.h"
#include "common/result.h"
#include "cube/lattice.h"
#include "table/table.h"

namespace mdjoin {

/// PIPESORT-style cube computation (paper §4.4, Figure 2; after [AAD+96]).
///
/// The algebraic reading the paper gives: Theorem 4.1 partitions the cube's
/// base-values table into its cuboids, and Theorem 4.5 lets every coarser
/// cuboid be computed from a finer one instead of from the detail relation.
/// What remains is choosing, for each cuboid, *which* parent computes it and
/// whether the parent's sort order can be reused (pipelined) or the parent's
/// result must be re-sorted first — the dashed edges of Figure 2.

/// One tree edge of the plan.
struct PipesortEdge {
  CuboidMask parent;
  CuboidMask child;
  bool pipelined;  // false => child requires re-sorting parent's result
};

struct PipesortPlan {
  std::vector<std::string> dims;
  std::vector<PipesortEdge> edges;  // one per non-root cuboid
  /// Sort order (dimension indices) under which each cuboid is produced.
  std::map<CuboidMask, std::vector<int>> sort_orders;
  /// Pipelined chains, finest-first; path 0 starts at the full cuboid, every
  /// further path starts at a re-sorted cuboid. This is the "pipelined paths"
  /// presentation of Figure 2.
  std::vector<std::vector<CuboidMask>> paths;

  int num_sorts() const;  // re-sorts (dashed edges) + 1 for the initial sort
  std::string ToString() const;
};

/// Exact per-cuboid distinct counts from the data (this engine is in-memory,
/// so the "cost-based optimizer" can afford true statistics).
Result<std::map<CuboidMask, int64_t>> CuboidCardinalities(const Table& t,
                                                          const CubeLattice& lattice);

/// Builds the plan: level-by-level greedy matching (largest child first).
/// A child pipelines from an unused parent whose sort order it prefixes;
/// otherwise it re-sorts the smallest available parent.
Result<PipesortPlan> BuildPipesortPlan(const CubeLattice& lattice,
                                       const std::map<CuboidMask, int64_t>& cardinality);

/// Execution statistics for comparing strategies in the benches.
struct CubeExecStats {
  int64_t sorts = 0;
  int64_t rows_scanned = 0;     // input rows read across all aggregations
  int64_t rows_aggregated = 0;  // output rows produced
};

/// Executes the plan over `detail`: the full cuboid is computed by sorting
/// the detail relation; every other cuboid is rolled up from its tree parent
/// (Theorem 4.5: `aggs` must be distributive). Returns the complete cube with
/// schema [dims..., agg outputs...], ALL markers in rolled-up positions —
/// extensionally equal to MdJoin(CubeByBase(detail), detail, aggs, θ_eq).
Result<Table> ExecutePipesortPlan(const PipesortPlan& plan, const Table& detail,
                                  const std::vector<AggSpec>& aggs,
                                  CubeExecStats* stats = nullptr);

/// Baseline for the ablation: computes every cuboid independently from the
/// detail relation (no Theorem 4.5 reuse), same output.
Result<Table> ComputeCubeFromDetailOnly(const CubeLattice& lattice, const Table& detail,
                                        const std::vector<AggSpec>& aggs,
                                        CubeExecStats* stats = nullptr);

}  // namespace mdjoin

#endif  // MDJOIN_CUBE_PIPESORT_H_
