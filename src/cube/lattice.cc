#include "cube/lattice.h"

#include <bit>

namespace mdjoin {

Result<CubeLattice> CubeLattice::Make(std::vector<std::string> dims) {
  if (dims.empty()) return Status::InvalidArgument("cube lattice needs >= 1 dimension");
  if (dims.size() > 20) {
    return Status::InvalidArgument("cube lattice limited to 20 dimensions, got ",
                                   dims.size());
  }
  for (size_t i = 0; i < dims.size(); ++i) {
    for (size_t j = i + 1; j < dims.size(); ++j) {
      if (dims[i] == dims[j]) {
        return Status::InvalidArgument("duplicate cube dimension '", dims[i], "'");
      }
    }
  }
  return CubeLattice(std::move(dims));
}

std::vector<CuboidMask> CubeLattice::AllCuboids() const {
  std::vector<CuboidMask> out;
  out.reserve(size_t{1} << num_dims());
  for (CuboidMask m = 0; m <= full_cuboid(); ++m) out.push_back(m);
  return out;
}

std::vector<CuboidMask> CubeLattice::CuboidsAtLevel(int level) const {
  std::vector<CuboidMask> out;
  for (CuboidMask m = 0; m <= full_cuboid(); ++m) {
    if (Level(m) == level) out.push_back(m);
  }
  return out;
}

std::vector<std::string> CubeLattice::CuboidAttrs(CuboidMask mask) const {
  std::vector<std::string> out;
  for (int i = 0; i < num_dims(); ++i) {
    if (mask & (CuboidMask{1} << i)) out.push_back(dims_[static_cast<size_t>(i)]);
  }
  return out;
}

int CubeLattice::Level(CuboidMask mask) { return std::popcount(mask); }

bool CubeLattice::IsParent(CuboidMask parent, CuboidMask child) {
  return (child & parent) == child && Level(parent) == Level(child) + 1;
}

std::vector<CuboidMask> CubeLattice::ParentsOf(CuboidMask child) const {
  std::vector<CuboidMask> out;
  for (int i = 0; i < num_dims(); ++i) {
    CuboidMask bit = CuboidMask{1} << i;
    if (!(child & bit)) out.push_back(child | bit);
  }
  return out;
}

std::string CubeLattice::CuboidName(CuboidMask mask) const {
  std::string out = "(";
  for (int i = 0; i < num_dims(); ++i) {
    if (i > 0) out += ", ";
    if (mask & (CuboidMask{1} << i)) {
      out += dims_[static_cast<size_t>(i)];
    } else {
      out += "ALL";
    }
  }
  return out + ")";
}

}  // namespace mdjoin
