#include "cube/subcube_selection.h"

#include <algorithm>

#include "cube/base_tables.h"
#include "ra/group_by.h"

namespace mdjoin {

bool SubcubeSelection::Contains(CuboidMask mask) const {
  return std::find(materialized.begin(), materialized.end(), mask) !=
         materialized.end();
}

std::string SubcubeSelection::ToString(const CubeLattice& lattice) const {
  std::string out = "materialized:";
  for (CuboidMask mask : materialized) {
    out += " ";
    out += lattice.CuboidName(mask);
  }
  return out;
}

namespace {

int64_t Card(const std::map<CuboidMask, int64_t>& cardinality, CuboidMask mask) {
  auto it = cardinality.find(mask);
  return it == cardinality.end() ? 0 : it->second;
}

bool IsAncestor(CuboidMask ancestor, CuboidMask target) {
  return (target & ancestor) == target;
}

/// Cost of answering `target` under `chosen`: cardinality of the cheapest
/// chosen ancestor; -1 if none (cannot happen once the full cuboid is in).
int64_t AnswerCost(const std::vector<CuboidMask>& chosen,
                   const std::map<CuboidMask, int64_t>& cardinality,
                   CuboidMask target) {
  int64_t best = -1;
  for (CuboidMask m : chosen) {
    if (!IsAncestor(m, target)) continue;
    int64_t c = Card(cardinality, m);
    if (best < 0 || c < best) best = c;
  }
  return best;
}

}  // namespace

Result<SubcubeSelection> SelectSubcubesGreedy(
    const CubeLattice& lattice, const std::map<CuboidMask, int64_t>& cardinality,
    int max_views) {
  if (max_views < 1) {
    return Status::InvalidArgument("SelectSubcubesGreedy: max_views must be >= 1");
  }
  SubcubeSelection selection;
  selection.materialized.push_back(lattice.full_cuboid());

  std::vector<CuboidMask> all = lattice.AllCuboids();
  while (static_cast<int>(selection.materialized.size()) < max_views) {
    CuboidMask best_candidate = 0;
    double best_benefit = 0;
    for (CuboidMask candidate : all) {
      if (selection.Contains(candidate)) continue;
      // Benefit: total reduction in answer cost across every granularity
      // that could roll up from the candidate.
      double benefit = 0;
      int64_t candidate_card = Card(cardinality, candidate);
      for (CuboidMask w : all) {
        if (!IsAncestor(candidate, w)) continue;
        int64_t now = AnswerCost(selection.materialized, cardinality, w);
        if (now > candidate_card) {
          benefit += static_cast<double>(now - candidate_card);
        }
      }
      if (benefit > best_benefit) {
        best_benefit = benefit;
        best_candidate = candidate;
      }
    }
    if (best_benefit <= 0) break;  // nothing helps anymore
    selection.materialized.push_back(best_candidate);
    selection.total_benefit += best_benefit;
  }
  return selection;
}

Result<CuboidMask> CheapestMaterializedAncestor(
    const SubcubeSelection& selection,
    const std::map<CuboidMask, int64_t>& cardinality, CuboidMask target) {
  CuboidMask best = 0;
  int64_t best_card = -1;
  for (CuboidMask m : selection.materialized) {
    if (!IsAncestor(m, target)) continue;
    int64_t c = Card(cardinality, m);
    if (best_card < 0 || c < best_card) {
      best = m;
      best_card = c;
    }
  }
  if (best_card < 0) {
    return Status::InvalidArgument(
        "selection lacks an ancestor for the target granularity (the full cuboid "
        "must always be materialized)");
  }
  return best;
}

namespace {

/// Rolls `source` (a cuboid table with schema [dims..., agg outputs...],
/// granularity `source_mask`) up to `target` with the Theorem 4.5 rewritten
/// aggregates. `target` ⊆ `source_mask`.
Result<Table> RollupCuboidTable(const Table& source, const CubeLattice& lattice,
                                CuboidMask target,
                                const std::vector<AggSpec>& rollup_specs,
                                const Schema& cube_schema) {
  std::vector<std::string> target_attrs = lattice.CuboidAttrs(target);
  // Rollup-spec arguments reference the agg output columns via kDetail —
  // GroupBy's single-table frame.
  Table grouped;
  if (!target_attrs.empty()) {
    MDJ_ASSIGN_OR_RETURN(grouped, GroupBy(source, target_attrs, rollup_specs));
  } else if (source.num_rows() > 0) {
    MDJ_ASSIGN_OR_RETURN(grouped, AggregateAll(source, rollup_specs));
  } else {
    // Empty grand total: zero rows with the right aggregate fields.
    MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                         BindAggs(rollup_specs, nullptr, &source.schema()));
    std::vector<Field> fields;
    for (const BoundAgg& b : bound) fields.push_back(b.output_field);
    grouped = Table{Schema(std::move(fields))};
  }
  return WidenGroupedToCube(grouped, lattice.dims(), target, cube_schema);
}

}  // namespace

Result<std::map<CuboidMask, Table>> MaterializeSubcubes(
    const SubcubeSelection& selection, const CubeLattice& lattice,
    const std::map<CuboidMask, int64_t>& cardinality, const Table& detail,
    const std::vector<AggSpec>& aggs) {
  if (selection.materialized.empty() ||
      selection.materialized.front() != lattice.full_cuboid()) {
    return Status::InvalidArgument(
        "MaterializeSubcubes: selection must start with the full cuboid");
  }
  MDJ_ASSIGN_OR_RETURN(bool distributive, AllDistributive(aggs));
  if (!distributive) {
    return Status::InvalidArgument(
        "MaterializeSubcubes: Theorem 4.5 roll-ups need distributive aggregates");
  }
  std::vector<AggSpec> rollup_specs;
  for (const AggSpec& a : aggs) {
    MDJ_ASSIGN_OR_RETURN(AggSpec r, RollupSpec(a));
    rollup_specs.push_back(std::move(r));
  }

  // Cube result schema: dims (typed from detail) + aggregate fields.
  std::vector<Field> fields;
  for (const std::string& d : lattice.dims()) {
    MDJ_ASSIGN_OR_RETURN(int idx, detail.schema().GetFieldIndex(d));
    fields.push_back(detail.schema().field(idx));
  }
  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                       BindAggs(aggs, nullptr, &detail.schema()));
  for (const BoundAgg& b : bound) fields.push_back(b.output_field);
  Schema cube_schema(std::move(fields));

  std::map<CuboidMask, Table> out;
  // Full cuboid from the detail relation.
  {
    std::vector<std::string> attrs = lattice.CuboidAttrs(lattice.full_cuboid());
    MDJ_ASSIGN_OR_RETURN(Table grouped, GroupBy(detail, attrs, aggs));
    MDJ_ASSIGN_OR_RETURN(Table widened,
                         WidenGroupedToCube(grouped, lattice.dims(),
                                            lattice.full_cuboid(), cube_schema));
    out.emplace(lattice.full_cuboid(), std::move(widened));
  }
  // Remaining cuboids, each from its cheapest already-materialized ancestor.
  for (size_t i = 1; i < selection.materialized.size(); ++i) {
    CuboidMask target = selection.materialized[i];
    SubcubeSelection done;
    done.materialized.assign(selection.materialized.begin(),
                             selection.materialized.begin() + static_cast<long>(i));
    MDJ_ASSIGN_OR_RETURN(CuboidMask source_mask,
                         CheapestMaterializedAncestor(done, cardinality, target));
    MDJ_ASSIGN_OR_RETURN(
        Table rolled, RollupCuboidTable(out.at(source_mask), lattice, target,
                                        rollup_specs, cube_schema));
    out.emplace(target, std::move(rolled));
  }
  return out;
}

Result<Table> AnswerFromSubcubes(const SubcubeSelection& selection,
                                 const CubeLattice& lattice,
                                 const std::map<CuboidMask, int64_t>& cardinality,
                                 const std::map<CuboidMask, Table>& materialized,
                                 const std::vector<AggSpec>& aggs, CuboidMask target) {
  MDJ_ASSIGN_OR_RETURN(CuboidMask source_mask,
                       CheapestMaterializedAncestor(selection, cardinality, target));
  auto it = materialized.find(source_mask);
  if (it == materialized.end()) {
    return Status::InvalidArgument("ancestor cuboid not present in materialized set");
  }
  if (source_mask == target) return it->second.Clone();
  std::vector<AggSpec> rollup_specs;
  for (const AggSpec& a : aggs) {
    MDJ_ASSIGN_OR_RETURN(AggSpec r, RollupSpec(a));
    rollup_specs.push_back(std::move(r));
  }
  return RollupCuboidTable(it->second, lattice, target, rollup_specs,
                           it->second.schema());
}

}  // namespace mdjoin
