#include "cube/partitioned_cube.h"

#include <unordered_map>

#include "core/mdjoin.h"
#include "cube/base_tables.h"
#include "expr/conjuncts.h"
#include "table/key.h"
#include "table/table_ops.h"

namespace mdjoin {

Result<Table> PartitionedCube(const Table& detail, const std::vector<std::string>& dims,
                              const std::vector<AggSpec>& aggs,
                              const std::string& partition_dim,
                              PartitionedCubeStats* stats) {
  PartitionedCubeStats local;
  if (stats == nullptr) stats = &local;
  *stats = PartitionedCubeStats{};

  bool dim_ok = false;
  for (const std::string& d : dims) dim_ok = dim_ok || d == partition_dim;
  if (!dim_ok) {
    return Status::InvalidArgument("partition dimension '", partition_dim,
                                   "' is not a cube dimension");
  }

  // θ: equality on every dimension (ALL-wildcard on the base side).
  std::vector<ExprPtr> eqs;
  for (const std::string& d : dims) {
    eqs.push_back(Expr::Binary(BinaryOp::kEq, Expr::ColumnRef(Side::kBase, d),
                               Expr::ColumnRef(Side::kDetail, d)));
  }
  ExprPtr theta = CombineConjuncts(std::move(eqs));

  MDJ_ASSIGN_OR_RETURN(Table base, CubeByBase(detail, dims));
  MDJ_ASSIGN_OR_RETURN(int base_pcol, base.schema().GetFieldIndex(partition_dim));

  // Hash-partition the detail relation on the chosen dimension once.
  MDJ_ASSIGN_OR_RETURN(int detail_pcol, detail.schema().GetFieldIndex(partition_dim));
  std::unordered_map<Value, Table, ValueHash> detail_parts;
  for (int64_t r = 0; r < detail.num_rows(); ++r) {
    const Value& v = detail.Get(r, detail_pcol);
    auto it = detail_parts.find(v);
    if (it == detail_parts.end()) {
      it = detail_parts.emplace(v, Table(detail.schema())).first;
    }
    it->second.AppendRowFrom(detail, r);
  }

  // Split B into the Di=z slices plus the Di=ALL slice.
  std::unordered_map<Value, Table, ValueHash> base_parts;
  Table base_all(base.schema());
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    const Value& v = base.Get(r, base_pcol);
    if (v.is_all()) {
      base_all.AppendRowFrom(base, r);
      continue;
    }
    auto it = base_parts.find(v);
    if (it == base_parts.end()) {
      it = base_parts.emplace(v, Table(base.schema())).first;
    }
    it->second.AppendRowFrom(base, r);
  }

  std::vector<Table> pieces;
  MdJoinOptions options;  // fully optimized fragment evaluation
  for (auto& [value, base_z] : base_parts) {
    auto dit = detail_parts.find(value);
    if (dit == detail_parts.end()) {
      return Status::Internal("partitioned cube: base value missing from detail");
    }
    MdJoinStats md_stats;
    MDJ_ASSIGN_OR_RETURN(Table piece,
                         MdJoin(base_z, dit->second, aggs, theta, options, &md_stats));
    stats->detail_rows_scanned += md_stats.detail_rows_scanned;
    ++stats->partitions;
    pieces.push_back(std::move(piece));
  }

  // The ALL slice aggregates across all Di values: one full detail scan.
  if (base_all.num_rows() > 0) {
    MdJoinStats md_stats;
    MDJ_ASSIGN_OR_RETURN(Table piece,
                         MdJoin(base_all, detail, aggs, theta, options, &md_stats));
    stats->detail_rows_scanned += md_stats.detail_rows_scanned;
    ++stats->full_detail_scans;
    pieces.push_back(std::move(piece));
  }

  if (pieces.empty()) {
    // Empty detail: empty cube with the right schema.
    MDJ_ASSIGN_OR_RETURN(Table empty, MdJoin(base, detail, aggs, theta, options));
    return empty;
  }
  return ConcatAll(pieces);
}

}  // namespace mdjoin
