#include "cube/base_tables.h"

#include <map>
#include <unordered_set>

#include "table/key.h"
#include "table/table_ops.h"

namespace mdjoin {

namespace {

/// Schema of a base table over `dims`, typed from `t`.
Result<Schema> BaseSchema(const Table& t, const std::vector<std::string>& dims) {
  std::vector<Field> fields;
  fields.reserve(dims.size());
  for (const std::string& d : dims) {
    MDJ_ASSIGN_OR_RETURN(int idx, t.schema().GetFieldIndex(d));
    fields.push_back(t.schema().field(idx));
  }
  return Schema(std::move(fields));
}

/// Appends the `mask` cuboid of `t` to `out` (schema over `dims`).
Status AppendCuboid(const Table& t, const std::vector<std::string>& dims,
                    CuboidMask mask, Table* out) {
  std::vector<int> cols;
  std::vector<int> positions;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (mask & (CuboidMask{1} << i)) {
      MDJ_ASSIGN_OR_RETURN(int idx, t.schema().GetFieldIndex(dims[i]));
      cols.push_back(idx);
      positions.push_back(static_cast<int>(i));
    }
  }
  std::unordered_set<RowKey, RowKeyHash, RowKeyEqual> seen;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    RowKey key = t.GetRowKey(r, cols);
    if (!seen.insert(key).second) continue;
    std::vector<Value> row(dims.size(), Value::All());
    for (size_t i = 0; i < positions.size(); ++i) {
      row[static_cast<size_t>(positions[i])] = key[i];
    }
    out->AppendRowUnchecked(std::move(row));
  }
  return Status::OK();
}

}  // namespace

Result<Table> GroupByBase(const Table& t, const std::vector<std::string>& dims) {
  return DistinctOn(t, dims);
}

Result<Table> CuboidBase(const Table& t, const CubeLattice& lattice, CuboidMask mask) {
  MDJ_ASSIGN_OR_RETURN(Schema schema, BaseSchema(t, lattice.dims()));
  Table out{std::move(schema)};
  MDJ_RETURN_NOT_OK(AppendCuboid(t, lattice.dims(), mask, &out));
  return out;
}

Result<Table> CubeByBase(const Table& t, const std::vector<std::string>& dims) {
  MDJ_ASSIGN_OR_RETURN(CubeLattice lattice, CubeLattice::Make(dims));
  MDJ_ASSIGN_OR_RETURN(Schema schema, BaseSchema(t, dims));
  Table out{std::move(schema)};
  // Full cuboid first, then coarser ones, grand total last — the natural
  // reading order of Figure 1(a).
  for (int level = lattice.num_dims(); level >= 0; --level) {
    for (CuboidMask mask : lattice.CuboidsAtLevel(level)) {
      MDJ_RETURN_NOT_OK(AppendCuboid(t, dims, mask, &out));
    }
  }
  return out;
}

Result<Table> RollupBase(const Table& t, const std::vector<std::string>& dims) {
  MDJ_ASSIGN_OR_RETURN(Schema schema, BaseSchema(t, dims));
  Table out{std::move(schema)};
  // Prefix masks: full, drop last dim, ..., grand total.
  for (int k = static_cast<int>(dims.size()); k >= 0; --k) {
    CuboidMask mask = (CuboidMask{1} << k) - 1;
    MDJ_RETURN_NOT_OK(AppendCuboid(t, dims, mask, &out));
  }
  return out;
}

Result<Table> GroupingSetsBase(const Table& t, const std::vector<std::string>& dims,
                               const std::vector<std::vector<std::string>>& sets) {
  MDJ_ASSIGN_OR_RETURN(Schema schema, BaseSchema(t, dims));
  Table out{std::move(schema)};
  for (const std::vector<std::string>& set : sets) {
    CuboidMask mask = 0;
    for (const std::string& attr : set) {
      bool found = false;
      for (size_t i = 0; i < dims.size(); ++i) {
        if (dims[i] == attr) {
          mask |= CuboidMask{1} << i;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("grouping set attribute '", attr,
                                       "' is not among the declared dimensions");
      }
    }
    MDJ_RETURN_NOT_OK(AppendCuboid(t, dims, mask, &out));
  }
  return out;
}

Result<Table> UnpivotBase(const Table& t, const std::vector<std::string>& dims) {
  std::vector<std::vector<std::string>> sets;
  sets.reserve(dims.size());
  for (const std::string& d : dims) sets.push_back({d});
  return GroupingSetsBase(t, dims, sets);
}

Result<CuboidMask> RowCuboid(const Table& base, const CubeLattice& lattice, int64_t row) {
  CuboidMask mask = 0;
  for (int i = 0; i < lattice.num_dims(); ++i) {
    MDJ_ASSIGN_OR_RETURN(int idx,
                         base.schema().GetFieldIndex(lattice.dims()[static_cast<size_t>(i)]));
    if (!base.Get(row, idx).is_all()) mask |= CuboidMask{1} << i;
  }
  return mask;
}

Result<std::vector<CuboidPartition>> PartitionByCuboid(const Table& base,
                                                       const CubeLattice& lattice) {
  std::map<CuboidMask, Table> pieces;
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    MDJ_ASSIGN_OR_RETURN(CuboidMask mask, RowCuboid(base, lattice, r));
    auto it = pieces.find(mask);
    if (it == pieces.end()) {
      it = pieces.emplace(mask, Table(base.schema())).first;
    }
    it->second.AppendRowFrom(base, r);
  }
  std::vector<CuboidPartition> out;
  out.reserve(pieces.size());
  for (auto& [mask, table] : pieces) {
    out.push_back(CuboidPartition{mask, std::move(table)});
  }
  return out;
}

Result<Table> WidenGroupedToCube(const Table& grouped,
                                 const std::vector<std::string>& dims, CuboidMask mask,
                                 const Schema& cube_schema) {
  Table out{cube_schema};
  out.Reserve(grouped.num_rows());
  std::vector<int> dim_src(dims.size(), -1);  // grouped column feeding each dim
  int key_columns = 0;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (mask & (CuboidMask{1} << i)) {
      MDJ_ASSIGN_OR_RETURN(dim_src[i], grouped.schema().GetFieldIndex(dims[i]));
      ++key_columns;
    }
  }
  const int agg_columns = grouped.num_columns() - key_columns;
  if (agg_columns < 0 ||
      cube_schema.num_fields() != static_cast<int>(dims.size()) + agg_columns) {
    return Status::InvalidArgument("WidenGroupedToCube: schema arity mismatch");
  }
  for (int64_t r = 0; r < grouped.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(static_cast<size_t>(cube_schema.num_fields()));
    for (size_t i = 0; i < dims.size(); ++i) {
      row.push_back(dim_src[i] < 0 ? Value::All() : grouped.Get(r, dim_src[i]));
    }
    for (int c = 0; c < agg_columns; ++c) row.push_back(grouped.Get(r, key_columns + c));
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace mdjoin
