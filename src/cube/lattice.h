#ifndef MDJOIN_CUBE_LATTICE_H_
#define MDJOIN_CUBE_LATTICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace mdjoin {

/// A cuboid of a d-dimensional data cube, identified by the subset of
/// dimensions it groups on: bit i set means dims[i] is grouped, bit i clear
/// means dims[i] is rolled up to ALL. The full cuboid is (2^d)-1; the grand
/// total is 0.
using CuboidMask = uint32_t;

/// The search lattice of a data cube over named dimensions (paper §4.4).
/// Purely structural: enumeration, parent/child tests, pretty names. Limited
/// to 20 dimensions (2^20 cuboids) — far beyond practical cube widths.
class CubeLattice {
 public:
  static Result<CubeLattice> Make(std::vector<std::string> dims);

  int num_dims() const { return static_cast<int>(dims_.size()); }
  const std::vector<std::string>& dims() const { return dims_; }

  CuboidMask full_cuboid() const { return (CuboidMask{1} << num_dims()) - 1; }

  /// All 2^d cuboid masks, grand total first, full cuboid last.
  std::vector<CuboidMask> AllCuboids() const;

  /// Cuboids grouping exactly `level` dimensions.
  std::vector<CuboidMask> CuboidsAtLevel(int level) const;

  /// Dimension names grouped by `mask`, in dims() order.
  std::vector<std::string> CuboidAttrs(CuboidMask mask) const;

  static int Level(CuboidMask mask);

  /// True if `parent` has exactly one more grouped dimension than `child`
  /// and contains it (a lattice edge: child is a roll-up of parent).
  static bool IsParent(CuboidMask parent, CuboidMask child);

  /// All direct parents of `child` within this lattice.
  std::vector<CuboidMask> ParentsOf(CuboidMask child) const;

  /// "(prod, ALL, state)"-style label for diagnostics.
  std::string CuboidName(CuboidMask mask) const;

 private:
  explicit CubeLattice(std::vector<std::string> dims) : dims_(std::move(dims)) {}

  std::vector<std::string> dims_;
};

}  // namespace mdjoin

#endif  // MDJOIN_CUBE_LATTICE_H_
