#ifndef MDJOIN_CUBE_SUBCUBE_SELECTION_H_
#define MDJOIN_CUBE_SUBCUBE_SELECTION_H_

#include <map>
#include <string>
#include <vector>

#include "agg/agg_spec.h"
#include "common/result.h"
#include "cube/lattice.h"
#include "table/table.h"

namespace mdjoin {

/// "Materializing an optimal set of subcubes" — an application the paper
/// names in §4.4 and §6 as a payoff of the algebraic framework. This module
/// implements the classical greedy benefit heuristic (Harinarayan–Rajaraman–
/// Ullman style) over the cuboid lattice, then materializes the chosen set
/// with Theorem 4.5 roll-ups: only the full cuboid reads the detail
/// relation; every other chosen cuboid is computed from its cheapest chosen
/// ancestor.

struct SubcubeSelection {
  /// Chosen cuboids, in selection order. Always starts with the full cuboid
  /// (the mandatory seed: every query must be answerable).
  std::vector<CuboidMask> materialized;
  /// Sum of per-step benefits (rows of reading saved per query, HRU-style).
  double total_benefit = 0;

  bool Contains(CuboidMask mask) const;
  std::string ToString(const CubeLattice& lattice) const;
};

/// Greedy selection: seed with the full cuboid; repeatedly add the cuboid
/// maximizing Σ_w max(0, cost(w) − cost'(w)), where cost(w) is the
/// cardinality of w's cheapest materialized ancestor (a query at granularity
/// w rolls up from it, Theorem 4.5). Stops after `max_views` cuboids or when
/// no candidate has positive benefit. `cardinality` comes from
/// CuboidCardinalities().
Result<SubcubeSelection> SelectSubcubesGreedy(
    const CubeLattice& lattice, const std::map<CuboidMask, int64_t>& cardinality,
    int max_views);

/// The cheapest materialized ancestor (superset mask, possibly `target`
/// itself) to answer granularity `target` from. Errors only if the selection
/// lacks the full cuboid.
Result<CuboidMask> CheapestMaterializedAncestor(
    const SubcubeSelection& selection,
    const std::map<CuboidMask, int64_t>& cardinality, CuboidMask target);

/// Materializes the selection over `detail`: the full cuboid via one
/// aggregation of the detail relation, every other chosen cuboid rolled up
/// from its cheapest earlier-materialized ancestor (distributive `aggs`
/// required, per Theorem 4.5). Each table has schema [dims..., aggs...] with
/// ALL fill, so any of them can serve directly as an MD-join detail or base
/// relation.
Result<std::map<CuboidMask, Table>> MaterializeSubcubes(
    const SubcubeSelection& selection, const CubeLattice& lattice,
    const std::map<CuboidMask, int64_t>& cardinality, const Table& detail,
    const std::vector<AggSpec>& aggs);

/// Answers a query at granularity `target` from a materialized selection:
/// rolls the cheapest ancestor's table up to `target` (identity when the
/// target itself is materialized). Output schema [dims..., aggs...].
Result<Table> AnswerFromSubcubes(const SubcubeSelection& selection,
                                 const CubeLattice& lattice,
                                 const std::map<CuboidMask, int64_t>& cardinality,
                                 const std::map<CuboidMask, Table>& materialized,
                                 const std::vector<AggSpec>& aggs, CuboidMask target);

}  // namespace mdjoin

#endif  // MDJOIN_CUBE_SUBCUBE_SELECTION_H_
