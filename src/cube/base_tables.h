#ifndef MDJOIN_CUBE_BASE_TABLES_H_
#define MDJOIN_CUBE_BASE_TABLES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cube/lattice.h"
#include "table/table.h"

namespace mdjoin {

/// Generators for base-values relations (the B operand of an MD-join). This
/// is the paper's central decoupling: the *same* MD-join aggregates any of
/// these — a plain group-by list, a full data cube, a rollup hierarchy,
/// user-chosen grouping sets, unpivot marginals, or an arbitrary user table
/// of interesting points (Example 2.4, which needs no generator at all).
/// All outputs have schema = the dimension columns (types taken from `t`),
/// with the ALL marker filling rolled-up positions.

/// select distinct dims from t — the GROUP BY base values.
Result<Table> GroupByBase(const Table& t, const std::vector<std::string>& dims);

/// One cuboid: distinct combinations of the dims grouped by `mask`, with ALL
/// in the remaining positions.
Result<Table> CuboidBase(const Table& t, const CubeLattice& lattice, CuboidMask mask);

/// CUBE BY dims (Example 2.1): the union of all 2^d cuboids.
Result<Table> CubeByBase(const Table& t, const std::vector<std::string>& dims);

/// ROLLUP(d1, ..., dk): the prefix cuboids (d1..dk), (d1..dk-1), ..., ().
Result<Table> RollupBase(const Table& t, const std::vector<std::string>& dims);

/// GROUPING SETS: caller-selected cuboids, named per set. `dims` fixes the
/// output column order; every set must be a subset of `dims`.
Result<Table> GroupingSetsBase(const Table& t, const std::vector<std::string>& dims,
                               const std::vector<std::vector<std::string>>& sets);

/// UNPIVOT [GFC98]: the marginals — one single-attribute grouping set per
/// dimension (what decision-tree learners consume, §2 Example 2.1).
Result<Table> UnpivotBase(const Table& t, const std::vector<std::string>& dims);

/// The ALL-mask of row `row` of a base table whose first columns are
/// `lattice.dims()`: bit i set iff dims[i] is a concrete (non-ALL) value.
Result<CuboidMask> RowCuboid(const Table& base, const CubeLattice& lattice, int64_t row);

/// Splits a multi-granularity base table into per-cuboid partitions (a
/// Theorem 4.1 partition along granularity — what turns a cube-shaped B into
/// individually hash-indexable pieces). Returns {mask, rows-of-that-cuboid}
/// pairs in ascending mask order; absent cuboids are omitted.
struct CuboidPartition {
  CuboidMask mask;
  Table table;
};
Result<std::vector<CuboidPartition>> PartitionByCuboid(const Table& base,
                                                       const CubeLattice& lattice);

/// Widens a grouped result whose key columns are (a permutation of) the
/// `mask` attributes of `dims` to the full cube schema `cube_schema`
/// ([dims..., aggregate columns...]), writing ALL in rolled-up positions.
/// Key columns are located by name; the remaining columns are copied in
/// order. Shared by the PIPESORT executor and subcube materialization.
Result<Table> WidenGroupedToCube(const Table& grouped,
                                 const std::vector<std::string>& dims, CuboidMask mask,
                                 const Schema& cube_schema);

}  // namespace mdjoin

#endif  // MDJOIN_CUBE_BASE_TABLES_H_
