#ifndef MDJOIN_PARALLEL_MORSEL_SCHEDULER_H_
#define MDJOIN_PARALLEL_MORSEL_SCHEDULER_H_

#include <atomic>
#include <cstdint>

namespace mdjoin {

/// Work-distribution cursor for morsel-driven execution (HyPer-style): the
/// unit space is `num_jobs × morsels_per_job`, where a job is one prepared
/// DetailScan (a Theorem 4.1 base fragment, or the single job of a detail
/// split) and a morsel is a `morsel_size`-row range of the detail relation.
/// Workers pull the next unit with one atomic fetch_add — there are no
/// per-worker queues to steal from, so "stealing" degenerates to the cheapest
/// possible form: an idle worker simply claims the globally next unit, and
/// skew cannot strand work on a slow thread's queue.
///
/// Units are ordered job-major (all of job 0's morsels, then job 1's, ...):
/// consecutive units usually belong to the same job, which keeps a worker on
/// one index (and one warm probe memo) for long runs and bounds the number of
/// job switches per worker by the job count.
///
/// Thread-safe; all methods are lock-free.
class MorselScheduler {
 public:
  /// `rows_per_job` is the detail-relation size (every job scans the same
  /// relation); `morsel_size` < 1 is treated as 1.
  MorselScheduler(int64_t num_jobs, int64_t rows_per_job, int64_t morsel_size);

  struct Morsel {
    int64_t job = 0;  // index of the DetailScan to run
    int64_t lo = 0;   // detail-row range [lo, hi)
    int64_t hi = 0;
  };

  /// Claims the next unit. Returns false when the cursor has drained; a
  /// false return is counted as a steal-wait (an idle worker found no work).
  bool Next(Morsel* out) {
    const int64_t u = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (u >= total_) {
      drained_polls_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    out->job = u / morsels_per_job_;
    const int64_t k = u % morsels_per_job_;
    out->lo = k * morsel_size_;
    out->hi = out->lo + morsel_size_ < rows_per_job_ ? out->lo + morsel_size_
                                                     : rows_per_job_;
    return true;
  }

  int64_t total_morsels() const { return total_; }
  int64_t morsel_size() const { return morsel_size_; }

  /// Units actually handed out (== total_morsels() once drained).
  int64_t dispatched() const {
    const int64_t c = cursor_.load(std::memory_order_relaxed);
    return c < total_ ? c : total_;
  }

  /// Next() calls that found the cursor already drained: each worker's final
  /// poll plus any extra polls by workers that went idle while others still
  /// ran — the visible cost of self-scheduling, reported as `steal_waits`.
  int64_t steal_waits() const { return drained_polls_.load(std::memory_order_relaxed); }

 private:
  int64_t rows_per_job_;
  int64_t morsel_size_;
  int64_t morsels_per_job_;
  int64_t total_;
  std::atomic<int64_t> cursor_{0};
  std::atomic<int64_t> drained_polls_{0};
};

}  // namespace mdjoin

#endif  // MDJOIN_PARALLEL_MORSEL_SCHEDULER_H_
