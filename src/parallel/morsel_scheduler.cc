#include "parallel/morsel_scheduler.h"

#include "common/logging.h"

namespace mdjoin {

MorselScheduler::MorselScheduler(int64_t num_jobs, int64_t rows_per_job,
                                 int64_t morsel_size)
    : rows_per_job_(rows_per_job),
      morsel_size_(morsel_size > 0 ? morsel_size : 1),
      morsels_per_job_(rows_per_job > 0
                           ? (rows_per_job + morsel_size_ - 1) / morsel_size_
                           : 0),
      total_(num_jobs * morsels_per_job_) {
  MDJ_CHECK(num_jobs >= 0 && rows_per_job >= 0);
  // morsels_per_job_ == 0 (empty detail relation) makes total_ 0; Next()
  // then returns false immediately, which is the correct degenerate case.
  // Guard the divisor so Next()'s u / morsels_per_job_ stays defined even
  // though it can never be reached with total_ == 0.
  if (morsels_per_job_ == 0) morsels_per_job_ = 1;
}

}  // namespace mdjoin
