#ifndef MDJOIN_PARALLEL_PARALLEL_MDJOIN_H_
#define MDJOIN_PARALLEL_PARALLEL_MDJOIN_H_

#include <vector>

#include "core/mdjoin.h"

namespace mdjoin {

struct ParallelMdJoinStats {
  int num_partitions = 0;
  int num_threads = 0;
  // Work counters summed over per-fragment MdJoinStats.
  int64_t total_detail_rows_scanned = 0;
  int64_t detail_rows_qualified = 0;
  int64_t candidate_pairs = 0;
  int64_t matched_pairs = 0;
  // Vectorized-path counters (zero when fragments ran the row path).
  int64_t blocks = 0;
  int64_t kernel_invocations = 0;
  // Per-fragment scan extremes: a wide min/max spread means fragment skew
  // (uneven base partitions or early guard short-circuiting).
  int64_t min_fragment_detail_rows = 0;
  int64_t max_fragment_detail_rows = 0;
};

/// Intra-operator parallel MD-join (§4.1.2): Theorem 4.1 splits the base
/// relation into `num_partitions` fragments, each evaluated as an independent
/// MD-join against the full detail relation on a thread pool of
/// `num_threads`; the union of fragment results (a concatenation, since
/// partitioning preserves base order per fragment) is the answer. Total
/// detail-scan work is num_partitions × |R| — the theorem trades scan volume
/// for parallelism, and Observation 4.1 (bench E11) shows how to win the
/// scans back when θ permits.
Result<Table> ParallelMdJoin(const Table& base, const Table& detail,
                             const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                             int num_partitions, int num_threads,
                             const MdJoinOptions& options = {},
                             ParallelMdJoinStats* stats = nullptr);

/// Detail-partitioned variant (the dual split, not in the paper's theorems
/// but enabled by the aggregate framework's Merge support): R is split into
/// `num_partitions` fragments, each fragment aggregated into per-base partial
/// states in parallel, and partials merged. One logical scan of R total;
/// requires nothing beyond the UDAF Merge callback. Included as an ablation
/// point against the Theorem 4.1 split.
Result<Table> ParallelMdJoinDetailSplit(const Table& base, const Table& detail,
                                        const std::vector<AggSpec>& aggs,
                                        const ExprPtr& theta, int num_partitions,
                                        int num_threads,
                                        const MdJoinOptions& options = {},
                                        ParallelMdJoinStats* stats = nullptr);

}  // namespace mdjoin

#endif  // MDJOIN_PARALLEL_PARALLEL_MDJOIN_H_
