#ifndef MDJOIN_PARALLEL_PARALLEL_MDJOIN_H_
#define MDJOIN_PARALLEL_PARALLEL_MDJOIN_H_

#include <vector>

#include "core/mdjoin.h"

namespace mdjoin {

struct ParallelMdJoinStats {
  int num_partitions = 0;
  int num_threads = 0;
  // Work counters summed over per-worker MdJoinStats.
  int64_t total_detail_rows_scanned = 0;
  int64_t detail_rows_qualified = 0;
  int64_t candidate_pairs = 0;
  int64_t matched_pairs = 0;
  // Vectorized-path counters (zero when workers ran the row path).
  int64_t blocks = 0;
  int64_t kernel_invocations = 0;
  // Cube-index probe-memo counters summed over workers (see MdJoinStats).
  int64_t index_probe_lookups = 0;
  int64_t index_probe_memo_hits = 0;
  // Morsel-scheduler counters. `morsels_executed` is the number of work units
  // actually dispatched (== the schedulable total unless a trip drained the
  // cursor early); `steal_waits` counts cursor polls that found no work —
  // the per-worker drain probes that end each thread's pull loop.
  int64_t morsels_executed = 0;
  int64_t steal_waits = 0;
  // Per-worker scan extremes: with static scheduling a wide min/max spread
  // means partition skew; under morsel scheduling the spread stays narrow
  // because idle workers keep pulling from the shared cursor. Early guard
  // short-circuiting also shows up here.
  int64_t min_worker_detail_rows = 0;
  int64_t max_worker_detail_rows = 0;
};

/// Intra-operator parallel MD-join (§4.1.2): Theorem 4.1 splits the base
/// relation into `num_partitions` fragments, each evaluated as an independent
/// MD-join against the full detail relation; the union of fragment results
/// (a concatenation, since partitioning preserves base order per fragment) is
/// the answer. Total detail-scan work is num_partitions × |R| — the theorem
/// trades scan volume for parallelism, and Observation 4.1 (bench E11) shows
/// how to win the scans back when θ permits.
///
/// Execution is morsel-driven: `num_threads` workers pull
/// (fragment, detail-range) units of `options.morsel_size` rows from a shared
/// atomic cursor, folding matches into thread-local partials that are merged
/// pairwise and finalized in parallel once the cursor drains. Fragment skew
/// therefore no longer binds the critical path to the slowest fragment; set
/// `morsel_size = detail.num_rows()` to recover the legacy static
/// one-fragment-per-task schedule (the bench E10 ablation baseline).
Result<Table> ParallelMdJoin(const Table& base, const Table& detail,
                             const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                             int num_partitions, int num_threads,
                             const MdJoinOptions& options = {},
                             ParallelMdJoinStats* stats = nullptr);

/// Detail-partitioned variant (the dual split, not in the paper's theorems
/// but enabled by the aggregate framework's Merge support): R is morselized
/// directly — one logical scan of R total, partitioned dynamically across
/// workers by the shared cursor rather than into `num_partitions` static
/// ranges (the knob now only caps the worker count alongside `num_threads`,
/// keeping the signature stable). Per-worker partials merge pairwise in
/// parallel; requires nothing beyond the UDAF Merge callback. Included as an
/// ablation point against the Theorem 4.1 split.
Result<Table> ParallelMdJoinDetailSplit(const Table& base, const Table& detail,
                                        const std::vector<AggSpec>& aggs,
                                        const ExprPtr& theta, int num_partitions,
                                        int num_threads,
                                        const MdJoinOptions& options = {},
                                        ParallelMdJoinStats* stats = nullptr);

}  // namespace mdjoin

#endif  // MDJOIN_PARALLEL_PARALLEL_MDJOIN_H_
