#ifndef MDJOIN_PARALLEL_THREAD_POOL_H_
#define MDJOIN_PARALLEL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace mdjoin {

/// Fixed-size worker pool. Submit closures; Wait() blocks until the queue
/// drains and all workers are idle. Used by the intra-operator parallelism of
/// §4.1.2: one MD-join fragment per task.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. Tasks must not throw (the engine is exception-free);
  /// an exception that escapes anyway — e.g. std::bad_alloc from a container
  /// — is trapped in the worker and aborts the process with a logged message
  /// rather than letting std::terminate fire mid-unwind.
  /// Delegates to SubmitBatch; prefer the batch form when enqueueing a fleet
  /// of tasks at once.
  void Submit(std::function<void()> task) MDJ_EXCLUDES(mu_);

  /// Enqueues every task in `tasks`, taking the queue mutex once for the
  /// whole batch instead of once per task, then wakes all workers. The morsel
  /// engine submits one task per worker (and per merge pair) this way so
  /// startup is one lock hand-off, not num_threads of them.
  void SubmitBatch(std::vector<std::function<void()>> tasks) MDJ_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished.
  void Wait() MDJ_EXCLUDES(mu_);

  /// Drops every task still queued without running it; tasks already being
  /// executed finish normally (pair with a QueryGuard cancel to stop those
  /// cooperatively). Wait() then returns once in-flight tasks drain.
  void Cancel() MDJ_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() MDJ_EXCLUDES(mu_);

  Mutex mu_;
  CondVar task_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ MDJ_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  int active_ MDJ_GUARDED_BY(mu_) = 0;
  bool shutdown_ MDJ_GUARDED_BY(mu_) = false;
};

}  // namespace mdjoin

#endif  // MDJOIN_PARALLEL_THREAD_POOL_H_
