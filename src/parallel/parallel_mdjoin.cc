#include "parallel/parallel_mdjoin.h"

#include <numeric>

#include "agg/flat_state.h"
#include "common/failpoint.h"
#include "core/base_index.h"
#include "expr/compile.h"
#include "expr/conjuncts.h"
#include "expr/kernels.h"
#include "parallel/thread_pool.h"
#include "table/table_ops.h"

namespace mdjoin {

namespace {

/// Folds per-fragment MdJoinStats into the parallel roll-up, including the
/// min/max scan extremes used to spot fragment skew.
void AccumulateFragmentStats(const std::vector<MdJoinStats>& md_stats,
                             ParallelMdJoinStats* stats) {
  bool first = true;
  for (const MdJoinStats& s : md_stats) {
    stats->total_detail_rows_scanned += s.detail_rows_scanned;
    stats->detail_rows_qualified += s.detail_rows_qualified;
    stats->candidate_pairs += s.candidate_pairs;
    stats->matched_pairs += s.matched_pairs;
    stats->blocks += s.blocks;
    stats->kernel_invocations += s.kernel_invocations;
    if (first || s.detail_rows_scanned < stats->min_fragment_detail_rows) {
      stats->min_fragment_detail_rows = s.detail_rows_scanned;
    }
    if (first || s.detail_rows_scanned > stats->max_fragment_detail_rows) {
      stats->max_fragment_detail_rows = s.detail_rows_scanned;
    }
    first = false;
  }
}

}  // namespace

Result<Table> ParallelMdJoin(const Table& base, const Table& detail,
                             const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                             int num_partitions, int num_threads,
                             const MdJoinOptions& options, ParallelMdJoinStats* stats) {
  ParallelMdJoinStats local;
  if (stats == nullptr) stats = &local;
  *stats = ParallelMdJoinStats{};
  if (num_partitions < 1 || num_threads < 1) {
    return Status::InvalidArgument("ParallelMdJoin: partitions and threads must be >= 1");
  }
  if (theta == nullptr) {
    return Status::InvalidArgument("ParallelMdJoin: θ must not be null");
  }
  stats->num_partitions = num_partitions;
  stats->num_threads = num_threads;

  // All fragments share one guard so the first failure (or an external
  // cancel/deadline) short-circuits the siblings at their next stride check.
  // With no caller guard a limit-free local one provides the short-circuit.
  QueryGuard fallback_guard;
  MdJoinOptions frag_options = options;
  if (frag_options.guard == nullptr) frag_options.guard = &fallback_guard;
  QueryGuard* guard = frag_options.guard;
  MDJ_RETURN_NOT_OK(guard->Check());

  std::vector<Table> fragments = PartitionIntoN(base, num_partitions);
  std::vector<Result<Table>> results;
  std::vector<MdJoinStats> md_stats(static_cast<size_t>(num_partitions));
  results.reserve(fragments.size());
  for (size_t i = 0; i < fragments.size(); ++i) {
    results.emplace_back(Status::Internal("fragment not evaluated"));
  }

  {
    ThreadPool pool(num_threads);
    for (size_t i = 0; i < fragments.size(); ++i) {
      pool.Submit([&, i] {
        if (MDJ_FAILPOINT("parallel:fragment_error")) {
          results[i] = Status::Internal("fragment ", i,
                                        " failed (failpoint parallel:fragment_error)");
        } else {
          results[i] = MdJoin(fragments[i], detail, aggs, theta, frag_options,
                              &md_stats[i]);
        }
        if (!results[i].ok()) guard->Trip(results[i].status());
      });
    }
    pool.Wait();
  }

  AccumulateFragmentStats(md_stats, stats);

  // First error wins: the guard latched whichever fragment tripped first.
  if (guard->tripped()) return guard->TripStatus();
  std::vector<Table> pieces;
  pieces.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) return results[i].status();
    pieces.push_back(std::move(results[i]).value());
  }
  return ConcatAll(pieces);
}

Result<Table> ParallelMdJoinDetailSplit(const Table& base, const Table& detail,
                                        const std::vector<AggSpec>& aggs,
                                        const ExprPtr& theta, int num_partitions,
                                        int num_threads, const MdJoinOptions& options,
                                        ParallelMdJoinStats* stats) {
  ParallelMdJoinStats local;
  if (stats == nullptr) stats = &local;
  *stats = ParallelMdJoinStats{};
  if (num_partitions < 1 || num_threads < 1) {
    return Status::InvalidArgument(
        "ParallelMdJoinDetailSplit: partitions and threads must be >= 1");
  }
  if (theta == nullptr) {
    return Status::InvalidArgument("ParallelMdJoinDetailSplit: θ must not be null");
  }
  stats->num_partitions = num_partitions;
  stats->num_threads = num_threads;

  QueryGuard fallback_guard;
  QueryGuard* guard = options.guard != nullptr ? options.guard : &fallback_guard;
  MDJ_RETURN_NOT_OK(guard->Check());

  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                       BindAggs(aggs, &base.schema(), &detail.schema()));
  ThetaParts parts = AnalyzeTheta(theta);

  // Base rows eligible for updates (B-only conjuncts).
  std::vector<int64_t> active(static_cast<size_t>(base.num_rows()));
  std::iota(active.begin(), active.end(), 0);
  if (!parts.base_only.empty()) {
    MDJ_ASSIGN_OR_RETURN(CompiledExpr base_pred,
                         CompileExpr(CombineConjuncts(parts.base_only), &base.schema(),
                                     nullptr));
    std::vector<int64_t> filtered;
    RowCtx bctx;
    bctx.base = &base;
    for (int64_t row : active) {
      bctx.base_row = row;
      if (base_pred.EvalBool(bctx)) filtered.push_back(row);
    }
    active = std::move(filtered);
  }

  // Shared read-only machinery: index over B, compiled predicates.
  const bool indexed = options.use_index && !parts.equi.empty();
  BaseIndex index;
  ScopedReservation index_bytes;
  if (indexed) {
    MDJ_RETURN_NOT_OK(index_bytes.Reserve(
        options.guard,
        static_cast<int64_t>(active.size()) * kGuardBytesPerIndexedBaseRow,
        "detail-split base index"));
    MDJ_ASSIGN_OR_RETURN(index,
                         BaseIndex::Build(base, active, parts.equi, detail.schema()));
  }
  std::vector<ExprPtr> residual_conjuncts = parts.residual;
  if (!indexed) {
    for (const EquiPair& pair : parts.equi) {
      residual_conjuncts.push_back(
          Expr::Binary(BinaryOp::kEq, pair.base_expr, pair.detail_expr));
    }
  }
  const bool vectorized = options.execution_mode != ExecutionMode::kRow;
  CompiledExpr detail_pred;
  PredicateKernels kernels;
  bool has_kernels = false;
  if (options.push_detail_selection) {
    if (!parts.detail_only.empty()) {
      if (vectorized) {
        MDJ_ASSIGN_OR_RETURN(
            kernels, PredicateKernels::Compile(parts.detail_only, detail.schema()));
        has_kernels = true;
      } else {
        MDJ_ASSIGN_OR_RETURN(detail_pred,
                             CompileExpr(CombineConjuncts(parts.detail_only), nullptr,
                                         &detail.schema()));
      }
    }
  } else {
    residual_conjuncts.insert(residual_conjuncts.end(), parts.detail_only.begin(),
                              parts.detail_only.end());
  }
  CompiledExpr residual;
  if (!residual_conjuncts.empty()) {
    MDJ_ASSIGN_OR_RETURN(residual,
                         CompileExpr(CombineConjuncts(std::move(residual_conjuncts)),
                                     &base.schema(), &detail.schema()));
  }

  // One partial-state array per fragment.
  ScopedReservation state_bytes;
  MDJ_RETURN_NOT_OK(state_bytes.Reserve(
      options.guard,
      static_cast<int64_t>(num_partitions) * static_cast<int64_t>(bound.size()) *
          base.num_rows() * kGuardBytesPerAggState,
      "detail-split partial states"));

  // Per-fragment partial states: heap `states[fragment][agg][base_row]` on
  // the row path, flat `cols[fragment][agg]` columns on the vectorized path.
  const size_t nrows = static_cast<size_t>(base.num_rows());
  std::vector<std::vector<std::vector<std::unique_ptr<AggregateState>>>> states;
  std::vector<std::vector<AggStateColumn>> cols;
  if (vectorized) {
    cols.resize(static_cast<size_t>(num_partitions));
    for (auto& frag : cols) {
      frag.reserve(bound.size());
      for (const BoundAgg& b : bound) {
        frag.push_back(AggStateColumn::Make(b.fn, base.num_rows()));
      }
    }
  } else {
    states.resize(static_cast<size_t>(num_partitions));
    for (auto& frag : states) {
      frag.resize(bound.size());
      for (size_t i = 0; i < bound.size(); ++i) {
        frag[i].reserve(nrows);
        for (size_t r = 0; r < nrows; ++r) frag[i].push_back(bound[i].fn->MakeState());
      }
    }
  }

  // Fragment bounds over detail rows.
  std::vector<std::pair<int64_t, int64_t>> ranges;
  {
    int64_t rows = detail.num_rows();
    int64_t base_len = rows / num_partitions, extra = rows % num_partitions;
    int64_t start = 0;
    for (int i = 0; i < num_partitions; ++i) {
      int64_t len = base_len + (i < extra ? 1 : 0);
      ranges.emplace_back(start, start + len);
      start += len;
    }
  }

  std::vector<MdJoinStats> md_stats(static_cast<size_t>(num_partitions));
  std::vector<Status> frag_status(static_cast<size_t>(num_partitions));
  {
    ThreadPool pool(num_threads);
    for (int f = 0; f < num_partitions; ++f) {
      pool.Submit([&, f] {
        if (MDJ_FAILPOINT("parallel:fragment_error")) {
          frag_status[static_cast<size_t>(f)] = Status::Internal(
              "fragment ", f, " failed (failpoint parallel:fragment_error)");
          guard->Trip(frag_status[static_cast<size_t>(f)]);
          return;
        }
        MdJoinStats& fs = md_stats[static_cast<size_t>(f)];
        const int64_t lo = ranges[static_cast<size_t>(f)].first;
        const int64_t hi = ranges[static_cast<size_t>(f)].second;
        RowCtx ctx;
        ctx.base = &base;
        ctx.detail = &detail;
        std::vector<int64_t> candidates;
        GuardTicket ticket(guard);
        Status scan_status;
        // Work counters stay in fragment-locals and flush into fs once at
        // scan end (satellites of the vectorization work: no per-row stores
        // into shared stat structs in hot loops).
        int64_t scanned = 0, qualified = 0, cand_pairs = 0, matched = 0;
        if (vectorized) {
          std::vector<AggStateColumn>& frag_cols = cols[static_cast<size_t>(f)];
          // Guarded scans clamp the block to the check stride so per-worker
          // trip latency keeps the guard's promise regardless of block shape.
          int64_t block = options.block_size > 0 ? options.block_size : 1024;
          if (guard != nullptr) {
            block = std::min<int64_t>(block, guard->check_stride());
          }
          std::vector<uint32_t> sel(static_cast<size_t>(block));
          std::vector<int64_t> matched_buf;
          BaseIndex::ProbeScratch scratch;
          KernelStats kstats;
          int64_t blocks = 0;
          for (int64_t bstart = lo; bstart < hi; bstart += block) {
            const int n = static_cast<int>(std::min<int64_t>(block, hi - bstart));
            for (int i = 0; i < n; ++i) {
              sel[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
            }
            int count = n;
            if (has_kernels) {
              count = kernels.FilterBlock(detail, bstart, sel.data(), count, &kstats);
            }
            ++blocks;
            scanned += n;
            qualified += count;
            int64_t pairs_this_block = 0;
            for (int i = 0; i < count; ++i) {
              const int64_t t = bstart + sel[static_cast<size_t>(i)];
              const std::vector<int64_t>* probe_rows;
              if (indexed) {
                candidates.clear();
                index.Probe(detail, t, &scratch, &candidates);
                probe_rows = &candidates;
              } else {
                probe_rows = &active;
              }
              pairs_this_block += static_cast<int64_t>(probe_rows->size());
              if (probe_rows->empty()) continue;
              ctx.detail_row = t;
              // Residual resolves to a match list first; aggregates then fold
              // the row column-at-a-time (one dispatch per (row, aggregate)).
              const int64_t* match_rows = probe_rows->data();
              int64_t nmatch = static_cast<int64_t>(probe_rows->size());
              if (residual.valid()) {
                matched_buf.clear();
                for (int64_t b : *probe_rows) {
                  ctx.base_row = b;
                  if (residual.EvalBool(ctx)) matched_buf.push_back(b);
                }
                match_rows = matched_buf.data();
                nmatch = static_cast<int64_t>(matched_buf.size());
              }
              if (nmatch == 0) continue;
              matched += nmatch;
              for (size_t i2 = 0; i2 < bound.size(); ++i2) {
                const BoundAgg& agg = bound[i2];
                if (agg.detail_arg_col >= 0) {
                  frag_cols[i2].UpdateMany(match_rows, nmatch,
                                           detail.column(agg.detail_arg_col)[t]);
                } else if (!agg.has_arg) {
                  frag_cols[i2].UpdateCountStarMany(match_rows, nmatch);
                } else {
                  for (int64_t k = 0; k < nmatch; ++k) {
                    ctx.base_row = match_rows[k];
                    agg.UpdateColumnFromRow(&frag_cols[i2], match_rows[k], ctx);
                  }
                }
              }
            }
            cand_pairs += pairs_this_block;
            scan_status = ticket.TickBlock(n, pairs_this_block);
            if (!scan_status.ok()) break;
          }
          fs.blocks = blocks;
          fs.kernel_invocations = kstats.kernel_invocations;
          fs.kernel_fallback_rows = kstats.fallback_rows;
        } else {
          auto& frag_states = states[static_cast<size_t>(f)];
          for (int64_t t = lo; t < hi; ++t) {
            ctx.detail_row = t;
            ++scanned;
            int64_t pairs_this_row = 0;
            if (!detail_pred.valid() || detail_pred.EvalBool(ctx)) {
              ++qualified;
              const std::vector<int64_t>* probe_rows;
              if (indexed) {
                candidates.clear();
                index.Probe(ctx, &candidates);
                probe_rows = &candidates;
              } else {
                probe_rows = &active;
              }
              pairs_this_row = static_cast<int64_t>(probe_rows->size());
              cand_pairs += pairs_this_row;
              for (int64_t b : *probe_rows) {
                ctx.base_row = b;
                if (residual.valid() && !residual.EvalBool(ctx)) continue;
                ++matched;
                for (size_t i = 0; i < bound.size(); ++i) {
                  bound[i].UpdateFromRow(frag_states[i][static_cast<size_t>(b)].get(),
                                         ctx);
                }
              }
            }
            scan_status = ticket.Tick(pairs_this_row);
            if (!scan_status.ok()) break;
          }
        }
        fs.detail_rows_scanned = scanned;
        fs.detail_rows_qualified = qualified;
        fs.candidate_pairs = cand_pairs;
        fs.matched_pairs = matched;
        if (scan_status.ok()) scan_status = ticket.Finish();
        frag_status[static_cast<size_t>(f)] = scan_status;
        if (!scan_status.ok()) guard->Trip(scan_status);
      });
    }
    pool.Wait();
  }
  AccumulateFragmentStats(md_stats, stats);
  if (guard->tripped()) return guard->TripStatus();
  for (const Status& s : frag_status) {
    if (!s.ok()) return s;
  }

  // Merge fragment partials into fragment 0 and finalize. Flat columns merge
  // with one group-wise sweep per aggregate; heap states go through the
  // function's virtual Merge per cell.
  for (int f = 1; f < num_partitions; ++f) {
    for (size_t i = 0; i < bound.size(); ++i) {
      if (vectorized) {
        cols[0][i].Merge(cols[static_cast<size_t>(f)][i]);
      } else {
        for (size_t r = 0; r < nrows; ++r) {
          bound[i].fn->Merge(states[0][i][r].get(),
                             *states[static_cast<size_t>(f)][i][r]);
        }
      }
    }
  }

  std::vector<Field> fields = base.schema().fields();
  for (const BoundAgg& b : bound) fields.push_back(b.output_field);
  ScopedReservation output_bytes;
  MDJ_RETURN_NOT_OK(output_bytes.Reserve(
      options.guard,
      base.num_rows() * static_cast<int64_t>(fields.size()) * kGuardBytesPerOutputCell,
      "detail-split output"));
  GuardTicket finalize_ticket(guard, /*count_rows=*/false);
  Table out{Schema(std::move(fields))};
  out.Reserve(base.num_rows());
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    MDJ_RETURN_NOT_OK(finalize_ticket.Tick());
    std::vector<Value> row = base.GetRow(r);
    for (size_t i = 0; i < bound.size(); ++i) {
      row.push_back(vectorized
                        ? cols[0][i].Finalize(r)
                        : bound[i].fn->Finalize(*states[0][i][static_cast<size_t>(r)]));
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace mdjoin
