#include "parallel/parallel_mdjoin.h"

#include <atomic>
#include <numeric>

#include "core/base_index.h"
#include "expr/compile.h"
#include "expr/conjuncts.h"
#include "parallel/thread_pool.h"
#include "table/table_ops.h"

namespace mdjoin {

Result<Table> ParallelMdJoin(const Table& base, const Table& detail,
                             const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                             int num_partitions, int num_threads,
                             const MdJoinOptions& options, ParallelMdJoinStats* stats) {
  ParallelMdJoinStats local;
  if (stats == nullptr) stats = &local;
  *stats = ParallelMdJoinStats{};
  if (num_partitions < 1 || num_threads < 1) {
    return Status::InvalidArgument("ParallelMdJoin: partitions and threads must be >= 1");
  }
  stats->num_partitions = num_partitions;
  stats->num_threads = num_threads;

  std::vector<Table> fragments = PartitionIntoN(base, num_partitions);
  std::vector<Result<Table>> results;
  std::vector<MdJoinStats> md_stats(static_cast<size_t>(num_partitions));
  results.reserve(fragments.size());
  for (size_t i = 0; i < fragments.size(); ++i) {
    results.emplace_back(Status::Internal("fragment not evaluated"));
  }

  {
    ThreadPool pool(num_threads);
    for (size_t i = 0; i < fragments.size(); ++i) {
      pool.Submit([&, i] {
        results[i] = MdJoin(fragments[i], detail, aggs, theta, options, &md_stats[i]);
      });
    }
    pool.Wait();
  }

  std::vector<Table> pieces;
  pieces.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) return results[i].status();
    stats->total_detail_rows_scanned += md_stats[i].detail_rows_scanned;
    pieces.push_back(std::move(results[i]).value());
  }
  return ConcatAll(pieces);
}

Result<Table> ParallelMdJoinDetailSplit(const Table& base, const Table& detail,
                                        const std::vector<AggSpec>& aggs,
                                        const ExprPtr& theta, int num_partitions,
                                        int num_threads, const MdJoinOptions& options,
                                        ParallelMdJoinStats* stats) {
  ParallelMdJoinStats local;
  if (stats == nullptr) stats = &local;
  *stats = ParallelMdJoinStats{};
  if (num_partitions < 1 || num_threads < 1) {
    return Status::InvalidArgument(
        "ParallelMdJoinDetailSplit: partitions and threads must be >= 1");
  }
  if (theta == nullptr) {
    return Status::InvalidArgument("ParallelMdJoinDetailSplit: θ must not be null");
  }
  stats->num_partitions = num_partitions;
  stats->num_threads = num_threads;

  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                       BindAggs(aggs, &base.schema(), &detail.schema()));
  ThetaParts parts = AnalyzeTheta(theta);

  // Base rows eligible for updates (B-only conjuncts).
  std::vector<int64_t> active(static_cast<size_t>(base.num_rows()));
  std::iota(active.begin(), active.end(), 0);
  if (!parts.base_only.empty()) {
    MDJ_ASSIGN_OR_RETURN(CompiledExpr base_pred,
                         CompileExpr(CombineConjuncts(parts.base_only), &base.schema(),
                                     nullptr));
    std::vector<int64_t> filtered;
    RowCtx bctx;
    bctx.base = &base;
    for (int64_t row : active) {
      bctx.base_row = row;
      if (base_pred.EvalBool(bctx)) filtered.push_back(row);
    }
    active = std::move(filtered);
  }

  // Shared read-only machinery: index over B, compiled predicates.
  const bool indexed = options.use_index && !parts.equi.empty();
  BaseIndex index;
  if (indexed) {
    MDJ_ASSIGN_OR_RETURN(index,
                         BaseIndex::Build(base, active, parts.equi, detail.schema()));
  }
  std::vector<ExprPtr> residual_conjuncts = parts.residual;
  if (!indexed) {
    for (const EquiPair& pair : parts.equi) {
      residual_conjuncts.push_back(
          Expr::Binary(BinaryOp::kEq, pair.base_expr, pair.detail_expr));
    }
  }
  CompiledExpr detail_pred;
  if (options.push_detail_selection) {
    if (!parts.detail_only.empty()) {
      MDJ_ASSIGN_OR_RETURN(detail_pred,
                           CompileExpr(CombineConjuncts(parts.detail_only), nullptr,
                                       &detail.schema()));
    }
  } else {
    residual_conjuncts.insert(residual_conjuncts.end(), parts.detail_only.begin(),
                              parts.detail_only.end());
  }
  CompiledExpr residual;
  if (!residual_conjuncts.empty()) {
    MDJ_ASSIGN_OR_RETURN(residual,
                         CompileExpr(CombineConjuncts(std::move(residual_conjuncts)),
                                     &base.schema(), &detail.schema()));
  }

  // Per-fragment partial states: states[fragment][agg][base_row].
  const size_t nrows = static_cast<size_t>(base.num_rows());
  std::vector<std::vector<std::vector<std::unique_ptr<AggregateState>>>> states(
      static_cast<size_t>(num_partitions));
  for (auto& frag : states) {
    frag.resize(bound.size());
    for (size_t i = 0; i < bound.size(); ++i) {
      frag[i].reserve(nrows);
      for (size_t r = 0; r < nrows; ++r) frag[i].push_back(bound[i].fn->MakeState());
    }
  }

  // Fragment bounds over detail rows.
  std::vector<std::pair<int64_t, int64_t>> ranges;
  {
    int64_t rows = detail.num_rows();
    int64_t base_len = rows / num_partitions, extra = rows % num_partitions;
    int64_t start = 0;
    for (int i = 0; i < num_partitions; ++i) {
      int64_t len = base_len + (i < extra ? 1 : 0);
      ranges.emplace_back(start, start + len);
      start += len;
    }
  }

  std::atomic<int64_t> scanned{0};
  {
    ThreadPool pool(num_threads);
    for (int f = 0; f < num_partitions; ++f) {
      pool.Submit([&, f] {
        auto& frag_states = states[static_cast<size_t>(f)];
        RowCtx ctx;
        ctx.base = &base;
        ctx.detail = &detail;
        std::vector<int64_t> candidates;
        int64_t local_scanned = 0;
        for (int64_t t = ranges[static_cast<size_t>(f)].first;
             t < ranges[static_cast<size_t>(f)].second; ++t) {
          ctx.detail_row = t;
          ++local_scanned;
          if (detail_pred.valid() && !detail_pred.EvalBool(ctx)) continue;
          const std::vector<int64_t>* probe_rows;
          if (indexed) {
            candidates.clear();
            index.Probe(ctx, &candidates);
            probe_rows = &candidates;
          } else {
            probe_rows = &active;
          }
          for (int64_t b : *probe_rows) {
            ctx.base_row = b;
            if (residual.valid() && !residual.EvalBool(ctx)) continue;
            for (size_t i = 0; i < bound.size(); ++i) {
              bound[i].UpdateFromRow(frag_states[i][static_cast<size_t>(b)].get(), ctx);
            }
          }
        }
        scanned.fetch_add(local_scanned, std::memory_order_relaxed);
      });
    }
    pool.Wait();
  }
  stats->total_detail_rows_scanned = scanned.load();

  // Merge fragment partials into fragment 0 and finalize.
  for (int f = 1; f < num_partitions; ++f) {
    for (size_t i = 0; i < bound.size(); ++i) {
      for (size_t r = 0; r < nrows; ++r) {
        bound[i].fn->Merge(states[0][i][r].get(), *states[static_cast<size_t>(f)][i][r]);
      }
    }
  }

  std::vector<Field> fields = base.schema().fields();
  for (const BoundAgg& b : bound) fields.push_back(b.output_field);
  Table out{Schema(std::move(fields))};
  out.Reserve(base.num_rows());
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    std::vector<Value> row = base.GetRow(r);
    for (size_t i = 0; i < bound.size(); ++i) {
      row.push_back(bound[i].fn->Finalize(*states[0][i][static_cast<size_t>(r)]));
    }
    out.AppendRowUnchecked(std::move(row));
  }
  return out;
}

}  // namespace mdjoin
