#include "parallel/parallel_mdjoin.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "core/detail_scan.h"
#include "expr/conjuncts.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/morsel_scheduler.h"
#include "parallel/thread_pool.h"

namespace mdjoin {

namespace {

/// Per-thread slot: the worker (partial accumulators + scan buffers) is
/// allocated inside the task so its memory is first-touched on the thread
/// that will pound on it — on NUMA machines that places each thread's
/// partial-state columns in its local domain.
struct WorkerSlot {
  std::unique_ptr<DetailScanWorker> worker;
  Status status;
};

/// The shared morsel-driven engine behind both public entry points.
///
/// Phases:
///   1. Compile θ once; prepare one DetailScan job per Theorem 4.1 base
///      fragment (base split) or a single job over all of B (detail split).
///   2. Scan: `workers` threads pull (job, detail-range) morsels from one
///      atomic cursor, folding matches into thread-local partials. Fragment
///      skew melts away because an idle thread simply claims the next morsel
///      of whatever job is still unfinished.
///   3. Merge: per-worker partials combine pairwise in a log₂(workers)-level
///      tree, each level's disjoint merges running in parallel.
///   4. Finalize: output aggregate columns are themselves morselized over B
///      and materialized column-wise.
///
/// Errors anywhere trip the shared guard, so siblings stop at their next
/// stride check and the first failure wins.
Result<Table> RunMorselMdJoin(const char* op, bool base_split, const Table& base,
                              const Table& detail, const std::vector<AggSpec>& aggs,
                              const ExprPtr& theta, int num_partitions,
                              int num_threads, const MdJoinOptions& options,
                              ParallelMdJoinStats* stats) {
  if (num_partitions < 1 || num_threads < 1) {
    return Status::InvalidArgument(op, ": partitions and threads must be >= 1");
  }
  if (theta == nullptr) {
    return Status::InvalidArgument(op, ": θ must not be null");
  }
  stats->num_partitions = num_partitions;
  stats->num_threads = num_threads;

  // Every worker shares one guard so the first failure (or an external
  // cancel/deadline) short-circuits the siblings at their next stride check.
  // With no caller guard a limit-free local one provides the short-circuit.
  QueryGuard fallback_guard;
  MdJoinOptions eff = options;
  if (eff.guard == nullptr) eff.guard = &fallback_guard;
  QueryGuard* guard = eff.guard;
  MDJ_RETURN_NOT_OK(guard->Check());

  const bool vectorized = eff.execution_mode != ExecutionMode::kRow;
  MDJ_ASSIGN_OR_RETURN(std::vector<BoundAgg> bound,
                       BindAggs(aggs, &base.schema(), &detail.schema()));
  ThetaParts parts = AnalyzeTheta(theta);
  MDJ_ASSIGN_OR_RETURN(
      CompiledTheta compiled_theta,
      CompileTheta(parts, base.schema(), detail, eff, vectorized));

  // Job list. Base split: one job per non-empty fragment (subdivided further
  // when base_rows_per_pass caps the rows a single scan may serve, matching
  // the sequential evaluator's multi-pass behavior); every job scans all of
  // R, so total scan work stays num_partitions × |R| exactly as Theorem 4.1
  // prices it. Detail split: a single job over all of B — one logical scan
  // of R, partitioned dynamically by the cursor instead of statically.
  std::vector<DetailScan> jobs;
  if (base_split) {
    const int64_t rows = base.num_rows();
    const int64_t frag_len = rows / num_partitions;
    const int64_t extra = rows % num_partitions;
    int64_t start = 0;
    for (int f = 0; f < num_partitions; ++f) {
      const int64_t len = frag_len + (f < extra ? 1 : 0);
      const int64_t budget = eff.base_rows_per_pass > 0 ? eff.base_rows_per_pass : len;
      for (int64_t lo = start; lo < start + len; lo += budget) {
        const int64_t hi = std::min<int64_t>(lo + budget, start + len);
        std::vector<int64_t> pass_rows(static_cast<size_t>(hi - lo));
        std::iota(pass_rows.begin(), pass_rows.end(), lo);
        MDJ_ASSIGN_OR_RETURN(DetailScan job,
                             DetailScan::Prepare(base, detail, bound, parts,
                                                 &compiled_theta, std::move(pass_rows),
                                                 eff));
        jobs.push_back(std::move(job));
      }
      start += len;
    }
  } else {
    std::vector<int64_t> all_rows(static_cast<size_t>(base.num_rows()));
    std::iota(all_rows.begin(), all_rows.end(), 0);
    MDJ_ASSIGN_OR_RETURN(DetailScan job,
                         DetailScan::Prepare(base, detail, bound, parts,
                                             &compiled_theta, std::move(all_rows), eff));
    jobs.push_back(std::move(job));
  }

  const int64_t morsel =
      eff.morsel_size > 0
          ? eff.morsel_size
          : (eff.block_size > 0 ? static_cast<int64_t>(eff.block_size) : 1024);
  MorselScheduler scheduler(static_cast<int64_t>(jobs.size()), detail.num_rows(),
                            morsel);

  // More workers than schedulable morsels would only burn partial-state
  // memory; the detail split additionally honors num_partitions as a cap so
  // its historical "num_partitions partial arrays" memory contract holds.
  int64_t max_workers = std::min<int64_t>(num_threads, scheduler.total_morsels());
  if (!base_split) max_workers = std::min<int64_t>(max_workers, num_partitions);
  const int workers = static_cast<int>(std::max<int64_t>(1, max_workers));

  // Partial-state memory is workers × |B| × aggs: the price of thread-local
  // accumulation. Reserved up front so a budgeted guard rejects the plan
  // before any allocation instead of mid-scan.
  ScopedReservation partials_bytes;
  MDJ_RETURN_NOT_OK(partials_bytes.Reserve(
      guard,
      static_cast<int64_t>(workers) * static_cast<int64_t>(bound.size()) *
          base.num_rows() * kGuardBytesPerAggState,
      "parallel worker partials"));

  std::vector<WorkerSlot> slots(static_cast<size_t>(workers));
  ThreadPool pool(workers);
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(slots.size());
    for (size_t w = 0; w < slots.size(); ++w) {
      tasks.push_back([&, w] {
        WorkerSlot& slot = slots[w];
        Tracing::SetThreadName("mdjoin worker");
        Span worker_span("worker.scan", "parallel");
        worker_span.SetArg("worker", static_cast<int64_t>(w));
        if (MDJ_FAILPOINT("parallel:fragment_error")) {
          slot.status = Status::Internal(
              "worker ", w, " failed (failpoint parallel:fragment_error)");
          guard->Trip(slot.status);
          return;
        }
        slot.worker =
            std::make_unique<DetailScanWorker>(base, bound, vectorized, guard);
        Status st;
        int64_t last_job = -1;
        int64_t morsels = 0;
        MorselScheduler::Morsel m;
        while (st.ok() && scheduler.Next(&m)) {
          if (m.job != last_job) {
            // Job switch: the probe memo caches the previous job's index.
            slot.worker->BeginJob();
            last_job = m.job;
          }
          Span morsel_span("morsel", "parallel");
          morsel_span.SetArg("job", m.job);
          morsel_span.SetArg("rows", m.hi - m.lo);
          ++morsels;
          st = jobs[static_cast<size_t>(m.job)].ScanRange(m.lo, m.hi,
                                                          slot.worker.get());
        }
        if (st.ok()) {
          // The pull loop ends on a drained poll — the cursor's steal_wait.
          TraceInstant("steal_wait", "parallel", "worker", static_cast<int64_t>(w));
        }
        if (st.ok()) st = slot.worker->FinishScan();
        worker_span.SetArg("morsels", morsels);
        slot.status = st;
        if (!st.ok()) guard->Trip(st);
      });
    }
    pool.SubmitBatch(std::move(tasks));
    pool.Wait();
  }

  // Roll up worker-local counters; the per-worker extremes replace the old
  // per-fragment ones (a wide spread now means early guard short-circuiting
  // rather than partition skew, which the cursor absorbs by construction).
  stats->morsels_executed = scheduler.dispatched();
  stats->steal_waits = scheduler.steal_waits();
  {
    static Counter* c_morsels = MetricsRegistry::Global().GetCounter(
        "mdjoin_morsels_dispatched_total", "morsels claimed from scan cursors");
    static Counter* c_steals = MetricsRegistry::Global().GetCounter(
        "mdjoin_steal_waits_total", "drained cursor polls (workers finding no work)");
    c_morsels->Increment(stats->morsels_executed);
    c_steals->Increment(stats->steal_waits);
  }
  bool first = true;
  for (const WorkerSlot& slot : slots) {
    if (slot.worker == nullptr) continue;
    const MdJoinStats& s = slot.worker->stats;
    stats->total_detail_rows_scanned += s.detail_rows_scanned;
    stats->detail_rows_qualified += s.detail_rows_qualified;
    stats->candidate_pairs += s.candidate_pairs;
    stats->matched_pairs += s.matched_pairs;
    stats->blocks += s.blocks;
    stats->kernel_invocations += s.kernel_invocations;
    stats->index_probe_lookups += s.index_probe_lookups;
    stats->index_probe_memo_hits += s.index_probe_memo_hits;
    if (first || s.detail_rows_scanned < stats->min_worker_detail_rows) {
      stats->min_worker_detail_rows = s.detail_rows_scanned;
    }
    if (first || s.detail_rows_scanned > stats->max_worker_detail_rows) {
      stats->max_worker_detail_rows = s.detail_rows_scanned;
    }
    first = false;
  }

  // First error wins: the guard latched whichever worker tripped first.
  if (guard->tripped()) return guard->TripStatus();
  for (const WorkerSlot& slot : slots) {
    MDJ_RETURN_NOT_OK(slot.status);
  }

  // Pairwise tree merge: level k combines slots i and i + 2^k, so each
  // level's merges touch disjoint slots and run concurrently; slots[0] ends
  // up holding the grand total after ⌈log₂ workers⌉ levels.
  for (int step = 1; step < workers; step *= 2) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i + step < workers; i += 2 * step) {
      tasks.push_back([&, i, step] {
        Span merge_span("merge_partials", "parallel");
        merge_span.SetArg("into", static_cast<int64_t>(i));
        merge_span.SetArg("from", static_cast<int64_t>(i + step));
        Status st = MergeWorkerPartials(slots[static_cast<size_t>(i)].worker.get(),
                                        *slots[static_cast<size_t>(i + step)].worker,
                                        guard);
        if (!st.ok()) {
          slots[static_cast<size_t>(i)].status = st;
          guard->Trip(st);
        }
      });
    }
    pool.SubmitBatch(std::move(tasks));
    pool.Wait();
    if (guard->tripped()) return guard->TripStatus();
  }

  const DetailScanWorker& merged = *slots[0].worker;
  const int64_t out_rows = base.num_rows();
  ScopedReservation output_bytes;
  MDJ_RETURN_NOT_OK(output_bytes.Reserve(
      guard,
      out_rows *
          static_cast<int64_t>(base.num_columns() + static_cast<int>(bound.size())) *
          kGuardBytesPerOutputCell,
      "parallel output"));

  // Finalize, morselized over B: workers pull base-row ranges from a fresh
  // cursor and fill the aggregate output columns in place (disjoint ranges,
  // read-only state — no synchronization beyond the cursor).
  std::vector<std::vector<Value>> agg_vals(
      bound.size(), std::vector<Value>(static_cast<size_t>(out_rows)));
  MorselScheduler finalize_scheduler(1, out_rows, morsel);
  std::vector<Status> finalize_status(static_cast<size_t>(workers));
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      tasks.push_back([&, w] {
        Span finalize_span("worker.finalize", "parallel");
        finalize_span.SetArg("worker", static_cast<int64_t>(w));
        GuardTicket ticket(guard, /*count_rows=*/false);
        Status st;
        MorselScheduler::Morsel m;
        while (st.ok() && finalize_scheduler.Next(&m)) {
          for (int64_t r = m.lo; r < m.hi; ++r) {
            st = ticket.Tick();
            if (!st.ok()) break;
            for (size_t i = 0; i < bound.size(); ++i) {
              agg_vals[i][static_cast<size_t>(r)] = merged.FinalizeCell(i, r);
            }
          }
        }
        finalize_status[static_cast<size_t>(w)] = st;
        if (!st.ok()) guard->Trip(st);
      });
    }
    pool.SubmitBatch(std::move(tasks));
    pool.Wait();
  }
  if (guard->tripped()) return guard->TripStatus();
  for (const Status& st : finalize_status) {
    MDJ_RETURN_NOT_OK(st);
  }

  // Column-wise assembly: base columns copied wholesale, aggregate columns
  // moved in. Row order is base order — for the base split that equals the
  // legacy fragment concatenation because fragments were contiguous and
  // in-order.
  Table out;
  const std::vector<Field>& base_fields = base.schema().fields();
  for (int c = 0; c < base.num_columns(); ++c) {
    std::vector<Value> col = base.column(c);
    MDJ_RETURN_NOT_OK(out.AddColumn(base_fields[static_cast<size_t>(c)],
                                    std::move(col)));
  }
  for (size_t i = 0; i < bound.size(); ++i) {
    MDJ_RETURN_NOT_OK(out.AddColumn(bound[i].output_field, std::move(agg_vals[i])));
  }
  return out;
}

}  // namespace

Result<Table> ParallelMdJoin(const Table& base, const Table& detail,
                             const std::vector<AggSpec>& aggs, const ExprPtr& theta,
                             int num_partitions, int num_threads,
                             const MdJoinOptions& options, ParallelMdJoinStats* stats) {
  ParallelMdJoinStats local;
  if (stats == nullptr) stats = &local;
  *stats = ParallelMdJoinStats{};
  return RunMorselMdJoin("ParallelMdJoin", /*base_split=*/true, base, detail, aggs,
                         theta, num_partitions, num_threads, options, stats);
}

Result<Table> ParallelMdJoinDetailSplit(const Table& base, const Table& detail,
                                        const std::vector<AggSpec>& aggs,
                                        const ExprPtr& theta, int num_partitions,
                                        int num_threads, const MdJoinOptions& options,
                                        ParallelMdJoinStats* stats) {
  ParallelMdJoinStats local;
  if (stats == nullptr) stats = &local;
  *stats = ParallelMdJoinStats{};
  return RunMorselMdJoin("ParallelMdJoinDetailSplit", /*base_split=*/false, base,
                         detail, aggs, theta, num_partitions, num_threads, options,
                         stats);
}

}  // namespace mdjoin
