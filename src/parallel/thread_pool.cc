#include "parallel/thread_pool.h"

#include <exception>

#include "common/logging.h"

namespace mdjoin {

ThreadPool::ThreadPool(int num_threads) {
  MDJ_CHECK(num_threads > 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MDJ_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Cancel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.clear();
    if (active_ == 0) all_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // Trap escaping exceptions while no pool lock is held: unwinding into
    // the scheduler would std::terminate with mu_'s state unknown and no
    // diagnostic. Library code is exception-free, so anything caught here is
    // an environment failure (bad_alloc) or a misbehaving user closure.
    try {
      task();
    } catch (const std::exception& e) {
      MDJ_CHECK(false) << "ThreadPool task terminated with uncaught exception: "
                       << e.what();
    } catch (...) {
      MDJ_CHECK(false) << "ThreadPool task terminated with uncaught non-standard "
                          "exception";
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace mdjoin
