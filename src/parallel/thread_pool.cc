#include "parallel/thread_pool.h"

#include <exception>

#include "common/logging.h"

namespace mdjoin {

ThreadPool::ThreadPool(int num_threads) {
  MDJ_CHECK(num_threads > 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  task_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  std::vector<std::function<void()>> batch;
  batch.push_back(std::move(task));
  SubmitBatch(std::move(batch));
}

void ThreadPool::SubmitBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  const bool single = tasks.size() == 1;
  {
    MutexLock lock(mu_);
    MDJ_CHECK(!shutdown_);
    for (std::function<void()>& task : tasks) {
      queue_.push_back(std::move(task));
    }
  }
  if (single) {
    task_available_.NotifyOne();
  } else {
    task_available_.NotifyAll();
  }
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  // The predicate runs with mu_ held (CondVar::Wait re-acquires before each
  // evaluation), which the static analysis cannot see through the lambda.
  all_done_.Wait(lock, [this]() MDJ_NO_THREAD_SAFETY_ANALYSIS {
    return queue_.empty() && active_ == 0;
  });
}

void ThreadPool::Cancel() {
  {
    MutexLock lock(mu_);
    queue_.clear();
    if (active_ == 0) all_done_.NotifyAll();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      task_available_.Wait(lock, [this]() MDJ_NO_THREAD_SAFETY_ANALYSIS {
        return shutdown_ || !queue_.empty();
      });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // Trap escaping exceptions while no pool lock is held: unwinding into
    // the scheduler would std::terminate with mu_'s state unknown and no
    // diagnostic. Library code is exception-free, so anything caught here is
    // an environment failure (bad_alloc) or a misbehaving user closure.
    try {
      task();
    } catch (const std::exception& e) {
      MDJ_CHECK(false) << "ThreadPool task terminated with uncaught exception: "
                       << e.what();
    } catch (...) {
      MDJ_CHECK(false) << "ThreadPool task terminated with uncaught non-standard "
                          "exception";
    }
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace mdjoin
