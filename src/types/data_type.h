#ifndef MDJOIN_TYPES_DATA_TYPE_H_
#define MDJOIN_TYPES_DATA_TYPE_H_

#include <string>

namespace mdjoin {

/// Storage types understood by the engine. Columns are typed; individual
/// cells may additionally hold NULL or the cube roll-up marker ALL
/// (see Value), both of which are valid in a column of any type.
enum class DataType {
  kInt64,
  kFloat64,
  kString,
};

const char* DataTypeToString(DataType t);

/// True if `t` is kInt64 or kFloat64.
bool IsNumeric(DataType t);

/// Result type of arithmetic between `a` and `b` (int64 op int64 -> int64,
/// anything involving float64 -> float64). Requires both numeric.
DataType CommonNumericType(DataType a, DataType b);

}  // namespace mdjoin

#endif  // MDJOIN_TYPES_DATA_TYPE_H_
