#ifndef MDJOIN_TYPES_SCHEMA_H_
#define MDJOIN_TYPES_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace mdjoin {

/// A named, typed column.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const = default;
};

/// Ordered list of fields. Column names are unique (case-sensitive).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const;
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of column `name`, or nullopt.
  std::optional<int> FindField(const std::string& name) const;

  /// Index of column `name`, or NotFound with a helpful message.
  Result<int> GetFieldIndex(const std::string& name) const;

  /// Appends a field; error if the name already exists.
  Status AddField(Field field);

  /// Schema with `names` selected in order; error on unknown names.
  Result<Schema> Select(const std::vector<std::string>& names) const;

  /// "name:type, name:type, ..." for diagnostics.
  std::string ToString() const;

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

 private:
  std::vector<Field> fields_;
};

}  // namespace mdjoin

#endif  // MDJOIN_TYPES_SCHEMA_H_
