#ifndef MDJOIN_TYPES_VALUE_H_
#define MDJOIN_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "types/data_type.h"

namespace mdjoin {

/// A single cell. In addition to typed payloads, a Value can be:
///
///  - NULL — absent data (SQL semantics: aggregates skip it, comparisons with
///    it are false);
///  - ALL  — the roll-up marker of Gray et al. [GBLP96] used in base-values
///    tables to model coarser-granularity cube entries, e.g. the row
///    (44, 3, ALL) stands for "product 44, month 3, over all states".
///
/// Two notions of equality coexist deliberately (paper §3):
///  - Equals()  — structural: ALL == ALL only. Used by table operations
///    (DISTINCT, hashing, sorting, set union), where an ALL row is a row like
///    any other.
///  - MatchesEq() — θ-condition semantics: ALL matches every non-NULL value.
///    Used when evaluating an MD-join condition such as `B.state = R.state`
///    against a base row whose state is ALL: that base row aggregates detail
///    tuples of every state.
class Value {
 public:
  /// Constructs NULL.
  Value() : rep_(NullTag{}) {}

  static Value Null() { return Value(); }
  static Value All() {
    Value v;
    v.rep_ = AllTag{};
    return v;
  }
  static Value Int64(int64_t v) {
    Value out;
    out.rep_ = v;
    return out;
  }
  static Value Float64(double v) {
    Value out;
    out.rep_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.rep_ = std::move(v);
    return out;
  }
  static Value Bool(bool b) { return Int64(b ? 1 : 0); }

  bool is_null() const { return std::holds_alternative<NullTag>(rep_); }
  bool is_all() const { return std::holds_alternative<AllTag>(rep_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_float64() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_numeric() const { return is_int64() || is_float64(); }

  int64_t int64() const;
  double float64() const;
  const std::string& string() const;

  /// Numeric payload widened to double. Requires is_numeric().
  double AsDouble() const;

  /// True iff the value is non-null, non-ALL int64 and nonzero (the engine's
  /// boolean convention: predicates evaluate to Int64 0/1).
  bool IsTruthy() const { return is_int64() && int64() != 0; }

  /// Structural equality: NULL==NULL, ALL==ALL, payloads compare by type with
  /// int64/float64 comparing numerically (so Int64(3)==Float64(3.0)).
  bool Equals(const Value& other) const;

  /// θ-equality: ALL on either side matches any non-NULL value; NULL matches
  /// nothing (not even NULL).
  bool MatchesEq(const Value& other) const;

  /// Total order for sorting: NULL < ALL < numerics (by value) < strings
  /// (lexicographic). Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// Structural hash, consistent with Equals().
  size_t Hash() const;

  /// Renders the value for table printers: "NULL", "ALL", payload otherwise.
  std::string ToString() const;

  /// The storage type of the payload; error for NULL/ALL (which are typeless).
  Result<DataType> Type() const;

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  struct NullTag {
    bool operator==(const NullTag&) const = default;
  };
  struct AllTag {
    bool operator==(const AllTag&) const = default;
  };

  std::variant<NullTag, AllTag, int64_t, double, std::string> rep_;
};

/// std::hash adapter so Value can key unordered containers directly.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace mdjoin

#endif  // MDJOIN_TYPES_VALUE_H_
