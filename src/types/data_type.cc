#include "types/data_type.h"

#include "common/logging.h"

namespace mdjoin {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

bool IsNumeric(DataType t) { return t == DataType::kInt64 || t == DataType::kFloat64; }

DataType CommonNumericType(DataType a, DataType b) {
  MDJ_CHECK(IsNumeric(a) && IsNumeric(b));
  if (a == DataType::kFloat64 || b == DataType::kFloat64) return DataType::kFloat64;
  return DataType::kInt64;
}

}  // namespace mdjoin
