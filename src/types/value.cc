#include "types/value.h"

#include <cmath>
#include <functional>

#include "common/hash_util.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace mdjoin {

int64_t Value::int64() const {
  MDJ_CHECK(is_int64()) << "Value is not int64: " << ToString();
  return std::get<int64_t>(rep_);
}

double Value::float64() const {
  MDJ_CHECK(is_float64()) << "Value is not float64: " << ToString();
  return std::get<double>(rep_);
}

const std::string& Value::string() const {
  MDJ_CHECK(is_string()) << "Value is not string: " << ToString();
  return std::get<std::string>(rep_);
}

double Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(std::get<int64_t>(rep_));
  MDJ_CHECK(is_float64()) << "Value is not numeric: " << ToString();
  return std::get<double>(rep_);
}

bool Value::Equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int64() && other.is_int64()) return int64() == other.int64();
    return AsDouble() == other.AsDouble();
  }
  return rep_ == other.rep_;
}

bool Value::MatchesEq(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (is_all() || other.is_all()) return true;
  return Equals(other);
}

int Value::Compare(const Value& other) const {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_all()) return 1;
    if (v.is_numeric()) return 2;
    return 3;  // string
  };
  int ra = rank(*this), rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
    case 1:
      return 0;
    case 2: {
      if (is_int64() && other.is_int64()) {
        int64_t a = int64(), b = other.int64();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      double a = AsDouble(), b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default: {
      int c = string().compare(other.string());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

size_t Value::Hash() const {
  size_t seed = 0;
  if (is_null()) {
    HashCombine(&seed, 0x6e756c6cULL);  // "null"
  } else if (is_all()) {
    HashCombine(&seed, 0x616c6cULL);  // "all"
  } else if (is_numeric()) {
    // Hash numerics through double so Int64(3) and Float64(3.0) collide,
    // consistent with Equals().
    double d = AsDouble();
    if (d == 0.0) d = 0.0;  // normalize -0.0
    HashCombineValue(&seed, d);
  } else {
    HashCombineValue(&seed, string());
  }
  return seed;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_all()) return "ALL";
  if (is_int64()) return std::to_string(int64());
  if (is_float64()) return FormatDouble(float64());
  return string();
}

Result<DataType> Value::Type() const {
  if (is_int64()) return DataType::kInt64;
  if (is_float64()) return DataType::kFloat64;
  if (is_string()) return DataType::kString;
  return Status::TypeError("NULL/ALL values carry no storage type");
}

}  // namespace mdjoin
