#include "types/schema.h"

#include "common/logging.h"

namespace mdjoin {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    for (size_t j = i + 1; j < fields_.size(); ++j) {
      MDJ_CHECK(fields_[i].name != fields_[j].name)
          << "duplicate column name in schema: " << fields_[i].name;
    }
  }
}

const Field& Schema::field(int i) const {
  MDJ_CHECK(i >= 0 && i < num_fields()) << "field index " << i << " out of range";
  return fields_[i];
}

std::optional<int> Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

Result<int> Schema::GetFieldIndex(const std::string& name) const {
  auto idx = FindField(name);
  if (!idx) {
    return Status::NotFound("no column named '", name, "' in schema [", ToString(), "]");
  }
  return *idx;
}

Status Schema::AddField(Field field) {
  if (FindField(field.name)) {
    return Status::AlreadyExists("column '", field.name, "' already in schema");
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

Result<Schema> Schema::Select(const std::vector<std::string>& names) const {
  std::vector<Field> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    MDJ_ASSIGN_OR_RETURN(int idx, GetFieldIndex(name));
    out.push_back(fields_[idx]);
  }
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::string out;
  for (int i = 0; i < num_fields(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

}  // namespace mdjoin
