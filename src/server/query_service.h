#ifndef MDJOIN_SERVER_QUERY_SERVICE_H_
#define MDJOIN_SERVER_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/query_guard.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/mdjoin.h"
#include "optimizer/executor.h"
#include "optimizer/optimize.h"
#include "optimizer/plan.h"
#include "server/admission.h"
#include "server/result_cache.h"
#include "stats/feedback.h"
#include "stats/query_log.h"
#include "storage/block_cache.h"

namespace mdjoin {

class Session;

/// Configuration of a QueryService (the connection-level object in the
/// WiredTiger-style connection/session split).
struct QueryServiceOptions {
  /// Global budgets: one memory pool and one thread-token pool shared by all
  /// concurrent queries and the result cache, plus the admission queue bound.
  AdmissionController::Options admission;

  /// Per-query budget minted at admission when the session does not ask for
  /// a specific amount (SessionQueryOptions::memory_bytes).
  int64_t default_memory_per_query = int64_t{64} << 20;

  /// Per-query engine threads minted at admission by default.
  int default_threads_per_query = 1;

  /// Default deadline applied to every query; 0 = none.
  int64_t default_timeout_ms = 0;

  /// Result-cache capacity carved out of the shared admission memory pool;
  /// 0 disables the cache entirely.
  int64_t cache_capacity_bytes = int64_t{256} << 20;

  /// Decoded-block cache for paged (out-of-core) tables, shared by every
  /// session and charged against the same admission memory pool; 0 means
  /// queries over paged tables stream blocks ephemerally instead.
  int64_t block_cache_bytes = 0;

  /// Canonicalize plans through OptimizePlan before keying the cache and
  /// executing (recommended: equal queries then share cache entries even
  /// when phrased differently).
  bool optimize = true;

  /// Rewrites OptimizePlan may apply during canonicalization.
  OptimizeOptions optimize_options;

  /// Template for engine execution knobs. `guard` and `num_threads` are
  /// overwritten per query from the admission ticket.
  MdJoinOptions md_options;

  /// Execute under EXPLAIN ANALYZE profiling and harvest measured
  /// cardinalities into the service's feedback store after every complete
  /// run (estimates then improve run over run, and query records carry max
  /// q-error). Off by default: profiling materializes per-operator records.
  bool collect_feedback = false;

  /// Query-history ring capacity; 0 disables history (and the query log).
  size_t query_history_capacity = 256;

  /// JSONL append path for the query history; empty keeps it in-memory only.
  std::string query_log_path;

  /// Wall-time threshold (ms) past which a query is flagged slow (trace
  /// instant + mdjoin_slow_queries_total); 0 disables the check.
  int64_t slow_query_ms = 0;
};

/// How the result cache participated in one query.
enum class CacheOutcome {
  kDisabled,   // cache off (service- or query-level)
  kMiss,       // executed in full; result inserted
  kHit,        // exact canonical-plan hit, no engine work
  kRollupHit,  // served by rolling up a cached finer cuboid (Theorem 4.5)
};

const char* CacheOutcomeToString(CacheOutcome outcome);

/// Per-query report returned alongside the result table.
struct QueryStats {
  CacheOutcome cache = CacheOutcome::kDisabled;
  int64_t queue_wait_ms = 0;       // time spent queued for admission
  int64_t admitted_memory_bytes = 0;  // 0 for exact cache hits (no admission)
  int admitted_threads = 0;
  ExecStats exec;                  // engine counters (empty for exact hits)
};

struct QueryResult {
  /// Shared ownership: cache hits alias the cached table, so results are
  /// returned without copying and survive later evictions.
  std::shared_ptr<const Table> table;
  QueryStats stats;
};

/// Per-query knobs a session may override; -1 fields fall back to the
/// service defaults.
struct SessionQueryOptions {
  int64_t timeout_ms = -1;    // -1 = service default; 0 = no deadline
  int64_t memory_bytes = -1;  // -1 = service default
  int threads = -1;           // -1 = service default
  bool use_cache = true;      // false = bypass (and do not populate) the cache
};

/// The multi-user query service (ROADMAP item 1): one shared engine +
/// catalog, N client sessions, global admission control, and a semantic
/// result cache over the cuboid lattice.
///
/// Query lifecycle (DESIGN.md §11): canonicalize → exact cache lookup →
/// admission (queue / shed) → second-chance exact lookup → lattice roll-up
/// lookup → full execution → cache insert. Budget flows through RAII
/// admission tickets, so completion, cancellation, shed, and crash all
/// release it on the same path.
///
/// Thread-safety: all methods are thread-safe; sessions are the intended
/// unit of client concurrency (one in-flight query per session, any number
/// of sessions). The catalog's tables are borrowed and must outlive the
/// service and stay immutable while it serves (the cache's correctness
/// depends on it).
class QueryService {
 public:
  QueryService(const Catalog& catalog, const QueryServiceOptions& options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Opens a client session under `tenant` (the admission fairness key).
  /// Sessions may outlive neither the service nor its tables.
  std::unique_ptr<Session> OpenSession(std::string tenant = "default");

  const Catalog& catalog() const { return catalog_; }
  const QueryServiceOptions& options() const { return options_; }
  AdmissionController& admission() { return admission_; }
  /// nullptr when the cache is disabled.
  ResultCache* cache() { return cache_.get(); }
  /// nullptr when no block cache is configured (block_cache_bytes == 0).
  BlockCache* block_cache() { return block_cache_.get(); }
  /// The service-wide plan-feedback store (populated only when
  /// collect_feedback is on; always present so callers can inspect it).
  FeedbackStore& feedback() { return feedback_; }
  /// nullptr when query_history_capacity == 0.
  QueryHistory* history() { return history_.get(); }
  int64_t sessions_open() const {
    return sessions_open_.load(std::memory_order_relaxed);
  }

 private:
  friend class Session;

  Result<QueryResult> Execute(Session* session, const PlanPtr& plan,
                              const SessionQueryOptions& query_options);

  /// Execute() minus the history bookkeeping; fills the telemetry fields of
  /// `record` (fingerprints, cache/queue outcomes, engine counters) as the
  /// lifecycle progresses so every early return leaves a meaningful record.
  Result<QueryResult> ExecuteInternal(Session* session, const PlanPtr& plan,
                                      const SessionQueryOptions& query_options,
                                      QueryRecord* record);

  /// Executes `plan` under the minted guard/threads; shared by the roll-up
  /// and full-execution paths. With collect_feedback on, runs profiled and
  /// reports the per-query max q-error through `record`.
  Result<Table> RunEngine(const PlanPtr& plan, const Catalog& catalog,
                          QueryGuard* guard, int threads, ExecStats* stats,
                          QueryRecord* record);

  Catalog catalog_;
  const QueryServiceOptions options_;
  AdmissionController admission_;
  std::unique_ptr<ResultCache> cache_;
  // Declared after admission_ so its destructor (which releases external
  // charges through the admission callbacks) runs while admission_ is alive.
  std::unique_ptr<BlockCache> block_cache_;
  FeedbackStore feedback_;
  std::unique_ptr<QueryHistory> history_;
  std::atomic<int64_t> sessions_open_{0};
};

/// A client handle onto the service: issues one query at a time, carries the
/// tenant identity, and supports cross-thread cancellation of whatever phase
/// the current query is in (queued for admission or executing).
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Executes a plan through the service. Blocks through admission; returns
  /// kResourceExhausted (with a retry_after_ms hint) when shed,
  /// kDeadlineExceeded when the deadline expires queued or running, and
  /// kCancelled after Cancel(). One in-flight query per session.
  Result<QueryResult> Execute(const PlanPtr& plan,
                              const SessionQueryOptions& query_options = {});

  /// Parses + binds an ANALYZE BY query string against the service catalog,
  /// then executes it.
  Result<QueryResult> ExecuteQueryString(const std::string& text,
                                         const SessionQueryOptions& query_options = {});

  /// Requests cancellation of the session's in-flight query from any thread:
  /// a queued query leaves the admission queue with kCancelled; a running
  /// one trips its guard at the next stride check. Sticky until the next
  /// Execute call observes it; a Cancel with no query in flight cancels the
  /// next Execute at its first checkpoint.
  void Cancel();

  const std::string& tenant() const { return tenant_; }

 private:
  friend class QueryService;
  Session(QueryService* service, std::string tenant);

  /// Publishes/withdraws the running query's guard for Cancel().
  void SetActiveGuard(QueryGuard* guard) MDJ_EXCLUDES(mu_);
  /// Resets the sticky cancel flag at query start; returns true if a cancel
  /// was already pending (the query then fails before any work).
  bool ConsumePendingCancel();

  QueryService* const service_;
  const std::string tenant_;
  std::atomic<bool> cancel_requested_{false};
  Mutex mu_;
  QueryGuard* active_guard_ MDJ_GUARDED_BY(mu_) = nullptr;
};

}  // namespace mdjoin

#endif  // MDJOIN_SERVER_QUERY_SERVICE_H_
