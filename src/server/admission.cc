#include "server/admission.h"

#include <cstdlib>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdjoin {

namespace {

/// Cached instrument pointers for the admission metrics (docs/OPERATOR.md
/// §11). Function-local statics so each site pays the registry lookup once.
Counter* AdmittedCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_server_admitted_total", "queries admitted past admission control");
  return c;
}
Counter* ShedQueueFullCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_server_shed_queue_full_total",
      "queries shed because the admission queue was full");
  return c;
}
Counter* ShedDeadlineCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_server_shed_deadline_total",
      "queries shed because their deadline expired before admission");
  return c;
}
Counter* ShedUnsatisfiableCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_server_shed_unsatisfiable_total",
      "queries shed because they exceed the total budgets outright");
  return c;
}
Gauge* QueueDepthGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge(
      "mdjoin_server_queue_depth", "requests currently queued for admission");
  return g;
}
Gauge* MemoryInUseGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge(
      "mdjoin_server_memory_in_use_bytes",
      "bytes of the shared pool held by admitted queries and the result cache");
  return g;
}
Gauge* ThreadsInUseGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge(
      "mdjoin_server_threads_in_use", "thread tokens held by admitted queries");
  return g;
}
Histogram* WaitHistogram() {
  static Histogram* h = MetricsRegistry::Global().GetHistogram(
      "mdjoin_server_admission_wait_ms",
      {0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000},
      "wall-clock milliseconds queries spent queued before admission");
  return h;
}

int64_t ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

bool HasDeadline(const AdmissionRequest& request) {
  return request.deadline.time_since_epoch().count() != 0;
}

bool CancelRaised(const AdmissionRequest& request) {
  return request.cancelled != nullptr &&
         request.cancelled->load(std::memory_order_acquire);
}

}  // namespace

// ---------------------------------------------------------------------------
// AdmissionTicket
// ---------------------------------------------------------------------------

void AdmissionTicket::Release() {
  if (controller_ == nullptr) return;
  AdmissionController* controller = controller_;
  controller_ = nullptr;
  controller->Release(memory_bytes_, threads_);
}

QueryGuardOptions AdmissionTicket::MintGuardOptions(int64_t timeout_ms) const {
  QueryGuardOptions options;
  options.timeout_ms = timeout_ms > 0 ? timeout_ms : 0;
  // The minted budget is both the soft budget (the engine degrades to
  // multi-pass under pressure, Theorem 4.1) and the hard ceiling (crossing
  // it fails the query rather than the process).
  options.memory_budget_bytes = memory_bytes_;
  options.memory_hard_limit_bytes = memory_bytes_;
  return options;
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

AdmissionController::AdmissionController(const Options& options) : options_(options) {
  MDJ_CHECK(options_.total_memory_bytes >= 1)
      << "AdmissionController: total_memory_bytes must be >= 1";
  MDJ_CHECK(options_.total_threads >= 1)
      << "AdmissionController: total_threads must be >= 1";
  MDJ_CHECK(options_.max_queue_depth >= 0)
      << "AdmissionController: max_queue_depth must be >= 0";
  // Pre-register every admission instrument so a metrics dump carries the
  // full catalog (at zero) even when a run never sheds or queues — the
  // validate_obs.py --expect-server contract.
  AdmittedCounter();
  ShedQueueFullCounter();
  ShedDeadlineCounter();
  ShedUnsatisfiableCounter();
  QueueDepthGauge();
  MemoryInUseGauge();
  ThreadsInUseGauge();
  WaitHistogram();
}

AdmissionController::~AdmissionController() {
  MutexLock lock(mu_);
  MDJ_CHECK(num_waiters_ == 0)
      << "AdmissionController destroyed with queued waiters";
}

void AdmissionController::SetMemoryReclaimer(MemoryReclaimer reclaimer) {
  reclaimer_ = std::move(reclaimer);
}

bool AdmissionController::FitsLocked(int64_t memory_bytes, int threads) const {
  return memory_in_use_ + memory_bytes <= options_.total_memory_bytes &&
         threads_in_use_ + threads <= options_.total_threads;
}

AdmissionController::Waiter* AdmissionController::HeadWaiterLocked() {
  if (round_robin_.empty()) return nullptr;
  return queues_[round_robin_.front()].front();
}

bool AdmissionController::DrainQueueLocked() {
  bool any = false;
  while (Waiter* head = HeadWaiterLocked()) {
    if (!FitsLocked(head->memory_bytes, head->threads)) break;
    memory_in_use_ += head->memory_bytes;
    threads_in_use_ += head->threads;
    head->admitted = true;
    auto it = queues_.find(head->tenant);
    it->second.pop_front();
    round_robin_.pop_front();
    if (it->second.empty()) {
      queues_.erase(it);
    } else {
      round_robin_.push_back(head->tenant);  // round-robin across tenants
    }
    --num_waiters_;
    any = true;
  }
  if (any) {
    QueueDepthGauge()->Set(num_waiters_);
    MemoryInUseGauge()->Set(memory_in_use_);
    ThreadsInUseGauge()->Set(threads_in_use_);
  }
  return any;
}

void AdmissionController::RemoveWaiterLocked(Waiter* w) {
  auto it = queues_.find(w->tenant);
  if (it == queues_.end()) return;
  std::deque<Waiter*>& q = it->second;
  for (auto qit = q.begin(); qit != q.end(); ++qit) {
    if (*qit == w) {
      q.erase(qit);
      --num_waiters_;
      break;
    }
  }
  if (q.empty()) {
    queues_.erase(it);
    for (auto rit = round_robin_.begin(); rit != round_robin_.end(); ++rit) {
      if (*rit == w->tenant) {
        round_robin_.erase(rit);
        break;
      }
    }
    // The new head may fit where the removed waiter did not.
    if (DrainQueueLocked()) wake_.NotifyAll();
  }
  QueueDepthGauge()->Set(num_waiters_);
}

Status AdmissionController::ShedQueueFull(int depth) const {
  const int64_t retry_ms = options_.retry_after_base_ms * (1 + depth);
  return Status::ResourceExhausted(
      "admission queue full (depth ", depth, " of max ", options_.max_queue_depth,
      "); overloaded — retry_after_ms=", retry_ms);
}

int64_t AdmissionController::RetryAfterHintMs(const Status& status) {
  static constexpr char kTag[] = "retry_after_ms=";
  const std::string& message = status.message();
  const size_t pos = message.find(kTag);
  if (pos == std::string::npos) return -1;
  return std::strtoll(message.c_str() + pos + sizeof(kTag) - 1, nullptr, 10);
}

Result<AdmissionTicket> AdmissionController::Admit(const AdmissionRequest& request) {
  if (request.memory_bytes < 1) {
    return Status::InvalidArgument("AdmissionRequest: memory_bytes must be >= 1, got ",
                                   request.memory_bytes);
  }
  if (request.threads < 1) {
    return Status::InvalidArgument("AdmissionRequest: threads must be >= 1, got ",
                                   request.threads);
  }
  // A request beyond the total budgets can never be admitted; shed it with
  // no retry hint (retrying cannot help).
  if (request.memory_bytes > options_.total_memory_bytes ||
      request.threads > options_.total_threads) {
    ShedUnsatisfiableCounter()->Increment();
    return Status::ResourceExhausted(
        "request exceeds total budgets (asked ", request.memory_bytes, " bytes / ",
        request.threads, " threads; totals ", options_.total_memory_bytes, " / ",
        options_.total_threads, ") and can never be admitted");
  }
  if (HasDeadline(request) && std::chrono::steady_clock::now() >= request.deadline) {
    ShedDeadlineCounter()->Increment();
    TraceInstant("admission_shed", "deadline");
    return Status::DeadlineExceeded(
        "deadline expired before admission; no engine work was started");
  }
  if (CancelRaised(request)) {
    return Status::Cancelled("query cancelled before admission");
  }

  // Failpoint "server:admit": pretend the budget did not fit so the request
  // takes the queue path even on an idle controller (deterministic coverage
  // of queueing, deadline-while-queued, and fairness).
  const bool force_queue = MDJ_FAILPOINT("server:admit");

  if (!force_queue) {
    MutexLock lock(mu_);
    if (num_waiters_ == 0 && FitsLocked(request.memory_bytes, request.threads)) {
      memory_in_use_ += request.memory_bytes;
      threads_in_use_ += request.threads;
      MemoryInUseGauge()->Set(memory_in_use_);
      ThreadsInUseGauge()->Set(threads_in_use_);
      AdmittedCounter()->Increment();
      WaitHistogram()->Observe(0);
      return AdmissionTicket(this, request.memory_bytes, request.threads, 0);
    }
  }

  // Memory shortfall: let the result cache give bytes back before queueing.
  // The reclaimer runs without the controller lock (it takes the cache's own
  // lock and re-enters via ReleaseChargedBytes).
  if (!force_queue && reclaimer_ != nullptr) {
    int64_t shortfall = 0;
    {
      MutexLock lock(mu_);
      shortfall = memory_in_use_ + request.memory_bytes - options_.total_memory_bytes;
    }
    if (shortfall > 0) {
      reclaimer_(shortfall);
      MutexLock lock(mu_);
      if (num_waiters_ == 0 && FitsLocked(request.memory_bytes, request.threads)) {
        memory_in_use_ += request.memory_bytes;
        threads_in_use_ += request.threads;
        MemoryInUseGauge()->Set(memory_in_use_);
        ThreadsInUseGauge()->Set(threads_in_use_);
        AdmittedCounter()->Increment();
        WaitHistogram()->Observe(0);
        return AdmissionTicket(this, request.memory_bytes, request.threads, 0);
      }
    }
  }

  // Queue path.
  Waiter waiter;
  waiter.tenant = request.tenant;
  waiter.memory_bytes = request.memory_bytes;
  waiter.threads = request.threads;
  waiter.enqueued = std::chrono::steady_clock::now();

  MutexLock lock(mu_);
  if (num_waiters_ >= options_.max_queue_depth || MDJ_FAILPOINT("server:shed")) {
    ShedQueueFullCounter()->Increment();
    TraceInstant("admission_shed", "queue_full");
    return ShedQueueFull(num_waiters_);
  }
  std::deque<Waiter*>& q = queues_[waiter.tenant];
  if (q.empty()) round_robin_.push_back(waiter.tenant);
  q.push_back(&waiter);
  ++num_waiters_;
  QueueDepthGauge()->Set(num_waiters_);
  // The new arrival may be the head and fit right away (e.g. force_queue on
  // an idle controller).
  if (DrainQueueLocked()) wake_.NotifyAll();

  // Evaluated with mu_ held (CondVar::Wait re-acquires before checking);
  // `waiter` lives on this stack frame and is only mutated under mu_.
  const auto pred = [&] { return waiter.admitted || CancelRaised(request); };
  while (!waiter.admitted) {
    if (HasDeadline(request)) {
      if (!wake_.WaitUntil(lock, request.deadline, pred)) {
        // Deadline passed while queued; the engine never starts.
        RemoveWaiterLocked(&waiter);
        ShedDeadlineCounter()->Increment();
        TraceInstant("admission_shed", "deadline");
        return Status::DeadlineExceeded("deadline expired after ",
                                        ElapsedMs(waiter.enqueued),
                                        "ms queued for admission; no engine work "
                                        "was started");
      }
    } else {
      wake_.Wait(lock, pred);
    }
    if (!waiter.admitted && CancelRaised(request)) {
      RemoveWaiterLocked(&waiter);
      return Status::Cancelled("query cancelled while queued for admission");
    }
  }
  waiter.queue_wait_ms = ElapsedMs(waiter.enqueued);
  AdmittedCounter()->Increment();
  WaitHistogram()->Observe(waiter.queue_wait_ms);
  return AdmissionTicket(this, waiter.memory_bytes, waiter.threads,
                         waiter.queue_wait_ms);
}

void AdmissionController::Release(int64_t memory_bytes, int threads) {
  bool admitted_any = false;
  {
    MutexLock lock(mu_);
    memory_in_use_ -= memory_bytes;
    threads_in_use_ -= threads;
    MemoryInUseGauge()->Set(memory_in_use_);
    ThreadsInUseGauge()->Set(threads_in_use_);
    admitted_any = DrainQueueLocked();
  }
  if (admitted_any) wake_.NotifyAll();
}

bool AdmissionController::TryChargeBytes(int64_t bytes) {
  if (bytes < 0) return false;
  MutexLock lock(mu_);
  if (memory_in_use_ + bytes > options_.total_memory_bytes) return false;
  memory_in_use_ += bytes;
  MemoryInUseGauge()->Set(memory_in_use_);
  return true;
}

void AdmissionController::ReleaseChargedBytes(int64_t bytes) {
  if (bytes <= 0) return;
  bool admitted_any = false;
  {
    MutexLock lock(mu_);
    memory_in_use_ -= bytes;
    MemoryInUseGauge()->Set(memory_in_use_);
    admitted_any = DrainQueueLocked();
  }
  if (admitted_any) wake_.NotifyAll();
}

void AdmissionController::WakeAll() { wake_.NotifyAll(); }

int64_t AdmissionController::memory_in_use() const {
  MutexLock lock(mu_);
  return memory_in_use_;
}

int AdmissionController::threads_in_use() const {
  MutexLock lock(mu_);
  return threads_in_use_;
}

int AdmissionController::queue_depth() const {
  MutexLock lock(mu_);
  return num_waiters_;
}

}  // namespace mdjoin
