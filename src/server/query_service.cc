#include "server/query_service.h"

#include <chrono>
#include <utility>

#include "analyze/binder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/rules.h"

namespace mdjoin {

namespace {

// Shadow-catalog name the roll-up path registers the cached finer cuboid
// under. Double-underscore prefix keeps it out of any user namespace.
constexpr char kCachedFinerTable[] = "__mdj_cache_finer__";

Counter* QueriesCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_server_queries_total", "queries submitted through sessions");
  return c;
}
Gauge* ActiveGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge(
      "mdjoin_server_queries_active", "queries currently inside Execute");
  return g;
}
Gauge* SessionsGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge(
      "mdjoin_server_sessions_open", "open client sessions");
  return g;
}
Counter* CacheHitCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_server_cache_hit_total", "queries answered by an exact cache hit");
  return c;
}
Counter* CacheRollupHitCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_server_cache_rollup_hit_total",
      "queries answered by rolling up a cached finer cuboid");
  return c;
}
Counter* CacheMissCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_server_cache_miss_total", "cache-eligible queries executed in full");
  return c;
}

/// Decrements a gauge on scope exit (Execute has many return paths).
class GaugeDecrementer {
 public:
  explicit GaugeDecrementer(Gauge* gauge) : gauge_(gauge) { gauge_->Add(1); }
  ~GaugeDecrementer() { gauge_->Add(-1); }
  GaugeDecrementer(const GaugeDecrementer&) = delete;
  GaugeDecrementer& operator=(const GaugeDecrementer&) = delete;

 private:
  Gauge* const gauge_;
};

/// Withdraws the session's active guard on scope exit, so Cancel() never
/// sees a dangling pointer even when execution returns early.
class ActiveGuardScope {
 public:
  ActiveGuardScope(Session* session, QueryGuard* guard,
                   void (Session::*set)(QueryGuard*))
      : session_(session), set_(set) {
    (session_->*set_)(guard);
  }
  ~ActiveGuardScope() { (session_->*set_)(nullptr); }
  ActiveGuardScope(const ActiveGuardScope&) = delete;
  ActiveGuardScope& operator=(const ActiveGuardScope&) = delete;

 private:
  Session* const session_;
  void (Session::*const set_)(QueryGuard*);
};

/// Folds a profiled operator tree into the ExecStats the unprofiled path
/// would have produced, plus the storage counters the query record carries.
void SumProfileCounters(const OperatorProfile& node, ExecStats* stats,
                        QueryRecord* record) {
  ++stats->nodes_executed;
  stats->rows_materialized += node.output_rows;
  if (node.is_mdjoin) {
    ++stats->mdjoin_operators;
    stats->detail_rows_scanned += node.detail_rows_scanned;
    stats->candidate_pairs += node.candidate_pairs;
    stats->matched_pairs += node.matched_pairs;
  }
  if (record != nullptr) {
    record->blocks_read += node.blocks_read;
    record->spill_bytes += node.spill_bytes_written;
  }
  for (const auto& child : node.children) {
    SumProfileCounters(*child, stats, record);
  }
}

/// Terminal-outcome label for the query record.
const char* OutcomeLabel(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kResourceExhausted: return "shed";
    case StatusCode::kDeadlineExceeded: return "deadline";
    case StatusCode::kCancelled: return "cancelled";
    default: return "error";
  }
}

}  // namespace

const char* CacheOutcomeToString(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kDisabled:
      return "disabled";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kRollupHit:
      return "rollup_hit";
  }
  return "unknown";
}

QueryService::QueryService(const Catalog& catalog, const QueryServiceOptions& options)
    : catalog_(catalog), options_(options), admission_(options.admission) {
  if (options_.query_history_capacity > 0) {
    QueryHistory::Options history_options;
    history_options.capacity = options_.query_history_capacity;
    history_options.log_path = options_.query_log_path;
    history_options.slow_query_ms = options_.slow_query_ms;
    history_ = std::make_unique<QueryHistory>(history_options);
  }
  // Pre-register the service instruments so metrics dumps always carry the
  // full catalog, even before the first query (validate_obs.py
  // --expect-server checks every name).
  QueriesCounter();
  ActiveGauge();
  SessionsGauge();
  CacheHitCounter();
  CacheRollupHitCounter();
  CacheMissCounter();
  ResultCache::RegisterMetrics();
  if (options_.cache_capacity_bytes > 0) {
    ResultCache::Options cache_options;
    cache_options.capacity_bytes = options_.cache_capacity_bytes;
    cache_ = std::make_unique<ResultCache>(&admission_, cache_options);
  }
  if (options_.block_cache_bytes > 0) {
    // Resident decoded blocks draw from the same admission memory pool as
    // query guards and the result cache; if the pool refuses even after
    // reclaim, the block bypasses the cache (ephemeral pin, charged to the
    // faulting query's own guard) rather than failing the query.
    BlockCache::Options bc;
    bc.capacity_bytes = options_.block_cache_bytes;
    bc.charge = [this](int64_t bytes) { return admission_.TryChargeBytes(bytes); };
    bc.release = [this](int64_t bytes) { admission_.ReleaseChargedBytes(bytes); };
    block_cache_ = std::make_unique<BlockCache>(bc);
  }
  if (cache_ != nullptr || block_cache_ != nullptr) {
    // Arriving queries squeeze the caches before queueing (DESIGN.md §11):
    // result-cache entries first (cheapest to recompute via roll-up), then
    // cold decoded blocks (refaultable from their block files).
    admission_.SetMemoryReclaimer([this](int64_t bytes_needed) {
      int64_t freed = 0;
      if (cache_ != nullptr) freed += cache_->EvictBytes(bytes_needed);
      if (freed < bytes_needed && block_cache_ != nullptr) {
        freed += block_cache_->EvictBytes(bytes_needed - freed);
      }
      return freed;
    });
  }
}

QueryService::~QueryService() {
  MDJ_CHECK(sessions_open_.load() == 0)
      << "QueryService destroyed with " << sessions_open_.load() << " open session(s)";
}

std::unique_ptr<Session> QueryService::OpenSession(std::string tenant) {
  return std::unique_ptr<Session>(new Session(this, std::move(tenant)));
}

Result<Table> QueryService::RunEngine(const PlanPtr& plan, const Catalog& catalog,
                                      QueryGuard* guard, int threads,
                                      ExecStats* stats, QueryRecord* record) {
  MdJoinOptions md = options_.md_options;
  md.guard = guard;
  md.num_threads = threads;
  if (block_cache_ != nullptr) md.block_cache = block_cache_.get();
  if (!options_.collect_feedback) {
    return ExecutePlanCse(plan, catalog, md, stats);
  }
  // Feedback mode: run profiled (no CSE — the measurements must reflect the
  // plan as written), harvest measured cardinalities into the store, and
  // carry the profile's telemetry into the query record.
  md.feedback = &feedback_;
  QueryProfile profile;
  Result<Table> out = ExplainAnalyze(plan, catalog, md, &profile);
  if (profile.root != nullptr) {
    SumProfileCounters(*profile.root, stats, record);
  }
  if (record != nullptr) {
    record->max_qerror = profile.max_qerror;
    record->cpu_ms = profile.root != nullptr ? profile.root->cpu_ms : 0;
  }
  return out;
}

Result<QueryResult> QueryService::Execute(Session* session, const PlanPtr& plan,
                                          const SessionQueryOptions& query_options) {
  if (history_ == nullptr) {
    return ExecuteInternal(session, plan, query_options, nullptr);
  }
  QueryRecord record;
  const auto start = std::chrono::steady_clock::now();
  Result<QueryResult> result = ExecuteInternal(session, plan, query_options, &record);
  record.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  if (result.ok()) {
    record.outcome = "ok";
    if (result->table != nullptr) record.rows = result->table->num_rows();
    record.cache = CacheOutcomeToString(result->stats.cache);
    record.queue_wait_ms = result->stats.queue_wait_ms;
    record.detail_rows_scanned = result->stats.exec.detail_rows_scanned;
  } else {
    record.outcome = OutcomeLabel(result.status());
    // Deadline and cancel terminate execution through the guard's stride
    // checks; shed queries never started, so they do not count as trips.
    record.guard_tripped = result.status().code() == StatusCode::kDeadlineExceeded ||
                           result.status().code() == StatusCode::kCancelled;
  }
  history_->Record(std::move(record));
  return result;
}

Result<QueryResult> QueryService::ExecuteInternal(
    Session* session, const PlanPtr& plan, const SessionQueryOptions& query_options,
    QueryRecord* record) {
  if (plan == nullptr) return Status::InvalidArgument("Execute: null plan");
  QueriesCounter()->Increment();
  GaugeDecrementer active(ActiveGauge());

  if (session->ConsumePendingCancel()) {
    return Status::Cancelled("query cancelled before it started");
  }

  // Resolve per-query knobs against the service defaults.
  const int64_t timeout_ms = query_options.timeout_ms >= 0 ? query_options.timeout_ms
                                                           : options_.default_timeout_ms;
  const int64_t memory_bytes = query_options.memory_bytes >= 0
                                   ? query_options.memory_bytes
                                   : options_.default_memory_per_query;
  const int threads = query_options.threads >= 1 ? query_options.threads
                                                 : options_.default_threads_per_query;
  std::chrono::steady_clock::time_point deadline{};
  if (timeout_ms > 0) {
    deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  }

  // Canonicalize: equal queries share one cache identity and the engine runs
  // the optimized form.
  PlanPtr canonical = plan;
  if (options_.optimize) {
    MDJ_ASSIGN_OR_RETURN(canonical,
                         OptimizePlan(plan, catalog_, options_.optimize_options));
  }
  if (record != nullptr) {
    // Submitted-form identity vs. executed-form identity; they differ exactly
    // when canonicalization changed the plan.
    record->fingerprint = FingerprintString(ExplainPlan(plan));
    record->plan_hash = FingerprintString(ExplainPlan(canonical));
  }

  const bool cache_on = cache_ != nullptr && query_options.use_cache;
  QueryStats stats;
  stats.cache = cache_on ? CacheOutcome::kMiss : CacheOutcome::kDisabled;

  PlanCacheKey key;
  if (cache_on) {
    key = MakePlanCacheKey(canonical);
    // Exact hits never touch admission: no engine work means no budget.
    if (std::shared_ptr<const Table> cached = cache_->LookupExact(key.exact)) {
      CacheHitCounter()->Increment();
      TraceInstant("cache_hit", "exact");
      stats.cache = CacheOutcome::kHit;
      return QueryResult{std::move(cached), std::move(stats)};
    }
  }

  AdmissionRequest request;
  request.tenant = session->tenant();
  request.memory_bytes = memory_bytes;
  request.threads = threads;
  request.deadline = deadline;
  request.cancelled = &session->cancel_requested_;
  MDJ_ASSIGN_OR_RETURN(AdmissionTicket ticket, admission_.Admit(request));

  stats.queue_wait_ms = ticket.queue_wait_ms();
  stats.admitted_memory_bytes = ticket.memory_bytes();
  stats.admitted_threads = ticket.threads();

  // Second chance: a twin query may have populated the cache while this one
  // queued. The ticket releases via RAII on this return.
  if (cache_on) {
    if (std::shared_ptr<const Table> cached = cache_->LookupExact(key.exact)) {
      CacheHitCounter()->Increment();
      TraceInstant("cache_hit", "exact_after_queue");
      stats.cache = CacheOutcome::kHit;
      return QueryResult{std::move(cached), std::move(stats)};
    }
  }

  // Guard deadline = time remaining, not the original timeout: queue wait
  // already consumed part of the budget.
  int64_t guard_timeout_ms = 0;
  if (timeout_ms > 0) {
    guard_timeout_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           deadline - std::chrono::steady_clock::now())
                           .count();
    if (guard_timeout_ms < 1) {
      return Status::DeadlineExceeded("deadline expired before execution started");
    }
  }
  QueryGuard guard(ticket.MintGuardOptions(guard_timeout_ms));
  ActiveGuardScope guard_scope(session, &guard, &Session::SetActiveGuard);
  // Close the Cancel() race between admission and guard publication.
  if (session->cancel_requested_.load(std::memory_order_acquire)) guard.Cancel();

  // Lattice roll-up: a cached finer cuboid of the same family answers this
  // coarser request via Theorem 4.5. ApplyRollup rebuilds (and re-certifies)
  // the rewrite; only its detail input is swapped for the cached table, so
  // the executed plan is exactly the certified roll-up shape.
  if (cache_on && !key.family.empty()) {
    if (std::optional<ResultCache::FinerCuboid> finer =
            cache_->LookupFiner(key.family, key.mask)) {
      Result<PlanPtr> rolled = ApplyRollup(canonical, finer->mask);
      Catalog shadow = catalog_;
      if (rolled.ok() &&
          shadow.Register(kCachedFinerTable, finer->table.get()).ok()) {
        PlanPtr outer = MdJoinPlan((*rolled)->child(0), TableRef(kCachedFinerTable),
                                   (*rolled)->aggs, (*rolled)->theta);
        Result<Table> out = RunEngine(outer, shadow, &guard, ticket.threads(),
                                      &stats.exec, record);
        if (!out.ok()) return out.status();
        CacheRollupHitCounter()->Increment();
        TraceInstant("cache_hit", "rollup");
        stats.cache = CacheOutcome::kRollupHit;
        auto shared = std::make_shared<const Table>(std::move(*out));
        cache_->Insert(key, shared);
        return QueryResult{std::move(shared), std::move(stats)};
      }
      // Roll-up not applicable after all (or name collision): execute fully.
    }
  }

  Result<Table> out = RunEngine(canonical, catalog_, &guard, ticket.threads(),
                                &stats.exec, record);
  if (!out.ok()) return out.status();
  auto shared = std::make_shared<const Table>(std::move(*out));
  if (cache_on) {
    CacheMissCounter()->Increment();
    cache_->Insert(key, shared);
  }
  return QueryResult{std::move(shared), std::move(stats)};
}

Session::Session(QueryService* service, std::string tenant)
    : service_(service), tenant_(std::move(tenant)) {
  service_->sessions_open_.fetch_add(1, std::memory_order_relaxed);
  SessionsGauge()->Add(1);
}

Session::~Session() {
  service_->sessions_open_.fetch_sub(1, std::memory_order_relaxed);
  SessionsGauge()->Add(-1);
}

Result<QueryResult> Session::Execute(const PlanPtr& plan,
                                     const SessionQueryOptions& query_options) {
  return service_->Execute(this, plan, query_options);
}

Result<QueryResult> Session::ExecuteQueryString(
    const std::string& text, const SessionQueryOptions& query_options) {
  MDJ_ASSIGN_OR_RETURN(analyze::BoundQuery bound,
                       analyze::BindQueryString(text, service_->catalog()));
  return Execute(bound.plan, query_options);
}

void Session::Cancel() {
  cancel_requested_.store(true, std::memory_order_release);
  {
    MutexLock lock(mu_);
    if (active_guard_ != nullptr) active_guard_->Cancel();
  }
  // A waiter queued for admission re-checks its cancel flag on wake-up.
  service_->admission().WakeAll();
}

void Session::SetActiveGuard(QueryGuard* guard) {
  MutexLock lock(mu_);
  active_guard_ = guard;
}

bool Session::ConsumePendingCancel() {
  return cancel_requested_.exchange(false, std::memory_order_acq_rel);
}

}  // namespace mdjoin
