#include "server/result_cache.h"

#include <utility>

#include "analyze/plan_analyzer.h"
#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mdjoin {

namespace {

Counter* EvictionsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_server_cache_evictions_total", "result-cache entries evicted (LRU)");
  return c;
}
Counter* InsertsCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "mdjoin_server_cache_insert_total", "result-cache entries inserted");
  return c;
}
Gauge* BytesGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge(
      "mdjoin_server_cache_bytes", "bytes of cached query results");
  return g;
}
Gauge* EntriesGauge() {
  static Gauge* g = MetricsRegistry::Global().GetGauge(
      "mdjoin_server_cache_entries", "cached query results");
  return g;
}

}  // namespace

PlanCacheKey MakePlanCacheKey(const PlanPtr& plan) {
  PlanCacheKey key;
  key.exact = ExplainPlan(plan);
  if (plan == nullptr || plan->kind() != PlanKind::kMdJoin) return key;
  const PlanPtr& base = plan->child(0);
  if (base->kind() != PlanKind::kCuboidBase) return key;
  // Only plans the roll-up rule could serve get a lattice position: the
  // analyzer's Theorem-4.5 certificate (distributive aggregate list, θ the
  // pure dimension-equality condition) is exactly the legality gate
  // ApplyRollup itself uses.
  if (!CertifyRollup(plan).ok()) return key;
  // The family is the canonical key with the mask normalized to the grand
  // total, so every cuboid of the same cube query lands in one family.
  PlanPtr normalized =
      MdJoinPlan(CuboidBasePlan(base->child(0), base->cube_dims, 0), plan->child(1),
                 plan->aggs, plan->theta);
  key.family = ExplainPlan(normalized);
  key.mask = base->cuboid_mask;
  return key;
}

void ResultCache::RegisterMetrics() {
  EvictionsCounter();
  InsertsCounter();
  BytesGauge();
  EntriesGauge();
}

ResultCache::ResultCache(AdmissionController* pool, const Options& options)
    : pool_(pool), options_(options) {
  MDJ_CHECK(pool_ != nullptr) << "ResultCache needs an admission pool";
  MDJ_CHECK(options_.capacity_bytes >= 1) << "ResultCache: capacity must be >= 1";
  RegisterMetrics();
}

ResultCache::~ResultCache() { Clear(); }

void ResultCache::TouchLocked(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

int64_t ResultCache::EvictOneLocked() {
  if (lru_.empty()) return 0;
  const Entry& victim = lru_.back();
  const int64_t freed = victim.bytes;
  by_exact_.erase(victim.key.exact);
  if (!victim.key.family.empty()) {
    auto fam = by_family_.find(victim.key.family);
    if (fam != by_family_.end()) {
      fam->second.erase(victim.key.mask);
      if (fam->second.empty()) by_family_.erase(fam);
    }
  }
  lru_.pop_back();
  bytes_cached_ -= freed;
  pool_->ReleaseChargedBytes(freed);
  EvictionsCounter()->Increment();
  TraceInstant("cache_evict", "lru");
  UpdateGaugesLocked();
  return freed;
}

void ResultCache::UpdateGaugesLocked() {
  BytesGauge()->Set(bytes_cached_);
  EntriesGauge()->Set(static_cast<int64_t>(lru_.size()));
}

std::shared_ptr<const Table> ResultCache::LookupExact(const std::string& exact_key) {
  MutexLock lock(mu_);
  auto it = by_exact_.find(exact_key);
  if (it == by_exact_.end()) return nullptr;
  TouchLocked(it->second);
  return it->second->table;
}

std::optional<ResultCache::FinerCuboid> ResultCache::LookupFiner(
    const std::string& family, CuboidMask coarse) {
  if (family.empty()) return std::nullopt;
  MutexLock lock(mu_);
  auto fam = by_family_.find(family);
  if (fam == by_family_.end()) return std::nullopt;
  LruList::iterator best;
  bool found = false;
  for (const auto& [mask, entry] : fam->second) {
    // A strict superset of the request's grouped dimensions is a finer
    // cuboid: Theorem 4.5 says the coarser result is its roll-up.
    if ((coarse & mask) != coarse || mask == coarse) continue;
    if (!found || entry->table->num_rows() < best->table->num_rows()) {
      best = entry;
      found = true;
    }
  }
  if (!found) return std::nullopt;
  TouchLocked(best);
  return FinerCuboid{best->table, best->key.mask};
}

void ResultCache::Insert(const PlanCacheKey& key, std::shared_ptr<const Table> table) {
  if (table == nullptr) return;
  const int64_t bytes =
      table->ApproxBytes() + static_cast<int64_t>(key.exact.size() + key.family.size());
  if (bytes > options_.capacity_bytes) return;  // would evict everything else

  MutexLock lock(mu_);
  if (by_exact_.count(key.exact) > 0) return;  // lost an insert race; keep LRU state

  // Deterministic coverage of the eviction path: pretend the cache is over
  // capacity once.
  if (MDJ_FAILPOINT("server:cache_evict")) EvictOneLocked();

  while (bytes_cached_ + bytes > options_.capacity_bytes && !lru_.empty()) {
    EvictOneLocked();
  }
  // Charge the shared admission pool; make room by shrinking ourselves if
  // admitted queries hold the rest of the pool.
  while (!pool_->TryChargeBytes(bytes)) {
    if (lru_.empty()) return;  // pool is full of running queries; skip caching
    EvictOneLocked();
  }

  lru_.push_front(Entry{key, std::move(table), bytes});
  by_exact_[key.exact] = lru_.begin();
  if (!key.family.empty()) by_family_[key.family][key.mask] = lru_.begin();
  bytes_cached_ += bytes;
  InsertsCounter()->Increment();
  UpdateGaugesLocked();
}

int64_t ResultCache::EvictBytes(int64_t bytes_needed) {
  MutexLock lock(mu_);
  int64_t freed = 0;
  while (freed < bytes_needed && !lru_.empty()) freed += EvictOneLocked();
  return freed;
}

void ResultCache::Clear() {
  MutexLock lock(mu_);
  while (!lru_.empty()) EvictOneLocked();
}

int64_t ResultCache::bytes_cached() const {
  MutexLock lock(mu_);
  return bytes_cached_;
}

int64_t ResultCache::entries() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

}  // namespace mdjoin
