#ifndef MDJOIN_SERVER_RESULT_CACHE_H_
#define MDJOIN_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/thread_annotations.h"
#include "cube/lattice.h"
#include "optimizer/plan.h"
#include "server/admission.h"
#include "table/table.h"

namespace mdjoin {

/// Cache identity of a canonicalized plan. `exact` is the plan's full
/// canonical rendering — two requests with equal `exact` keys have equal
/// results (the catalog is fixed for the service's lifetime and execution is
/// bit-identical across engine knobs).
///
/// When the plan is a cuboid query the optimizer's roll-up rule can serve
/// from — root MD-join over a CuboidBase child, certified by the analyzer's
/// Theorem-4.5 certificate (distributive aggregates, pure dimension-equality
/// θ) — `family` names its position in the cube lattice: the canonical key
/// with the cuboid mask normalized out, so every cuboid of the same cube
/// query shares a family and differs only in `mask`. A cached finer cuboid
/// (mask ⊃ request mask) then answers the coarser request via roll-up.
/// `family` is empty for plans the roll-up rule cannot certify.
struct PlanCacheKey {
  std::string exact;
  std::string family;
  CuboidMask mask = 0;
};

/// Computes the cache key of `plan`: `exact` always, `family`/`mask` only
/// when the Theorem-4.5 roll-up certificate holds at the root.
PlanCacheKey MakePlanCacheKey(const PlanPtr& plan);

/// Semantic result cache over the cuboid lattice (ROADMAP item 1; the
/// lattice view of caching follows Gray et al.'s data-cube paper).
///
/// Entries are finished query results keyed by canonical plan. Lookup is
/// two-tier:
///  - LookupExact: the same canonical plan was cached — return its table;
///  - LookupFiner: some *finer* cuboid of the same family is cached — by
///    Theorem 4.5 the coarser request is a roll-up of it, so the service
///    re-aggregates the (small) cached cuboid instead of re-scanning R.
///
/// Memory: every entry is charged to the shared admission pool
/// (AdmissionController::TryChargeBytes) and to the cache's own
/// capacity_bytes cap; eviction is strict LRU (touched by both lookup
/// tiers). EvictBytes is the admission controller's reclaimer hook, so an
/// arriving query squeezes the cache before it queues. Thread-safe; tables
/// are handed out as shared_ptr<const Table>, so a result stays alive for
/// readers that hold it across an eviction.
///
/// Failpoint "server:cache_evict" forces one LRU eviction at the next
/// Insert, exercising the eviction path deterministically.
class ResultCache {
 public:
  struct Options {
    /// Cache capacity in bytes; also implicitly bounded by what the shared
    /// admission pool has free. Must be >= 1.
    int64_t capacity_bytes = int64_t{256} << 20;
  };

  /// `pool` (not owned, must outlive the cache) backs the byte accounting.
  ResultCache(AdmissionController* pool, const Options& options);
  ~ResultCache();

  /// Registers the cache instruments with the global MetricsRegistry (at
  /// zero). The service calls this even with the cache disabled, so metric
  /// dumps always carry the full server catalog (validate_obs.py
  /// --expect-server).
  static void RegisterMetrics();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Exact-plan hit: the cached table, or nullptr. Touches LRU.
  std::shared_ptr<const Table> LookupExact(const std::string& exact_key)
      MDJ_EXCLUDES(mu_);

  struct FinerCuboid {
    std::shared_ptr<const Table> table;
    CuboidMask mask = 0;
  };

  /// Lattice hit: a cached entry of `family` whose mask is a strict superset
  /// of `coarse` (a finer cuboid — Theorem 4.5 makes it a valid roll-up
  /// source). Among candidates, prefers the fewest rows (cheapest outer
  /// scan). Touches LRU. nullopt when the family holds no finer cuboid.
  std::optional<FinerCuboid> LookupFiner(const std::string& family, CuboidMask coarse)
      MDJ_EXCLUDES(mu_);

  /// Caches `table` under `key`, charging its footprint to the admission
  /// pool; evicts LRU entries as needed to fit both the pool and
  /// capacity_bytes. Oversized results (footprint > capacity) and losing
  /// races (key already present) are dropped silently. Keeps `table` alive
  /// via shared ownership.
  void Insert(const PlanCacheKey& key, std::shared_ptr<const Table> table)
      MDJ_EXCLUDES(mu_);

  /// Reclaimer hook for AdmissionController::SetMemoryReclaimer: evicts LRU
  /// entries until at least `bytes_needed` bytes are freed (or the cache is
  /// empty); returns the bytes actually freed.
  int64_t EvictBytes(int64_t bytes_needed) MDJ_EXCLUDES(mu_);

  /// Drops every entry (catalog changed / tests).
  void Clear() MDJ_EXCLUDES(mu_);

  int64_t bytes_cached() const MDJ_EXCLUDES(mu_);
  int64_t entries() const MDJ_EXCLUDES(mu_);

 private:
  struct Entry {
    PlanCacheKey key;
    std::shared_ptr<const Table> table;
    int64_t bytes = 0;
  };
  /// LRU list, most-recently-used first; maps index into it.
  using LruList = std::list<Entry>;

  void TouchLocked(LruList::iterator it) MDJ_REQUIRES(mu_);
  /// Evicts the least-recently-used entry; returns its byte footprint (0
  /// when empty). Releases the pool charge.
  int64_t EvictOneLocked() MDJ_REQUIRES(mu_);
  void UpdateGaugesLocked() MDJ_REQUIRES(mu_);

  AdmissionController* const pool_;
  const Options options_;

  mutable Mutex mu_;
  LruList lru_ MDJ_GUARDED_BY(mu_);
  std::map<std::string, LruList::iterator> by_exact_ MDJ_GUARDED_BY(mu_);
  /// family → (mask → entry), for the lattice lookup.
  std::map<std::string, std::map<CuboidMask, LruList::iterator>> by_family_
      MDJ_GUARDED_BY(mu_);
  int64_t bytes_cached_ MDJ_GUARDED_BY(mu_) = 0;
};

}  // namespace mdjoin

#endif  // MDJOIN_SERVER_RESULT_CACHE_H_
