#ifndef MDJOIN_SERVER_ADMISSION_H_
#define MDJOIN_SERVER_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "common/query_guard.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace mdjoin {

class AdmissionController;

/// RAII admission ticket: the memory bytes and thread tokens one admitted
/// query holds against the controller's global budgets. Releasing (or just
/// destroying — including during stack unwinding when a query crashes) puts
/// the budget back and wakes queued waiters, so budget can never leak past
/// the scope that acquired it. Movable, not copyable.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket() { Release(); }

  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  AdmissionTicket(AdmissionTicket&& other) noexcept { *this = std::move(other); }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      controller_ = other.controller_;
      memory_bytes_ = other.memory_bytes_;
      threads_ = other.threads_;
      queue_wait_ms_ = other.queue_wait_ms_;
      other.controller_ = nullptr;
    }
    return *this;
  }

  /// Returns the held budget to the controller; idempotent.
  void Release();

  bool valid() const { return controller_ != nullptr; }
  int64_t memory_bytes() const { return memory_bytes_; }
  int threads() const { return threads_; }

  /// Wall-clock time this admission spent queued (0 on the fast path).
  int64_t queue_wait_ms() const { return queue_wait_ms_; }

  /// Mints the per-query QueryGuardOptions this ticket funds: the ticket's
  /// memory bytes become both the guard's soft budget (degrade to
  /// multi-pass) and its hard ceiling, and `timeout_ms` (0 = none) becomes
  /// the deadline. The result always passes QueryGuardOptions::Validate().
  QueryGuardOptions MintGuardOptions(int64_t timeout_ms) const;

 private:
  friend class AdmissionController;
  AdmissionTicket(AdmissionController* controller, int64_t memory_bytes, int threads,
                  int64_t queue_wait_ms)
      : controller_(controller),
        memory_bytes_(memory_bytes),
        threads_(threads),
        queue_wait_ms_(queue_wait_ms) {}

  AdmissionController* controller_ = nullptr;
  int64_t memory_bytes_ = 0;
  int threads_ = 0;
  int64_t queue_wait_ms_ = 0;
};

/// One query's resource ask, presented to AdmissionController::Admit.
struct AdmissionRequest {
  /// Fairness key: queued requests are served FIFO *within* a tenant and
  /// round-robin *across* tenants, so one chatty tenant cannot starve the
  /// rest of the queue.
  std::string tenant = "default";

  /// Memory bytes to mint for the query's guard. Must be >= 1 (an admitted
  /// query with no budget could not be accounted).
  int64_t memory_bytes = 1;

  /// Worker-thread tokens the query will use (MdJoinOptions::num_threads).
  int threads = 1;

  /// Absolute deadline; a zero (default-constructed) time_point means none.
  /// A request whose deadline has already passed — or passes while queued —
  /// is shed with kDeadlineExceeded before any engine work runs.
  std::chrono::steady_clock::time_point deadline{};

  /// Optional cooperative-cancel flag (e.g. the session's). A queued waiter
  /// observing it leaves the queue with kCancelled; pair with
  /// AdmissionController::WakeAll() from the cancelling thread.
  const std::atomic<bool>* cancelled = nullptr;
};

/// Global admission control across concurrent queries: one shared memory
/// pool and one shared thread-token pool, a bounded FIFO wait queue with
/// per-tenant round-robin fairness, and overload shedding.
///
/// Admission outcomes:
///  - admit: budget fits (and nobody is queued ahead) — returns an RAII
///    AdmissionTicket;
///  - queue: budget does not fit — the caller blocks, FIFO per tenant,
///    round-robin across tenants;
///  - shed (kResourceExhausted): the queue is at max_queue_depth, or the
///    request could never fit the total budgets. The status message carries
///    a machine-readable `retry_after_ms=N` hint (RetryAfterHintMs parses
///    it) sized to the current queue depth;
///  - shed (kDeadlineExceeded): the request's deadline expired before
///    admission — pre-queue or while queued — so the engine never runs.
///
/// Head-of-line blocking is deliberate: a large request at the head of the
/// fairness order waits until enough budget frees instead of being jumped by
/// smaller requests behind it, which is what makes queueing starvation-free
/// (every release wakes the queue; tickets are RAII so budget always comes
/// back).
///
/// The controller's memory pool is also the result cache's backing store:
/// the cache charges entries through TryChargeBytes/ReleaseChargedBytes, and
/// a reclaimer callback (SetMemoryReclaimer) lets admission shrink the cache
/// before queueing a query that does not fit.
///
/// Failpoints: "server:admit" forces the next admission onto the queue path
/// even when budget is free; "server:shed" sheds the next queue attempt as
/// if the queue were full.
class AdmissionController {
 public:
  struct Options {
    /// Total memory pool shared by all admitted queries plus the result
    /// cache. Must be >= 1.
    int64_t total_memory_bytes = int64_t{1} << 30;

    /// Total worker-thread tokens across admitted queries. Must be >= 1.
    int total_threads = 8;

    /// Bound on queued (not yet admitted) requests across all tenants;
    /// arrivals beyond it are shed. Must be >= 0 (0 = never queue).
    int max_queue_depth = 64;

    /// Base of the shed retry-after hint; the hint scales with queue depth.
    int64_t retry_after_base_ms = 25;
  };

  explicit AdmissionController(const Options& options);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until the request is admitted, its deadline expires, its cancel
  /// flag is raised, or it is shed. See the class comment for outcomes.
  Result<AdmissionTicket> Admit(const AdmissionRequest& request) MDJ_EXCLUDES(mu_);

  /// Bytes reclaimable on demand (the result cache): called *without* the
  /// controller lock when an arriving request does not fit, with the
  /// shortfall in bytes; returns the bytes actually freed.
  using MemoryReclaimer = std::function<int64_t(int64_t bytes_needed)>;
  void SetMemoryReclaimer(MemoryReclaimer reclaimer) MDJ_EXCLUDES(mu_);

  /// Non-blocking charge against the shared memory pool (cache entries).
  /// Never evicts or queues — returns false when the bytes do not fit.
  bool TryChargeBytes(int64_t bytes) MDJ_EXCLUDES(mu_);

  /// Returns bytes charged via TryChargeBytes and wakes queued waiters.
  void ReleaseChargedBytes(int64_t bytes) MDJ_EXCLUDES(mu_);

  /// Wakes every queued waiter so it can re-check its cancel flag.
  void WakeAll();

  const Options& options() const { return options_; }
  int64_t memory_in_use() const MDJ_EXCLUDES(mu_);
  int threads_in_use() const MDJ_EXCLUDES(mu_);
  int queue_depth() const MDJ_EXCLUDES(mu_);

  /// Parses the `retry_after_ms=N` hint out of a shed status message;
  /// returns -1 when the status carries none.
  static int64_t RetryAfterHintMs(const Status& status);

 private:
  friend class AdmissionTicket;

  struct Waiter {
    std::string tenant;
    int64_t memory_bytes = 0;
    int threads = 0;
    bool admitted = false;
    int64_t queue_wait_ms = 0;  // filled at admission
    std::chrono::steady_clock::time_point enqueued{};
  };

  /// Releases a ticket's budget (RAII path).
  void Release(int64_t memory_bytes, int threads) MDJ_EXCLUDES(mu_);

  bool FitsLocked(int64_t memory_bytes, int threads) const MDJ_REQUIRES(mu_);

  /// Admits eligible queued waiters in fairness order until the head does
  /// not fit. Returns true if anyone was admitted (callers then NotifyAll).
  bool DrainQueueLocked() MDJ_REQUIRES(mu_);

  /// Removes `w` from its tenant queue (give-up paths: deadline, cancel).
  void RemoveWaiterLocked(Waiter* w) MDJ_REQUIRES(mu_);

  Waiter* HeadWaiterLocked() MDJ_REQUIRES(mu_);

  Status ShedQueueFull(int depth) const;

  const Options options_;
  MemoryReclaimer reclaimer_;  // set once, before concurrent use

  mutable Mutex mu_;
  CondVar wake_;
  int64_t memory_in_use_ MDJ_GUARDED_BY(mu_) = 0;
  int threads_in_use_ MDJ_GUARDED_BY(mu_) = 0;
  int num_waiters_ MDJ_GUARDED_BY(mu_) = 0;
  /// FIFO queue per tenant plus the round-robin order of tenants that have
  /// waiters; the "head" waiter is the front of round_robin_.front()'s queue.
  std::map<std::string, std::deque<Waiter*>> queues_ MDJ_GUARDED_BY(mu_);
  std::deque<std::string> round_robin_ MDJ_GUARDED_BY(mu_);
};

}  // namespace mdjoin

#endif  // MDJOIN_SERVER_ADMISSION_H_
