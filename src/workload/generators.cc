#include "workload/generators.h"

#include <cstdio>

#include "common/logging.h"
#include "common/random.h"
#include "table/table_builder.h"

namespace mdjoin {

std::string StateName(int index) {
  static const char* kNamed[] = {"NY", "NJ", "CT", "CA", "IL"};
  if (index < 5) return kNamed[index];
  char buf[16];
  std::snprintf(buf, sizeof(buf), "S%02d", index);
  return buf;
}

Table GenerateSales(const SalesConfig& config) {
  MDJ_CHECK(config.num_customers > 0 && config.num_products > 0);
  MDJ_CHECK(config.num_months >= 1 && config.num_months <= 12);
  MDJ_CHECK(config.first_year <= config.last_year);
  MDJ_CHECK(config.num_states >= 1);

  Random rng(config.seed);
  ZipfGenerator cust_zipf(static_cast<uint64_t>(config.num_customers), config.zipf_theta);
  ZipfGenerator prod_zipf(static_cast<uint64_t>(config.num_products), config.zipf_theta);

  std::vector<std::string> states;
  states.reserve(static_cast<size_t>(config.num_states));
  for (int i = 0; i < config.num_states; ++i) states.push_back(StateName(i));

  TableBuilder b({{"cust", DataType::kInt64},
                  {"prod", DataType::kInt64},
                  {"day", DataType::kInt64},
                  {"month", DataType::kInt64},
                  {"year", DataType::kInt64},
                  {"state", DataType::kString},
                  {"sale", DataType::kFloat64}});
  b.Reserve(config.num_rows);
  for (int64_t i = 0; i < config.num_rows; ++i) {
    int64_t cust = static_cast<int64_t>(cust_zipf.Next(&rng)) + 1;
    int64_t prod = static_cast<int64_t>(prod_zipf.Next(&rng)) + 1;
    int64_t day = rng.UniformInt(1, 28);
    int64_t month = rng.UniformInt(1, config.num_months);
    int64_t year = rng.UniformInt(config.first_year, config.last_year);
    const std::string& state = states[rng.Uniform(static_cast<uint64_t>(config.num_states))];
    double sale = rng.NextDouble() * config.max_sale;
    b.AppendRowOrDie({Value::Int64(cust), Value::Int64(prod), Value::Int64(day),
                      Value::Int64(month), Value::Int64(year), Value::String(state),
                      Value::Float64(sale)});
  }
  return std::move(b).Finish();
}

Table GeneratePayments(const PaymentsConfig& config) {
  MDJ_CHECK(config.num_customers > 0);
  MDJ_CHECK(config.num_months >= 1 && config.num_months <= 12);
  Random rng(config.seed);
  TableBuilder b({{"cust", DataType::kInt64},
                  {"day", DataType::kInt64},
                  {"month", DataType::kInt64},
                  {"year", DataType::kInt64},
                  {"amount", DataType::kFloat64}});
  b.Reserve(config.num_rows);
  for (int64_t i = 0; i < config.num_rows; ++i) {
    b.AppendRowOrDie({Value::Int64(rng.UniformInt(1, config.num_customers)),
                      Value::Int64(rng.UniformInt(1, 28)),
                      Value::Int64(rng.UniformInt(1, config.num_months)),
                      Value::Int64(rng.UniformInt(config.first_year, config.last_year)),
                      Value::Float64(rng.NextDouble() * config.max_amount)});
  }
  return std::move(b).Finish();
}

}  // namespace mdjoin
