#ifndef MDJOIN_WORKLOAD_GENERATORS_H_
#define MDJOIN_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "common/result.h"
#include "table/table.h"

namespace mdjoin {

/// Synthetic-data substitute for the paper's retail examples (it reports no
/// dataset; every experiment here depends only on cardinalities, match
/// selectivity and skew, which these knobs control). Dimension values can be
/// drawn uniformly or Zipf-skewed.
struct SalesConfig {
  int64_t num_rows = 100000;
  int64_t num_customers = 1000;
  int64_t num_products = 100;
  int num_months = 12;
  int first_year = 1994;
  int last_year = 1999;
  int num_states = 50;
  double zipf_theta = 0.0;  // 0 = uniform; ~1 = heavy skew on cust & prod
  double max_sale = 1000.0;
  uint64_t seed = 42;
};

/// Sales(cust:int64, prod:int64, day:int64, month:int64, year:int64,
///       state:string, sale:float64). States are "S00".."S49"-style codes
/// except the first five, which are NY/NJ/CT/CA/IL so the paper's literal
/// example queries run unchanged.
Table GenerateSales(const SalesConfig& config);

struct PaymentsConfig {
  int64_t num_rows = 50000;
  int64_t num_customers = 1000;
  int num_months = 12;
  int first_year = 1994;
  int last_year = 1999;
  double max_amount = 2000.0;
  uint64_t seed = 43;
};

/// Payments(cust:int64, day:int64, month:int64, year:int64, amount:float64)
/// — the second fact table of Example 3.3.
Table GeneratePayments(const PaymentsConfig& config);

/// The name a generated state code gets: index 0..4 are NY/NJ/CT/CA/IL, then
/// "S05", "S06", ...
std::string StateName(int index);

}  // namespace mdjoin

#endif  // MDJOIN_WORKLOAD_GENERATORS_H_
