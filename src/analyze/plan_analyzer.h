#ifndef MDJOIN_ANALYZE_PLAN_ANALYZER_H_
#define MDJOIN_ANALYZE_PLAN_ANALYZER_H_

#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze/range_analysis.h"
#include "expr/conjuncts.h"
#include "optimizer/plan.h"

namespace mdjoin {

/// Static verification pass over MD-join plans.
///
/// The §4 rewrite rules each rest on a legality condition — θ-conjuncts
/// classify a certain way, an attribute binds to a base column rather than a
/// generated aggregate, the aggregate list is distributive, the base relation
/// is duplicate-free. All of these are decidable from the plan tree alone,
/// without executing anything (the dynamic property tests remain as a
/// backstop, not as the definition of legality). This header is that
/// decision procedure, split into:
///
///  - AnalyzePlan: a whole-tree pass computing, per node, the resolved output
///    schema (full expression type check against the catalog), attribute
///    provenance (which base column or aggregate output each name binds to),
///    θ-conjunct classification, and structural distinctness evidence;
///  - Certify* functions: per-rule legality certificates the optimizer rules
///    consume instead of re-deriving their preconditions privately;
///  - AnalyzerDiagnostic: the structured "why is this plan illegal" record
///    surfaced by verify_plans mode and the negative tests.

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

enum class DiagSeverity {
  kError,    // plan is illegal; executing it may produce wrong tables
  kWarning,  // suspicious but executable (e.g. certificate absent)
};

const char* DiagSeverityToString(DiagSeverity severity);

/// One finding of the analyzer. `path` addresses the offending node from the
/// root by child index ("root", "root/0", "root/0/1", ...); `rule` names the
/// invariant or theorem whose precondition failed.
struct AnalyzerDiagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  std::string path;
  std::string rule;
  std::string message;

  /// "[error] Theorem 4.3 at root/0: ...".
  std::string ToString() const;

  /// The diagnostic as a Status (InvalidArgument) for error returns.
  Status ToStatus() const;
};

// ---------------------------------------------------------------------------
// θ-conjunct classification (extends expr/conjuncts with per-conjunct labels)
// ---------------------------------------------------------------------------

/// How one conjunct of θ participates in MD-join evaluation and rewriting.
enum class ConjunctClass {
  kEquiBound,   // (B-only expr) = (R-only expr): indexable, transfers σs
  kDetailOnly,  // references R only: Theorem 4.2 pushes it into σ(R)
  kBaseOnly,    // references B only: restricts base rows up front
  kConstant,    // no column references at all
  kResidual,    // mixed non-equi: evaluated per candidate pair
};

const char* ConjunctClassToString(ConjunctClass cls);

struct ClassifiedConjunct {
  ExprPtr expr;
  ConjunctClass cls;
};

/// Full classification of a θ-condition: the raw ThetaParts plus the
/// per-conjunct labels and the attribute sets the certificates reason about.
struct ThetaClassification {
  ThetaParts parts;
  std::vector<ClassifiedConjunct> conjuncts;
  std::set<std::string> base_columns;    // every B attribute θ references
  std::set<std::string> detail_columns;  // every R attribute θ references

  /// B attributes bound by a *plain-column* equi conjunct (B.x = <R expr>),
  /// with the R-side expression each one binds to. This is the substitution
  /// Observation 4.1 applies; computed-key equi conjuncts (B.x + 1 = R.y) do
  /// not contribute because they are not invertible substitutions.
  std::vector<std::pair<std::string, ExprPtr>> equi_bound;

  bool HasEquiBinding(const std::string& base_column) const;
};

/// Classifies `theta` (constant-folds first so literal-heavy conditions
/// classify cleanly). Never fails; unclassifiable conjuncts are kResidual.
ThetaClassification ClassifyTheta(const ExprPtr& theta);

// ---------------------------------------------------------------------------
// Attribute provenance
// ---------------------------------------------------------------------------

/// Where an output attribute of a plan node comes from.
enum class AttrOrigin {
  kBaseColumn,  // a column of a catalog table, passed through untouched
  kAggregate,   // output of an MD-join / GroupBy aggregate
  kComputed,    // projection expression (not a plain column passthrough)
  kRenamed,     // hash-join clash suffixing ("x" -> "x_r")
};

const char* AttrOriginToString(AttrOrigin origin);

/// Provenance of one field of a node's output schema. `producer` is the node
/// that introduced the attribute (the TableRef for base columns, the MD-join
/// or GroupBy for aggregates, the Project for computed columns); `detail`
/// renders the definition (e.g. "sales.cust" or "sum(R.sale)").
struct AttrProvenance {
  std::string name;
  AttrOrigin origin = AttrOrigin::kBaseColumn;
  const PlanNode* producer = nullptr;
  std::string detail;
};

// ---------------------------------------------------------------------------
// Per-node analysis
// ---------------------------------------------------------------------------

struct NodeAnalysis {
  const PlanNode* node = nullptr;
  std::string path;

  /// Resolved output schema; absent when this subtree failed to type-check
  /// (the failure is recorded as a diagnostic instead).
  std::optional<Schema> schema;

  /// One entry per schema field, parallel to schema->fields().
  std::vector<AttrProvenance> provenance;

  /// θ classification for kMdJoin (one entry) / kGeneralizedMdJoin (one per
  /// component); empty otherwise.
  std::vector<ThetaClassification> thetas;

  /// Structural duplicate-freedom evidence: true when this node's output
  /// rows are provably distinct from the plan shape alone (Distinct roots,
  /// cube base-values generators, GroupBy outputs, and shapes that preserve
  /// distinctness). `distinct_evidence` says why.
  bool rows_distinct = false;
  std::string distinct_evidence;

  /// Looks up the provenance of an output attribute by name.
  const AttrProvenance* FindProvenance(const std::string& name) const;
};

/// Whole-plan analysis result. `nodes` is in post-order (children before
/// parents); the last entry is the root.
struct PlanAnalysis {
  std::vector<NodeAnalysis> nodes;
  std::vector<AnalyzerDiagnostic> diagnostics;

  const NodeAnalysis* Find(const PlanNode* node) const;
  const NodeAnalysis& root() const { return nodes.back(); }

  /// True when no error-severity diagnostic was recorded.
  bool ok() const;

  /// OK when ok(); otherwise the first error diagnostic as a Status, with
  /// `context` prefixed and the total error count appended.
  Status ToStatus(const char* context) const;

  std::string DiagnosticsToString() const;
};

/// Runs the full pass. Only fails outright on a null plan or empty tree;
/// illegal plans come back as ok() == false with diagnostics. Side-effect
/// free: never executes any part of the plan.
Result<PlanAnalysis> AnalyzePlan(const PlanPtr& plan, const Catalog& catalog);

// ---------------------------------------------------------------------------
// Rewrite-legality certificates (consumed by optimizer/rules.cc)
// ---------------------------------------------------------------------------

/// Theorem 4.2 (selection pushdown): the R-only conjuncts of θ and the
/// remainder they leave behind. Absent (InvalidArgument) when the root is not
/// an MD-join or θ has no R-only conjunct.
struct PushdownCertificate {
  std::vector<ExprPtr> detail_only;  // σ-pushable conjuncts
  ThetaParts remainder;              // θ minus detail_only
  /// Detail-side range facts θ's interval analysis derives — the bounds the
  /// pushed σ (and, later, block zone maps) will enforce.
  std::vector<RangeFact> pushed_ranges;
};
Result<PushdownCertificate> CertifyDetailPushdown(const PlanPtr& plan);

/// Observation 4.1 (base-selection transfer): for MD(σ_c(B), R, l, θ), the
/// substitution mapping every B attribute that c references to the R-side
/// expression an equi conjunct of θ binds it to. Absent when the root shape
/// does not match or some referenced attribute is not equi-bound (the
/// diagnostic names it).
struct TransferCertificate {
  std::vector<std::pair<std::string, ExprPtr>> substitution;
  /// Facts derived *through* the equi conjuncts (RangeFact::from_transfer):
  /// the Observation-4.1 range predicates the transferred selection implies
  /// on the detail side.
  std::vector<RangeFact> transferred_ranges;
};
Result<TransferCertificate> CertifyEquiTransfer(const PlanPtr& plan);

/// Statically-unsatisfiable θ: the interval abstract interpretation proves no
/// (b, t) pair can satisfy the root MD-join's condition — every base row's
/// aggregates are over the empty multiset, so the detail child may be
/// replaced by an empty relation without scanning R. Absent when θ is (or may
/// be) satisfiable.
struct UnsatThetaCertificate {
  std::string reason;      // which column/conjunct is impossible
  RangeAnalysis analysis;  // full fact set, for EXPLAIN
};
Result<UnsatThetaCertificate> CertifyUnsatTheta(const PlanPtr& plan);

/// Theorem 4.3 (series fusion): dependency analysis over a chain of nested
/// MD-joins, innermost first. Component i's generation is one past the
/// highest generation whose aggregate outputs its θ or aggregate arguments
/// reference; same-generation components are mutually θ-independent and may
/// fuse when they share a detail relation.
struct ChainDependencyCertificate {
  std::vector<int> generation;                    // per chain element
  std::vector<std::set<std::string>> outputs;     // aggregate outputs per element
  std::vector<std::set<std::string>> base_refs;   // base-side refs per element
};
ChainDependencyCertificate CertifyChainDependencies(
    const std::vector<PlanPtr>& chain_innermost_first);

/// Theorem 4.3 (commute) / Theorem 4.4 (split): θ-independence of the outer
/// MD-join from the inner one's generated columns. Verifies that every
/// base-side attribute the outer θ and aggregate arguments reference resolves
/// to a column of the *inner base's* schema — i.e. provenance is a base
/// column, not an aggregate output of the inner MD-join. `rule` labels the
/// diagnostic.
Status CertifyOuterIndependence(const PlanPtr& plan, const Catalog& catalog,
                                const char* rule);

/// Theorem 4.4 (split): structural evidence that `base_plan`'s rows are
/// distinct. Derived bottom-up: Distinct nodes, cube base-values generators
/// (CubeBase / CuboidBase emit one row per value combination), GroupBy (one
/// row per key), and distinctness-preserving shapes above them (Filter, Sort,
/// Partition, MD-joins extending a distinct base). Absent (InvalidArgument,
/// naming the node that breaks the chain) when no evidence exists — the rule
/// refuses rather than trusting callers.
struct DistinctnessCertificate {
  std::string evidence;  // human-readable derivation, e.g. "Distinct at root/0"
};
Result<DistinctnessCertificate> CertifyBaseDistinct(const PlanPtr& base_plan);

/// Theorem 4.5 (roll-up): l is distributive and θ is exactly the
/// dimension-equality condition of the base child's cuboid. Requires root
/// MD-join over a CuboidBase child.
struct RollupCertificate {
  std::vector<std::string> dims;  // the cuboid's dimensions, for convenience
};
Result<RollupCertificate> CertifyRollup(const PlanPtr& plan);

}  // namespace mdjoin

#endif  // MDJOIN_ANALYZE_PLAN_ANALYZER_H_
