#include "analyze/plan_invariants.h"

#include <cstdlib>

namespace mdjoin {

std::vector<AnalyzerDiagnostic> CheckPlanInvariants(const PlanPtr& plan,
                                                    const Catalog& catalog) {
  if (plan == nullptr) {
    return {{DiagSeverity::kError, "root", "invariant", "plan is null"}};
  }
  Result<PlanAnalysis> analysis = AnalyzePlan(plan, catalog);
  if (!analysis.ok()) {
    return {{DiagSeverity::kError, "root", "invariant", analysis.status().message()}};
  }
  return std::move(*analysis).diagnostics;
}

Status VerifyPlan(const PlanPtr& plan, const Catalog& catalog, const char* context) {
  std::vector<AnalyzerDiagnostic> diags = CheckPlanInvariants(plan, catalog);
  int errors = 0;
  const AnalyzerDiagnostic* first = nullptr;
  for (const AnalyzerDiagnostic& d : diags) {
    if (d.severity != DiagSeverity::kError) continue;
    if (first == nullptr) first = &d;
    ++errors;
  }
  if (first == nullptr) return Status::OK();
  return Status::InvalidArgument("plan verification failed in ", context, ": ",
                                 first->ToString(), " (", errors,
                                 " error diagnostic", errors == 1 ? "" : "s", ")");
}

bool VerifyPlansEnabledByEnv() {
  static const bool enabled = [] {
    const char* v = std::getenv("MDJOIN_VERIFY_PLANS");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

}  // namespace mdjoin
