#include "analyze/plan_invariants.h"

#include <cstdlib>

#include "expr/bytecode.h"
#include "expr/verifier.h"

namespace mdjoin {

std::vector<AnalyzerDiagnostic> CheckPlanInvariants(const PlanPtr& plan,
                                                    const Catalog& catalog) {
  if (plan == nullptr) {
    return {{DiagSeverity::kError, "root", "invariant", "plan is null"}};
  }
  Result<PlanAnalysis> analysis = AnalyzePlan(plan, catalog);
  if (!analysis.ok()) {
    return {{DiagSeverity::kError, "root", "invariant", analysis.status().message()}};
  }
  return std::move(*analysis).diagnostics;
}

Status VerifyPlan(const PlanPtr& plan, const Catalog& catalog, const char* context) {
  std::vector<AnalyzerDiagnostic> diags = CheckPlanInvariants(plan, catalog);
  int errors = 0;
  const AnalyzerDiagnostic* first = nullptr;
  for (const AnalyzerDiagnostic& d : diags) {
    if (d.severity != DiagSeverity::kError) continue;
    if (first == nullptr) first = &d;
    ++errors;
  }
  if (first == nullptr) return Status::OK();
  return Status::InvalidArgument("plan verification failed in ", context, ": ",
                                 first->ToString(), " (", errors,
                                 " error diagnostic", errors == 1 ? "" : "s", ")");
}

namespace {

/// One θ's worth of report lines: verifier verdict + range facts.
void ReportTheta(const std::string& path, const ExprPtr& theta,
                 const Schema* base_schema, const Schema* detail_schema,
                 std::vector<std::string>* out) {
  if (theta == nullptr) return;
  // Verifier verdict. θ may fail to lower (e.g. unsupported node kinds fall
  // back to the closure tree) — that is a report line, not an error.
  Result<BytecodeExpr> bc = BytecodeExpr::Compile(theta, base_schema, detail_schema);
  if (bc.ok()) {
    VerifierReport report = VerifyBytecode(*bc, base_schema, detail_schema);
    out->push_back(path + ": θ bytecode " + report.ToString());
  } else {
    out->push_back(path + ": θ not lowered to bytecode (" +
                   bc.status().message() + ")");
  }
  // Interval abstract interpretation.
  RangeAnalysis ranges = AnalyzeRanges(theta);
  if (!ranges.satisfiable) {
    out->push_back(path + ": θ UNSATISFIABLE — " + ranges.unsat_reason);
  }
  for (const RangeFact& f : ranges.facts) {
    out->push_back(path + ": range " + f.ToString());
  }
  for (const ZoneMapPredicate& z : ranges.zone_predicates) {
    out->push_back(path + ": zone-map " + z.ToString());
  }
}

void ReportNode(const PlanPtr& plan, const Catalog& catalog,
                const std::string& path, std::vector<std::string>* out) {
  if (plan == nullptr) return;
  if (plan->kind() == PlanKind::kMdJoin ||
      plan->kind() == PlanKind::kGeneralizedMdJoin) {
    // Schemas are needed to lower θ; an un-inferable child degrades the
    // verifier line to "not lowered" rather than failing the report.
    Result<Schema> base_schema = InferSchema(plan->child(0), catalog);
    Result<Schema> detail_schema = InferSchema(plan->child(1), catalog);
    const Schema* bs = base_schema.ok() ? &*base_schema : nullptr;
    const Schema* ds = detail_schema.ok() ? &*detail_schema : nullptr;
    if (plan->kind() == PlanKind::kMdJoin) {
      ReportTheta(path, plan->theta, bs, ds, out);
    } else {
      for (size_t i = 0; i < plan->components.size(); ++i) {
        ReportTheta(path + "#" + std::to_string(i), plan->components[i].theta, bs,
                    ds, out);
      }
    }
  }
  for (size_t i = 0; i < plan->children().size(); ++i) {
    ReportNode(plan->child(i), catalog, path + "/" + std::to_string(i), out);
  }
}

}  // namespace

std::vector<std::string> StaticAnalysisReport(const PlanPtr& plan,
                                              const Catalog& catalog) {
  std::vector<std::string> out;
  ReportNode(plan, catalog, "root", &out);
  return out;
}

bool VerifyPlansEnabledByEnv() {
  static const bool enabled = [] {
    const char* v = std::getenv("MDJOIN_VERIFY_PLANS");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

}  // namespace mdjoin
