#ifndef MDJOIN_ANALYZE_PLAN_INVARIANTS_H_
#define MDJOIN_ANALYZE_PLAN_INVARIANTS_H_

#include <string>
#include <vector>

#include "analyze/plan_analyzer.h"

namespace mdjoin {

/// Debug invariant mode: the full analyzer run as a pass/fail gate.
///
/// In verify_plans mode (MdJoinOptions::verify_plans,
/// OptimizeOptions::verify_plans, or the MDJOIN_VERIFY_PLANS environment
/// variable) the optimizer re-checks the plan after every accepted rule
/// application and the executor re-checks at query entry, so an illegal
/// rewrite fails fast with a structured AnalyzerDiagnostic instead of
/// producing a wrong table.

/// Runs AnalyzePlan and returns every diagnostic (empty = clean). Never
/// executes the plan. A null plan yields a single error diagnostic rather
/// than a crash, so callers can gate unconditionally.
std::vector<AnalyzerDiagnostic> CheckPlanInvariants(const PlanPtr& plan,
                                                    const Catalog& catalog);

/// CheckPlanInvariants as a gate: OK when clean, otherwise InvalidArgument
/// carrying the first error diagnostic, the error count, and `context`
/// (typically the rule that produced the plan, or "ExecutePlan").
Status VerifyPlan(const PlanPtr& plan, const Catalog& catalog, const char* context);

/// True when MDJOIN_VERIFY_PLANS is set in the environment to anything but
/// "" or "0". Read once and cached (the gate sits on hot driver paths).
bool VerifyPlansEnabledByEnv();

/// The "static analysis" section of EXPLAIN / EXPLAIN ANALYZE: one line per
/// finding, covering every MD-join node of the plan —
///   - the θ-bytecode verifier verdict (expr/verifier.h): instruction count
///     and proven maximum stack depth, or the structured rejection;
///   - the interval abstract interpretation's derived range facts
///     (analyze/range_analysis.h), including transfer facts and zone-map
///     predicates;
///   - an "unsatisfiable" proof line when the analysis refutes θ outright.
/// Never executes the plan; analysis failures become report lines, not
/// errors, so EXPLAIN stays total.
std::vector<std::string> StaticAnalysisReport(const PlanPtr& plan,
                                              const Catalog& catalog);

}  // namespace mdjoin

#endif  // MDJOIN_ANALYZE_PLAN_INVARIANTS_H_
