#include "analyze/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace mdjoin {

bool IsReservedKeyword(const std::string& lower) {
  static const char* kKeywords[] = {
      "select", "from",   "where", "analyze",       "by",   "such",  "that",
      "as",     "and",    "or",    "not",           "in",   "between", "is",
      "null",   "all",    "group", "cube",          "rollup", "unpivot",
      "grouping_sets",    "table", "having", "order", "asc", "desc",
      "case", "when", "then", "else", "end",
  };
  for (const char* kw : kKeywords) {
    if (lower == kw) return true;
  }
  return false;
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string lower = ToLower(word);
      if (IsReservedKeyword(lower)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = std::move(lower);
      } else {
        tok.kind = TokenKind::kIdent;
        tok.text = std::move(word);
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i + 1 < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      std::string num = input.substr(start, i - start);
      if (is_float) {
        tok.kind = TokenKind::kFloatLiteral;
        tok.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kIntLiteral;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      tok.text = std::move(num);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // '' escape
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += input[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset ",
                                  tok.position);
      }
      tok.kind = TokenKind::kStringLiteral;
      tok.text = std::move(text);
      out.push_back(std::move(tok));
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      std::string two = input.substr(i, 2);
      if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
        tok.kind = TokenKind::kSymbol;
        tok.text = two == "!=" ? "<>" : two;
        out.push_back(std::move(tok));
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = "(),;:.*=<>+-/%";
    if (kSingles.find(c) != std::string::npos) {
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(1, c);
      out.push_back(std::move(tok));
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '", std::string(1, c),
                              "' at offset ", i);
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = static_cast<int>(n);
  out.push_back(std::move(end));
  return out;
}

}  // namespace mdjoin
