#ifndef MDJOIN_ANALYZE_BINDER_H_
#define MDJOIN_ANALYZE_BINDER_H_

#include <string>
#include <vector>

#include "analyze/ast.h"
#include "common/result.h"
#include "optimizer/plan.h"

namespace mdjoin {
namespace analyze {

/// A bound query: an executable plan plus the user-visible output columns in
/// SELECT order (the plan's final projection).
struct BoundQuery {
  PlanPtr plan;
  std::vector<std::string> output_columns;
};

/// Lowers a parsed ANALYZE BY query to plan IR:
///  - the generator becomes the base-values subplan (distinct / CubeBase /
///    unions of CuboidBase / a catalog table);
///  - each grouping variable becomes one MD-join over the detail relation,
///    its SUCH THAT condition the θ (unqualified names resolve to base
///    attributes, `X.col` to the detail tuple);
///  - aggregate calls over a variable attach to that variable's MD-join;
///    aggregate calls inside a later variable's condition (e.g.
///    `avg(X.sale)`) become hidden output columns of the earlier MD-join,
///    giving the multi-pass dependency chains of Example 2.5;
///  - a final projection returns the SELECT list.
///
/// The emitted chain of MD-joins is deliberately unfused; run
/// FuseMdJoinSeries (Theorem 4.3) on `plan` to collapse independent
/// variables into generalized MD-joins.
Result<BoundQuery> BindQuery(const Query& query, const Catalog& catalog);

/// Convenience: parse + bind.
Result<BoundQuery> BindQueryString(const std::string& sql, const Catalog& catalog);

/// Parse + bind the EMF-SQL dialect (ParseEmfQuery).
Result<BoundQuery> BindEmfQueryString(const std::string& sql, const Catalog& catalog);

}  // namespace analyze
}  // namespace mdjoin

#endif  // MDJOIN_ANALYZE_BINDER_H_
