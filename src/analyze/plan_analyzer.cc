#include "analyze/plan_analyzer.h"

#include <algorithm>

#include "agg/agg_spec.h"
#include "expr/compile.h"

namespace mdjoin {

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

const char* DiagSeverityToString(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
  }
  return "?";
}

std::string AnalyzerDiagnostic::ToString() const {
  return std::string("[") + DiagSeverityToString(severity) + "] " + rule + " at " +
         path + ": " + message;
}

Status AnalyzerDiagnostic::ToStatus() const {
  return Status::InvalidArgument(ToString());
}

// ---------------------------------------------------------------------------
// θ-conjunct classification
// ---------------------------------------------------------------------------

const char* ConjunctClassToString(ConjunctClass cls) {
  switch (cls) {
    case ConjunctClass::kEquiBound:
      return "equi-bound";
    case ConjunctClass::kDetailOnly:
      return "R-only";
    case ConjunctClass::kBaseOnly:
      return "B-only";
    case ConjunctClass::kConstant:
      return "constant";
    case ConjunctClass::kResidual:
      return "mixed";
  }
  return "?";
}

namespace {

ConjunctClass ClassifyOne(const ExprPtr& c) {
  const bool uses_base = c->ReferencesSide(Side::kBase);
  const bool uses_detail = c->ReferencesSide(Side::kDetail);
  if (!uses_base && !uses_detail) return ConjunctClass::kConstant;
  if (!uses_base) return ConjunctClass::kDetailOnly;
  if (!uses_detail) return ConjunctClass::kBaseOnly;
  if (c->kind() == ExprKind::kBinary && c->binary_op() == BinaryOp::kEq) {
    const ExprPtr& l = c->left();
    const ExprPtr& r = c->right();
    const bool l_base = l->ReferencesSide(Side::kBase);
    const bool l_detail = l->ReferencesSide(Side::kDetail);
    const bool r_base = r->ReferencesSide(Side::kBase);
    const bool r_detail = r->ReferencesSide(Side::kDetail);
    if ((l_base && !l_detail && r_detail && !r_base) ||
        (r_base && !r_detail && l_detail && !l_base)) {
      return ConjunctClass::kEquiBound;
    }
  }
  return ConjunctClass::kResidual;
}

}  // namespace

bool ThetaClassification::HasEquiBinding(const std::string& base_column) const {
  for (const auto& [name, expr] : equi_bound) {
    if (name == base_column) return true;
  }
  return false;
}

ThetaClassification ClassifyTheta(const ExprPtr& theta) {
  ThetaClassification out;
  ExprPtr folded = FoldConstants(theta);
  out.parts = AnalyzeTheta(folded);
  for (const ExprPtr& c : SplitConjuncts(folded)) {
    out.conjuncts.push_back({c, ClassifyOne(c)});
  }
  if (theta != nullptr) {
    out.base_columns = theta->ReferencedColumns(Side::kBase);
    out.detail_columns = theta->ReferencedColumns(Side::kDetail);
  }
  for (const EquiPair& p : out.parts.equi) {
    if (p.base_expr->kind() == ExprKind::kColumnRef) {
      out.equi_bound.emplace_back(p.base_expr->column_name(), p.detail_expr);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

const char* AttrOriginToString(AttrOrigin origin) {
  switch (origin) {
    case AttrOrigin::kBaseColumn:
      return "base column";
    case AttrOrigin::kAggregate:
      return "aggregate output";
    case AttrOrigin::kComputed:
      return "computed";
    case AttrOrigin::kRenamed:
      return "renamed";
  }
  return "?";
}

const AttrProvenance* NodeAnalysis::FindProvenance(const std::string& name) const {
  for (const AttrProvenance& p : provenance) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// PlanAnalysis
// ---------------------------------------------------------------------------

const NodeAnalysis* PlanAnalysis::Find(const PlanNode* node) const {
  for (const NodeAnalysis& n : nodes) {
    if (n.node == node) return &n;
  }
  return nullptr;
}

bool PlanAnalysis::ok() const {
  for (const AnalyzerDiagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::kError) return false;
  }
  return true;
}

Status PlanAnalysis::ToStatus(const char* context) const {
  int errors = 0;
  const AnalyzerDiagnostic* first = nullptr;
  for (const AnalyzerDiagnostic& d : diagnostics) {
    if (d.severity != DiagSeverity::kError) continue;
    if (first == nullptr) first = &d;
    ++errors;
  }
  if (first == nullptr) return Status::OK();
  return Status::InvalidArgument(context, ": ", first->ToString(), " (", errors,
                                 " error diagnostic", errors == 1 ? "" : "s", ")");
}

std::string PlanAnalysis::DiagnosticsToString() const {
  std::string out;
  for (const AnalyzerDiagnostic& d : diagnostics) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// The whole-tree pass
// ---------------------------------------------------------------------------

namespace {

/// Recursive analyzer. Children are analyzed before their parent; a node
/// whose child failed to resolve a schema records no schema itself and emits
/// no secondary diagnostics (one root cause, no cascade).
class Analyzer {
 public:
  explicit Analyzer(const Catalog& catalog) : catalog_(catalog) {}

  PlanAnalysis Take() && { return std::move(analysis_); }

  /// Returns the index of the node's NodeAnalysis in analysis_.nodes.
  size_t Visit(const PlanPtr& plan, const std::string& path) {
    std::vector<size_t> child_idx;
    child_idx.reserve(plan->children().size());
    for (size_t i = 0; i < plan->children().size(); ++i) {
      child_idx.push_back(Visit(plan->children()[i], path + "/" + std::to_string(i)));
    }
    NodeAnalysis n;
    n.node = plan.get();
    n.path = path;
    AnalyzeNode(plan, child_idx, &n);
    analysis_.nodes.push_back(std::move(n));
    return analysis_.nodes.size() - 1;
  }

 private:
  const NodeAnalysis& Child(const std::vector<size_t>& idx, size_t i) const {
    return analysis_.nodes[idx[i]];
  }

  void Diag(const NodeAnalysis& n, const char* rule, std::string message,
            DiagSeverity severity = DiagSeverity::kError) {
    analysis_.diagnostics.push_back({severity, n.path, rule, std::move(message)});
  }

  /// True when every child resolved a schema; otherwise the parent stays
  /// schema-less without further noise.
  bool ChildrenResolved(const std::vector<size_t>& idx) const {
    for (size_t i : idx) {
      if (!analysis_.nodes[i].schema.has_value()) return false;
    }
    return true;
  }

  void InheritChild(const NodeAnalysis& child, NodeAnalysis* n) {
    n->schema = child.schema;
    n->provenance = child.provenance;
    n->rows_distinct = child.rows_distinct;
    n->distinct_evidence = child.distinct_evidence;
  }

  void AnalyzeNode(const PlanPtr& plan, const std::vector<size_t>& child_idx,
                   NodeAnalysis* n) {
    // Child-count sanity first: the factories enforce these, but the analyzer
    // must not crash on a hand-built tree.
    const size_t kids = plan->children().size();
    const auto expect = [&](size_t want) {
      if (kids == want) return true;
      Diag(*n, "invariant", std::string(PlanKindToString(plan->kind())) +
                                " has " + std::to_string(kids) + " children, expected " +
                                std::to_string(want));
      return false;
    };
    switch (plan->kind()) {
      case PlanKind::kTableRef: {
        if (!expect(0)) return;
        Result<const Schema*> s = catalog_.LookupSchema(plan->table_name);
        if (!s.ok()) {
          Diag(*n, "invariant", "unbound table: " + s.status().message());
          return;
        }
        n->schema = **s;
        for (const Field& f : n->schema->fields()) {
          n->provenance.push_back({f.name, AttrOrigin::kBaseColumn, plan.get(),
                                   plan->table_name + "." + f.name});
        }
        return;
      }
      case PlanKind::kFilter: {
        if (!expect(1) || !ChildrenResolved(child_idx)) return;
        const NodeAnalysis& child = Child(child_idx, 0);
        if (plan->predicate == nullptr) {
          Diag(*n, "invariant", "Filter has no predicate");
          return;
        }
        Result<CompiledExpr> c = CompileExpr(plan->predicate, *child.schema);
        if (!c.ok()) {
          Diag(*n, "type check", "predicate does not compile: " + c.status().message());
          return;
        }
        InheritChild(child, n);
        return;
      }
      case PlanKind::kProject: {
        if (!expect(1) || !ChildrenResolved(child_idx)) return;
        const NodeAnalysis& child = Child(child_idx, 0);
        Schema out;
        for (const ProjectItem& item : plan->projections) {
          Result<CompiledExpr> c = CompileExpr(item.expr, *child.schema);
          if (!c.ok()) {
            Diag(*n, "type check", "projection '" + item.name +
                                       "' does not compile: " + c.status().message());
            return;
          }
          Status added = out.AddField({item.name, c->result_type()});
          if (!added.ok()) {
            Diag(*n, "invariant", "duplicate projection name: " + added.message());
            return;
          }
          // Plain column passthroughs keep their provenance; everything else
          // is a computed attribute introduced here.
          const AttrProvenance* src =
              item.expr->kind() == ExprKind::kColumnRef
                  ? child.FindProvenance(item.expr->column_name())
                  : nullptr;
          if (src != nullptr) {
            AttrProvenance p = *src;
            p.name = item.name;
            n->provenance.push_back(std::move(p));
          } else {
            n->provenance.push_back(
                {item.name, AttrOrigin::kComputed, plan.get(), item.expr->ToString()});
          }
        }
        n->schema = std::move(out);
        return;
      }
      case PlanKind::kDistinct: {
        if (!expect(1) || !ChildrenResolved(child_idx)) return;
        InheritChild(Child(child_idx, 0), n);
        n->rows_distinct = true;
        n->distinct_evidence = "Distinct at " + n->path;
        return;
      }
      case PlanKind::kUnion: {
        if (kids == 0) {
          Diag(*n, "invariant", "Union has no children");
          return;
        }
        if (!ChildrenResolved(child_idx)) return;
        const NodeAnalysis& first = Child(child_idx, 0);
        for (size_t i = 1; i < kids; ++i) {
          const NodeAnalysis& other = Child(child_idx, i);
          if (!other.schema->Equals(*first.schema)) {
            Diag(*n, "type check",
                 "Union children have mismatched schemas: [" +
                     first.schema->ToString() + "] vs [" + other.schema->ToString() +
                     "] at " + other.path);
            return;
          }
        }
        n->schema = first.schema;
        n->provenance = first.provenance;
        return;
      }
      case PlanKind::kPartition: {
        if (!expect(1) || !ChildrenResolved(child_idx)) return;
        if (plan->partition_count < 1 || plan->partition_index < 0 ||
            plan->partition_index >= plan->partition_count) {
          Diag(*n, "invariant",
               "partition slice " + std::to_string(plan->partition_index) + "/" +
                   std::to_string(plan->partition_count) + " out of range");
          return;
        }
        InheritChild(Child(child_idx, 0), n);
        return;
      }
      case PlanKind::kSort: {
        if (!expect(1) || !ChildrenResolved(child_idx)) return;
        const NodeAnalysis& child = Child(child_idx, 0);
        if (plan->sort_ascending.size() != plan->sort_columns.size()) {
          Diag(*n, "invariant", "sort direction list is not parallel to columns");
          return;
        }
        for (const std::string& c : plan->sort_columns) {
          if (!child.schema->FindField(c)) {
            Diag(*n, "type check", "sort column '" + c + "' is not in the input");
            return;
          }
        }
        InheritChild(child, n);
        return;
      }
      case PlanKind::kHashJoin: {
        if (!expect(2) || !ChildrenResolved(child_idx)) return;
        const NodeAnalysis& left = Child(child_idx, 0);
        const NodeAnalysis& right = Child(child_idx, 1);
        if (plan->left_keys.size() != plan->right_keys.size() ||
            plan->left_keys.empty()) {
          Diag(*n, "invariant", "join key lists are empty or not parallel");
          return;
        }
        for (size_t i = 0; i < plan->left_keys.size(); ++i) {
          Result<int> li = left.schema->GetFieldIndex(plan->left_keys[i]);
          Result<int> ri = right.schema->GetFieldIndex(plan->right_keys[i]);
          if (!li.ok() || !ri.ok()) {
            Diag(*n, "type check",
                 "join key '" + plan->left_keys[i] + "'='" + plan->right_keys[i] +
                     "' does not resolve on both sides");
            return;
          }
          if (left.schema->field(*li).type != right.schema->field(*ri).type) {
            Diag(*n, "type check",
                 "join key type mismatch on '" + plan->left_keys[i] + "'");
            return;
          }
        }
        // Mirror ra::HashJoin's output: left columns, then right non-key
        // columns with "_r" suffixing on clashes.
        Schema out = *left.schema;
        n->provenance = left.provenance;
        for (int i = 0; i < right.schema->num_fields(); ++i) {
          const Field& f = right.schema->field(i);
          bool is_key = false;
          for (const std::string& k : plan->right_keys) is_key = is_key || k == f.name;
          if (is_key) continue;
          Field renamed = f;
          while (out.FindField(renamed.name)) renamed.name += "_r";
          AttrProvenance p = right.provenance[static_cast<size_t>(i)];
          if (renamed.name != f.name) {
            p = {renamed.name, AttrOrigin::kRenamed, plan.get(),
                 "join rename of " + f.name};
          }
          n->provenance.push_back(std::move(p));
          (void)out.AddField(std::move(renamed));
        }
        n->schema = std::move(out);
        return;
      }
      case PlanKind::kGroupBy: {
        if (!expect(1) || !ChildrenResolved(child_idx)) return;
        const NodeAnalysis& child = Child(child_idx, 0);
        Schema out;
        for (const std::string& g : plan->group_columns) {
          Result<int> idx = child.schema->GetFieldIndex(g);
          if (!idx.ok()) {
            Diag(*n, "type check", "group column '" + g + "' is not in the input");
            return;
          }
          (void)out.AddField(child.schema->field(*idx));
          const AttrProvenance* src = child.FindProvenance(g);
          n->provenance.push_back(src != nullptr
                                      ? *src
                                      : AttrProvenance{g, AttrOrigin::kBaseColumn,
                                                       plan.get(), g});
        }
        Result<std::vector<BoundAgg>> bound =
            BindAggs(plan->aggs, nullptr, &*child.schema);
        if (!bound.ok()) {
          Diag(*n, "type check", "aggregate list does not bind: " +
                                     bound.status().message());
          return;
        }
        for (size_t i = 0; i < bound->size(); ++i) {
          Status added = out.AddField((*bound)[i].output_field);
          if (!added.ok()) {
            Diag(*n, "invariant", "duplicate aggregate output: " + added.message());
            return;
          }
          n->provenance.push_back({(*bound)[i].output_field.name,
                                   AttrOrigin::kAggregate, plan.get(),
                                   plan->aggs[i].ToString()});
        }
        n->schema = std::move(out);
        n->rows_distinct = true;
        n->distinct_evidence = "GroupBy emits one row per key at " + n->path;
        return;
      }
      case PlanKind::kMdJoin: {
        if (!expect(2) || !ChildrenResolved(child_idx)) return;
        const NodeAnalysis& base = Child(child_idx, 0);
        const NodeAnalysis& detail = Child(child_idx, 1);
        if (plan->theta == nullptr) {
          Diag(*n, "invariant", "MD-join has no θ-condition");
          return;
        }
        if (!AnalyzeComponent(plan, plan->aggs, plan->theta, base, detail, n)) return;
        n->rows_distinct = base.rows_distinct;
        if (base.rows_distinct) {
          n->distinct_evidence =
              "MD-join extends distinct base rows (" + base.distinct_evidence + ")";
        }
        return;
      }
      case PlanKind::kGeneralizedMdJoin: {
        if (!expect(2) || !ChildrenResolved(child_idx)) return;
        const NodeAnalysis& base = Child(child_idx, 0);
        const NodeAnalysis& detail = Child(child_idx, 1);
        if (plan->components.empty()) {
          Diag(*n, "invariant", "generalized MD-join has no components");
          return;
        }
        bool ok = true;
        for (const MdJoinComponent& comp : plan->components) {
          if (comp.theta == nullptr) {
            Diag(*n, "invariant", "generalized MD-join component has no θ-condition");
            return;
          }
          ok = ok && AnalyzeComponent(plan, comp.aggs, comp.theta, base, detail, n);
        }
        if (!ok) return;
        n->rows_distinct = base.rows_distinct;
        if (base.rows_distinct) {
          n->distinct_evidence =
              "MD-join extends distinct base rows (" + base.distinct_evidence + ")";
        }
        return;
      }
      case PlanKind::kCubeBase:
      case PlanKind::kCuboidBase: {
        if (!expect(1) || !ChildrenResolved(child_idx)) return;
        const NodeAnalysis& child = Child(child_idx, 0);
        if (plan->cube_dims.empty()) {
          Diag(*n, "invariant", "cube base-values generator has no dimensions");
          return;
        }
        if (plan->kind() == PlanKind::kCuboidBase &&
            plan->cuboid_mask >= (CuboidMask{1} << plan->cube_dims.size())) {
          Diag(*n, "invariant", "cuboid mask has bits beyond the dimension list");
          return;
        }
        Schema out;
        for (const std::string& d : plan->cube_dims) {
          Result<int> idx = child.schema->GetFieldIndex(d);
          if (!idx.ok()) {
            Diag(*n, "type check", "cube dimension '" + d + "' is not in the input");
            return;
          }
          Status added = out.AddField(child.schema->field(*idx));
          if (!added.ok()) {
            Diag(*n, "invariant", "duplicate cube dimension: " + added.message());
            return;
          }
          const AttrProvenance* src = child.FindProvenance(d);
          n->provenance.push_back(src != nullptr
                                      ? *src
                                      : AttrProvenance{d, AttrOrigin::kBaseColumn,
                                                       plan.get(), d});
        }
        n->schema = std::move(out);
        n->rows_distinct = true;
        n->distinct_evidence = std::string(PlanKindToString(plan->kind())) +
                               " generator emits distinct value combinations at " +
                               n->path;
        return;
      }
      case PlanKind::kEmptyRef: {
        if (!expect(0)) return;
        if (plan->empty_schema == nullptr) {
          Diag(*n, "invariant", "EmptyRef carries no schema");
          return;
        }
        n->schema = *plan->empty_schema;
        for (const Field& f : n->schema->fields()) {
          n->provenance.push_back(
              {f.name, AttrOrigin::kBaseColumn, plan.get(), "(empty)." + f.name});
        }
        n->rows_distinct = true;  // zero rows are trivially duplicate-free
        n->distinct_evidence = "empty relation at " + n->path;
        return;
      }
    }
    Diag(*n, "invariant", "unknown plan kind");
  }

  /// Type-checks one (aggs, θ) component against (base, detail) and extends
  /// the node's schema/provenance/θ-classifications. Shared by kMdJoin and
  /// kGeneralizedMdJoin (which calls it once per component, accumulating).
  bool AnalyzeComponent(const PlanPtr& plan, const std::vector<AggSpec>& aggs,
                        const ExprPtr& theta, const NodeAnalysis& base,
                        const NodeAnalysis& detail, NodeAnalysis* n) {
    if (!n->schema.has_value()) {
      n->schema = base.schema;
      n->provenance = base.provenance;
    }
    Result<CompiledExpr> c = CompileExpr(theta, &*base.schema, &*detail.schema);
    if (!c.ok()) {
      Diag(*n, "type check", "θ does not compile: " + c.status().message());
      n->schema.reset();
      return false;
    }
    Result<std::vector<BoundAgg>> bound =
        BindAggs(aggs, &*base.schema, &*detail.schema);
    if (!bound.ok()) {
      Diag(*n, "type check",
           "aggregate list does not bind: " + bound.status().message());
      n->schema.reset();
      return false;
    }
    for (size_t i = 0; i < bound->size(); ++i) {
      Status added = n->schema->AddField((*bound)[i].output_field);
      if (!added.ok()) {
        Diag(*n, "invariant", "duplicate aggregate output: " + added.message());
        n->schema.reset();
        return false;
      }
      n->provenance.push_back({(*bound)[i].output_field.name, AttrOrigin::kAggregate,
                               plan.get(), aggs[i].ToString()});
    }
    n->thetas.push_back(ClassifyTheta(theta));
    return true;
  }

  const Catalog& catalog_;
  PlanAnalysis analysis_;
};

}  // namespace

Result<PlanAnalysis> AnalyzePlan(const PlanPtr& plan, const Catalog& catalog) {
  if (plan == nullptr) return Status::InvalidArgument("AnalyzePlan: null plan");
  Analyzer analyzer(catalog);
  analyzer.Visit(plan, "root");
  return std::move(analyzer).Take();
}

// ---------------------------------------------------------------------------
// Certificates
// ---------------------------------------------------------------------------

namespace {

Status NotCertified(const char* rule, const std::string& path, std::string why) {
  return AnalyzerDiagnostic{DiagSeverity::kError, path, rule, std::move(why)}
      .ToStatus();
}

}  // namespace

Result<PushdownCertificate> CertifyDetailPushdown(const PlanPtr& plan) {
  if (plan->kind() != PlanKind::kMdJoin) {
    return NotCertified("Theorem 4.2", "root", "root is not an MD-join");
  }
  ThetaClassification cls = ClassifyTheta(plan->theta);
  if (cls.parts.detail_only.empty()) {
    return NotCertified("Theorem 4.2", "root", "θ has no R-only conjuncts");
  }
  PushdownCertificate cert;
  cert.detail_only = cls.parts.detail_only;
  cert.remainder = cls.parts;
  cert.remainder.detail_only.clear();
  // Attach the detail-side interval facts the pushed σ enforces; zone maps
  // and scan short-circuits consume these downstream.
  RangeAnalysis ranges = AnalyzeRanges(plan->theta);
  for (const RangeFact& f : ranges.facts) {
    if (f.side == Side::kDetail) cert.pushed_ranges.push_back(f);
  }
  return cert;
}

Result<TransferCertificate> CertifyEquiTransfer(const PlanPtr& plan) {
  if (plan->kind() != PlanKind::kMdJoin) {
    return NotCertified("Observation 4.1", "root", "root is not an MD-join");
  }
  const PlanPtr& base = plan->child(0);
  if (base->kind() != PlanKind::kFilter) {
    return NotCertified("Observation 4.1", "root/0", "base child is not a selection");
  }
  ThetaClassification cls = ClassifyTheta(plan->theta);
  // The base selection predicate is a single-table expression over B (kDetail
  // frame); every attribute it touches must be in the equi-transfer closure.
  TransferCertificate cert;
  for (const std::string& col : base->predicate->ReferencedColumns(Side::kDetail)) {
    if (!cls.HasEquiBinding(col)) {
      return NotCertified("Observation 4.1", "root/0",
                          "selection attribute '" + col +
                              "' is not bound by a plain-column equi conjunct of θ");
    }
  }
  cert.substitution = cls.equi_bound;
  // Ranges Observation 4.1 carries across the equi conjuncts: the base
  // selection's constraints (a single-table predicate in the kDetail frame,
  // remapped to B here) conjoined with θ, then read off the detail side as
  // transfer facts — the range predicates the transferred σ implies on R.
  ExprPtr base_sel = Expr::RemapSide(base->predicate, Side::kDetail, Side::kBase);
  RangeAnalysis ranges = AnalyzeRanges(
      Expr::Binary(BinaryOp::kAnd, plan->theta, std::move(base_sel)));
  for (const RangeFact& f : ranges.facts) {
    if (f.from_transfer) cert.transferred_ranges.push_back(f);
  }
  return cert;
}

Result<UnsatThetaCertificate> CertifyUnsatTheta(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind() != PlanKind::kMdJoin) {
    return NotCertified("unsat-θ", "root", "root is not an MD-join");
  }
  RangeAnalysis analysis = AnalyzeRanges(plan->theta);
  if (analysis.satisfiable) {
    return NotCertified("unsat-θ", "root",
                        "interval analysis cannot refute θ: " +
                            (analysis.facts.empty()
                                 ? std::string("no range facts derived")
                                 : analysis.ToString()));
  }
  UnsatThetaCertificate cert;
  cert.reason = analysis.unsat_reason;
  cert.analysis = std::move(analysis);
  return cert;
}

ChainDependencyCertificate CertifyChainDependencies(
    const std::vector<PlanPtr>& chain_innermost_first) {
  ChainDependencyCertificate cert;
  const size_t k = chain_innermost_first.size();
  cert.generation.assign(k, 0);
  cert.outputs.resize(k);
  cert.base_refs.resize(k);
  for (size_t i = 0; i < k; ++i) {
    const PlanPtr& node = chain_innermost_first[i];
    for (const AggSpec& a : node->aggs) cert.outputs[i].insert(a.output_name);
    // A component depends on everything its θ or aggregate arguments read
    // from the base side: those names resolve against the stack below it.
    std::set<std::string> refs = node->theta->ReferencedColumns(Side::kBase);
    for (const AggSpec& a : node->aggs) {
      if (a.argument != nullptr) {
        std::set<std::string> arg_refs = a.argument->ReferencedColumns(Side::kBase);
        refs.insert(arg_refs.begin(), arg_refs.end());
      }
    }
    cert.base_refs[i] = std::move(refs);
    int gen = 0;
    for (size_t j = 0; j < i; ++j) {
      bool depends = false;
      for (const std::string& r : cert.base_refs[i]) {
        if (cert.outputs[j].count(r)) {
          depends = true;
          break;
        }
      }
      if (depends) gen = std::max(gen, cert.generation[j] + 1);
    }
    cert.generation[i] = gen;
  }
  return cert;
}

Status CertifyOuterIndependence(const PlanPtr& plan, const Catalog& catalog,
                                const char* rule) {
  if (plan->kind() != PlanKind::kMdJoin ||
      plan->child(0)->kind() != PlanKind::kMdJoin) {
    return NotCertified(rule, "root", "root is not two nested MD-joins");
  }
  const PlanPtr& inner = plan->child(0);
  MDJ_ASSIGN_OR_RETURN(PlanAnalysis analysis, AnalyzePlan(inner, catalog));
  MDJ_RETURN_NOT_OK(analysis.ToStatus(rule));
  // Every base-side attribute the outer θ / aggregate arguments reference
  // must trace to an attribute of the inner *base*, not to an aggregate the
  // inner MD-join generates — provenance decides, not name guessing.
  const NodeAnalysis* base_info = analysis.Find(inner->child(0).get());
  std::set<std::string> outer_refs = plan->theta->ReferencedColumns(Side::kBase);
  for (const AggSpec& a : plan->aggs) {
    if (a.argument != nullptr) {
      std::set<std::string> r = a.argument->ReferencedColumns(Side::kBase);
      outer_refs.insert(r.begin(), r.end());
    }
  }
  for (const std::string& col : outer_refs) {
    const AttrProvenance* p = analysis.root().FindProvenance(col);
    if (p == nullptr || base_info == nullptr ||
        base_info->FindProvenance(col) == nullptr) {
      std::string origin =
          p == nullptr ? "unbound" : AttrOriginToString(p->origin);
      return NotCertified(rule, "root",
                          "outer θ references '" + col +
                              "', which is not an attribute of the inner base (" +
                              origin + (p != nullptr ? ": " + p->detail : "") + ")");
    }
  }
  return Status::OK();
}

Result<DistinctnessCertificate> CertifyBaseDistinct(const PlanPtr& base_plan) {
  // Bottom-up evidence, mirroring the rows_distinct propagation of the full
  // pass but runnable without a catalog: walk down through
  // distinctness-preserving operators to a node that *establishes*
  // distinctness.
  PlanPtr cursor = base_plan;
  std::string path = "root";
  std::vector<std::string> via;
  while (true) {
    switch (cursor->kind()) {
      case PlanKind::kDistinct:
        return DistinctnessCertificate{"Distinct at " + path +
                                       (via.empty() ? "" : " (preserved through " +
                                                              via.back() + ")")};
      case PlanKind::kCubeBase:
      case PlanKind::kCuboidBase:
        return DistinctnessCertificate{
            std::string(PlanKindToString(cursor->kind())) +
            " generator emits distinct value combinations at " + path};
      case PlanKind::kGroupBy:
        return DistinctnessCertificate{"GroupBy emits one row per key at " + path};
      case PlanKind::kEmptyRef:
        return DistinctnessCertificate{"empty relation at " + path};
      // Distinctness-preserving: these never introduce duplicate rows when
      // their (relevant) child is duplicate-free.
      case PlanKind::kFilter:
      case PlanKind::kSort:
      case PlanKind::kPartition:
      case PlanKind::kMdJoin:
      case PlanKind::kGeneralizedMdJoin:
        // MD-joins output exactly their base's rows, extended with new
        // columns — extension cannot merge distinct rows.
        via.push_back(PlanKindToString(cursor->kind()));
        cursor = cursor->child(0);
        path += "/0";
        continue;
      default:
        return NotCertified(
            "Theorem 4.4", path,
            std::string("no distinctness evidence: ") + PlanKindToString(cursor->kind()) +
                " does not establish or preserve duplicate-freedom (wrap the base in "
                "Distinct, or derive it from a cube/GroupBy generator)");
    }
  }
}

Result<RollupCertificate> CertifyRollup(const PlanPtr& plan) {
  if (plan->kind() != PlanKind::kMdJoin) {
    return NotCertified("Theorem 4.5", "root", "root is not an MD-join");
  }
  const PlanPtr& base = plan->child(0);
  if (base->kind() != PlanKind::kCuboidBase) {
    return NotCertified("Theorem 4.5", "root/0",
                        "base child is not a cuboid base-values table");
  }
  MDJ_ASSIGN_OR_RETURN(bool distributive, AllDistributive(plan->aggs));
  if (!distributive) {
    return NotCertified("Theorem 4.5", "root",
                        "aggregate list is not distributive; re-aggregating "
                        "finalized outputs would be wrong");
  }
  // θ must be exactly the dimension-equality condition over the cuboid's
  // dimension list: only equi conjuncts, each a plain B.d = R.d pair, and the
  // set of paired dimensions equal to the cuboid's.
  ThetaClassification cls = ClassifyTheta(plan->theta);
  if (!cls.parts.detail_only.empty() || !cls.parts.base_only.empty() ||
      !cls.parts.residual.empty()) {
    return NotCertified("Theorem 4.5", "root",
                        "θ has non-equi conjuncts; roll-up requires the pure "
                        "dimension-equality condition");
  }
  std::set<std::string> seen;
  for (const EquiPair& p : cls.parts.equi) {
    if (p.base_expr->kind() != ExprKind::kColumnRef ||
        p.detail_expr->kind() != ExprKind::kColumnRef ||
        p.base_expr->column_name() != p.detail_expr->column_name()) {
      return NotCertified("Theorem 4.5", "root",
                          "equi conjunct is not a plain B.d = R.d dimension pair");
    }
    seen.insert(p.base_expr->column_name());
  }
  std::set<std::string> want(base->cube_dims.begin(), base->cube_dims.end());
  if (seen != want) {
    return NotCertified("Theorem 4.5", "root",
                        "θ's dimension set does not match the cuboid's dimensions");
  }
  return RollupCertificate{base->cube_dims};
}

}  // namespace mdjoin
