#ifndef MDJOIN_ANALYZE_LEXER_H_
#define MDJOIN_ANALYZE_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace mdjoin {

/// Token kinds of the ANALYZE BY dialect (§5 of the paper). Keywords are
/// recognized case-insensitively and carried as kKeyword with lower-cased
/// text.
enum class TokenKind {
  kIdent,
  kKeyword,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,  // '...' with '' escaping
  kSymbol,         // ( ) , ; : . * = <> < <= > >= + - / %
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // lower-cased for keywords; verbatim otherwise
  int64_t int_value = 0;
  double float_value = 0;
  int position = 0;  // byte offset, for error messages

  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return kind == TokenKind::kSymbol && text == sym;
  }
};

/// Reserved words. Anything else alphabetic is an identifier.
bool IsReservedKeyword(const std::string& lower);

/// Tokenizes `input`; fails on unterminated strings or unknown characters.
/// The result always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace mdjoin

#endif  // MDJOIN_ANALYZE_LEXER_H_
