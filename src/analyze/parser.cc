#include "analyze/parser.h"

#include "analyze/lexer.h"

namespace mdjoin {
namespace analyze {

namespace {

AstExprPtr MakeAst(AstKind kind) {
  auto e = std::make_shared<AstExpr>();
  e->kind = kind;
  return e;
}

/// Recursive-descent parser over the token stream. Grammar (precedence low
/// to high): or, and, not, comparison (incl. IN/BETWEEN/IS NULL), additive,
/// multiplicative, unary minus, primary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// The paper's literal EMF-SQL shape ([Cha99], §5 listing):
  ///
  ///   SELECT items FROM table [WHERE cond]
  ///   GROUP BY attr [, attr ...] [; var [, var ...]
  ///   SUCH THAT cond [, cond ...]]           -- i-th cond binds i-th var
  ///   [HAVING cond] [ORDER BY ...]
  ///
  /// Semantically identical to ANALYZE BY group(attrs) with named bindings;
  /// both forms produce the same Query AST.
  Result<Query> ParseEmf() {
    Query q;
    MDJ_RETURN_NOT_OK(ExpectKeyword("select"));
    MDJ_ASSIGN_OR_RETURN(q.select, ParseSelectList());
    MDJ_RETURN_NOT_OK(ExpectKeyword("from"));
    MDJ_ASSIGN_OR_RETURN(q.from_table, ExpectIdent("table name"));
    if (Peek().IsKeyword("where")) {
      Advance();
      MDJ_ASSIGN_OR_RETURN(q.where, ParseExpr());
    }
    MDJ_RETURN_NOT_OK(ExpectKeyword("group"));
    MDJ_RETURN_NOT_OK(ExpectKeyword("by"));
    q.base.kind = BaseGenKind::kGroup;
    while (true) {
      MDJ_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("grouping attribute"));
      q.base.attrs.push_back(std::move(attr));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    if (Peek().IsSymbol(";")) {
      Advance();
      std::vector<std::string> vars;
      while (true) {
        MDJ_ASSIGN_OR_RETURN(std::string var, ExpectIdent("grouping-variable name"));
        vars.push_back(std::move(var));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
      MDJ_RETURN_NOT_OK(ExpectKeyword("such"));
      MDJ_RETURN_NOT_OK(ExpectKeyword("that"));
      for (size_t i = 0; i < vars.size(); ++i) {
        Binding b;
        b.var = vars[i];
        MDJ_ASSIGN_OR_RETURN(b.condition, ParseExpr());
        q.bindings.push_back(std::move(b));
        if (i + 1 < vars.size()) {
          MDJ_RETURN_NOT_OK(ExpectSymbol(","));
        }
      }
    }
    MDJ_RETURN_NOT_OK(ParseTrailing(&q));
    return q;
  }

  Result<Query> Parse() {
    Query q;
    MDJ_RETURN_NOT_OK(ExpectKeyword("select"));
    MDJ_ASSIGN_OR_RETURN(q.select, ParseSelectList());
    MDJ_RETURN_NOT_OK(ExpectKeyword("from"));
    MDJ_ASSIGN_OR_RETURN(q.from_table, ExpectIdent("table name"));
    if (Peek().IsKeyword("where")) {
      Advance();
      MDJ_ASSIGN_OR_RETURN(q.where, ParseExpr());
    }
    MDJ_RETURN_NOT_OK(ExpectKeyword("analyze"));
    MDJ_RETURN_NOT_OK(ExpectKeyword("by"));
    MDJ_ASSIGN_OR_RETURN(q.base, ParseBaseGen());
    if (Peek().IsKeyword("such")) {
      Advance();
      MDJ_RETURN_NOT_OK(ExpectKeyword("that"));
      MDJ_ASSIGN_OR_RETURN(q.bindings, ParseBindings());
    }
    MDJ_RETURN_NOT_OK(ParseTrailing(&q));
    return q;
  }

 private:
  /// HAVING / ORDER BY / optional ';' / end-of-input — shared by both
  /// dialects.
  Status ParseTrailing(Query* q) {
    if (Peek().IsKeyword("having")) {
      Advance();
      MDJ_ASSIGN_OR_RETURN(q->having, ParseExpr());
    }
    if (Peek().IsKeyword("order")) {
      Advance();
      MDJ_RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        OrderItem item;
        MDJ_ASSIGN_OR_RETURN(item.column, ExpectIdent("ORDER BY column"));
        if (Peek().IsKeyword("asc")) {
          Advance();
        } else if (Peek().IsKeyword("desc")) {
          Advance();
          item.ascending = false;
        }
        q->order_by.push_back(std::move(item));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Err("unexpected trailing input");
    }
    return Status::OK();
  }

  const Token& Peek(int ahead = 0) const {
    size_t idx = pos_ + static_cast<size_t>(ahead);
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Err(const std::string& what) const {
    return Status::ParseError(what, " (near offset ", Peek().position, ", at '",
                              Peek().kind == TokenKind::kEnd ? "<end>" : Peek().text,
                              "')");
  }

  Status ExpectKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) return Err(std::string("expected '") + kw + "'");
    Advance();
    return Status::OK();
  }
  Status ExpectSymbol(const char* sym) {
    if (!Peek().IsSymbol(sym)) return Err(std::string("expected '") + sym + "'");
    Advance();
    return Status::OK();
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Err(std::string("expected ") + what);
    }
    return Advance().text;
  }

  Result<std::vector<SelectItem>> ParseSelectList() {
    std::vector<SelectItem> items;
    while (true) {
      SelectItem item;
      MDJ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (item.expr->kind != AstKind::kColumnRef &&
          item.expr->kind != AstKind::kAggCall) {
        return Err("SELECT items must be columns or aggregate calls");
      }
      if (Peek().IsKeyword("as")) {
        Advance();
        MDJ_ASSIGN_OR_RETURN(std::string alias, ExpectIdent("alias"));
        item.alias = std::move(alias);
      }
      items.push_back(std::move(item));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    if (items.empty()) return Err("empty SELECT list");
    return items;
  }

  Result<std::vector<std::string>> ParseAttrList() {
    MDJ_RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<std::string> attrs;
    if (!Peek().IsSymbol(")")) {
      while (true) {
        MDJ_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("attribute name"));
        attrs.push_back(std::move(attr));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
    }
    MDJ_RETURN_NOT_OK(ExpectSymbol(")"));
    return attrs;
  }

  Result<BaseGen> ParseBaseGen() {
    BaseGen gen;
    const Token& tok = Peek();
    if (tok.IsKeyword("group")) {
      gen.kind = BaseGenKind::kGroup;
      Advance();
      // Accept both "group(a,b)" and "group by(a,b)".
      if (Peek().IsKeyword("by")) Advance();
      MDJ_ASSIGN_OR_RETURN(gen.attrs, ParseAttrList());
      return gen;
    }
    if (tok.IsKeyword("cube")) {
      gen.kind = BaseGenKind::kCube;
      Advance();
      if (Peek().IsKeyword("by")) Advance();
      MDJ_ASSIGN_OR_RETURN(gen.attrs, ParseAttrList());
      return gen;
    }
    if (tok.IsKeyword("rollup")) {
      gen.kind = BaseGenKind::kRollup;
      Advance();
      MDJ_ASSIGN_OR_RETURN(gen.attrs, ParseAttrList());
      return gen;
    }
    if (tok.IsKeyword("unpivot")) {
      gen.kind = BaseGenKind::kUnpivot;
      Advance();
      MDJ_ASSIGN_OR_RETURN(gen.attrs, ParseAttrList());
      return gen;
    }
    if (tok.IsKeyword("grouping_sets")) {
      gen.kind = BaseGenKind::kGroupingSets;
      Advance();
      MDJ_RETURN_NOT_OK(ExpectSymbol("("));
      while (true) {
        MDJ_ASSIGN_OR_RETURN(std::vector<std::string> set, ParseAttrList());
        // The union of all set attributes, in first-appearance order, fixes
        // the output dimension list.
        for (const std::string& a : set) {
          bool seen = false;
          for (const std::string& have : gen.attrs) seen = seen || have == a;
          if (!seen) gen.attrs.push_back(a);
        }
        gen.sets.push_back(std::move(set));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
      MDJ_RETURN_NOT_OK(ExpectSymbol(")"));
      return gen;
    }
    if (tok.IsKeyword("table")) {
      // "table T(attrs)" — explicit keyword form.
      Advance();
      gen.kind = BaseGenKind::kTable;
      MDJ_ASSIGN_OR_RETURN(gen.table_name, ExpectIdent("base-values table name"));
      MDJ_ASSIGN_OR_RETURN(gen.attrs, ParseAttrList());
      return gen;
    }
    if (tok.kind == TokenKind::kIdent) {
      // Bare table-name form of Example 2.4: "analyze by T(prod, month)".
      gen.kind = BaseGenKind::kTable;
      gen.table_name = Advance().text;
      MDJ_ASSIGN_OR_RETURN(gen.attrs, ParseAttrList());
      return gen;
    }
    return Err("expected a base-values generator (group/cube/rollup/unpivot/"
               "grouping_sets/<table>)");
  }

  Result<std::vector<Binding>> ParseBindings() {
    std::vector<Binding> bindings;
    while (true) {
      Binding b;
      MDJ_ASSIGN_OR_RETURN(b.var, ExpectIdent("grouping-variable name"));
      MDJ_RETURN_NOT_OK(ExpectSymbol(":"));
      MDJ_ASSIGN_OR_RETURN(b.condition, ParseExpr());
      bindings.push_back(std::move(b));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    return bindings;
  }

  // --- expressions ---

  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    MDJ_ASSIGN_OR_RETURN(AstExprPtr left, ParseAnd());
    while (Peek().IsKeyword("or")) {
      Advance();
      MDJ_ASSIGN_OR_RETURN(AstExprPtr right, ParseAnd());
      AstExprPtr node = MakeAst(AstKind::kBinary);
      node->binary_op = AstBinaryOp::kOr;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseAnd() {
    MDJ_ASSIGN_OR_RETURN(AstExprPtr left, ParseNot());
    while (Peek().IsKeyword("and")) {
      Advance();
      MDJ_ASSIGN_OR_RETURN(AstExprPtr right, ParseNot());
      AstExprPtr node = MakeAst(AstKind::kBinary);
      node->binary_op = AstBinaryOp::kAnd;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseNot() {
    if (Peek().IsKeyword("not")) {
      Advance();
      MDJ_ASSIGN_OR_RETURN(AstExprPtr operand, ParseNot());
      AstExprPtr node = MakeAst(AstKind::kUnary);
      node->unary_op = AstUnaryOp::kNot;
      node->left = std::move(operand);
      return node;
    }
    return ParseComparison();
  }

  Result<AstExprPtr> ParseComparison() {
    MDJ_ASSIGN_OR_RETURN(AstExprPtr left, ParseAdditive());
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kSymbol &&
        (tok.text == "=" || tok.text == "<>" || tok.text == "<" || tok.text == "<=" ||
         tok.text == ">" || tok.text == ">=")) {
      std::string op = Advance().text;
      MDJ_ASSIGN_OR_RETURN(AstExprPtr right, ParseAdditive());
      AstExprPtr node = MakeAst(AstKind::kBinary);
      node->binary_op = op == "=" ? AstBinaryOp::kEq
                        : op == "<>" ? AstBinaryOp::kNe
                        : op == "<" ? AstBinaryOp::kLt
                        : op == "<=" ? AstBinaryOp::kLe
                        : op == ">" ? AstBinaryOp::kGt
                                    : AstBinaryOp::kGe;
      node->left = std::move(left);
      node->right = std::move(right);
      return node;
    }
    if (tok.IsKeyword("between")) {
      Advance();
      MDJ_ASSIGN_OR_RETURN(AstExprPtr lo, ParseAdditive());
      MDJ_RETURN_NOT_OK(ExpectKeyword("and"));
      MDJ_ASSIGN_OR_RETURN(AstExprPtr hi, ParseAdditive());
      // Desugar: left >= lo and left <= hi.
      AstExprPtr ge = MakeAst(AstKind::kBinary);
      ge->binary_op = AstBinaryOp::kGe;
      ge->left = left;
      ge->right = std::move(lo);
      AstExprPtr le = MakeAst(AstKind::kBinary);
      le->binary_op = AstBinaryOp::kLe;
      le->left = std::move(left);
      le->right = std::move(hi);
      AstExprPtr both = MakeAst(AstKind::kBinary);
      both->binary_op = AstBinaryOp::kAnd;
      both->left = std::move(ge);
      both->right = std::move(le);
      return both;
    }
    if (tok.IsKeyword("in")) {
      Advance();
      MDJ_RETURN_NOT_OK(ExpectSymbol("("));
      AstExprPtr node = MakeAst(AstKind::kIn);
      node->left = std::move(left);
      while (true) {
        MDJ_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        node->in_list.push_back(std::move(v));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
      MDJ_RETURN_NOT_OK(ExpectSymbol(")"));
      return node;
    }
    if (tok.IsKeyword("is")) {
      Advance();
      bool negated = false;
      if (Peek().IsKeyword("not")) {
        Advance();
        negated = true;
      }
      MDJ_RETURN_NOT_OK(ExpectKeyword("null"));
      AstExprPtr node = MakeAst(AstKind::kUnary);
      node->unary_op = AstUnaryOp::kIsNull;
      node->left = std::move(left);
      if (!negated) return node;
      AstExprPtr neg = MakeAst(AstKind::kUnary);
      neg->unary_op = AstUnaryOp::kNot;
      neg->left = std::move(node);
      return neg;
    }
    return left;
  }

  Result<Value> ParseLiteralValue() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kIntLiteral) return Value::Int64(Advance().int_value);
    if (tok.kind == TokenKind::kFloatLiteral) {
      return Value::Float64(Advance().float_value);
    }
    if (tok.kind == TokenKind::kStringLiteral) return Value::String(Advance().text);
    return Err("expected a literal");
  }

  Result<AstExprPtr> ParseAdditive() {
    MDJ_ASSIGN_OR_RETURN(AstExprPtr left, ParseMultiplicative());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      std::string op = Advance().text;
      MDJ_ASSIGN_OR_RETURN(AstExprPtr right, ParseMultiplicative());
      AstExprPtr node = MakeAst(AstKind::kBinary);
      node->binary_op = op == "+" ? AstBinaryOp::kAdd : AstBinaryOp::kSub;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseMultiplicative() {
    MDJ_ASSIGN_OR_RETURN(AstExprPtr left, ParseUnary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/") || Peek().IsSymbol("%")) {
      std::string op = Advance().text;
      MDJ_ASSIGN_OR_RETURN(AstExprPtr right, ParseUnary());
      AstExprPtr node = MakeAst(AstKind::kBinary);
      node->binary_op = op == "*"   ? AstBinaryOp::kMul
                        : op == "/" ? AstBinaryOp::kDiv
                                    : AstBinaryOp::kMod;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      Advance();
      MDJ_ASSIGN_OR_RETURN(AstExprPtr operand, ParseUnary());
      AstExprPtr node = MakeAst(AstKind::kUnary);
      node->unary_op = AstUnaryOp::kNegate;
      node->left = std::move(operand);
      return node;
    }
    return ParsePrimary();
  }

  Result<AstExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kIntLiteral || tok.kind == TokenKind::kFloatLiteral ||
        tok.kind == TokenKind::kStringLiteral) {
      AstExprPtr node = MakeAst(AstKind::kLiteral);
      node->position = tok.position;
      MDJ_ASSIGN_OR_RETURN(node->literal, ParseLiteralValue());
      return node;
    }
    if (tok.IsKeyword("case")) {
      Advance();
      AstExprPtr node = MakeAst(AstKind::kCase);
      node->position = tok.position;
      while (Peek().IsKeyword("when")) {
        Advance();
        AstExprPtr when;
        MDJ_ASSIGN_OR_RETURN(when, ParseExpr());
        MDJ_RETURN_NOT_OK(ExpectKeyword("then"));
        AstExprPtr then;
        MDJ_ASSIGN_OR_RETURN(then, ParseExpr());
        node->case_arms.emplace_back(std::move(when), std::move(then));
      }
      if (node->case_arms.empty()) return Err("CASE needs at least one WHEN arm");
      if (Peek().IsKeyword("else")) {
        Advance();
        MDJ_ASSIGN_OR_RETURN(node->left, ParseExpr());
      }
      MDJ_RETURN_NOT_OK(ExpectKeyword("end"));
      return node;
    }
    if (tok.IsKeyword("null")) {
      Advance();
      AstExprPtr node = MakeAst(AstKind::kLiteral);
      node->literal = Value::Null();
      return node;
    }
    if (tok.IsKeyword("all")) {
      Advance();
      AstExprPtr node = MakeAst(AstKind::kLiteral);
      node->literal = Value::All();
      return node;
    }
    if (tok.IsSymbol("(")) {
      Advance();
      MDJ_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
      MDJ_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (tok.kind == TokenKind::kIdent) {
      std::string first = Advance().text;
      // Aggregate call: ident '(' ...
      if (Peek().IsSymbol("(")) {
        Advance();
        AstExprPtr node = MakeAst(AstKind::kAggCall);
        node->position = tok.position;
        node->agg_name = std::move(first);
        if (Peek().IsSymbol("*")) {
          Advance();
          node->agg_star = true;
        } else if (Peek().kind == TokenKind::kIdent && Peek(1).IsSymbol(".") &&
                   Peek(2).IsSymbol("*")) {
          // EMF-SQL qualified star: count(Z.*) counts Z's tuples.
          node->agg_star = true;
          node->star_qualifier = Advance().text;
          Advance();  // '.'
          Advance();  // '*'
        } else {
          MDJ_ASSIGN_OR_RETURN(node->left, ParseExpr());
        }
        MDJ_RETURN_NOT_OK(ExpectSymbol(")"));
        return node;
      }
      AstExprPtr node = MakeAst(AstKind::kColumnRef);
      node->position = tok.position;
      // Qualified reference: X.col.
      if (Peek().IsSymbol(".")) {
        Advance();
        MDJ_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column after '.'"));
        node->qualifier = std::move(first);
        node->column = std::move(col);
      } else {
        node->column = std::move(first);
      }
      return node;
    }
    return Err("expected an expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& input) {
  MDJ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<Query> ParseEmfQuery(const std::string& input) {
  MDJ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseEmf();
}

}  // namespace analyze
}  // namespace mdjoin
